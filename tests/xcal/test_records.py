"""Tests for repro.xcal.records — the XCAL-equivalent trace schema."""

import numpy as np
import pytest

from repro.nr.numerology import Numerology
from repro.xcal.records import SlotTrace, TraceMetadata


class TestConstruction:
    def test_empty_trace(self):
        trace = SlotTrace.empty(100)
        assert len(trace) == 100
        assert trace.slot.tolist() == list(range(100))
        assert trace.time_ms[2] == 1.0
        assert trace.total_bits == 0

    def test_length_mismatch_rejected(self):
        trace = SlotTrace.empty(10)
        with pytest.raises(ValueError, match="length"):
            SlotTrace(**{**{name: trace.column(name) for name in
                            __import__("repro.xcal.records", fromlist=["TRACE_COLUMNS"]).TRACE_COLUMNS},
                         "cqi": np.zeros(5, dtype=np.int64)})

    def test_metadata_defaults(self):
        trace = SlotTrace.empty(1)
        assert trace.metadata.direction == "DL"

    def test_negative_slots_rejected(self):
        with pytest.raises(ValueError):
            SlotTrace.empty(-1)


class TestDerivedKpis:
    @pytest.fixture
    def simple_trace(self):
        trace = SlotTrace.empty(2000)  # 1 s at mu=1
        trace.scheduled[:] = True
        trace.tbs_bits[:] = 1000
        trace.delivered_bits[:] = 1000
        trace.mcs_index[:] = 15
        trace.modulation_order[:] = 6
        trace.layers[:] = 4
        trace.cqi[:] = 12
        return trace

    def test_mean_throughput(self, simple_trace):
        # 1000 bits per 0.5 ms slot = 2 Mbps.
        assert simple_trace.mean_throughput_mbps == pytest.approx(2.0)

    def test_binned_throughput(self, simple_trace):
        series = simple_trace.throughput_mbps(100.0)
        assert series.shape == (10,)
        assert np.allclose(series, 2.0)

    def test_binned_throughput_drops_partial(self, simple_trace):
        series = simple_trace.throughput_mbps(300.0)
        assert series.shape == (3,)

    def test_bler_counts_initial_errors(self):
        trace = SlotTrace.empty(10)
        trace.scheduled[:] = True
        trace.error[0:2] = True
        assert trace.bler == pytest.approx(0.2)

    def test_bler_ignores_retx(self):
        trace = SlotTrace.empty(10)
        trace.scheduled[:] = True
        trace.is_retx[0:5] = True
        trace.error[0] = True  # error on a retx does not count
        assert trace.bler == 0.0

    def test_bler_empty(self):
        assert SlotTrace.empty(5).bler == 0.0

    def test_modulation_shares(self, simple_trace):
        simple_trace.modulation_order[:1000] = 8
        shares = simple_trace.modulation_shares()
        assert shares[8] == pytest.approx(0.5)
        assert shares[6] == pytest.approx(0.5)

    def test_layer_shares(self, simple_trace):
        shares = simple_trace.layer_shares()
        assert shares == {4: 1.0}

    def test_shares_empty_trace(self):
        assert SlotTrace.empty(5).modulation_shares() == {}
        assert SlotTrace.empty(5).layer_shares() == {}


class TestViews:
    def test_filter_cqi(self, short_dl_trace):
        subset = short_dl_trace.filter_cqi(minimum=12)
        assert (subset.cqi >= 12).all()
        both = short_dl_trace.filter_cqi(minimum=8, maximum=11)
        assert ((both.cqi >= 8) & (both.cqi <= 11)).all()

    def test_scheduled_view(self, short_dl_trace):
        view = short_dl_trace.scheduled_view()
        assert view.scheduled.all()
        assert len(view) == int(short_dl_trace.scheduled.sum())

    def test_mask_length_checked(self, short_dl_trace):
        with pytest.raises(ValueError):
            short_dl_trace.mask(np.ones(3, dtype=bool))

    def test_concat(self):
        a = SlotTrace.empty(10)
        b = SlotTrace.empty(5)
        b.delivered_bits[:] = 7
        merged = a.concat(b)
        assert len(merged) == 15
        assert merged.slot.tolist() == list(range(15))
        assert merged.delivered_bits[-1] == 7

    def test_concat_mu_mismatch(self):
        a = SlotTrace.empty(4, mu=Numerology.MU_1)
        b = SlotTrace.empty(4, mu=Numerology.MU_3)
        with pytest.raises(ValueError):
            a.concat(b)

    def test_column_lookup(self, short_dl_trace):
        assert short_dl_trace.column("cqi") is short_dl_trace.cqi
        with pytest.raises(KeyError):
            short_dl_trace.column("nonexistent")
