"""Parquet export: optional-dependency gating, layout and round-trip.

pyarrow is an *optional* integration — the simulator itself never needs
it — so the tests split in two: the gating tests always run (a missing
wheel must produce one actionable error, not a traceback from deep
inside an export loop), while the round-trip and partition-layout tests
skip cleanly on hosts without pyarrow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.xcal import io as io_mod
from repro.xcal.dataset import (EXPORT_FORMATS, CampaignSpec,
                                MeasurementCampaign)
from repro.xcal.io import read_parquet, write_parquet
from repro.xcal.records import TRACE_COLUMNS, SlotTrace, TraceMetadata

try:
    import pyarrow  # noqa: F401
    HAVE_PYARROW = True
except ImportError:
    HAVE_PYARROW = False

needs_pyarrow = pytest.mark.skipif(not HAVE_PYARROW,
                                   reason="pyarrow not installed")


def _trace(n: int = 32, seed: int = 0,
           operator: str = "V_Sp") -> SlotTrace:
    rng = np.random.default_rng(seed)
    trace = SlotTrace.empty(
        n, metadata=TraceMetadata(operator=operator, country="ES"))
    trace.sinr_db[:] = rng.normal(10.0, 5.0, n)
    trace.mcs_index[:] = rng.integers(0, 28, n)
    trace.tbs_bits[:] = rng.integers(0, 100_000, n)
    trace.scheduled[:] = rng.random(n) < 0.5
    return trace


def _campaign() -> MeasurementCampaign:
    spec = CampaignSpec(minutes_per_operator=0.1, session_s=3.0)
    return MeasurementCampaign(
        spec=spec,
        dl_traces={"V_Sp": [_trace(seed=1), _trace(seed=2)],
                   "O_Fr": [_trace(seed=3, operator="O_Fr")]},
        ul_traces={"V_Sp": [_trace(seed=4)]},
    )


class TestOptionalDependencyGate:
    def test_parquet_is_a_registered_format(self):
        assert "parquet" in EXPORT_FORMATS
        assert EXPORT_FORMATS["parquet"][1] == ".parquet"

    def test_missing_pyarrow_raises_actionable_error(self, monkeypatch,
                                                     tmp_path):
        import builtins

        real_import = builtins.__import__

        def no_pyarrow(name, *args, **kwargs):
            if name == "pyarrow" or name.startswith("pyarrow."):
                raise ImportError(f"No module named {name!r}")
            return real_import(name, *args, **kwargs)

        monkeypatch.setattr(builtins, "__import__", no_pyarrow)
        with pytest.raises(RuntimeError, match="pyarrow"):
            write_parquet(_trace(), tmp_path / "t.parquet")

    def test_export_propagates_clean_error(self, monkeypatch, tmp_path):
        if HAVE_PYARROW:
            pytest.skip("pyarrow installed; gate exercised above")
        with pytest.raises(RuntimeError, match="pip install pyarrow"):
            _campaign().export(tmp_path, format="parquet")


class TestPartitionLayout:
    @needs_pyarrow
    def test_hive_style_operator_partitions(self, tmp_path):
        paths = _campaign().export(tmp_path, format="parquet")
        rels = sorted(p.relative_to(tmp_path).as_posix() for p in paths)
        assert rels == [
            "operator=O_Fr/dl_000.parquet",
            "operator=V_Sp/dl_000.parquet",
            "operator=V_Sp/dl_001.parquet",
            "operator=V_Sp/ul_000.parquet",
        ]

    def test_flat_formats_stay_flat(self, tmp_path):
        paths = _campaign().export(tmp_path / "csv", format="csv")
        assert all(p.parent == tmp_path / "csv" for p in paths)


class TestRoundTrip:
    @needs_pyarrow
    def test_trace_round_trips(self, tmp_path):
        original = _trace(seed=11)
        path = write_parquet(original, tmp_path / "t.parquet")
        loaded = read_parquet(path)
        assert loaded.mu == original.mu
        assert loaded.metadata == original.metadata
        for name in TRACE_COLUMNS:
            np.testing.assert_array_equal(loaded.column(name),
                                          original.column(name), err_msg=name)

    @needs_pyarrow
    def test_metadata_travels_in_schema(self, tmp_path):
        import pyarrow.parquet as pq

        path = write_parquet(_trace(operator="T_Ge"), tmp_path / "t.parquet")
        meta = pq.read_schema(path).metadata
        assert io_mod._PARQUET_META_KEY in meta
        assert b"T_Ge" in meta[io_mod._PARQUET_META_KEY]
