"""Tests for repro.xcal.kpis — trace KPI digests."""

import numpy as np
import pytest

from repro.xcal.kpis import compare_traces, summarize_trace


class TestSummary:
    def test_summary_fields(self, short_dl_trace):
        summary = summarize_trace(short_dl_trace, label="V_Sp test")
        assert summary.label == "V_Sp test"
        assert summary.mean_tput_mbps == pytest.approx(short_dl_trace.mean_throughput_mbps)
        assert summary.bler == pytest.approx(short_dl_trace.bler)
        assert 0.0 <= summary.cqi12_share <= 1.0
        assert summary.duration_s == pytest.approx(short_dl_trace.duration_s)

    def test_default_label_from_metadata(self, short_dl_trace):
        summary = summarize_trace(short_dl_trace)
        assert summary.label == short_dl_trace.metadata.carrier_name

    def test_shares_consistent_with_trace(self, short_dl_trace):
        summary = summarize_trace(short_dl_trace)
        raw = short_dl_trace.layer_shares()
        assert summary.layer_shares == raw
        assert sum(summary.modulation_shares.values()) == pytest.approx(1.0)

    def test_variability_positive(self, short_dl_trace):
        summary = summarize_trace(short_dl_trace)
        assert summary.tput_variability_128ms > 0

    def test_row_renders(self, short_dl_trace):
        row = summarize_trace(short_dl_trace, label="x").row()
        assert "tput" in row and "BLER" in row and "V(128ms)" in row

    def test_empty_trace(self):
        from repro.xcal.records import SlotTrace

        summary = summarize_trace(SlotTrace.empty(10), label="empty")
        assert summary.mean_tput_mbps == 0.0
        assert np.isnan(summary.cqi12_tput_mbps) or summary.cqi12_tput_mbps == 0.0


class TestCompare:
    def test_rows_per_trace(self, short_dl_trace):
        rows = compare_traces({"a": short_dl_trace, "b": short_dl_trace})
        assert len(rows) == 2
        assert rows[0].startswith("a")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_traces({})
