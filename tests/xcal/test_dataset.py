"""Tests for repro.xcal.dataset — the synthetic measurement campaign."""

import numpy as np
import pytest

from repro.operators.profiles import EU_PROFILES
from repro.xcal.dataset import (
    CampaignSpec,
    generate_campaign,
    run_session,
    session_seed,
)


@pytest.fixture(scope="module")
def small_campaign():
    profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Sp_100")}
    spec = CampaignSpec(minutes_per_operator=0.2, session_s=4.0, seed=99)
    return generate_campaign(profiles, spec)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(minutes_per_operator=0.0)
        with pytest.raises(ValueError):
            CampaignSpec(ul_fraction=1.5)
        with pytest.raises(ValueError):
            CampaignSpec(ul_fraction=-0.1)

    def test_ul_only_campaign_expressible(self):
        # ul_fraction=1.0 is valid: every session measures the uplink.
        spec = CampaignSpec(minutes_per_operator=0.1, session_s=3.0,
                            ul_fraction=1.0, seed=3)
        campaign = generate_campaign({"V_Sp": EU_PROFILES["V_Sp"]}, spec)
        assert campaign.dl_traces["V_Sp"] == []
        assert len(campaign.ul_traces["V_Sp"]) == 2
        assert all(t.metadata.direction == "UL"
                   for t in campaign.ul_traces["V_Sp"])


class TestCampaign:
    def test_operators_covered(self, small_campaign):
        assert set(small_campaign.operators) == {"V_Sp", "O_Sp_100"}

    def test_session_counts(self, small_campaign):
        # 0.2 min / 4 s = 3 sessions, 30% UL -> 1 UL + 2 DL.
        assert len(small_campaign.dl_traces["V_Sp"]) == 2
        assert len(small_campaign.ul_traces["V_Sp"]) == 1

    def test_total_minutes(self, small_campaign):
        assert small_campaign.total_minutes == pytest.approx(2 * 3 * 4.0 / 60.0)

    def test_data_volume_positive(self, small_campaign):
        assert small_campaign.total_data_gb > 0.01

    def test_metadata_attached(self, small_campaign):
        trace = small_campaign.dl_traces["V_Sp"][0]
        assert trace.metadata.operator == "Vodafone"
        assert trace.metadata.country == "Spain"
        assert trace.metadata.direction == "DL"

    def test_ul_slower_than_dl(self, small_campaign):
        dl = small_campaign.dl_traces["V_Sp"][0].mean_throughput_mbps
        ul = small_campaign.ul_traces["V_Sp"][0].mean_throughput_mbps
        assert ul < dl

    def test_summary_rows(self, small_campaign):
        rows = small_campaign.summary_rows()
        assert any("minutes" in row for row in rows)

    def test_export_csv(self, small_campaign, tmp_path):
        paths = small_campaign.export_csv(tmp_path)
        assert len(paths) == 6
        assert all(p.exists() for p in paths)

    def test_sessions_differ(self, small_campaign):
        a, b = small_campaign.dl_traces["V_Sp"]
        assert a.mean_throughput_mbps != b.mean_throughput_mbps


class TestExportFormats:
    def test_jsonl_and_npz_load_back(self, small_campaign, tmp_path):
        from repro.xcal.io import read_jsonl, read_npz

        for fmt, reader in (("jsonl", read_jsonl), ("npz", read_npz)):
            paths = small_campaign.export(tmp_path / fmt, format=fmt)
            assert len(paths) == 6
            loaded = reader(paths[0])
            assert len(loaded) > 0
            assert loaded.metadata.operator in ("Vodafone", "Orange")

    def test_unknown_format_rejected(self, small_campaign, tmp_path):
        with pytest.raises(ValueError, match="unknown export format"):
            small_campaign.export(tmp_path, format="xlsx")

    def test_operator_keys_sanitized_in_filenames(self, tmp_path):
        from repro.xcal.dataset import _filename_key

        assert _filename_key("V_Sp") == "V_Sp"
        assert _filename_key("O Sp/100") == "O_Sp_100"
        assert _filename_key("../../etc/passwd") == "etc_passwd"
        assert _filename_key("***") == "operator"

    def test_weird_operator_key_stays_inside_directory(self, tmp_path):
        profiles = {"../escape me": EU_PROFILES["V_Sp"]}
        spec = CampaignSpec(minutes_per_operator=0.1, session_s=3.0, seed=5)
        campaign = generate_campaign(profiles, spec)
        out = tmp_path / "exports"
        paths = campaign.export(out)
        assert paths
        for path in paths:
            assert path.parent == out
            assert "/" not in path.name and ".." not in path.name


class TestStoreIntegration:
    def test_generate_campaign_warm_equals_cold(self, tmp_path):
        from repro.store import TraceStore

        profiles = {"V_Sp": EU_PROFILES["V_Sp"]}
        spec = CampaignSpec(minutes_per_operator=0.1, session_s=3.0, seed=17)
        cold = generate_campaign(profiles, spec, store=TraceStore(tmp_path / "c"))
        warm_store = TraceStore(tmp_path / "c")
        warm = generate_campaign(profiles, spec, store=warm_store)
        assert warm_store.misses == 0
        for a, b in zip(cold.dl_traces["V_Sp"], warm.dl_traces["V_Sp"]):
            assert np.array_equal(a.delivered_bits, b.delivered_bits)
            assert a.metadata == b.metadata


class TestDeterminism:
    def test_parallel_export_byte_identical(self, tmp_path):
        profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Sp_100")}
        spec = CampaignSpec(minutes_per_operator=0.2, session_s=4.0, seed=99)
        serial = generate_campaign(profiles, spec, jobs=1)
        parallel = generate_campaign(profiles, spec, jobs=4)
        serial_paths = serial.export_csv(tmp_path / "serial")
        parallel_paths = parallel.export_csv(tmp_path / "parallel")
        assert [p.name for p in serial_paths] == [p.name for p in parallel_paths]
        for a, b in zip(serial_paths, parallel_paths):
            assert a.read_bytes() == b.read_bytes()

    def test_derived_seed_recorded_in_metadata(self, small_campaign):
        # Sessions 0..n_ul-1 are UL, the rest DL (n_ul = 1 here).
        assert small_campaign.ul_traces["V_Sp"][0].metadata.seed == session_seed(99, "V_Sp", 0)
        assert small_campaign.dl_traces["V_Sp"][0].metadata.seed == session_seed(99, "V_Sp", 1)
        assert small_campaign.dl_traces["V_Sp"][1].metadata.seed == session_seed(99, "V_Sp", 2)

    def test_trace_regenerates_from_metadata_seed(self, small_campaign):
        trace = small_campaign.dl_traces["V_Sp"][1]
        regenerated = run_session(EU_PROFILES["V_Sp"], small_campaign.spec,
                                  "DL", trace.metadata.seed)
        assert np.array_equal(regenerated.delivered_bits, trace.delivered_bits)
        assert np.array_equal(regenerated.sinr_db, trace.sinr_db)
        assert regenerated.metadata.seed == trace.metadata.seed

    def test_sessions_stable_under_ul_fraction_change(self, small_campaign):
        # A session's seed depends only on (campaign seed, operator,
        # session index); re-running with ul_fraction=0 turns session 0
        # into a DL run but leaves sessions 1 and 2 bit-identical.
        profiles = {"V_Sp": EU_PROFILES["V_Sp"]}
        spec = CampaignSpec(minutes_per_operator=0.2, session_s=4.0,
                            seed=99, ul_fraction=0.0)
        all_dl = generate_campaign(profiles, spec)
        for original, shared in zip(small_campaign.dl_traces["V_Sp"],
                                    all_dl.dl_traces["V_Sp"][1:]):
            assert original.metadata.seed == shared.metadata.seed
            assert np.array_equal(original.delivered_bits, shared.delivered_bits)

    def test_sessions_stable_under_campaign_growth(self, small_campaign):
        # Doubling the campaign keeps the sessions it shares with the
        # smaller one unchanged (session 2 is DL in both shapes).
        profiles = {"V_Sp": EU_PROFILES["V_Sp"]}
        spec = CampaignSpec(minutes_per_operator=0.4, session_s=4.0, seed=99)
        bigger = generate_campaign(profiles, spec)
        small = small_campaign.dl_traces["V_Sp"][1]  # session index 2
        big = bigger.dl_traces["V_Sp"][0]            # session index 2 (n_ul=2)
        assert small.metadata.seed == big.metadata.seed
        assert np.array_equal(small.delivered_bits, big.delivered_bits)
