"""Tests for repro.xcal.dataset — the synthetic measurement campaign."""

import pytest

from repro.operators.profiles import EU_PROFILES
from repro.xcal.dataset import CampaignSpec, generate_campaign


@pytest.fixture(scope="module")
def small_campaign():
    profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Sp_100")}
    spec = CampaignSpec(minutes_per_operator=0.2, session_s=4.0, seed=99)
    return generate_campaign(profiles, spec)


class TestSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            CampaignSpec(minutes_per_operator=0.0)
        with pytest.raises(ValueError):
            CampaignSpec(ul_fraction=1.0)


class TestCampaign:
    def test_operators_covered(self, small_campaign):
        assert set(small_campaign.operators) == {"V_Sp", "O_Sp_100"}

    def test_session_counts(self, small_campaign):
        # 0.2 min / 4 s = 3 sessions, 30% UL -> 1 UL + 2 DL.
        assert len(small_campaign.dl_traces["V_Sp"]) == 2
        assert len(small_campaign.ul_traces["V_Sp"]) == 1

    def test_total_minutes(self, small_campaign):
        assert small_campaign.total_minutes == pytest.approx(2 * 3 * 4.0 / 60.0)

    def test_data_volume_positive(self, small_campaign):
        assert small_campaign.total_data_gb > 0.01

    def test_metadata_attached(self, small_campaign):
        trace = small_campaign.dl_traces["V_Sp"][0]
        assert trace.metadata.operator == "Vodafone"
        assert trace.metadata.country == "Spain"
        assert trace.metadata.direction == "DL"

    def test_ul_slower_than_dl(self, small_campaign):
        dl = small_campaign.dl_traces["V_Sp"][0].mean_throughput_mbps
        ul = small_campaign.ul_traces["V_Sp"][0].mean_throughput_mbps
        assert ul < dl

    def test_summary_rows(self, small_campaign):
        rows = small_campaign.summary_rows()
        assert any("minutes" in row for row in rows)

    def test_export_csv(self, small_campaign, tmp_path):
        paths = small_campaign.export_csv(tmp_path)
        assert len(paths) == 6
        assert all(p.exists() for p in paths)

    def test_sessions_differ(self, small_campaign):
        a, b = small_campaign.dl_traces["V_Sp"]
        assert a.mean_throughput_mbps != b.mean_throughput_mbps
