"""Tests for repro.xcal.io — CSV / JSONL / npz round-trips."""

import numpy as np
import pytest

from repro.nr.numerology import Numerology
from repro.xcal.io import (
    npz_arrays,
    npz_bytes,
    read_csv,
    read_jsonl,
    read_npz,
    trace_npz_bytes,
    write_csv,
    write_jsonl,
    write_npz,
)
from repro.xcal.records import (
    TRACE_COLUMNS,
    SlotTrace,
    TraceMetadata,
    metadata_field_types,
)


@pytest.fixture
def sample_trace(short_dl_trace):
    return short_dl_trace


def _assert_traces_equal(a: SlotTrace, b: SlotTrace):
    assert len(a) == len(b)
    assert a.mu == b.mu
    for name in TRACE_COLUMNS:
        left, right = a.column(name), b.column(name)
        if left.dtype.kind == "f":
            assert np.allclose(left, right, atol=1e-9), name
        else:
            assert np.array_equal(left, right), name


class TestCsv:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_csv(sample_trace, tmp_path / "trace.csv")
        recovered = read_csv(path)
        _assert_traces_equal(sample_trace, recovered)

    def test_metadata_preserved(self, cell_90mhz, good_channel, rng, tmp_path):
        from repro.ran.simulator import simulate_downlink

        metadata = TraceMetadata(operator="Vodafone", country="Spain",
                                 carrier_name="n78-90", direction="DL",
                                 bandwidth_mhz=90.0, scs_khz=30, seed=7)
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng, metadata=metadata)
        recovered = read_csv(write_csv(trace, tmp_path / "meta.csv"))
        assert recovered.metadata.operator == "Vodafone"
        assert recovered.metadata.bandwidth_mhz == 90.0
        assert recovered.metadata.seed == 7

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# mu=1\nslot,time_ms\n0,0.0\n")
        with pytest.raises(ValueError, match="missing trace column"):
            read_csv(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = SlotTrace.empty(0)
        recovered = read_csv(write_csv(trace, tmp_path / "empty.csv"))
        assert len(recovered) == 0


class TestJsonl:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_jsonl(sample_trace, tmp_path / "trace.jsonl")
        recovered = read_jsonl(path)
        _assert_traces_equal(sample_trace, recovered)

    def test_mu_preserved(self, tmp_path):
        trace = SlotTrace.empty(10, mu=Numerology.MU_3)
        recovered = read_jsonl(write_jsonl(trace, tmp_path / "mu3.jsonl"))
        assert recovered.mu is Numerology.MU_3

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_headerless_records_accepted(self, sample_trace, tmp_path):
        # A file with records but no metadata object still loads.
        path = write_jsonl(sample_trace, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        stripped = tmp_path / "noheader.jsonl"
        stripped.write_text("\n".join(lines[1:]) + "\n")
        recovered = read_jsonl(stripped)
        assert len(recovered) == len(sample_trace)


class TestNpz:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_npz(sample_trace, tmp_path / "trace.npz")
        recovered = read_npz(path)
        _assert_traces_equal(sample_trace, recovered)
        assert recovered.metadata == sample_trace.metadata

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = SlotTrace.empty(0)
        recovered = read_npz(write_npz(trace, tmp_path / "empty.npz"))
        assert len(recovered) == 0

    def test_mu_preserved(self, tmp_path):
        trace = SlotTrace.empty(10, mu=Numerology.MU_3)
        recovered = read_npz(write_npz(trace, tmp_path / "mu3.npz"))
        assert recovered.mu is Numerology.MU_3

    def test_dtypes_exact(self, sample_trace, tmp_path):
        recovered = read_npz(write_npz(sample_trace, tmp_path / "t.npz"))
        for name in TRACE_COLUMNS:
            assert recovered.column(name).dtype == sample_trace.column(name).dtype, name
            # npz is binary-exact; no allclose tolerance needed.
            assert np.array_equal(recovered.column(name), sample_trace.column(name)), name

    def test_bytes_deterministic(self, sample_trace):
        assert trace_npz_bytes(sample_trace) == trace_npz_bytes(sample_trace)

    def test_npz_bytes_roundtrip_meta(self):
        arrays = {"x": np.arange(4), "y": np.linspace(0.0, 1.0, 4)}
        meta = {"operator": "a=b", "note": "", "seed": None}
        out_arrays, out_meta = npz_arrays(npz_bytes(arrays, meta))
        assert out_meta == meta
        assert np.array_equal(out_arrays["x"], arrays["x"])
        assert np.array_equal(out_arrays["y"], arrays["y"])


class TestAwkwardMetadata:
    """Round-trips with values that stress the key=value / JSON headers."""

    def _trace_with(self, **overrides) -> SlotTrace:
        metadata = TraceMetadata(**overrides)
        return SlotTrace.empty(3, metadata=metadata)

    @pytest.mark.parametrize("writer,reader", [
        (write_csv, read_csv),
        (write_jsonl, read_jsonl),
        (write_npz, read_npz),
    ])
    def test_equals_sign_in_value(self, writer, reader, tmp_path):
        trace = self._trace_with(operator="O2=Telefonica", carrier_name="n78=C1")
        recovered = reader(writer(trace, tmp_path / "eq.dat"))
        assert recovered.metadata.operator == "O2=Telefonica"
        assert recovered.metadata.carrier_name == "n78=C1"

    @pytest.mark.parametrize("writer,reader", [
        (write_csv, read_csv),
        (write_jsonl, read_jsonl),
        (write_npz, read_npz),
    ])
    def test_empty_string_and_none_seed(self, writer, reader, tmp_path):
        trace = self._trace_with(operator="", country="", seed=None)
        recovered = reader(writer(trace, tmp_path / "none.dat"))
        assert recovered.metadata.operator == ""
        assert recovered.metadata.country == ""
        assert recovered.metadata.seed is None

    def test_csv_headerless_file_loads(self, sample_trace, tmp_path):
        # A CSV without the '#' metadata preamble is a valid extract.
        path = write_csv(sample_trace, tmp_path / "full.csv")
        lines = path.read_text().splitlines()
        body = [line for line in lines if not line.startswith("#")]
        bare = tmp_path / "bare.csv"
        bare.write_text("\n".join(body) + "\n")
        recovered = read_csv(bare)
        _assert_traces_equal(sample_trace, recovered)
        assert recovered.metadata == TraceMetadata()

    def test_csv_partial_metadata_loads(self, sample_trace, tmp_path):
        # Only some metadata keys present: the rest take defaults.
        path = write_csv(sample_trace, tmp_path / "full.csv")
        lines = path.read_text().splitlines()
        kept = [line for line in lines
                if not line.startswith("#") or "operator=" in line]
        partial = tmp_path / "partial.csv"
        partial.write_text("\n".join(kept) + "\n")
        recovered = read_csv(partial)
        assert recovered.metadata.operator == sample_trace.metadata.operator
        assert recovered.metadata.seed is None

    def test_unknown_metadata_keys_ignored(self, sample_trace, tmp_path):
        path = write_csv(sample_trace, tmp_path / "extra.csv")
        body = path.read_text()
        path.write_text("# extractor_version=9.1\n# gps_fix=yes\n" + body)
        recovered = read_csv(path)
        _assert_traces_equal(sample_trace, recovered)


class TestMetadataFieldTypes:
    def test_casts_derived_from_annotations(self):
        types = metadata_field_types()
        assert types["scs_khz"] == (int, False)
        assert types["bandwidth_mhz"] == (float, False)
        assert types["seed"] == (int, True)
        assert types["operator"] == (str, False)

    def test_every_dataclass_field_covered(self):
        import dataclasses

        names = {f.name for f in dataclasses.fields(TraceMetadata)}
        assert set(metadata_field_types()) == names

    def test_constructor_coerces_strings(self):
        meta = TraceMetadata(bandwidth_mhz="90", scs_khz="30.0", seed="None")
        assert meta.bandwidth_mhz == 90.0 and isinstance(meta.bandwidth_mhz, float)
        assert meta.scs_khz == 30 and isinstance(meta.scs_khz, int)
        assert meta.seed is None
