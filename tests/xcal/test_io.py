"""Tests for repro.xcal.io — CSV / JSONL round-trips."""

import numpy as np
import pytest

from repro.nr.numerology import Numerology
from repro.xcal.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.xcal.records import TRACE_COLUMNS, SlotTrace, TraceMetadata


@pytest.fixture
def sample_trace(short_dl_trace):
    return short_dl_trace


def _assert_traces_equal(a: SlotTrace, b: SlotTrace):
    assert len(a) == len(b)
    assert a.mu == b.mu
    for name in TRACE_COLUMNS:
        left, right = a.column(name), b.column(name)
        if left.dtype.kind == "f":
            assert np.allclose(left, right, atol=1e-9), name
        else:
            assert np.array_equal(left, right), name


class TestCsv:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_csv(sample_trace, tmp_path / "trace.csv")
        recovered = read_csv(path)
        _assert_traces_equal(sample_trace, recovered)

    def test_metadata_preserved(self, cell_90mhz, good_channel, rng, tmp_path):
        from repro.ran.simulator import simulate_downlink

        metadata = TraceMetadata(operator="Vodafone", country="Spain",
                                 carrier_name="n78-90", direction="DL",
                                 bandwidth_mhz=90.0, scs_khz=30, seed=7)
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng, metadata=metadata)
        recovered = read_csv(write_csv(trace, tmp_path / "meta.csv"))
        assert recovered.metadata.operator == "Vodafone"
        assert recovered.metadata.bandwidth_mhz == 90.0
        assert recovered.metadata.seed == 7

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("# mu=1\nslot,time_ms\n0,0.0\n")
        with pytest.raises(ValueError, match="missing trace column"):
            read_csv(path)

    def test_empty_trace_roundtrip(self, tmp_path):
        trace = SlotTrace.empty(0)
        recovered = read_csv(write_csv(trace, tmp_path / "empty.csv"))
        assert len(recovered) == 0


class TestJsonl:
    def test_roundtrip(self, sample_trace, tmp_path):
        path = write_jsonl(sample_trace, tmp_path / "trace.jsonl")
        recovered = read_jsonl(path)
        _assert_traces_equal(sample_trace, recovered)

    def test_mu_preserved(self, tmp_path):
        trace = SlotTrace.empty(10, mu=Numerology.MU_3)
        recovered = read_jsonl(write_jsonl(trace, tmp_path / "mu3.jsonl"))
        assert recovered.mu is Numerology.MU_3

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError):
            read_jsonl(path)

    def test_headerless_records_accepted(self, sample_trace, tmp_path):
        # A file with records but no metadata object still loads.
        path = write_jsonl(sample_trace, tmp_path / "t.jsonl")
        lines = path.read_text().splitlines()
        stripped = tmp_path / "noheader.jsonl"
        stripped.write_text("\n".join(lines[1:]) + "\n")
        recovered = read_jsonl(stripped)
        assert len(recovered) == len(sample_trace)
