"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.experiments import EXPERIMENT_IDS


class TestList:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENT_IDS)


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "eq32"]) == 0
        out = capsys.readouterr().out
        assert "eq32" in out
        assert "1213.44" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_seed_flag(self, capsys):
        assert main(["run", "table2", "--seed", "5"]) == 0
        assert "N_RB= 245" in capsys.readouterr().out


class TestCampaign:
    def test_summary_only(self, capsys):
        assert main(["campaign", "--minutes", "0.1", "--session", "3"]) == 0
        out = capsys.readouterr().out
        assert "minutes" in out

    def test_export(self, tmp_path, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--out", str(tmp_path)]) == 0
        assert "exported" in capsys.readouterr().out
        assert list(tmp_path.glob("*.csv"))

    def test_jobs_flag_matches_serial(self, tmp_path, capsys):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--jobs", "1", "--out", str(serial)]) == 0
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--jobs", "2", "--out", str(parallel)]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in serial.glob("*.csv"))
        assert names == sorted(p.name for p in parallel.glob("*.csv"))
        for name in names:
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()


class TestTopLevelApi:
    def test_package_exports(self):
        import repro

        assert repro.__version__
        assert "fig01" in repro.EXPERIMENT_IDS
        profile = repro.get_profile("V_Sp")
        assert profile.primary_cell.n_rb == 245
