"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main
from repro.experiments import EXPERIMENT_IDS


class TestList:
    def test_lists_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out.split()
        assert set(out) == set(EXPERIMENT_IDS)


class TestRun:
    def test_runs_cheap_experiment(self, capsys):
        assert main(["run", "eq32"]) == 0
        out = capsys.readouterr().out
        assert "eq32" in out
        assert "1213.44" in out

    def test_unknown_id_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_seed_flag(self, capsys):
        assert main(["run", "table2", "--seed", "5"]) == 0
        assert "N_RB= 245" in capsys.readouterr().out


class TestCampaign:
    def test_summary_only(self, capsys):
        assert main(["campaign", "--minutes", "0.1", "--session", "3"]) == 0
        out = capsys.readouterr().out
        assert "minutes" in out

    def test_export(self, tmp_path, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--out", str(tmp_path)]) == 0
        assert "exported" in capsys.readouterr().out
        assert list(tmp_path.glob("*.csv"))

    def test_jobs_flag_matches_serial(self, tmp_path, capsys):
        serial, parallel = tmp_path / "serial", tmp_path / "parallel"
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--jobs", "1", "--out", str(serial)]) == 0
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--jobs", "2", "--out", str(parallel)]) == 0
        capsys.readouterr()
        names = sorted(p.name for p in serial.glob("*.csv"))
        assert names == sorted(p.name for p in parallel.glob("*.csv"))
        for name in names:
            assert (serial / name).read_bytes() == (parallel / name).read_bytes()


class TestCampaignFlags:
    def test_ul_fraction_flag(self, tmp_path, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--ul-fraction", "1.0", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        names = [p.name for p in tmp_path.glob("*.csv")]
        assert names
        assert all("_ul_" in name for name in names)

    def test_out_format_flag(self, tmp_path, capsys):
        for fmt in ("jsonl", "npz"):
            out = tmp_path / fmt
            assert main(["campaign", "--minutes", "0.05", "--session", "3",
                         "--out", str(out), "--out-format", fmt]) == 0
            assert list(out.glob(f"*.{fmt}"))
        capsys.readouterr()


class TestCacheFlag:
    def test_run_warm_cache_hits_and_stdout_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["run", "eq32", "--cache", cache]) == 0
        cold = capsys.readouterr()
        assert main(["run", "eq32", "--cache", cache]) == 0
        warm = capsys.readouterr()
        assert "misses=0" in warm.err
        assert "hits=0" in cold.err

    def test_campaign_warm_cache_byte_identical_export(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        cold_dir, warm_dir = tmp_path / "cold", tmp_path / "warm"
        base = ["campaign", "--minutes", "0.05", "--session", "3", "--cache", cache]
        assert main(base + ["--out", str(cold_dir)]) == 0
        cold = capsys.readouterr()
        assert main(base + ["--out", str(warm_dir)]) == 0
        warm = capsys.readouterr()
        assert "misses=0" in warm.err and "hits=0" not in warm.err

        def summary(text):  # drop the "exported ... to DIR" line (paths differ)
            return [l for l in text.splitlines() if not l.startswith("exported")]

        assert summary(cold.out) == summary(warm.out)
        names = sorted(p.name for p in cold_dir.glob("*.csv"))
        assert names == sorted(p.name for p in warm_dir.glob("*.csv"))
        for name in names:
            assert (cold_dir / name).read_bytes() == (warm_dir / name).read_bytes()

    def test_cache_env_variable(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env-cache"))
        assert main(["campaign", "--minutes", "0.05", "--session", "3"]) == 0
        first = capsys.readouterr()
        assert "[cache]" in first.err
        assert main(["campaign", "--minutes", "0.05", "--session", "3"]) == 0
        assert "misses=0" in capsys.readouterr().err

    def test_no_cache_no_report(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["campaign", "--minutes", "0.05", "--session", "3"]) == 0
        assert "[cache]" not in capsys.readouterr().err


class TestExecutorPlumbing:
    def test_parallel_cached_run_reports_pool_and_bytes(self, tmp_path, capsys):
        base = ["campaign", "--minutes", "0.05", "--session", "3",
                "--jobs", "2", "--cache", str(tmp_path / "cache")]
        assert main(base) == 0
        cold = capsys.readouterr()
        assert "[pool]" in cold.err and "routed=" in cold.err
        assert "read_mb=" in cold.err and "written_mb=" in cold.err
        assert main(base) == 0
        warm = capsys.readouterr()
        assert "misses=0" in warm.err

    def test_serial_run_has_no_pool_line(self, tmp_path, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--cache", str(tmp_path / "cache")]) == 0
        assert "[pool]" not in capsys.readouterr().err


class TestBenchWorkloadFlag:
    def test_baseline_workload_mismatch_rejected(self, tmp_path, capsys):
        import json

        baseline = tmp_path / "BENCH_slot_engine.json"
        baseline.write_text(json.dumps({"bench": "slot_engine", "workloads": {}}))
        assert main(["bench", "--workload", "campaign", "--quick",
                     "--baseline", str(baseline)]) == 2
        assert "slot_engine" in capsys.readouterr().err

    def test_unknown_workload_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["bench", "--workload", "sessions"])

    def test_profile_flag_writes_artifacts_next_to_report(
            self, tmp_path, capsys, monkeypatch):
        from repro.core import bench

        report = {"bench": "slot_engine", "schema": bench.BENCH_SCHEMA_VERSION,
                  "quick": True, "workloads": {}}
        monkeypatch.setattr(bench, "measure", lambda **kwargs: report)
        monkeypatch.setattr(bench, "render", lambda r: "stub render")
        out = tmp_path / "BENCH_slot_engine.json"
        assert main(["bench", "--quick", "--profile",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert out.exists()
        assert (tmp_path / "BENCH_slot_engine.pstats").exists()
        table = (tmp_path / "BENCH_slot_engine.profile.txt").read_text()
        assert "cumtime" in table
        assert "BENCH_slot_engine.pstats" in printed


class TestCacheCommand:
    def _warm(self, cache, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--cache", cache]) == 0
        capsys.readouterr()

    def test_requires_store_dir(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert main(["cache", "stats"]) == 2
        assert "REPRO_CACHE" in capsys.readouterr().err

    def test_stats(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        assert main(["cache", "stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "quarantined" in out

    def test_stats_reports_tbs_matrix_cache(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        assert main(["cache", "stats", "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "tbs-matrix cache" in out
        assert "hit_rate=" in out

    def test_verify_clean_and_corrupt(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        self._warm(str(cache), capsys)
        assert main(["cache", "verify", "--cache", str(cache)]) == 0
        capsys.readouterr()
        victim = next((cache / "objects").rglob("*.npz"))
        victim.write_bytes(b"corrupt")
        assert main(["cache", "verify", "--cache", str(cache)]) == 1
        assert "quarantined" in capsys.readouterr().out

    def test_clear(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        assert main(["cache", "clear", "--cache", cache]) == 0
        assert "removed" in capsys.readouterr().out
        assert main(["cache", "stats", "--cache", cache]) == 0
        assert "0 entries" in capsys.readouterr().out

    def test_evict_needs_cap(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        assert main(["cache", "evict", "--cache", cache]) == 2
        assert "--max-mb" in capsys.readouterr().err
        assert main(["cache", "evict", "--cache", cache, "--max-mb", "0"]) == 0
        assert "evicted" in capsys.readouterr().out


class TestCacheJsonStats:
    def test_stats_json_machine_readable(self, tmp_path, capsys):
        import json

        cache = str(tmp_path / "cache")
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--cache", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", "--json", "--cache", cache]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["entries"] > 0
        assert document["root"] == cache
        assert set(document) == {"root", "entries", "total_bytes",
                                 "quarantined", "hits", "misses",
                                 "bytes_read", "bytes_written"}


class TestCacheRemoteCommands:
    def _warm(self, cache, capsys):
        assert main(["campaign", "--minutes", "0.05", "--session", "3",
                     "--cache", cache]) == 0
        capsys.readouterr()

    def test_remote_required(self, tmp_path, capsys):
        assert main(["cache", "push", "--cache", str(tmp_path / "c")]) == 2
        assert "--remote" in capsys.readouterr().err

    def test_unknown_scheme_rejected(self, tmp_path, capsys):
        assert main(["cache", "push", "--cache", str(tmp_path / "c"),
                     "--remote", "s3://bucket"]) == 2
        assert "unknown remote scheme" in capsys.readouterr().err

    def test_push_pull_round_trip_byte_identical(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        remote = str(tmp_path / "remote")
        assert main(["cache", "push", "--cache", cache, "--remote", remote]) == 0
        out = capsys.readouterr().out
        assert "pushed=" in out and "failed=0" in out

        other = tmp_path / "other"
        assert main(["cache", "pull", "--cache", str(other),
                     "--remote", remote]) == 0
        assert "pulled=" in capsys.readouterr().out
        ours = sorted((tmp_path / "cache" / "objects").rglob("*.npz"))
        theirs = sorted((other / "objects").rglob("*.npz"))
        assert [p.name for p in ours] == [p.name for p in theirs]
        for a, b in zip(ours, theirs):
            assert a.read_bytes() == b.read_bytes()

    def test_status_and_sync(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        self._warm(cache, capsys)
        remote = str(tmp_path / "remote")
        assert main(["cache", "status", "--cache", cache,
                     "--remote", remote]) == 0
        assert "local-only=" in capsys.readouterr().out
        assert main(["cache", "sync", "--cache", cache,
                     "--remote", remote]) == 0
        capsys.readouterr()
        assert main(["cache", "status", "--cache", cache,
                     "--remote", remote]) == 0
        assert "local-only=0" in capsys.readouterr().out


class TestSubmitCommand:
    def test_unreachable_daemon_fails_cleanly(self, capsys):
        assert main(["submit", "campaign", "--minutes", "0.05",
                     "--url", "http://127.0.0.1:9", "--timeout", "1"]) == 1
        assert "submit failed" in capsys.readouterr().err

    def test_submit_round_trip_against_daemon(self, tmp_path, capsys):
        from repro.serve import CampaignService, ServeDaemon
        from repro.store import TraceStore

        service = CampaignService(store=TraceStore(tmp_path / "cache"), jobs=1)
        with ServeDaemon(service, quiet=True) as daemon:
            args = ["submit", "campaign", "--minutes", "0.02",
                    "--session", "1", "--seed", "77", "--url", daemon.url]
            assert main(args) == 0
            cold = capsys.readouterr()
            assert "sessions:" in cold.out
            assert "computed=" in cold.err and "store_served=0" in cold.err
            assert main(args) == 0
            warm = capsys.readouterr()
            assert warm.out == cold.out  # stdout byte-identical warm vs cold
            assert "store_served=1" in warm.err
            assert main(["submit", "stats", "--url", daemon.url]) == 0
            stats = capsys.readouterr().out
            assert '"requests": 2' in stats


class TestTopLevelApi:
    def test_package_exports(self):
        import repro

        assert repro.__version__
        assert "fig01" in repro.EXPERIMENT_IDS
        profile = repro.get_profile("V_Sp")
        assert profile.primary_cell.n_rb == 245
