"""Tests for repro.operators.profiles — Tables 2/3 encodings."""

import pytest

from repro.nr.mcs import Modulation
from repro.operators.profiles import (
    ALL_PROFILES,
    EU_PROFILES,
    US_PROFILES,
    get_profile,
    mmwave_blockage,
    mmwave_profile,
)


class TestTable2Encoding:
    def test_eu_operator_set(self):
        assert set(EU_PROFILES) == {
            "O_Sp_100", "O_Sp_90", "V_Sp", "O_Fr", "S_Fr", "V_It", "T_Ge", "V_Ge",
        }

    def test_all_eu_on_n78_tdd_scs30(self):
        for profile in EU_PROFILES.values():
            cell = profile.primary_cell
            assert cell.band_name == "n78"
            assert cell.scs_khz == 30
            assert cell.is_tdd

    @pytest.mark.parametrize("key,bw,n_rb", [
        ("O_Sp_100", 100, 273), ("O_Sp_90", 90, 245), ("V_Sp", 90, 245),
        ("O_Fr", 90, 245), ("S_Fr", 80, 217), ("V_It", 80, 217),
        ("T_Ge", 90, 245), ("V_Ge", 80, 217),
    ])
    def test_eu_bandwidth_and_nrb(self, key, bw, n_rb):
        cell = EU_PROFILES[key].primary_cell
        assert cell.bandwidth_mhz == bw
        assert cell.n_rb == n_rb

    def test_no_eu_carrier_aggregation(self):
        for profile in EU_PROFILES.values():
            assert not profile.uses_ca

    def test_osp100_is_64qam(self):
        assert EU_PROFILES["O_Sp_100"].primary_cell.max_modulation is Modulation.QAM64
        assert EU_PROFILES["O_Sp_90"].primary_cell.max_modulation is Modulation.QAM256

    def test_tdd_patterns_match_sec43(self):
        assert EU_PROFILES["V_It"].primary_cell.tdd.pattern == "DDDDDDDSUU"
        assert EU_PROFILES["V_Ge"].primary_cell.tdd.pattern == "DDDSU"
        assert EU_PROFILES["O_Fr"].primary_cell.tdd.pattern == "DDDDDDDSUU"
        assert EU_PROFILES["T_Ge"].primary_cell.tdd.pattern == "DDDSU"

    def test_osp_deployment_density(self):
        # Appendix 10.3: Vodafone 3 gNBs, Orange 2 along the same route.
        assert EU_PROFILES["V_Sp"].n_gnb_sites == 3
        assert EU_PROFILES["O_Sp_100"].n_gnb_sites == 2


class TestTable3Encoding:
    def test_us_operator_set(self):
        assert set(US_PROFILES) == {"Tmb_US", "Vzw_US", "Att_US"}

    def test_tmobile_ca_structure(self):
        profile = US_PROFILES["Tmb_US"]
        assert profile.uses_ca
        bands = [c.band_name for c in profile.cells]
        assert bands == ["n41", "n41", "n25", "n25"]
        n_rbs = [c.n_rb for c in profile.cells]
        assert n_rbs == [273, 106, 51, 11]  # Table 3 row 7, verbatim

    def test_tmobile_n25_is_fdd(self):
        profile = US_PROFILES["Tmb_US"]
        assert profile.cells[2].tdd is None
        assert profile.cells[2].scs_khz == 15

    def test_tmobile_prefers_lte_ul(self):
        assert US_PROFILES["Tmb_US"].ul_nr_fraction == 0.0

    def test_att_single_carrier_40mhz(self):
        profile = US_PROFILES["Att_US"]
        assert not profile.uses_ca
        assert profile.primary_cell.bandwidth_mhz == 40
        assert profile.primary_cell.band_name == "n77"
        assert profile.primary_cell.n_rb == 106

    def test_verizon_c_band(self):
        profile = US_PROFILES["Vzw_US"]
        assert profile.primary_cell.band_name == "n77"
        assert profile.primary_cell.bandwidth_mhz == 60
        assert profile.primary_cell.n_rb == 162
        assert profile.uses_ca


class TestProfileApi:
    def test_get_profile(self):
        assert get_profile("V_Sp") is ALL_PROFILES["V_Sp"]
        with pytest.raises(KeyError, match="unknown operator"):
            get_profile("nope")

    def test_channels_apply_offsets(self):
        profile = get_profile("V_Sp")
        assert profile.ul_channel().mean_sinr_db == pytest.approx(
            profile.mean_sinr_db + profile.ul_sinr_offset_db)
        assert profile.dl_channel(2.0).mean_sinr_db == pytest.approx(
            profile.mean_sinr_db + 2.0)

    def test_sim_params_carry_rank_bias(self):
        profile = get_profile("O_Sp_100")
        params = profile.sim_params()
        assert params.rank_adapter.bias_db == profile.rank_bias_db

    def test_sim_params_overrides(self):
        params = get_profile("V_Sp").sim_params(cqi_noise_db=0.0)
        assert params.cqi_noise_db == 0.0

    def test_carrier_aggregation_roundtrip(self):
        ca = US_PROFILES["Tmb_US"].carrier_aggregation()
        assert ca.aggregate_bandwidth_mhz == 165.0

    def test_latency_model_settings(self):
        model = get_profile("V_It").latency_model()
        assert model.sr_based_ul
        assert model.pattern.pattern == "DDDDDDDSUU"

    def test_nsa_uplink_settings(self):
        nsa = get_profile("Tmb_US").nsa_uplink()
        assert nsa.nr_fraction == 0.0

    def test_total_bandwidth(self):
        assert get_profile("Tmb_US").total_bandwidth_mhz == 165.0

    def test_validation(self):
        from repro.operators.profiles import OperatorProfile

        with pytest.raises(ValueError):
            OperatorProfile(key="x", operator="x", country="x", city="x", cells=())


class TestMmwave:
    def test_profile_is_fr2(self):
        profile = mmwave_profile()
        assert all(c.fr2 for c in profile.cells)
        assert all(c.scs_khz == 120 for c in profile.cells)
        assert profile.total_bandwidth_mhz == 400.0

    def test_blockage_speed_scaling(self):
        process = mmwave_blockage(11.0)
        assert process.effective_rate_hz(11.0) > process.effective_rate_hz(1.4)

    def test_blockage_validation(self):
        with pytest.raises(ValueError):
            mmwave_blockage(-1.0)
