"""Tests for repro.operators.deployment and repro.operators.calibration."""

import numpy as np
import pytest

from repro.channel.mobility import Position
from repro.channel.model import GnbSite
from repro.operators.calibration import (
    estimate_dl_throughput_mbps,
    simulated_mean_dl_mbps,
    sinr_for_target_throughput,
)
from repro.operators.deployment import Deployment, spain_deployments
from repro.operators.profiles import EU_PROFILES


class TestDeployment:
    def test_spain_setup(self):
        vodafone, orange, route = spain_deployments(600.0)
        assert vodafone.n_sites == 3
        assert orange.n_sites == 2
        assert route.total_length_m == 600.0

    def test_orange_uses_100mhz_grid(self):
        _, orange, _ = spain_deployments()
        assert orange.n_rb == 273
        assert orange.bandwidth_mhz == 100.0

    def test_mean_site_distance(self):
        deployment = Deployment("d", sites=(GnbSite(Position(0, 0)), GnbSite(Position(100, 0))))
        positions = np.array([[0.0, 0.0], [50.0, 0.0], [100.0, 0.0]])
        assert deployment.mean_site_distance_m(positions) == pytest.approx(50.0 / 3)

    def test_denser_deployment_closer_sites(self):
        vodafone, orange, route = spain_deployments(600.0)
        positions = route.positions_at(np.linspace(0.0, route.duration_s, 100))
        assert vodafone.mean_site_distance_m(positions) < orange.mean_site_distance_m(positions)

    def test_channel_model_construction(self):
        vodafone, _, _ = spain_deployments()
        model = vodafone.channel_model()
        assert len(model.sites) == 3
        assert not model.los  # street-level NLOS

    def test_validation(self):
        with pytest.raises(ValueError):
            Deployment("empty", sites=())
        with pytest.raises(ValueError):
            spain_deployments(0.0)


class TestCalibration:
    def test_analytic_estimate_monotone_in_sinr(self):
        cell = EU_PROFILES["V_Sp"].primary_cell
        estimates = [estimate_dl_throughput_mbps(cell, s, 4.0) for s in (10.0, 18.0, 26.0)]
        assert estimates == sorted(estimates)

    def test_analytic_inverse_roundtrip(self):
        cell = EU_PROFILES["V_Sp"].primary_cell
        sinr = sinr_for_target_throughput(cell, 700.0, 4.0)
        recovered = estimate_dl_throughput_mbps(cell, sinr, 4.0)
        assert recovered == pytest.approx(700.0, rel=0.01)

    def test_inverse_rejects_impossible_target(self):
        cell = EU_PROFILES["V_Sp"].primary_cell
        with pytest.raises(ValueError, match="table maximum"):
            sinr_for_target_throughput(cell, 5000.0, 1.0)

    def test_estimate_capped_by_table(self):
        cell = EU_PROFILES["O_Sp_100"].primary_cell  # 64QAM ceiling
        at_30 = estimate_dl_throughput_mbps(cell, 30.0, 4.0)
        at_50 = estimate_dl_throughput_mbps(cell, 50.0, 4.0)
        assert at_30 == pytest.approx(at_50)

    def test_simulated_mean_tracks_profile(self):
        # The calibrated profiles should land near their Fig. 1 targets
        # even on a short run.
        measured = simulated_mean_dl_mbps(EU_PROFILES["V_Sp"], duration_s=6.0)
        assert measured == pytest.approx(743.0, rel=0.15)

    def test_validation(self):
        cell = EU_PROFILES["V_Sp"].primary_cell
        with pytest.raises(ValueError):
            estimate_dl_throughput_mbps(cell, 20.0, 0.5)
        with pytest.raises(ValueError):
            sinr_for_target_throughput(cell, -1.0, 2.0)
