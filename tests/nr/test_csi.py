"""Tests for repro.nr.csi — the appendix 10.2 feedback structures."""

import numpy as np
import pytest

from repro.nr.cqi import CQI_TABLE_2
from repro.nr.csi import CsiReport, CsiReporter, HarqFeedback
from repro.ran.amc import RankAdapter


class TestReportValidation:
    def test_valid(self):
        report = CsiReport(slot=0, rank_indicator=4, precoding_matrix_indicator=3,
                           channel_quality_indicator=12, layer_indicator=2)
        assert report.rank_indicator == 4

    def test_rank_bounds(self):
        with pytest.raises(ValueError):
            CsiReport(0, 0, 0, 10, 0)

    def test_cqi_bounds(self):
        with pytest.raises(ValueError):
            CsiReport(0, 2, 0, 16, 0)

    def test_li_within_rank(self):
        with pytest.raises(ValueError):
            CsiReport(0, 2, 0, 10, 2)


class TestReporter:
    @pytest.fixture
    def reporter(self):
        return CsiReporter(CQI_TABLE_2, RankAdapter(), period_slots=20)

    def test_good_channel_high_cqi_and_rank(self, reporter, rng):
        report = reporter.report(0, 28.0, rng)
        assert report.channel_quality_indicator >= 12
        assert report.rank_indicator == 4

    def test_poor_channel_low_cqi(self, reporter, rng):
        report = reporter.report(0, -5.0, rng)
        assert report.channel_quality_indicator <= 3
        assert report.rank_indicator == 1

    def test_rank_hysteresis_across_reports(self, rng):
        reporter = CsiReporter(CQI_TABLE_2, RankAdapter(hysteresis_db=2.0))
        reporter.report(0, 20.0, rng)          # climbs to rank 4
        held = reporter.report(20, 16.0, rng)  # within hysteresis: holds
        assert held.rank_indicator == 4
        reporter.reset()
        fresh = reporter.report(0, 16.0, rng)
        assert fresh.rank_indicator < 4

    def test_li_indexes_reported_rank(self, reporter, rng):
        for sinr in (-5.0, 8.0, 30.0):
            report = reporter.report(0, sinr, rng)
            assert 0 <= report.layer_indicator < report.rank_indicator

    def test_series_periodicity(self, reporter, rng):
        sinr = np.full(100, 20.0)
        reports = reporter.report_series(sinr, rng)
        assert [r.slot for r in reports] == [0, 20, 40, 60, 80]

    def test_validation(self):
        with pytest.raises(ValueError):
            CsiReporter(CQI_TABLE_2, period_slots=0)
        with pytest.raises(ValueError):
            CsiReporter(CQI_TABLE_2, n_precoders=0)


class TestFeedback:
    def test_fields(self):
        feedback = HarqFeedback(slot=12, harq_id=3, ack=False)
        assert not feedback.ack
