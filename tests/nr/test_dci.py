"""Tests for repro.nr.dci."""

import pytest

from repro.nr.dci import DciFormat, DownlinkGrant, format_for_conditions
from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM, Modulation


class TestFormats:
    def test_format_tables(self):
        assert DciFormat.FORMAT_1_1.mcs_table is MCS_TABLE_256QAM
        assert DciFormat.FORMAT_1_0.mcs_table is MCS_TABLE_64QAM

    def test_format_for_good_conditions(self):
        assert format_for_conditions(Modulation.QAM256, True) is DciFormat.FORMAT_1_1

    def test_fallback_when_conditions_worsen(self):
        # §3.1: DCI 1_0 when the channel degrades.
        assert format_for_conditions(Modulation.QAM256, False) is DciFormat.FORMAT_1_0

    def test_64qam_cell_always_1_0(self):
        assert format_for_conditions(Modulation.QAM64, True) is DciFormat.FORMAT_1_0
        assert format_for_conditions(Modulation.QAM64, False) is DciFormat.FORMAT_1_0


class TestGrant:
    def test_valid_grant(self):
        grant = DownlinkGrant(slot=10, n_prb=245, mcs_index=20, layers=4)
        assert grant.modulation is Modulation.QAM256
        assert grant.mcs.code_rate_x1024 == 682.5

    def test_grant_respects_format_table(self):
        grant = DownlinkGrant(slot=0, n_prb=100, mcs_index=28,
                              dci_format=DciFormat.FORMAT_1_0, layers=2)
        assert grant.modulation is Modulation.QAM64

    def test_mcs_out_of_table(self):
        with pytest.raises(ValueError, match="MCS"):
            DownlinkGrant(slot=0, n_prb=100, mcs_index=28, layers=2)  # 1_1 table max is 27

    def test_negative_prb(self):
        with pytest.raises(ValueError):
            DownlinkGrant(slot=0, n_prb=-1, mcs_index=0, layers=1)

    def test_bad_layers(self):
        with pytest.raises(ValueError):
            DownlinkGrant(slot=0, n_prb=10, mcs_index=0, layers=0)

    def test_retransmission_flags(self):
        grant = DownlinkGrant(slot=5, n_prb=50, mcs_index=3, layers=1, ndi=False, harq_id=7)
        assert not grant.ndi
        assert grant.harq_id == 7
