"""Tests for repro.nr.initial_access — the appendix 10.1 procedure."""

import pytest

from repro.nr.initial_access import (
    IdentifiedChannel,
    MasterInformationBlock,
    SystemInformationBlock1,
    channel_bandwidth_from_carrier_rb,
    identify_channel,
    sib1_for_channel,
)


class TestMib:
    def test_valid(self):
        mib = MasterInformationBlock(system_frame_number=512,
                                     control_resource_set_zero=4, search_space_zero=2)
        assert mib.system_frame_number == 512

    def test_sfn_bounds(self):
        with pytest.raises(ValueError):
            MasterInformationBlock(system_frame_number=1024)

    def test_coreset_bounds(self):
        with pytest.raises(ValueError):
            MasterInformationBlock(system_frame_number=0, control_resource_set_zero=16)


class TestSib1:
    def test_validation(self):
        with pytest.raises(ValueError):
            SystemInformationBlock1(-1, 0, 245)
        with pytest.raises(ValueError):
            SystemInformationBlock1(620000, -1, 245)
        with pytest.raises(ValueError):
            SystemInformationBlock1(620000, 0, 0)
        with pytest.raises(ValueError):
            SystemInformationBlock1(620000, 0, 245, scs_khz=45)


class TestBandwidthLookup:
    @pytest.mark.parametrize("n_rb,bw", [(273, 100), (245, 90), (217, 80), (162, 60), (106, 40)])
    def test_inverse_table(self, n_rb, bw):
        assert channel_bandwidth_from_carrier_rb(n_rb, 30) == bw

    def test_unknown_rb_count(self):
        with pytest.raises(ValueError, match="not a Table 5.3.2-1 row"):
            channel_bandwidth_from_carrier_rb(250, 30)


class TestIdentification:
    def test_roundtrip_n78(self):
        # A 90 MHz carrier centered at 3.6 GHz, like the Spanish channels.
        sib1 = sib1_for_channel(3600.0, 90, scs_khz=30)
        identified = identify_channel(sib1)
        assert identified.band.name == "n78"
        assert identified.channel_bandwidth_mhz == 90
        assert identified.n_rb == 245
        assert identified.center_frequency_mhz == pytest.approx(3600.0, abs=0.5)

    def test_prefers_narrowest_band(self):
        # 3.6 GHz lies in both n77 and n78; identification picks n78,
        # matching the paper's attribution of EU channels.
        identified = identify_channel(sib1_for_channel(3600.0, 100))
        assert identified.band.name == "n78"

    def test_upper_c_band_is_n77_only(self):
        # 3.9 GHz is outside n78 but inside n77 (AT&T/Verizon C-band).
        identified = identify_channel(sib1_for_channel(3900.0, 60))
        assert identified.band.name == "n77"

    def test_n41_channel(self):
        identified = identify_channel(sib1_for_channel(2550.0, 100))
        assert identified.band.name == "n41"

    def test_occupied_below_nominal(self):
        identified = identify_channel(sib1_for_channel(3600.0, 90))
        assert identified.occupied_bandwidth_mhz < identified.channel_bandwidth_mhz

    def test_orphan_frequency_rejected(self):
        sib1 = SystemInformationBlock1(
            absolute_frequency_point_a=100000,  # 500 MHz: no catalog band
            offset_to_carrier=0, carrier_bandwidth=245, scs_khz=30)
        with pytest.raises(ValueError, match="no catalog band"):
            identify_channel(sib1)

    def test_fdd_n25_roundtrip(self):
        sib1 = sib1_for_channel(1960.0, 20, scs_khz=15)
        identified = identify_channel(sib1)
        assert identified.band.name == "n25"
        assert identified.n_rb == 106  # Table 5.3.2-1 at 15 kHz
