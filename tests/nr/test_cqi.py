"""Tests for repro.nr.cqi — CQI tables and the vendor CQI->MCS mapping."""

import numpy as np
import pytest

from repro.nr.cqi import (
    CQI_MAX,
    CQI_TABLE_1,
    CQI_TABLE_2,
    CqiMcsMapper,
    CqiTable,
    MappingPolicy,
    cqi_table_for,
)
from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM, Modulation


class TestTables:
    def test_sizes(self):
        assert len(CQI_TABLE_1.entries) == 15
        assert len(CQI_TABLE_2.entries) == 15

    def test_spot_values_table1(self):
        assert CQI_TABLE_1[1].modulation is Modulation.QPSK
        assert CQI_TABLE_1[1].code_rate_x1024 == 78
        assert CQI_TABLE_1[15].modulation is Modulation.QAM64
        assert CQI_TABLE_1[15].code_rate_x1024 == 948

    def test_spot_values_table2(self):
        assert CQI_TABLE_2[12].modulation is Modulation.QAM256
        assert CQI_TABLE_2[12].code_rate_x1024 == 711
        assert CQI_TABLE_2[15].code_rate_x1024 == 948

    def test_efficiency_monotone(self):
        for table in (CQI_TABLE_1, CQI_TABLE_2):
            assert np.all(np.diff(table.efficiencies) > 0)

    def test_index_range(self):
        with pytest.raises(IndexError):
            CQI_TABLE_1[0]
        with pytest.raises(IndexError):
            CQI_TABLE_1[16]

    def test_table_for_modulation(self):
        assert cqi_table_for(Modulation.QAM256) is CQI_TABLE_2
        assert cqi_table_for(Modulation.QAM64) is CQI_TABLE_1

    def test_cqi_for_efficiency(self):
        # The exact efficiency of CQI 7 maps back to CQI 7.
        eff = CQI_TABLE_2[7].spectral_efficiency
        assert CQI_TABLE_2.cqi_for_efficiency(eff) == 7
        assert CQI_TABLE_2.cqi_for_efficiency(0.0) == 0  # out of range
        assert CQI_TABLE_2.cqi_for_efficiency(100.0) == 15

    def test_wrong_size_rejected(self):
        with pytest.raises(ValueError):
            CqiTable("bad", list(CQI_TABLE_1.entries[:10]))


class TestMapper:
    @pytest.fixture
    def mapper(self):
        return CqiMcsMapper(CQI_TABLE_2, MCS_TABLE_256QAM)

    def test_monotone_in_cqi(self, mapper):
        mcs = [mapper.mcs_for_cqi(c) for c in range(1, 16)]
        assert mcs == sorted(mcs)

    def test_cqi_zero_degrades(self, mapper):
        assert mapper.mcs_for_cqi(0) == 0

    def test_cqi_out_of_range(self, mapper):
        with pytest.raises(ValueError):
            mapper.mcs_for_cqi(16)

    def test_high_cqi_reaches_256qam_rows(self, mapper):
        mcs = mapper.mcs_for_cqi(15)
        assert MCS_TABLE_256QAM[mcs].modulation is Modulation.QAM256

    def test_efficiency_never_exceeds_cqi(self, mapper):
        # MATCHED policy: the chosen MCS efficiency stays at or below the
        # CQI-reported efficiency, except when clamped at index 0 (CQI 1
        # reports below even the weakest MCS).
        for cqi in range(1, 16):
            mcs = mapper.mcs_for_cqi(cqi)
            if mcs == 0:
                continue
            assert (MCS_TABLE_256QAM[mcs].spectral_efficiency
                    <= CQI_TABLE_2[cqi].spectral_efficiency + 1e-9)

    def test_policies_order(self):
        conservative = CqiMcsMapper(CQI_TABLE_2, MCS_TABLE_256QAM, MappingPolicy.CONSERVATIVE)
        matched = CqiMcsMapper(CQI_TABLE_2, MCS_TABLE_256QAM, MappingPolicy.MATCHED)
        aggressive = CqiMcsMapper(CQI_TABLE_2, MCS_TABLE_256QAM, MappingPolicy.AGGRESSIVE)
        for cqi in range(2, 15):
            assert conservative.mcs_for_cqi(cqi) <= matched.mcs_for_cqi(cqi) <= aggressive.mcs_for_cqi(cqi)

    def test_olla_offset_shifts(self, mapper):
        base = mapper.mcs_for_cqi(10)
        assert mapper.mcs_for_cqi(10, olla_offset=-3) == max(0, base - 3)
        assert mapper.mcs_for_cqi(10, olla_offset=2) == min(MCS_TABLE_256QAM.max_index, base + 2)

    def test_olla_clamps(self, mapper):
        assert mapper.mcs_for_cqi(1, olla_offset=-100) == 0
        assert mapper.mcs_for_cqi(15, olla_offset=100) == MCS_TABLE_256QAM.max_index

    def test_vectorized_matches_scalar(self, mapper):
        cqis = np.array([0, 1, 5, 10, 15])
        vector = mapper.mcs_for_cqi_array(cqis)
        scalar = [mapper.mcs_for_cqi(int(c)) for c in cqis]
        assert vector.tolist() == scalar

    def test_vectorized_with_offset(self, mapper):
        cqis = np.array([5, 10])
        shifted = mapper.mcs_for_cqi_array(cqis, olla_offset=-2)
        base = mapper.mcs_for_cqi_array(cqis)
        assert np.all(shifted == np.maximum(base - 2, 0))

    def test_mapper_on_64qam_table(self):
        mapper = CqiMcsMapper(CQI_TABLE_1, MCS_TABLE_64QAM)
        assert mapper.mcs_for_cqi(15) == MCS_TABLE_64QAM.max_index
