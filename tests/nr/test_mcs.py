"""Tests for repro.nr.mcs — the TS 38.214 MCS tables."""

import numpy as np
import pytest

from repro.nr.mcs import (
    MCS_TABLE_64QAM,
    MCS_TABLE_256QAM,
    McsEntry,
    Modulation,
    table_for_max_modulation,
)


class TestModulation:
    def test_orders(self):
        assert Modulation.QPSK.bits_per_symbol == 2
        assert Modulation.QAM16.bits_per_symbol == 4
        assert Modulation.QAM64.bits_per_symbol == 6
        assert Modulation.QAM256.bits_per_symbol == 8

    def test_from_order(self):
        assert Modulation.from_order(8) is Modulation.QAM256
        with pytest.raises(ValueError):
            Modulation.from_order(3)


class TestTableContents:
    def test_table_sizes(self):
        # 29 usable rows in the 64QAM table, 28 in the 256QAM table.
        assert len(MCS_TABLE_64QAM) == 29
        assert len(MCS_TABLE_256QAM) == 28

    def test_spot_values_64qam(self):
        # TS 38.214 Table 5.1.3.1-1 spot checks.
        assert MCS_TABLE_64QAM[0].modulation is Modulation.QPSK
        assert MCS_TABLE_64QAM[0].code_rate_x1024 == 120
        assert MCS_TABLE_64QAM[10].modulation is Modulation.QAM16
        assert MCS_TABLE_64QAM[17].modulation is Modulation.QAM64
        assert MCS_TABLE_64QAM[28].code_rate_x1024 == 948

    def test_spot_values_256qam(self):
        # TS 38.214 Table 5.1.3.1-2 spot checks.
        assert MCS_TABLE_256QAM[20].modulation is Modulation.QAM256
        assert MCS_TABLE_256QAM[20].code_rate_x1024 == 682.5
        assert MCS_TABLE_256QAM[27].code_rate_x1024 == 948

    def test_efficiency_nearly_monotone(self):
        # Efficiencies rise overall but dip slightly at modulation
        # transitions (a property of the real tables).
        for table in (MCS_TABLE_64QAM, MCS_TABLE_256QAM):
            eff = table.efficiencies
            assert np.all(np.diff(eff) > -0.05)
            assert eff[-1] == eff.max()

    def test_max_efficiencies(self):
        # 64QAM tops out at 6 * 948/1024 ~ 5.55 bits/RE.
        assert MCS_TABLE_64QAM.efficiencies[-1] == pytest.approx(6 * 948 / 1024)
        assert MCS_TABLE_256QAM.efficiencies[-1] == pytest.approx(8 * 948 / 1024)

    def test_code_rate_fraction(self):
        entry = MCS_TABLE_256QAM[27]
        assert entry.code_rate == pytest.approx(948 / 1024)

    def test_max_code_rate(self):
        assert MCS_TABLE_256QAM.max_code_rate == pytest.approx(948 / 1024)


class TestLookups:
    def test_index_bounds(self):
        with pytest.raises(IndexError):
            MCS_TABLE_64QAM[29]
        with pytest.raises(IndexError):
            MCS_TABLE_64QAM[-1]

    def test_highest_index_below(self):
        table = MCS_TABLE_256QAM
        # Exactly at an entry's efficiency selects that entry.
        idx = table.highest_index_below(table.efficiencies[10])
        assert idx == 10

    def test_highest_index_below_clamps_low(self):
        assert MCS_TABLE_256QAM.highest_index_below(0.0) == 0

    def test_highest_index_below_clamps_high(self):
        assert MCS_TABLE_256QAM.highest_index_below(100.0) == MCS_TABLE_256QAM.max_index

    def test_indices_for_modulation(self):
        qam256_rows = MCS_TABLE_256QAM.indices_for_modulation(Modulation.QAM256)
        assert qam256_rows == list(range(20, 28))

    def test_table_for_max_modulation(self):
        assert table_for_max_modulation(Modulation.QAM256) is MCS_TABLE_256QAM
        assert table_for_max_modulation(Modulation.QAM64) is MCS_TABLE_64QAM
        with pytest.raises(ValueError):
            table_for_max_modulation(Modulation.QAM16)

    def test_empty_table_rejected(self):
        from repro.nr.mcs import McsTable

        with pytest.raises(ValueError):
            McsTable("empty", [], Modulation.QAM64)
