"""Tests for repro.nr.signal — SINR/CQI/RSRP/RSRQ relations."""

import numpy as np
import pytest

from repro.nr.cqi import CQI_TABLE_2
from repro.nr.signal import (
    cqi_to_min_sinr_db,
    db_to_linear,
    linear_to_db,
    noise_power_dbm,
    rsrp_from_pathloss,
    rsrq_from_sinr,
    shannon_efficiency,
    sinr_from_rsrq,
    sinr_to_cqi,
)


class TestConversions:
    def test_db_linear_roundtrip(self):
        for value in (-20.0, 0.0, 3.0, 30.0):
            assert linear_to_db(db_to_linear(value)) == pytest.approx(value)

    def test_known_points(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)
        assert db_to_linear(10.0) == pytest.approx(10.0)
        assert float(linear_to_db(100.0)) == pytest.approx(20.0)


class TestShannonChain:
    def test_efficiency_monotone(self):
        eff = shannon_efficiency(np.array([-5.0, 0.0, 10.0, 20.0, 30.0]))
        assert np.all(np.diff(eff) > 0)

    def test_alpha_scales(self):
        assert shannon_efficiency(10.0, alpha=0.5) == pytest.approx(
            0.5 / 0.65 * float(shannon_efficiency(10.0, alpha=0.65)))

    def test_sinr_to_cqi_range(self):
        cqi = sinr_to_cqi(np.array([-20.0, 0.0, 15.0, 40.0]), CQI_TABLE_2)
        assert cqi.min() >= 0
        assert cqi.max() <= 15
        assert np.all(np.diff(cqi) >= 0)

    def test_very_low_sinr_out_of_range(self):
        assert int(sinr_to_cqi(-20.0, CQI_TABLE_2)) == 0

    def test_very_high_sinr_max_cqi(self):
        assert int(sinr_to_cqi(40.0, CQI_TABLE_2)) == 15

    def test_inverse_consistency(self):
        # The minimum SINR for a CQI maps back to at least that CQI.
        for cqi in (3, 8, 12, 15):
            sinr = cqi_to_min_sinr_db(cqi, CQI_TABLE_2)
            assert int(sinr_to_cqi(sinr + 1e-6, CQI_TABLE_2)) >= cqi

    def test_inverse_validation(self):
        with pytest.raises(ValueError):
            cqi_to_min_sinr_db(0, CQI_TABLE_2)


class TestNoise:
    def test_noise_grows_with_bandwidth(self):
        narrow = noise_power_dbm(20e6)
        wide = noise_power_dbm(100e6)
        assert wide > narrow
        assert wide - narrow == pytest.approx(10 * np.log10(5), abs=0.01)

    def test_reference_value(self):
        # -174 + 10log10(1e6) + 9 = -105 dBm over 1 MHz with NF 9.
        assert noise_power_dbm(1e6) == pytest.approx(-105.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            noise_power_dbm(0.0)


class TestRsrp:
    def test_rsrp_splits_power_per_re(self):
        rsrp = rsrp_from_pathloss(44.0, 100.0, n_rb=273, antenna_gain_db=0.0)
        expected = 44.0 - 10 * np.log10(12 * 273) - 100.0
        assert float(rsrp) == pytest.approx(expected)

    def test_rsrp_vectorized(self):
        out = rsrp_from_pathloss(44.0, np.array([90.0, 100.0, 110.0]), n_rb=245)
        assert np.all(np.diff(out) < 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            rsrp_from_pathloss(44.0, 100.0, n_rb=0)


class TestRsrq:
    def test_full_load_ceiling(self):
        # RSRQ saturates at -10log10(12) ~ -10.79 dB under full load.
        assert float(rsrq_from_sinr(60.0, load=1.0)) == pytest.approx(-10.79, abs=0.05)

    def test_monotone_in_sinr(self):
        rsrq = rsrq_from_sinr(np.array([-5.0, 0.0, 10.0, 25.0]))
        assert np.all(np.diff(rsrq) > 0)

    def test_scouting_threshold_region(self):
        # §2: RSRQ > -12 dB marks "good" coverage; a strong channel
        # qualifies, a 0 dB SINR channel does not.
        assert float(rsrq_from_sinr(20.0)) > -12.0
        assert float(rsrq_from_sinr(0.0)) < -12.0

    def test_roundtrip(self):
        for sinr in (2.0, 8.0, 15.0):
            rsrq = rsrq_from_sinr(sinr, load=0.8)
            assert float(sinr_from_rsrq(rsrq, load=0.8)) == pytest.approx(sinr, abs=1e-6)

    def test_load_validation(self):
        with pytest.raises(ValueError):
            rsrq_from_sinr(10.0, load=0.0)
        with pytest.raises(ValueError):
            rsrq_from_sinr(10.0, load=1.5)

    def test_inverse_rejects_impossible(self):
        with pytest.raises(ValueError):
            sinr_from_rsrq(-5.0, load=1.0)  # above the full-load ceiling
