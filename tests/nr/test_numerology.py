"""Tests for repro.nr.numerology."""

import pytest

from repro.nr.numerology import (
    Numerology,
    SlotClock,
    slot_duration_ms,
    slots_per_frame,
    slots_per_second,
    slots_per_subframe,
    symbol_duration_s,
)


class TestNumerology:
    def test_scs_values(self):
        assert Numerology.MU_0.scs_khz == 15
        assert Numerology.MU_1.scs_khz == 30
        assert Numerology.MU_2.scs_khz == 60
        assert Numerology.MU_3.scs_khz == 120

    def test_from_scs(self):
        assert Numerology.from_scs_khz(30) is Numerology.MU_1
        assert Numerology.from_scs_khz(120) is Numerology.MU_3

    def test_from_scs_rejects_unknown(self):
        with pytest.raises(ValueError, match="unsupported SCS"):
            Numerology.from_scs_khz(45)

    def test_roundtrip_all(self):
        for mu in Numerology:
            assert Numerology.from_scs_khz(mu.scs_khz) is mu


class TestSlotTiming:
    def test_midband_slot_is_half_ms(self):
        # The paper's finest granularity: 0.5 ms slots at 30 kHz SCS.
        assert slot_duration_ms(Numerology.MU_1) == 0.5

    def test_fr2_slot_is_eighth_ms(self):
        assert slot_duration_ms(Numerology.MU_3) == 0.125

    def test_slots_per_subframe_doubles(self):
        assert slots_per_subframe(Numerology.MU_0) == 1
        assert slots_per_subframe(Numerology.MU_1) == 2
        assert slots_per_subframe(Numerology.MU_3) == 8

    def test_slots_per_frame(self):
        assert slots_per_frame(Numerology.MU_1) == 20

    def test_slots_per_second(self):
        assert slots_per_second(Numerology.MU_1) == 2000
        assert slots_per_second(Numerology.MU_3) == 8000

    def test_symbol_duration_formula(self):
        # T_s = 1e-3 / (14 * 2^mu), the §3.2 formula term.
        assert symbol_duration_s(Numerology.MU_1) == pytest.approx(1e-3 / 28)
        assert symbol_duration_s(Numerology.MU_0) == pytest.approx(1e-3 / 14)


class TestSlotClock:
    def test_time_of_slot(self):
        clock = SlotClock(Numerology.MU_1)
        assert clock.time_ms(0) == 0.0
        assert clock.time_ms(7) == 3.5

    def test_frame_slot_coordinates(self):
        clock = SlotClock(Numerology.MU_1)
        assert clock.frame_slot(0) == (0, 0)
        assert clock.frame_slot(20) == (1, 0)
        assert clock.frame_slot(25) == (1, 5)

    def test_slot_at_time(self):
        clock = SlotClock(Numerology.MU_1)
        assert clock.slot_at_time_ms(0.0) == 0
        assert clock.slot_at_time_ms(0.49) == 0
        assert clock.slot_at_time_ms(0.5) == 1
        assert clock.slot_at_time_ms(10.25) == 20

    def test_rejects_negative(self):
        clock = SlotClock(Numerology.MU_1)
        with pytest.raises(ValueError):
            clock.time_ms(-1)
        with pytest.raises(ValueError):
            clock.slot_at_time_ms(-0.1)
        with pytest.raises(ValueError):
            clock.frame_slot(-5)
