"""Tests for repro.nr.harq."""

import pytest

from repro.nr.harq import HarqEntity, HarqProcess, HarqStats


class TestProcess:
    def test_start_and_ack(self):
        process = HarqProcess(0)
        process.start(slot=10, tbs_bits=1000)
        assert process.active
        assert process.attempts == 1
        assert process.complete() == 1000
        assert not process.active

    def test_retransmit_tracks_attempts(self):
        process = HarqProcess(1)
        process.start(5, 500)
        process.retransmit(13)
        assert process.attempts == 2
        assert process.last_tx_slot == 13
        assert process.first_tx_slot == 5

    def test_retransmit_requires_active(self):
        process = HarqProcess(2)
        with pytest.raises(RuntimeError):
            process.retransmit(10)

    def test_retransmit_must_advance(self):
        process = HarqProcess(3)
        process.start(10, 100)
        with pytest.raises(ValueError):
            process.retransmit(10)

    def test_negative_tbs(self):
        process = HarqProcess(4)
        with pytest.raises(ValueError):
            process.start(0, -1)

    def test_complete_idle_returns_zero(self):
        assert HarqProcess(5).complete() == 0


class TestEntity:
    def test_successful_transmit_delivers(self):
        entity = HarqEntity()
        bits, harq_id = entity.transmit(slot=0, tbs_bits=2000, decoded=True)
        assert bits == 2000
        assert harq_id == 0
        assert entity.busy_processes == 0

    def test_failed_transmit_queues_retx(self):
        entity = HarqEntity(rtt_slots=8)
        bits, harq_id = entity.transmit(slot=0, tbs_bits=2000, decoded=False)
        assert bits == 0
        assert entity.busy_processes == 1
        assert entity.retransmissions_due(7) == []
        due = entity.retransmissions_due(8)
        assert len(due) == 1
        assert due[0].process_id == harq_id

    def test_retransmit_success_delivers(self):
        entity = HarqEntity(rtt_slots=4)
        entity.transmit(0, 1500, decoded=False)
        process = entity.retransmissions_due(4)[0]
        bits = entity.retransmit(process, 4, decoded=True)
        assert bits == 1500
        assert entity.busy_processes == 0
        assert entity.stats.retransmissions == 1

    def test_max_attempts_drops_block(self):
        entity = HarqEntity(rtt_slots=2, max_attempts=2)
        entity.transmit(0, 999, decoded=False)
        process = entity.retransmissions_due(2)[0]
        bits = entity.retransmit(process, 2, decoded=False)
        assert bits == 0
        assert entity.stats.residual_failures == 1
        assert entity.busy_processes == 0
        assert entity.retransmissions_due(100) == []

    def test_all_processes_busy_drops_opportunity(self):
        entity = HarqEntity(num_processes=1, rtt_slots=100)
        entity.transmit(0, 100, decoded=False)
        bits, harq_id = entity.transmit(1, 100, decoded=True)
        assert bits == 0
        assert harq_id == -1

    def test_stats_bler(self):
        stats = HarqStats(initial_tx=90, retransmissions=10)
        assert stats.bler == pytest.approx(0.1)
        assert stats.initial_bler == pytest.approx(10 / 90)

    def test_stats_empty(self):
        assert HarqStats().bler == 0.0
        assert HarqStats().initial_bler == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HarqEntity(num_processes=0)
        with pytest.raises(ValueError):
            HarqEntity(rtt_slots=0)
