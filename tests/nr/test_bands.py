"""Tests for repro.nr.bands."""

import pytest

from repro.nr.bands import (
    BAND_CATALOG,
    Band,
    Duplexing,
    FrequencyRange,
    arfcn_to_frequency_mhz,
    bands_containing,
    frequency_mhz_to_arfcn,
)


class TestCatalog:
    def test_n78_is_the_european_band(self):
        band = BAND_CATALOG["n78"]
        assert band.f_low_mhz == 3300.0
        assert band.f_high_mhz == 3800.0
        assert band.duplexing is Duplexing.TDD

    def test_n78_is_subset_of_n77(self):
        n77, n78 = BAND_CATALOG["n77"], BAND_CATALOG["n78"]
        assert n77.f_low_mhz <= n78.f_low_mhz
        assert n78.f_high_mhz <= n77.f_high_mhz

    def test_n25_is_fdd_with_separate_uplink(self):
        band = BAND_CATALOG["n25"]
        assert band.duplexing is Duplexing.FDD
        assert band.ul_low_mhz == 1850.0
        assert band.ul_high_mhz == 1915.0

    def test_n41_range(self):
        band = BAND_CATALOG["n41"]
        assert (band.f_low_mhz, band.f_high_mhz) == (2496.0, 2690.0)

    def test_fr2_bands_are_mmwave(self):
        for name in ("n260", "n261"):
            band = BAND_CATALOG[name]
            assert band.fr is FrequencyRange.FR2
            assert band.f_low_mhz > 24000.0

    def test_mid_band_classification(self):
        assert BAND_CATALOG["n78"].is_mid_band
        assert BAND_CATALOG["n41"].is_mid_band
        assert BAND_CATALOG["n25"].is_mid_band
        assert not BAND_CATALOG["n260"].is_mid_band

    def test_band_validation(self):
        with pytest.raises(ValueError, match="f_high"):
            Band("bad", 100.0, 90.0, Duplexing.TDD, FrequencyRange.FR1)
        with pytest.raises(ValueError, match="uplink edges"):
            Band("bad", 100.0, 200.0, Duplexing.FDD, FrequencyRange.FR1)

    def test_contains(self):
        assert BAND_CATALOG["n78"].contains(3500.0)
        assert not BAND_CATALOG["n78"].contains(3900.0)

    def test_bands_containing(self):
        names = {b.name for b in bands_containing(3500.0)}
        assert names == {"n77", "n78"}


class TestArfcn:
    def test_low_raster(self):
        # 5 kHz raster below 3 GHz.
        assert arfcn_to_frequency_mhz(0) == 0.0
        assert arfcn_to_frequency_mhz(400000) == pytest.approx(2000.0)

    def test_mid_raster(self):
        # 15 kHz raster above 3 GHz: n78 center around 3.5 GHz.
        assert arfcn_to_frequency_mhz(600000) == pytest.approx(3000.0)
        assert arfcn_to_frequency_mhz(633333) == pytest.approx(3499.995)

    def test_high_raster(self):
        assert arfcn_to_frequency_mhz(2016667) == pytest.approx(24250.08)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            arfcn_to_frequency_mhz(3279166)
        with pytest.raises(ValueError):
            arfcn_to_frequency_mhz(-1)

    @pytest.mark.parametrize("freq", [700.0, 1900.0, 2500.0, 3500.0, 3700.0, 28000.0, 39000.0])
    def test_roundtrip(self, freq):
        arfcn = frequency_mhz_to_arfcn(freq)
        recovered = arfcn_to_frequency_mhz(arfcn)
        # Within one raster step of the requested frequency.
        assert abs(recovered - freq) <= 0.06

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            frequency_mhz_to_arfcn(-10.0)
