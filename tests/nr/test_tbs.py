"""Tests for repro.nr.tbs — TS 38.214 §5.1.3.2 transport block sizes."""

import pytest

from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM
from repro.nr.tbs import (
    MAX_RE_PER_PRB,
    TBS_TABLE_5_1_3_2_1,
    tbs_lookup_matrix,
    transport_block_size,
    usable_re_per_prb,
)


class TestReAccounting:
    def test_full_slot_capped_at_156(self):
        # 12 * 14 - 12 DMRS = 156, exactly the cap.
        assert usable_re_per_prb(14) == 156
        assert MAX_RE_PER_PRB == 156

    def test_no_dmrs_still_capped(self):
        assert usable_re_per_prb(14, dmrs_re_per_prb=0) == 156

    def test_partial_slot(self):
        assert usable_re_per_prb(6, dmrs_re_per_prb=12) == 60

    def test_validation(self):
        with pytest.raises(ValueError):
            usable_re_per_prb(0)
        with pytest.raises(ValueError):
            usable_re_per_prb(15)
        with pytest.raises(ValueError):
            usable_re_per_prb(1, dmrs_re_per_prb=13)


class TestReferenceTable:
    def test_length(self):
        assert len(TBS_TABLE_5_1_3_2_1) == 93

    def test_bounds(self):
        assert TBS_TABLE_5_1_3_2_1[0] == 24
        assert TBS_TABLE_5_1_3_2_1[-1] == 3824

    def test_sorted_unique(self):
        values = list(TBS_TABLE_5_1_3_2_1)
        assert values == sorted(set(values))


class TestTransportBlockSize:
    def test_zero_prb(self):
        assert transport_block_size(0, MCS_TABLE_256QAM[10], 2) == 0

    def test_small_block_from_table(self):
        # A tiny allocation lands in Table 5.1.3.2-1.
        tbs = transport_block_size(1, MCS_TABLE_64QAM[0], 1)
        assert tbs in TBS_TABLE_5_1_3_2_1

    def test_small_block_covers_n_info(self):
        # The chosen table TBS is >= the quantized information size.
        entry = MCS_TABLE_64QAM[5]
        tbs = transport_block_size(2, entry, 1)
        n_info = 2 * 156 * entry.code_rate * entry.modulation.bits_per_symbol
        assert tbs >= 0.9 * n_info

    def test_large_block_byte_aligned(self):
        tbs = transport_block_size(245, MCS_TABLE_256QAM[27], 4)
        assert (tbs + 24) % 8 == 0
        assert tbs > 1_000_000  # ~1.15 Mb per slot at full blast

    def test_monotone_in_prbs(self):
        entry = MCS_TABLE_256QAM[15]
        sizes = [transport_block_size(n, entry, 2) for n in (10, 50, 100, 200, 273)]
        assert sizes == sorted(sizes)

    def test_monotone_in_mcs(self):
        sizes = [transport_block_size(100, MCS_TABLE_256QAM[i], 2) for i in range(0, 28, 3)]
        assert sizes == sorted(sizes)

    def test_monotone_in_layers(self):
        entry = MCS_TABLE_256QAM[20]
        sizes = [transport_block_size(100, entry, layers) for layers in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        # 4 layers carry roughly 4x the single-layer bits.
        assert sizes[3] == pytest.approx(4 * sizes[0], rel=0.05)

    def test_partial_symbols_reduce_tbs(self):
        entry = MCS_TABLE_256QAM[20]
        full = transport_block_size(100, entry, 4, symbols=14)
        special = transport_block_size(100, entry, 4, symbols=6)
        assert special < full

    def test_tbs_close_to_nominal_rate(self):
        # TBS ~ N_RE * R * Qm * v within quantization slack.
        entry = MCS_TABLE_256QAM[27]
        tbs = transport_block_size(245, entry, 4)
        nominal = 245 * 156 * entry.code_rate * 8 * 4
        assert tbs == pytest.approx(nominal, rel=0.02)

    def test_validation(self):
        entry = MCS_TABLE_256QAM[0]
        with pytest.raises(ValueError):
            transport_block_size(-1, entry, 1)
        with pytest.raises(ValueError):
            transport_block_size(10, entry, 0)
        with pytest.raises(ValueError):
            transport_block_size(10, entry, 9)


class TestLookupMatrix:
    def test_shape(self):
        matrix = tbs_lookup_matrix(MCS_TABLE_256QAM, 245, max_layers=4)
        assert matrix.shape == (28, 4)

    def test_matches_direct_computation(self):
        matrix = tbs_lookup_matrix(MCS_TABLE_256QAM, 100, max_layers=4)
        assert matrix[20, 3] == transport_block_size(100, MCS_TABLE_256QAM[20], 4)
        assert matrix[0, 0] == transport_block_size(100, MCS_TABLE_256QAM[0], 1)

    def test_monotone_rows_and_columns(self):
        matrix = tbs_lookup_matrix(MCS_TABLE_64QAM, 150, max_layers=4)
        assert (matrix[1:] >= matrix[:-1]).all()
        assert (matrix[:, 1:] >= matrix[:, :-1]).all()
