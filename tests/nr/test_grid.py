"""Tests for repro.nr.grid — the N_RB tables behind Tables 2/3 row 7."""

import pytest

from repro.nr.grid import (
    guard_band_mhz,
    max_rb,
    re_per_slot,
    spectral_efficiency_ceiling,
    transmission_bandwidth_mhz,
    valid_bandwidths_mhz,
)


class TestMaxRb:
    @pytest.mark.parametrize(
        "bw,expected",
        [(100, 273), (90, 245), (80, 217), (60, 162), (40, 106), (20, 51), (5, 11)],
    )
    def test_paper_table_values_scs30(self, bw, expected):
        # Exactly the N_RB row of the paper's Tables 2 and 3.
        assert max_rb(bw, 30) == expected

    def test_scs15_values(self):
        assert max_rb(20, 15) == 106
        assert max_rb(10, 15) == 52
        assert max_rb(5, 15) == 25

    def test_fr2_values(self):
        assert max_rb(100, 120, fr2=True) == 66
        assert max_rb(400, 120, fr2=True) == 264

    def test_unknown_scs(self):
        with pytest.raises(ValueError, match="SCS"):
            max_rb(100, 45)

    def test_unknown_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            max_rb(85, 30)

    def test_fr2_scs_not_in_fr1(self):
        with pytest.raises(ValueError):
            max_rb(100, 120, fr2=False)


class TestDerivedQuantities:
    def test_transmission_bandwidth_below_channel(self):
        for bw in valid_bandwidths_mhz(30):
            occupied = transmission_bandwidth_mhz(max_rb(bw, 30), 30)
            assert occupied < bw

    def test_guard_band_positive_and_small(self):
        for bw in valid_bandwidths_mhz(30):
            guard = guard_band_mhz(bw, 30)
            # Narrow channels pay proportionally more guard band (a 5 MHz
            # channel gives up ~21%); wide ones a few percent.
            assert 0 < guard < 0.25 * bw

    def test_re_per_slot_full(self):
        # 273 RB x 12 subcarriers x 14 symbols.
        assert re_per_slot(273) == 273 * 12 * 14

    def test_re_per_slot_partial_symbols(self):
        assert re_per_slot(100, symbols=6) == 100 * 12 * 6

    def test_re_per_slot_validation(self):
        with pytest.raises(ValueError):
            re_per_slot(-1)
        with pytest.raises(ValueError):
            re_per_slot(10, symbols=15)

    def test_efficiency_ceiling_increases_with_bandwidth(self):
        # Wider channels waste proportionally less on guard bands.
        ceilings = [spectral_efficiency_ceiling(30, bw) for bw in (20, 50, 100)]
        assert ceilings == sorted(ceilings)

    def test_transmission_bandwidth_validation(self):
        with pytest.raises(ValueError):
            transmission_bandwidth_mhz(0, 30)

    def test_valid_bandwidths_sorted(self):
        values = valid_bandwidths_mhz(30)
        assert values == sorted(values)
        assert 100 in values

    def test_valid_bandwidths_unknown_scs_empty(self):
        assert valid_bandwidths_mhz(45) == []
