"""Tests for repro.nr.tdd — the frame structures driving §4.2/§4.3."""

import numpy as np
import pytest

from repro.nr.numerology import Numerology
from repro.nr.tdd import SlotType, SpecialSlotConfig, TddPattern, WELL_KNOWN_PATTERNS


class TestSpecialSlotConfig:
    def test_default_sums_to_14(self):
        config = SpecialSlotConfig()
        assert config.dl_symbols + config.guard_symbols + config.ul_symbols == 14

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError, match="sum"):
            SpecialSlotConfig(dl_symbols=10, guard_symbols=2, ul_symbols=4)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SpecialSlotConfig(dl_symbols=-1, guard_symbols=11, ul_symbols=4)


class TestPatternStructure:
    def test_parse_dddsu(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.period_slots == 5
        assert pattern.slot_type(0) is SlotType.DL
        assert pattern.slot_type(3) is SlotType.SPECIAL
        assert pattern.slot_type(4) is SlotType.UL

    def test_pattern_repeats(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.slot_type(5) is SlotType.DL
        assert pattern.slot_type(9) is SlotType.UL

    def test_lowercase_accepted(self):
        assert TddPattern.from_string("dddsu").period_slots == 5

    def test_invalid_character(self):
        with pytest.raises(ValueError, match="unknown slot character"):
            TddPattern.from_string("DDXSU")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            TddPattern.from_string("")

    def test_period_ms(self):
        assert TddPattern.from_string("DDDSU").period_ms(Numerology.MU_1) == 2.5
        assert TddPattern.from_string("DDDDDDDSUU").period_ms(Numerology.MU_1) == 5.0

    def test_type_array(self):
        pattern = TddPattern.from_string("DDDSU")
        codes = pattern.type_array(12)
        assert codes.tolist() == [0, 0, 0, 2, 1, 0, 0, 0, 2, 1, 0, 0]
        assert codes.dtype == np.int8


class TestSymbolFractions:
    def test_dddsu_fractions(self):
        # 3 full DL + 6 symbols of S out of 70 symbols.
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.dl_symbol_fraction == pytest.approx((3 * 14 + 6) / 70)
        assert pattern.ul_symbol_fraction == pytest.approx((14 + 4) / 70)

    def test_long_pattern_fractions(self):
        pattern = TddPattern.from_string("DDDDDDDSUU")
        assert pattern.dl_symbol_fraction == pytest.approx((7 * 14 + 6) / 140)
        assert pattern.ul_symbol_fraction == pytest.approx((2 * 14 + 4) / 140)

    def test_dl_ul_asymmetry(self):
        # §4.2: fewer symbols for UL than DL in every deployed pattern,
        # and the commercial patterns named in §4.3 are >2x asymmetric.
        for pattern in WELL_KNOWN_PATTERNS.values():
            assert pattern.dl_symbol_fraction > pattern.ul_symbol_fraction
        for name in ("DDDSU", "DDDDDDDSUU"):
            pattern = WELL_KNOWN_PATTERNS[name]
            assert pattern.dl_symbol_fraction > 2 * pattern.ul_symbol_fraction

    def test_symbols_in_slot(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.dl_symbols_in_slot(0) == 14
        assert pattern.dl_symbols_in_slot(3) == 6
        assert pattern.dl_symbols_in_slot(4) == 0
        assert pattern.ul_symbols_in_slot(3) == 4
        assert pattern.ul_symbols_in_slot(4) == 14

    def test_slot_indices(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.dl_slot_indices == (0, 1, 2, 3)
        assert pattern.ul_slot_indices == (3, 4)


class TestWaits:
    def test_next_slot_same(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.next_slot_of(SlotType.DL, 0) == 0
        assert pattern.next_slot_of(SlotType.UL, 0) == 3  # S carries UL symbols

    def test_next_slot_full_only(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.next_slot_of(SlotType.UL, 0, full_only=True) == 4

    def test_wait_wraps_period(self):
        pattern = TddPattern.from_string("DDDSU")
        # From the UL slot, the next DL is the start of the next period.
        assert pattern.wait_slots(SlotType.DL, 4) == 1

    def test_no_direction_raises(self):
        pattern = TddPattern.from_string("DDD", SpecialSlotConfig())
        with pytest.raises(ValueError, match="no U opportunity"):
            pattern.next_slot_of(SlotType.UL, 0)

    def test_special_direction_invalid(self):
        pattern = TddPattern.from_string("DDDSU")
        with pytest.raises(ValueError):
            pattern.next_slot_of(SlotType.SPECIAL, 0)

    def test_mean_wait_sparse_ul_larger(self):
        # §4.3's driver: sparse-UL patterns wait much longer for UL.
        dddsu = TddPattern.from_string("DDDSU")
        long_pattern = TddPattern.from_string("DDDDDDDSUU")
        assert long_pattern.mean_wait_ms(SlotType.UL) > 1.5 * dddsu.mean_wait_ms(SlotType.UL)

    def test_mean_wait_dl_small_everywhere(self):
        for pattern in WELL_KNOWN_PATTERNS.values():
            assert pattern.mean_wait_ms(SlotType.DL) < 1.0

    def test_mean_wait_positive(self):
        pattern = TddPattern.from_string("DDDSU")
        assert pattern.mean_wait_ms(SlotType.UL) > 0
        # Residual slot alone is at least a quarter of a slot on average.
        assert pattern.mean_wait_ms(SlotType.DL) >= 0.25
