"""Tests for repro.serve.service — normalization, singleflight, accounting."""

import threading

import pytest

from repro.serve import (
    CampaignService,
    DrainingError,
    RequestError,
    normalize_request,
)
from repro.store import TraceStore

_TINY = {"kind": "campaign", "minutes": 0.02, "session": 1.0, "seed": 77}


class TestNormalizeRequest:
    def test_defaults_filled(self):
        request = normalize_request({"kind": "campaign"})
        assert request.param("minutes") == 0.2
        assert request.param("session") == 4.0
        assert request.param("ul_fraction") == 0.3
        assert request.param("seed") == 2024
        assert request.param("reduce") is False

    def test_key_stable_under_field_order_and_defaults(self):
        explicit = normalize_request({"kind": "campaign", "seed": 2024,
                                      "minutes": 0.2, "session": 4.0,
                                      "ul_fraction": 0.3, "reduce": False})
        defaulted = normalize_request({"kind": "campaign"})
        assert explicit.key == defaulted.key

    def test_key_differs_on_params(self):
        a = normalize_request({"kind": "campaign", "seed": 1})
        b = normalize_request({"kind": "campaign", "seed": 2})
        assert a.key != b.key

    def test_rejects_non_object(self):
        with pytest.raises(RequestError, match="JSON object"):
            normalize_request([1, 2, 3])

    def test_rejects_unknown_kind(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            normalize_request({"kind": "mystery"})

    def test_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="unknown fields.*minutse"):
            normalize_request({"kind": "campaign", "minutse": 1.0})

    def test_rejects_bad_types(self):
        with pytest.raises(RequestError, match="'minutes' must be float"):
            normalize_request({"kind": "campaign", "minutes": "plenty"})
        with pytest.raises(RequestError, match="'reduce' must be a boolean"):
            normalize_request({"kind": "campaign", "reduce": 1})

    def test_rejects_out_of_range(self):
        with pytest.raises(RequestError, match="positive"):
            normalize_request({"kind": "campaign", "minutes": -1.0})
        with pytest.raises(RequestError, match="ul_fraction"):
            normalize_request({"kind": "campaign", "ul_fraction": 1.5})

    def test_experiment_requires_id(self):
        with pytest.raises(RequestError, match="requires field 'id'"):
            normalize_request({"kind": "experiment"})
        with pytest.raises(RequestError, match="unknown experiment id"):
            normalize_request({"kind": "experiment", "id": "fig99"})

    def test_experiment_reduce_support_checked(self):
        from repro.experiments import EXPERIMENT_IDS, supports_reduce

        unsupported = [i for i in EXPERIMENT_IDS if not supports_reduce(i)]
        if not unsupported:
            pytest.skip("every experiment supports reduce")
        with pytest.raises(RequestError, match="no streaming-reduction"):
            normalize_request({"kind": "experiment", "id": unsupported[0],
                              "reduce": True})

    def test_describe(self):
        request = normalize_request({"kind": "campaign", "minutes": 0.5})
        assert "campaign/0.5min" in request.describe()


class _GatedService(CampaignService):
    """Service whose computation blocks until the test releases it —
    makes the singleflight overlap deterministic instead of a race."""

    def __init__(self):
        super().__init__(store=None, jobs=1)
        self.entered = threading.Event()
        self.release = threading.Event()
        self.run_calls = 0

    def _run(self, request):
        self.run_calls += 1
        self.entered.set()
        assert self.release.wait(timeout=30.0)
        return ([f"rows for {request.key[:8]}"], 5, None)


class TestSingleflight:
    def test_concurrent_identical_submissions_compute_once(self):
        service = _GatedService()
        responses = []
        lock = threading.Lock()

        def submit():
            response = service.submit(dict(_TINY))
            with lock:
                responses.append(response)

        owner = threading.Thread(target=submit)
        owner.start()
        assert service.entered.wait(timeout=30.0)  # owner is computing
        waiters = [threading.Thread(target=submit) for _ in range(3)]
        for thread in waiters:
            thread.start()
        # all three must be enqueued as dedup hits before the release
        deadline = threading.Event()
        for _ in range(200):
            if service.dedup_hits == 3:
                break
            deadline.wait(0.01)
        assert service.dedup_hits == 3
        service.release.set()
        owner.join(timeout=30.0)
        for thread in waiters:
            thread.join(timeout=30.0)

        assert service.run_calls == 1  # computed exactly once
        assert len(responses) == 4
        assert len({r["key"] for r in responses}) == 1
        assert sorted(r["dedup"] for r in responses) == [False, True, True, True]
        assert all(r["rows"] == responses[0]["rows"] for r in responses)
        stats = service.stats()["serve"]
        assert stats["requests"] == 4 and stats["dedup_hits"] == 3
        assert stats["in_flight"] == 0

    def test_distinct_requests_do_not_dedup(self):
        service = _GatedService()
        service.release.set()  # no blocking needed
        service.submit(dict(_TINY))
        service.submit({**_TINY, "seed": 78})
        assert service.run_calls == 2
        assert service.stats()["serve"]["dedup_hits"] == 0

    def test_owner_failure_propagates_to_waiters(self):
        service = _GatedService()

        def boom(request):
            service.entered.set()
            assert service.release.wait(timeout=30.0)
            raise RuntimeError("simulation exploded")

        service._run = boom
        failures = []

        def submit():
            try:
                service.submit(dict(_TINY))
            except RuntimeError as exc:
                failures.append(str(exc))

        threads = [threading.Thread(target=submit) for _ in range(2)]
        threads[0].start()
        assert service.entered.wait(timeout=30.0)
        threads[1].start()
        for _ in range(200):
            if service.dedup_hits == 1:
                break
            threading.Event().wait(0.01)
        service.release.set()
        for thread in threads:
            thread.join(timeout=30.0)
        assert failures == ["simulation exploded"] * 2
        assert service.stats()["serve"]["errors"] == 1
        assert service.stats()["serve"]["in_flight"] == 0

    def test_draining_rejects_new_work(self):
        service = _GatedService()
        service.begin_drain()
        with pytest.raises(DrainingError):
            service.submit(dict(_TINY))
        assert service.draining


class TestAccounting:
    def test_cold_then_warm_campaign(self, tmp_path):
        with CampaignService(store=TraceStore(tmp_path / "cache"),
                             jobs=1) as service:
            cold = service.submit(dict(_TINY))
            assert cold["accounting"]["computed"] > 0
            assert cold["accounting"]["memoized"] == 0
            assert not cold["accounting"]["store_served"]
            assert cold["accounting"]["tasks"] == cold["accounting"]["computed"]

            warm = service.submit(dict(_TINY))
            assert warm["accounting"]["computed"] == 0
            assert warm["accounting"]["memoized"] == cold["accounting"]["tasks"]
            assert warm["accounting"]["store_served"]
            assert warm["rows"] == cold["rows"]
            stats = service.stats()["serve"]
            assert stats["store_served"] == 1
            assert stats["tasks_computed"] == cold["accounting"]["tasks"]
            assert service.stats()["store"]["entries"] > 0

    def test_reduce_campaign_accounting(self, tmp_path):
        with CampaignService(store=TraceStore(tmp_path / "cache"),
                             jobs=1) as service:
            request = {**_TINY, "reduce": True}
            cold = service.submit(dict(request))
            assert cold["accounting"]["computed"] == cold["accounting"]["tasks"] > 0
            assert not cold["accounting"]["store_served"]

            warm = service.submit(dict(request))
            assert warm["accounting"]["computed"] == 0
            assert warm["accounting"]["store_served"]
            assert warm["rows"] == cold["rows"]

    def test_experiment_branch_wiring(self, monkeypatch):
        import repro.experiments as experiments

        calls = {}

        class _FakeResult:
            data = {"reduce_stats": None}

            def render(self):
                return "line one\nline two"

        def fake_run_experiment(experiment_id, **kwargs):
            calls["id"] = experiment_id
            calls["kwargs"] = kwargs
            return _FakeResult()

        monkeypatch.setattr(experiments, "run_experiment", fake_run_experiment)
        experiment_id = experiments.EXPERIMENT_IDS[0]
        service = CampaignService(store=None, jobs=1)
        response = service.submit({"kind": "experiment", "id": experiment_id})
        assert calls["id"] == experiment_id
        assert calls["kwargs"]["quick"] is True
        assert response["rows"] == ["line one", "line two"]

    def test_render_stats_line(self):
        service = CampaignService(store=None, jobs=1)
        line = service.render_stats()
        assert line.startswith("serve requests=0 ")
        assert "dedup_hits=0" in line and "errors=0" in line
