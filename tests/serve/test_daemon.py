"""Tests for repro.serve.daemon + client — the HTTP surface end to end."""

import threading
import time

import pytest

from repro.serve import (
    CampaignService,
    ServeClient,
    ServeClientError,
    ServeDaemon,
)
from repro.store import TraceStore
from repro.store.remote import RetryPolicy

_TINY = {"kind": "campaign", "minutes": 0.02, "session": 1.0, "seed": 77}


@pytest.fixture
def daemon(tmp_path):
    service = CampaignService(store=TraceStore(tmp_path / "cache"), jobs=1)
    with ServeDaemon(service, quiet=True) as running:
        yield running


@pytest.fixture
def client(daemon):
    client = ServeClient(daemon.url)
    client.wait_healthy(timeout_s=10.0)
    return client


class TestEndpoints:
    def test_health(self, client):
        reply = client.health()
        assert reply["ok"] is True and reply["draining"] is False

    def test_submit_and_stats(self, daemon, client):
        response = client.submit(dict(_TINY))
        assert response["kind"] == "campaign"
        assert response["rows"]
        assert response["accounting"]["computed"] > 0
        stats = client.stats()
        assert stats["serve"]["requests"] == 1
        assert stats["store"]["entries"] > 0

        warm = client.submit(dict(_TINY))
        assert warm["accounting"]["store_served"]
        assert warm["rows"] == response["rows"]

    def test_concurrent_submissions_over_http_compute_once(self, daemon):
        responses = [None] * 3

        def submit(slot):
            responses[slot] = ServeClient(daemon.url).submit(dict(_TINY))

        threads = [threading.Thread(target=submit, args=(slot,))
                   for slot in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert all(r is not None for r in responses)
        stats = daemon.service.stats()["serve"]
        # however the arrivals interleaved, the campaign computed once
        assert stats["tasks_computed"] == responses[0]["accounting"]["tasks"]
        assert all(r["rows"] == responses[0]["rows"] for r in responses)

    def test_bad_request_is_400(self, client):
        with pytest.raises(ServeClientError) as err:
            client.submit({"kind": "nope"})
        assert err.value.status == 400
        assert "unknown request kind" in str(err.value)

    def test_malformed_body_is_400(self, client, daemon):
        import urllib.request

        request = urllib.request.Request(daemon.url + "/submit",
                                         data=b"{not json",
                                         method="POST")
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(request, timeout=10.0)
        assert err.value.code == 400

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServeClientError) as err:
            client._call("GET", "/nothing-here")
        assert err.value.status == 404

    def test_draining_is_503(self, daemon, client):
        daemon.service.begin_drain()
        assert client.health()["draining"] is True
        with pytest.raises(ServeClientError) as err:
            client.submit(dict(_TINY))
        assert err.value.status == 503

    def test_errors_are_not_retried(self, daemon):
        service = daemon.service
        before = service.requests
        client = ServeClient(daemon.url,
                             policy=RetryPolicy(attempts=5, backoff_s=0.0))
        with pytest.raises(ServeClientError):
            client.submit({"kind": "nope"})
        # a 4xx answer is final: one request hit the daemon, not five
        assert service.requests == before


class TestLifecycle:
    def test_shutdown_endpoint_stops_server(self, tmp_path):
        service = CampaignService(store=None, jobs=1)
        daemon = ServeDaemon(service, quiet=True).start()
        client = ServeClient(daemon.url)
        client.wait_healthy()
        assert client.shutdown()["ok"] is True
        for _ in range(100):
            if service.draining:
                break
            time.sleep(0.05)
        assert service.draining
        daemon.stop()

    def test_ephemeral_port_bound(self, daemon):
        assert daemon.port != 0
        assert daemon.url == f"http://127.0.0.1:{daemon.port}"


class TestClientRetries:
    def test_wait_healthy_rides_out_slow_start(self, tmp_path):
        service = CampaignService(store=None, jobs=1)
        daemon = ServeDaemon(service, quiet=True)

        def late_start():
            time.sleep(0.3)
            daemon.start()

        thread = threading.Thread(target=late_start)
        thread.start()
        try:
            client = ServeClient(daemon.url)
            reply = client.wait_healthy(timeout_s=10.0)
            assert reply["ok"] is True
        finally:
            thread.join()
            daemon.stop()

    def test_unreachable_daemon_fails_with_client_error(self):
        client = ServeClient("http://127.0.0.1:9",  # discard port, closed
                             policy=RetryPolicy(attempts=2, backoff_s=0.0,
                                                timeout_s=1.0))
        with pytest.raises(ServeClientError):
            client.health()

    def test_wait_healthy_timeout(self):
        client = ServeClient("http://127.0.0.1:9")
        with pytest.raises(ServeClientError, match="not healthy"):
            client.wait_healthy(timeout_s=0.3)
