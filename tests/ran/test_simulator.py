"""Tests for repro.ran.simulator — the slot-level link simulation."""

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.mcs import Modulation
from repro.nr.tdd import TddPattern
from repro.ran.amc import RankAdapter
from repro.ran.config import CellConfig
from repro.ran.scheduler import ProportionalFairScheduler, RoundRobinScheduler
from repro.ran.simulator import (
    SLOT_DL,
    SLOT_SPECIAL,
    SLOT_UL,
    SimParams,
    simulate_downlink,
    simulate_downlink_multi,
    simulate_uplink,
)


def _channel(mean_db, duration=3.0, seed=1, mu=None):
    from repro.nr.numerology import Numerology

    return SyntheticChannel(mean_sinr_db=mean_db).realize(
        duration, mu=mu or Numerology.MU_1, rng=np.random.default_rng(seed))


class TestDownlinkBasics:
    def test_trace_length_matches_channel(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        assert len(trace) == good_channel.n_slots

    def test_ul_slots_never_scheduled(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        assert not trace.scheduled[trace.slot_type == SLOT_UL].any()

    def test_dl_slots_fully_used(self, cell_90mhz, good_channel, rng):
        # Full-buffer: every DL slot carries a grant.
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        dl = trace.slot_type == SLOT_DL
        assert trace.scheduled[dl].mean() > 0.99

    def test_special_slots_carry_smaller_tbs(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        special = trace.scheduled & (trace.slot_type == SLOT_SPECIAL) & ~trace.is_retx
        full = trace.scheduled & (trace.slot_type == SLOT_DL) & ~trace.is_retx
        assert trace.tbs_bits[special].mean() < 0.7 * trace.tbs_bits[full].mean()

    def test_bler_converges_to_target(self, cell_90mhz, rng):
        channel = _channel(20.0, duration=10.0)
        trace = simulate_downlink(cell_90mhz, channel, rng=rng)
        assert trace.bler == pytest.approx(0.10, abs=0.035)

    def test_throughput_increases_with_sinr(self, cell_90mhz, rng):
        low = simulate_downlink(cell_90mhz, _channel(8.0), rng=np.random.default_rng(2))
        high = simulate_downlink(cell_90mhz, _channel(24.0), rng=np.random.default_rng(2))
        assert high.mean_throughput_mbps > 1.5 * low.mean_throughput_mbps

    def test_retransmissions_recover_bits(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        assert trace.is_retx.sum() > 0
        retx_ok = trace.is_retx & (trace.delivered_bits > 0)
        assert retx_ok.sum() > 0.5 * trace.is_retx.sum()

    def test_deterministic_given_seed(self, cell_90mhz):
        channel = _channel(18.0, seed=3)
        a = simulate_downlink(cell_90mhz, channel, rng=np.random.default_rng(9))
        b = simulate_downlink(cell_90mhz, channel, rng=np.random.default_rng(9))
        assert np.array_equal(a.delivered_bits, b.delivered_bits)

    def test_cqi_forward_filled(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        assert (trace.cqi > 0).all()

    def test_rank_respects_cell_cap(self, good_channel, rng):
        cell = CellConfig(name="2x2", bandwidth_mhz=90, max_layers=2,
                          tdd=TddPattern.from_string("DDDSU"))
        trace = simulate_downlink(cell, good_channel, rng=rng)
        assert trace.layers[trace.scheduled].max() <= 2

    def test_background_load_varies_allocations(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        sched = trace.scheduled_view()
        assert np.unique(sched.n_prb).size > 1
        assert sched.n_prb.max() <= cell_90mhz.grantable_rb

    def test_no_background_gives_constant_grants(self, cell_90mhz, good_channel, rng):
        params = SimParams(background_rb_mean=0.0, background_rb_sigma=0.0)
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng, params=params)
        sched = trace.scheduled_view()
        assert np.unique(sched.n_prb).size == 1


class TestModulationBehaviour:
    def test_64qam_cell_never_uses_256(self, good_channel, rng):
        cell = CellConfig(name="qam64", bandwidth_mhz=100,
                          max_modulation=Modulation.QAM64,
                          tdd=TddPattern.from_string("DDDSU"))
        trace = simulate_downlink(cell, good_channel, rng=rng)
        assert trace.modulation_order[trace.scheduled].max() <= 6

    def test_dci_fallback_under_poor_conditions(self, cell_90mhz, rng):
        poor = _channel(-2.0, duration=4.0)
        trace = simulate_downlink(cell_90mhz, poor, rng=rng)
        sched = trace.scheduled.astype(bool)
        # Some share of grants should use DCI 1_0 (code 0) when CQI dips.
        assert (trace.dci_format[sched] == 0).any()

    def test_good_conditions_use_1_1(self, cell_90mhz, good_channel, rng):
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng)
        sched = trace.scheduled.astype(bool)
        assert (trace.dci_format[sched] == 1).mean() > 0.95


class TestUplink:
    def test_ul_uses_ul_slots_only(self, cell_90mhz, good_channel, rng):
        trace = simulate_uplink(cell_90mhz, good_channel, rng=rng)
        assert not trace.scheduled[trace.slot_type == SLOT_DL].any()

    def test_ul_much_slower_than_dl(self, cell_90mhz, good_channel):
        dl = simulate_downlink(cell_90mhz, good_channel, rng=np.random.default_rng(1))
        ul = simulate_uplink(cell_90mhz, good_channel, rng=np.random.default_rng(1))
        # §4.2's asymmetry: UL far below DL on the same channel.
        assert ul.mean_throughput_mbps < 0.5 * dl.mean_throughput_mbps

    def test_ul_layer_cap(self, cell_90mhz, good_channel, rng):
        trace = simulate_uplink(cell_90mhz, good_channel, rng=rng, max_layers=2)
        assert trace.layers[trace.scheduled].max() <= 2

    def test_ul_uses_64qam_table(self, cell_90mhz, good_channel, rng):
        trace = simulate_uplink(cell_90mhz, good_channel, rng=rng)
        assert trace.modulation_order[trace.scheduled].max() <= 6


class TestFddCarrier:
    def test_fdd_dl_all_slots(self, cell_fdd, rng):
        channel = _channel(20.0, mu=cell_fdd.mu)
        trace = simulate_downlink(cell_fdd, channel, rng=rng)
        assert (trace.slot_type == SLOT_DL).all()
        assert trace.scheduled.mean() > 0.99

    def test_fdd_ul_all_slots(self, cell_fdd, rng):
        channel = _channel(20.0, mu=cell_fdd.mu)
        trace = simulate_uplink(cell_fdd, channel, rng=rng)
        assert (trace.slot_type == SLOT_UL).all()


class TestMultiUser:
    def test_two_ues_split_resources(self, cell_90mhz, rng):
        channels = [_channel(20.0, seed=1), _channel(20.0, seed=2)]
        traces = simulate_downlink_multi(cell_90mhz, channels, RoundRobinScheduler(), rng=rng)
        solo = simulate_downlink(cell_90mhz, _channel(20.0, seed=1), rng=np.random.default_rng(1))
        for trace in traces:
            ratio = trace.mean_throughput_mbps / solo.mean_throughput_mbps
            assert 0.3 < ratio < 0.7  # roughly half (Fig. 14)

    def test_rb_shares_sum_within_budget(self, cell_90mhz, rng):
        channels = [_channel(18.0, seed=1), _channel(18.0, seed=2)]
        traces = simulate_downlink_multi(cell_90mhz, channels, RoundRobinScheduler(), rng=rng)
        total = traces[0].n_prb + traces[1].n_prb
        assert total.max() <= cell_90mhz.grantable_rb

    def test_requires_channels(self, cell_90mhz, rng):
        with pytest.raises(ValueError):
            simulate_downlink_multi(cell_90mhz, [], RoundRobinScheduler(), rng=rng)


class TestProportionalFairMulti:
    def test_starved_ue_recovers(self, cell_90mhz):
        # Regression (PF starvation): a UE entering with a stuck-high
        # EWMA gets no RBs at first; zero-bit decay on unscheduled slots
        # must bring it back to an even share instead of starving it
        # for the whole run.
        scheduler = ProportionalFairScheduler()
        scheduler.averages = {0: 1.0, 1: 1e15}
        channels = [_channel(20.0, seed=1), _channel(20.0, seed=2)]
        traces = simulate_downlink_multi(cell_90mhz, channels, scheduler,
                                         rng=np.random.default_rng(5))
        assert traces[1].scheduled.sum() > 0
        n = len(traces[0])
        tail = slice(int(0.8 * n), n)
        rb0 = int(traces[0].n_prb[tail].sum())
        rb1 = int(traces[1].n_prb[tail].sum())
        assert rb1 > 0.35 * (rb0 + rb1)

    def test_deep_fade_share_recovers(self, cell_90mhz):
        # One UE drops into a deep fade mid-run; once the channel comes
        # back its RB share must return to roughly half (Fig. 14's even
        # split), which requires its EWMA to have decayed during the fade.
        channels = [_channel(22.0, seed=1), _channel(22.0, seed=2)]
        n = channels[1].n_slots
        channels[1].sinr_db[n // 4: n // 2] -= 35.0
        traces = simulate_downlink_multi(cell_90mhz, channels,
                                         ProportionalFairScheduler(),
                                         rng=np.random.default_rng(6))
        tail = slice(int(0.8 * n), n)
        rb0 = int(traces[0].n_prb[tail].sum())
        rb1 = int(traces[1].n_prb[tail].sum())
        assert 0.35 < rb1 / max(1, rb0 + rb1) < 0.65


class TestHarqSpecialSlots:
    def test_special_slot_retx_fits_special_tbs(self, cell_90mhz, rng):
        # Regression: a retransmission may land in a special slot only
        # if the slot's (shorter) TBS can carry the pending block; an
        # oversized block defers to the next full DL slot.
        from repro.nr.mcs import MCS_TABLE_64QAM
        from repro.nr.tbs import transport_block_size

        channel = _channel(14.0, duration=10.0)
        trace = simulate_downlink(cell_90mhz, channel, rng=rng)
        assert trace.is_retx.sum() > 0
        symbols = cell_90mhz.tdd.special.dl_symbols
        for i in np.flatnonzero(trace.is_retx & (trace.slot_type == SLOT_SPECIAL)):
            table = MCS_TABLE_64QAM if trace.dci_format[i] == 0 else cell_90mhz.mcs_table
            entry = table[int(trace.mcs_index[i])]
            cap = transport_block_size(int(trace.n_prb[i]), entry,
                                       int(trace.layers[i]), symbols=symbols)
            assert trace.tbs_bits[i] <= cap


class TestParamsValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            SimParams(harq_rtt_slots=0)
        with pytest.raises(ValueError):
            SimParams(max_attempts=0)
        with pytest.raises(ValueError):
            SimParams(retx_error_scale=1.5)

    def test_olla_disabled_runs(self, cell_90mhz, good_channel, rng):
        params = SimParams(olla_enabled=False)
        trace = simulate_downlink(cell_90mhz, good_channel, rng=rng, params=params)
        assert trace.mean_throughput_mbps > 0

    def test_rank_bias_reduces_layers(self, cell_90mhz, good_channel):
        neutral = simulate_downlink(cell_90mhz, good_channel,
                                    rng=np.random.default_rng(4),
                                    params=SimParams(rank_adapter=RankAdapter()))
        biased = simulate_downlink(cell_90mhz, good_channel,
                                   rng=np.random.default_rng(4),
                                   params=SimParams(rank_adapter=RankAdapter(bias_db=8.0)))
        assert biased.layers[biased.scheduled].mean() < neutral.layers[neutral.scheduled].mean()
