"""Tests for repro.ran.config."""

import pytest

from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM, Modulation
from repro.nr.numerology import Numerology
from repro.nr.tdd import TddPattern
from repro.ran.config import CellConfig


class TestDerivedObjects:
    def test_n_rb_from_table(self, cell_90mhz):
        assert cell_90mhz.n_rb == 245

    def test_n_rb_override(self, cell_fdd):
        assert cell_fdd.n_rb == 51

    def test_grantable_below_configured(self, cell_90mhz):
        assert 0 < cell_90mhz.grantable_rb < cell_90mhz.n_rb

    def test_mcs_table_follows_modulation(self, cell_90mhz):
        assert cell_90mhz.mcs_table is MCS_TABLE_256QAM
        qam64 = CellConfig(name="x", bandwidth_mhz=100,
                           max_modulation=Modulation.QAM64,
                           tdd=TddPattern.from_string("DDDSU"))
        assert qam64.mcs_table is MCS_TABLE_64QAM

    def test_numerology(self, cell_90mhz, cell_fdd):
        assert cell_90mhz.mu is Numerology.MU_1
        assert cell_90mhz.slot_ms == 0.5
        assert cell_fdd.mu is Numerology.MU_0
        assert cell_fdd.slot_ms == 1.0

    def test_tdd_fractions(self, cell_90mhz, cell_fdd):
        assert cell_90mhz.dl_slot_fraction() == pytest.approx(48 / 70)
        assert cell_fdd.dl_slot_fraction() == 1.0
        assert cell_fdd.ul_slot_fraction() == 1.0

    def test_frequency(self, cell_90mhz):
        assert 3.3 < cell_90mhz.frequency_ghz < 3.8

    def test_re_per_full_slot(self, cell_90mhz):
        assert cell_90mhz.re_per_full_slot(100) == 100 * 12 * 14

    def test_mapper_cached(self, cell_90mhz):
        assert cell_90mhz.mapper is cell_90mhz.mapper


class TestValidation:
    def test_unknown_band(self):
        with pytest.raises(ValueError, match="unknown band"):
            CellConfig(name="x", band_name="n999", bandwidth_mhz=90)

    def test_tdd_band_requires_pattern(self):
        with pytest.raises(ValueError, match="TDD"):
            CellConfig(name="x", band_name="n78", bandwidth_mhz=90, tdd=None)

    def test_fdd_band_rejects_pattern(self):
        with pytest.raises(ValueError, match="FDD"):
            CellConfig(name="x", band_name="n25", bandwidth_mhz=20, scs_khz=15,
                       tdd=TddPattern.from_string("DDDSU"), n_rb_override=51)

    def test_invalid_bandwidth_caught_eagerly(self):
        with pytest.raises(ValueError, match="bandwidth"):
            CellConfig(name="x", bandwidth_mhz=85)

    def test_bad_layers(self):
        with pytest.raises(ValueError):
            CellConfig(name="x", bandwidth_mhz=90, max_layers=0)

    def test_bad_control_fraction(self):
        with pytest.raises(ValueError):
            CellConfig(name="x", bandwidth_mhz=90, control_rb_fraction=1.0)

    def test_bad_cqi_period(self):
        with pytest.raises(ValueError):
            CellConfig(name="x", bandwidth_mhz=90, cqi_period_slots=0)
