"""Byte-identity of the cross-session tensor engine.

A cohort of same-shape sessions (same cell/params/duration, differing
only in seed) must come out of :mod:`repro.ran.tensor` byte-identical
to running each session alone through the per-session engines — the
same npz bytes a campaign export would write.  The matrix covers the
knobs that reshape the slot loop (modulation table, TDD vs FDD, OLLA
on/off, retx density via SINR regime, DL vs UL) crossed with cohort
sizes, plus an adversarial mixed cohort where only some columns ever
diverge into the per-column fallback runner.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.mcs import Modulation
from repro.nr.tdd import TddPattern
from repro.ran import tensor
from repro.ran.config import CellConfig, resolve_engine
from repro.ran.simulator import SimParams, simulate_downlink, simulate_uplink
from repro.ran.tensor import simulate_downlink_cohort, simulate_uplink_cohort
from repro.xcal.io import npz_bytes, trace_to_arrays

DURATION_S = 1.5
JITTER_DB = 2.0


def _trace_bytes(trace) -> bytes:
    return npz_bytes(trace_to_arrays(trace), {})


def _tdd_cell(max_modulation: Modulation, bandwidth_mhz: int = 90) -> CellConfig:
    return CellConfig(name=f"tensor n78 {bandwidth_mhz}MHz", band_name="n78",
                      bandwidth_mhz=bandwidth_mhz, scs_khz=30,
                      max_modulation=max_modulation,
                      tdd=TddPattern.from_string("DDDSU"))


def _fdd_cell() -> CellConfig:
    return CellConfig(name="tensor n25 20MHz", band_name="n25",
                      bandwidth_mhz=20, scs_khz=15,
                      max_modulation=Modulation.QAM256, tdd=None,
                      n_rb_override=51)


def _channel_and_rng(mean_sinr_db: float, seed: int, cell: CellConfig,
                     duration_s: float = DURATION_S,
                     jitter_db: float = JITTER_DB):
    """One session's channel + positioned rng, in campaign draw order."""
    rng = np.random.default_rng(seed)
    jitter = jitter_db * float(rng.standard_normal())
    channel = SyntheticChannel(mean_sinr_db=mean_sinr_db + jitter).realize(
        duration_s, mu=cell.mu, rng=rng)
    return channel, rng


def _single_bytes(simulate, cell: CellConfig, mean_sinr_db: float, seed: int,
                  engine: str, duration_s: float = DURATION_S,
                  **params) -> bytes:
    channel, rng = _channel_and_rng(mean_sinr_db, seed, cell, duration_s)
    trace = simulate(cell, channel, rng=rng,
                     params=SimParams(engine=engine, **params))
    return _trace_bytes(trace)


def _cohort_bytes(simulate_cohort, cell: CellConfig, mean_sinr_db: float,
                  seeds: list[int], duration_s: float = DURATION_S,
                  **params) -> list[bytes]:
    channels, rngs = [], []
    for seed in seeds:
        channel, rng = _channel_and_rng(mean_sinr_db, seed, cell, duration_s)
        channels.append(channel)
        rngs.append(rng)
    return [_trace_bytes(t) for t in simulate_cohort(
        cell, channels, rngs, params=SimParams(**params))]


CASES = {
    # High SINR: long clean stretches, few divergent periods.
    "tdd-256qam-good": (_tdd_cell(Modulation.QAM256), 22.0, {}),
    # Mid SINR: OLLA converges to ~10% BLER, every column diverges often.
    "tdd-256qam-mid": (_tdd_cell(Modulation.QAM256), 12.0, {}),
    # Poor SINR: retx windows dominate, the fallback runner carries most
    # slots — the tensor pass must still match byte for byte.
    "tdd-256qam-poor": (_tdd_cell(Modulation.QAM256), 2.0, {}),
    "tdd-64qam": (_tdd_cell(Modulation.QAM64, bandwidth_mhz=60), 15.0, {}),
    "fdd-256qam": (_fdd_cell(), 18.0, {}),
    "tdd-no-olla": (_tdd_cell(Modulation.QAM256), 14.0,
                    {"olla_enabled": False}),
    "tdd-retx-heavy": (_tdd_cell(Modulation.QAM256), 8.0,
                       {"cqi_alpha": 1.4, "retx_error_scale": 0.9,
                        "harq_rtt_slots": 6}),
}


@pytest.mark.parametrize("cohort_size", [3, 7])
@pytest.mark.parametrize("case", sorted(CASES))
def test_downlink_cohort_byte_identical(case: str, cohort_size: int):
    cell, sinr, params = CASES[case]
    seeds = list(range(40, 40 + cohort_size))
    singles = [_single_bytes(simulate_downlink, cell, sinr, s, "reference",
                             **params) for s in seeds]
    cohort = _cohort_bytes(simulate_downlink_cohort, cell, sinr, seeds,
                           **params)
    assert cohort == singles


@pytest.mark.parametrize("seed0", [7, 70])
def test_uplink_cohort_byte_identical(seed0: int):
    cell = _tdd_cell(Modulation.QAM256)
    seeds = list(range(seed0, seed0 + 5))
    singles = [_single_bytes(simulate_uplink, cell, 6.0, s, "reference")
               for s in seeds]
    cohort = _cohort_bytes(simulate_uplink_cohort, cell, 6.0, seeds)
    assert cohort == singles


def test_cohort_matches_vectorized_engine_too():
    cell, sinr, params = CASES["tdd-256qam-mid"]
    seeds = [90, 91, 92]
    vec = [_single_bytes(simulate_downlink, cell, sinr, s, "vectorized",
                         **params) for s in seeds]
    cohort = _cohort_bytes(simulate_downlink_cohort, cell, sinr, seeds,
                           **params)
    assert cohort == vec


def test_divergent_retx_fallback_mixed_columns():
    """Adversarial cohort: some columns never fail, others retransmit.

    With OLLA off and a conservative CQI mapping at high (per-seed
    jittered) SINR, clean columns ride the tensor fast path for the
    whole session while dirty columns drop into the per-column
    fallback runner — the counters must show a strict mix, and every
    column must still match the reference oracle byte for byte.
    """
    cell = _tdd_cell(Modulation.QAM256)
    params = dict(olla_enabled=False, cqi_alpha=0.4)
    mean, jitter, duration = 18.0, 6.0, 1.0
    # Seeds chosen so the 6 dB jitter splits the cohort (seeds 3, 6 and
    # 11 stay error-free at alpha=0.4; the rest take NACKs).
    seeds = [1, 2, 3, 4, 5, 6, 11]

    singles, channels, rngs = [], [], []
    for seed in seeds:
        channel, rng = _channel_and_rng(mean, seed, cell, duration, jitter)
        singles.append(_trace_bytes(simulate_downlink(
            cell, channel, rng=rng,
            params=SimParams(engine="reference", **params))))
        channel, rng = _channel_and_rng(mean, seed, cell, duration, jitter)
        channels.append(channel)
        rngs.append(rng)

    tensor.reset_cohort_stats()
    cohort = [_trace_bytes(t) for t in simulate_downlink_cohort(
        cell, channels, rngs, params=SimParams(**params))]
    stats = tensor.cohort_stats()

    assert cohort == singles
    assert stats["cohorts"] == 1
    assert stats["columns"] == len(seeds)
    # The adversarial mix: some columns diverged, some never did.
    assert 0 < stats["columns_touched_fallback"] < len(seeds)
    assert stats["dirty_periods"] > 0

    # The fallback columns really retransmitted; the clean ones did not.
    retx_counts = []
    for seed in seeds:
        channel, rng = _channel_and_rng(mean, seed, cell, duration, jitter)
        trace = simulate_downlink(cell, channel, rng=rng,
                                  params=SimParams(**params))
        retx_counts.append(int(trace.error.sum() + trace.is_retx.sum()))
    assert sorted(set(c == 0 for c in retx_counts)) == [False, True]


# Adversarial retx density: low SINR plus an optimistic CQI mapping and
# unscaled retx errors keeps most cells dirty and builds real backlogs.
HIGH_BLER_PARAMS = dict(cqi_alpha=2.0, retx_error_scale=1.0,
                        harq_rtt_slots=8)
HIGH_BLER_SINR = -2.0


def test_high_bler_cohort_byte_identical():
    """Forced >=80% dirty cells: the batched pass carries the cohort.

    At -2 dB with an aggressive CQI mapping nearly every (column, period)
    cell holds pending retransmissions, so the clean-bookkeeping tier
    almost never applies — the batched retx lanes (and, for the deepest
    backlogs, the residual fallback) do the work and must still match
    the per-session reference byte for byte.
    """
    cell = _tdd_cell(Modulation.QAM256)
    seeds = list(range(5))
    singles = [_single_bytes(simulate_downlink, cell, HIGH_BLER_SINR, s,
                             "reference", **HIGH_BLER_PARAMS) for s in seeds]
    tensor.reset_cohort_stats()
    cohort = _cohort_bytes(simulate_downlink_cohort, cell, HIGH_BLER_SINR,
                           seeds, **HIGH_BLER_PARAMS)
    stats = tensor.cohort_stats()

    assert cohort == singles
    assert stats["dirty_periods"] / stats["cells"] >= 0.8
    assert stats["batched_periods"] > 0


def test_native_and_numpy_retx_tiers_identical(monkeypatch):
    """The compiled kernel and the portable numpy pass agree bytewise.

    Both tiers must produce identical traces; the counters must also
    show which tier ran (``native_periods`` collapses to zero when the
    kernel is forced off).
    """
    from repro.ran import _native

    cell = _tdd_cell(Modulation.QAM256)
    seeds = list(range(20, 24))

    tensor.reset_cohort_stats()
    default = _cohort_bytes(simulate_downlink_cohort, cell, HIGH_BLER_SINR,
                            seeds, **HIGH_BLER_PARAMS)
    default_stats = tensor.cohort_stats()
    if _native.load_kernel() is not None:
        assert default_stats["native_periods"] == \
            default_stats["batched_periods"] > 0

    monkeypatch.setattr(tensor._native, "load_kernel", lambda: None)
    tensor.reset_cohort_stats()
    portable = _cohort_bytes(simulate_downlink_cohort, cell, HIGH_BLER_SINR,
                             seeds, **HIGH_BLER_PARAMS)
    portable_stats = tensor.cohort_stats()

    assert portable == default
    assert portable_stats["native_periods"] == 0
    assert portable_stats["batched_periods"] == \
        default_stats["batched_periods"] > 0


def test_forced_residual_cohort(monkeypatch):
    """Every dirty cell punted to the residual per-column fallback.

    Dropping the backlog threshold below zero forces the batched lanes
    out of the picture entirely; the scalar fallback must carry the
    whole dirty load and still match the reference oracle.
    """
    monkeypatch.setattr(tensor, "_RESIDUAL_PENDING", -1)
    cell, sinr, params = CASES["tdd-retx-heavy"]
    seeds = [30, 31, 32, 33]
    singles = [_single_bytes(simulate_downlink, cell, sinr, s, "reference",
                             **params) for s in seeds]
    tensor.reset_cohort_stats()
    cohort = _cohort_bytes(simulate_downlink_cohort, cell, sinr, seeds,
                           **params)
    stats = tensor.cohort_stats()

    assert cohort == singles
    assert stats["dirty_periods"] > 0
    assert stats["residual_periods"] == stats["dirty_periods"]
    assert stats["batched_periods"] == 0


def test_cohort_stats_render():
    tensor.reset_cohort_stats()
    line = tensor.render_cohort_stats()
    assert line.startswith("tensor cohorts=0")
    cell, sinr, params = CASES["tdd-256qam-good"]
    _cohort_bytes(simulate_downlink_cohort, cell, sinr, [5, 6, 7], **params)
    stats = tensor.cohort_stats()
    assert stats["cohorts"] == 1 and stats["columns"] == 3
    assert "slots_per_s" in tensor.render_cohort_stats().replace("slots_per_s",
                                                                 "slots_per_s")


def test_cohort_validates_inputs():
    cell, sinr, params = CASES["tdd-256qam-good"]
    ch, rng = _channel_and_rng(sinr, 1, cell)
    with pytest.raises(ValueError):
        list(simulate_downlink_cohort(cell, [], [], params=SimParams()))
    with pytest.raises(ValueError):
        list(simulate_downlink_cohort(cell, [ch], [rng, rng],
                                      params=SimParams()))
    short, short_rng = _channel_and_rng(sinr, 2, cell, duration_s=0.5)
    with pytest.raises(ValueError):
        list(simulate_downlink_cohort(cell, [ch, short], [rng, short_rng],
                                      params=SimParams()))


class TestEnginePolicy:
    def test_decision_table(self):
        assert resolve_engine("auto", 1) == "vectorized"
        assert resolve_engine("auto", 2) == "tensor"
        assert resolve_engine("tensor", 1) == "vectorized"
        assert resolve_engine("tensor", 32) == "tensor"
        assert resolve_engine("vectorized", 32) == "vectorized"
        assert resolve_engine("reference", 32) == "reference"

    def test_invalid_engine(self):
        with pytest.raises(ValueError):
            resolve_engine("warp", 2)

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        assert resolve_engine("auto", 64) == "vectorized"
        assert resolve_engine("tensor", 64) == "vectorized"
        monkeypatch.setenv("REPRO_ENGINE", "tensor")
        # The cohort-of-one degrade still applies to the override.
        assert resolve_engine("vectorized", 1) == "vectorized"
        assert resolve_engine("vectorized", 8) == "tensor"
        monkeypatch.setenv("REPRO_ENGINE", "warp")
        with pytest.raises(ValueError):
            resolve_engine("auto", 2)
