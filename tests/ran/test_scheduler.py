"""Tests for repro.ran.scheduler."""

import pytest

from repro.ran.scheduler import (
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SchedulingRequest,
)


def _request(ue_id, rate=1000.0, backlog=1 << 20):
    return SchedulingRequest(ue_id=ue_id, backlog_bits=backlog, instantaneous_rate=rate)


class TestRoundRobin:
    def test_single_ue_gets_all(self):
        allocation = RoundRobinScheduler().allocate([_request(0)], 245)
        assert allocation == {0: 245}

    def test_even_split(self):
        allocation = RoundRobinScheduler().allocate([_request(0), _request(1)], 244)
        assert allocation == {0: 122, 1: 122}

    def test_remainder_rotates(self):
        scheduler = RoundRobinScheduler()
        totals = {0: 0, 1: 0}
        for _ in range(10):
            allocation = scheduler.allocate([_request(0), _request(1)], 245)
            for ue, rb in allocation.items():
                totals[ue] += rb
        assert totals[0] == totals[1]  # long-run exact fairness

    def test_idle_ue_excluded(self):
        allocation = RoundRobinScheduler().allocate(
            [_request(0), _request(1, backlog=0)], 100)
        assert allocation == {0: 100}

    def test_no_active_ues(self):
        assert RoundRobinScheduler().allocate([_request(0, backlog=0)], 100) == {}

    def test_zero_rbs(self):
        assert RoundRobinScheduler().allocate([_request(0)], 0) == {}

    def test_negative_rbs(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler().allocate([_request(0)], -1)

    def test_remainder_order_independent(self):
        # Regression: the rotation is keyed on ue_id, so presenting the
        # request list in a different order must not re-target the
        # remainder RB.
        forward, backward = RoundRobinScheduler(), RoundRobinScheduler()
        for _ in range(10):
            a = forward.allocate([_request(0), _request(1)], 245)
            b = backward.allocate([_request(1), _request(0)], 245)
            assert a == b

    def test_remainder_survives_churn(self):
        # Regression: after UE 0 takes the remainder the rotation points
        # at ue_id 1; if UE 1 goes idle the remainder falls to the
        # next-higher active ue_id, not back to list position 0.
        scheduler = RoundRobinScheduler()
        first = scheduler.allocate([_request(0), _request(1), _request(2)], 10)
        assert first == {0: 4, 1: 3, 2: 3}
        second = scheduler.allocate([_request(0), _request(2, backlog=1), _request(1, backlog=0)], 11)
        assert second == {0: 5, 2: 6}


class TestProportionalFair:
    def test_single_ue_gets_all(self):
        allocation = ProportionalFairScheduler().allocate([_request(0)], 245)
        assert allocation == {0: 245}

    def test_equal_metrics_split_evenly(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=100.0), _request(1, rate=100.0)], 200)
        assert allocation == {0: 100, 1: 100}

    def test_total_rbs_conserved(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=50.0), _request(1, rate=150.0), _request(2, rate=77.0)], 245)
        assert sum(allocation.values()) == 245

    def test_starved_ue_prioritized(self):
        scheduler = ProportionalFairScheduler()
        scheduler.averages = {0: 10_000.0, 1: 100.0}
        allocation = scheduler.allocate([_request(0, rate=100.0), _request(1, rate=100.0)], 200)
        assert allocation[1] > allocation[0]

    def test_better_channel_favoured_at_equal_average(self):
        scheduler = ProportionalFairScheduler()
        scheduler.averages = {0: 500.0, 1: 500.0}
        allocation = scheduler.allocate([_request(0, rate=300.0), _request(1, rate=100.0)], 200)
        assert allocation[0] > allocation[1]

    def test_update_average_ewma(self):
        scheduler = ProportionalFairScheduler(ewma_alpha=0.5)
        scheduler.update_average(0, 100.0)
        scheduler.update_average(0, 0.0)
        assert scheduler.averages[0] == pytest.approx(50.0)

    def test_zero_rate_ues_fall_back_to_even(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=0.0), _request(1, rate=0.0)], 100)
        assert sum(allocation.values()) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            ProportionalFairScheduler().allocate([_request(0)], -5)

    def test_unserved_average_decays_to_recovery(self):
        # Regression (PF starvation): a UE whose EWMA is stuck high gets
        # no RBs, and without zero-bit decay it would never recover.
        scheduler = ProportionalFairScheduler(ewma_alpha=0.5)
        scheduler.averages = {0: 1.0, 1: 1e9}
        requests = [_request(0, rate=100.0), _request(1, rate=100.0)]
        assert scheduler.allocate(requests, 100).get(1, 0) == 0
        for _ in range(30):
            scheduler.update_average(1, 0.0)
        assert scheduler.allocate(requests, 100).get(1, 0) > 30
