"""Tests for repro.ran.scheduler."""

import pytest

from repro.ran.scheduler import (
    ProportionalFairScheduler,
    RoundRobinScheduler,
    SchedulingRequest,
)


def _request(ue_id, rate=1000.0, backlog=1 << 20):
    return SchedulingRequest(ue_id=ue_id, backlog_bits=backlog, instantaneous_rate=rate)


class TestRoundRobin:
    def test_single_ue_gets_all(self):
        allocation = RoundRobinScheduler().allocate([_request(0)], 245)
        assert allocation == {0: 245}

    def test_even_split(self):
        allocation = RoundRobinScheduler().allocate([_request(0), _request(1)], 244)
        assert allocation == {0: 122, 1: 122}

    def test_remainder_rotates(self):
        scheduler = RoundRobinScheduler()
        totals = {0: 0, 1: 0}
        for _ in range(10):
            allocation = scheduler.allocate([_request(0), _request(1)], 245)
            for ue, rb in allocation.items():
                totals[ue] += rb
        assert totals[0] == totals[1]  # long-run exact fairness

    def test_idle_ue_excluded(self):
        allocation = RoundRobinScheduler().allocate(
            [_request(0), _request(1, backlog=0)], 100)
        assert allocation == {0: 100}

    def test_no_active_ues(self):
        assert RoundRobinScheduler().allocate([_request(0, backlog=0)], 100) == {}

    def test_zero_rbs(self):
        assert RoundRobinScheduler().allocate([_request(0)], 0) == {}

    def test_negative_rbs(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler().allocate([_request(0)], -1)


class TestProportionalFair:
    def test_single_ue_gets_all(self):
        allocation = ProportionalFairScheduler().allocate([_request(0)], 245)
        assert allocation == {0: 245}

    def test_equal_metrics_split_evenly(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=100.0), _request(1, rate=100.0)], 200)
        assert allocation == {0: 100, 1: 100}

    def test_total_rbs_conserved(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=50.0), _request(1, rate=150.0), _request(2, rate=77.0)], 245)
        assert sum(allocation.values()) == 245

    def test_starved_ue_prioritized(self):
        scheduler = ProportionalFairScheduler()
        scheduler.averages = {0: 10_000.0, 1: 100.0}
        allocation = scheduler.allocate([_request(0, rate=100.0), _request(1, rate=100.0)], 200)
        assert allocation[1] > allocation[0]

    def test_better_channel_favoured_at_equal_average(self):
        scheduler = ProportionalFairScheduler()
        scheduler.averages = {0: 500.0, 1: 500.0}
        allocation = scheduler.allocate([_request(0, rate=300.0), _request(1, rate=100.0)], 200)
        assert allocation[0] > allocation[1]

    def test_update_average_ewma(self):
        scheduler = ProportionalFairScheduler(ewma_alpha=0.5)
        scheduler.update_average(0, 100.0)
        scheduler.update_average(0, 0.0)
        assert scheduler.averages[0] == pytest.approx(50.0)

    def test_zero_rate_ues_fall_back_to_even(self):
        allocation = ProportionalFairScheduler().allocate(
            [_request(0, rate=0.0), _request(1, rate=0.0)], 100)
        assert sum(allocation.values()) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            ProportionalFairScheduler(ewma_alpha=0.0)
        with pytest.raises(ValueError):
            ProportionalFairScheduler().allocate([_request(0)], -5)
