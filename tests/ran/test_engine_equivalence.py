"""Byte-identity of the vectorized slot engine against the scalar oracle.

The vectorized engine is the default; the scalar reference engine
(``SimParams(engine="reference")``) is kept as the correctness oracle.
The contract is not "statistically close" but *byte-identical npz
traces*: both engines must consume the RNG in the same order and
produce the same doubles, so every config knob that changes the slot
loop's shape (modulation table, TDD vs FDD, OLLA on/off, SINR regime
and hence retx density, DL vs UL, multi-UE scheduling) gets a
parametrized equality case, plus a seeded randomized-config sweep as a
tripwire for interactions the matrix misses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.mcs import Modulation
from repro.nr.tdd import TddPattern
from repro.ran.config import CellConfig
from repro.ran.scheduler import ProportionalFairScheduler, RoundRobinScheduler
from repro.ran.simulator import (SimParams, simulate_downlink,
                                 simulate_downlink_multi, simulate_uplink)
from repro.xcal.io import npz_bytes, trace_to_arrays

DURATION_S = 2.0


def _trace_bytes(trace) -> bytes:
    """The exact bytes a campaign export would write for this trace."""
    return npz_bytes(trace_to_arrays(trace), {})


def _tdd_cell(max_modulation: Modulation, bandwidth_mhz: int = 90) -> CellConfig:
    return CellConfig(name=f"eq n78 {bandwidth_mhz}MHz", band_name="n78",
                      bandwidth_mhz=bandwidth_mhz, scs_khz=30,
                      max_modulation=max_modulation,
                      tdd=TddPattern.from_string("DDDSU"))


def _fdd_cell() -> CellConfig:
    return CellConfig(name="eq n25 20MHz", band_name="n25", bandwidth_mhz=20,
                      scs_khz=15, max_modulation=Modulation.QAM256, tdd=None,
                      n_rb_override=51)


def _run_single(simulate, cell: CellConfig, mean_sinr_db: float, seed: int,
                engine: str, **params) -> bytes:
    channel = SyntheticChannel(mean_sinr_db=mean_sinr_db).realize(
        DURATION_S, rng=np.random.default_rng(seed))
    trace = simulate(cell, channel, rng=np.random.default_rng(seed),
                     params=SimParams(engine=engine, **params))
    return _trace_bytes(trace)


SINGLE_UE_CASES = {
    # High SINR: long no-retx segments, the fast path's best case.
    "tdd-256qam-good": (_tdd_cell(Modulation.QAM256), 22.0, {}),
    # Mid SINR: OLLA converges to ~10% BLER, fragmented segments.
    "tdd-256qam-mid": (_tdd_cell(Modulation.QAM256), 12.0, {}),
    # Poor SINR: retx windows dominate, mostly the scalar fallback.
    "tdd-256qam-poor": (_tdd_cell(Modulation.QAM256), 2.0, {}),
    "tdd-64qam": (_tdd_cell(Modulation.QAM64, bandwidth_mhz=60), 15.0, {}),
    "fdd-256qam": (_fdd_cell(), 18.0, {}),
    "tdd-no-olla": (_tdd_cell(Modulation.QAM256), 14.0,
                    {"olla_enabled": False}),
}


@pytest.mark.parametrize("case", sorted(SINGLE_UE_CASES))
@pytest.mark.parametrize("seed", [3, 1234])
def test_single_ue_downlink_byte_identical(case: str, seed: int):
    cell, mean_sinr_db, params = SINGLE_UE_CASES[case]
    vec = _run_single(simulate_downlink, cell, mean_sinr_db, seed,
                      "vectorized", **params)
    ref = _run_single(simulate_downlink, cell, mean_sinr_db, seed,
                      "reference", **params)
    assert vec == ref


@pytest.mark.parametrize("seed", [3, 1234])
def test_uplink_byte_identical(seed: int):
    cell = _tdd_cell(Modulation.QAM256)
    vec = _run_single(simulate_uplink, cell, 16.0, seed, "vectorized")
    ref = _run_single(simulate_uplink, cell, 16.0, seed, "reference")
    assert vec == ref


def _run_multi(engine: str, scheduler_cls, seed: int, n_ues: int = 3) -> bytes:
    cell = _tdd_cell(Modulation.QAM256)
    channels = [
        SyntheticChannel(mean_sinr_db=22.0 - 4.0 * k).realize(
            DURATION_S, rng=np.random.default_rng(seed + 100 + k))
        for k in range(n_ues)
    ]
    traces = simulate_downlink_multi(cell, channels, scheduler_cls(),
                                     rng=np.random.default_rng(seed),
                                     params=SimParams(engine=engine))
    return b"".join(_trace_bytes(t) for t in traces)


@pytest.mark.parametrize("scheduler_cls",
                         [ProportionalFairScheduler, RoundRobinScheduler],
                         ids=lambda cls: cls.__name__)
@pytest.mark.parametrize("seed", [7, 991])
def test_multi_ue_byte_identical(scheduler_cls, seed: int):
    # A fresh scheduler per engine run: schedulers carry EWMA state.
    assert _run_multi("vectorized", scheduler_cls, seed) == \
        _run_multi("reference", scheduler_cls, seed)


def test_randomized_configs_byte_identical():
    """Seeded random sweep over the config space the matrix interpolates."""
    meta_rng = np.random.default_rng(20240805)
    for _ in range(6):
        tdd = bool(meta_rng.integers(2))
        cell = (_tdd_cell(Modulation.QAM256 if meta_rng.integers(2)
                          else Modulation.QAM64)
                if tdd else _fdd_cell())
        mean_sinr_db = float(meta_rng.uniform(0.0, 28.0))
        seed = int(meta_rng.integers(1, 2**31))
        params = {"olla_enabled": bool(meta_rng.integers(2)),
                  "cqi_noise_db": float(meta_rng.uniform(0.0, 1.5))}
        vec = _run_single(simulate_downlink, cell, mean_sinr_db, seed,
                          "vectorized", **params)
        ref = _run_single(simulate_downlink, cell, mean_sinr_db, seed,
                          "reference", **params)
        assert vec == ref, (tdd, mean_sinr_db, seed, params)
