"""Tests for repro.ran.gnb — the cell facade."""

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.ran.gnb import Gnb
from repro.ran.scheduler import RoundRobinScheduler


@pytest.fixture
def gnb(cell_90mhz):
    return Gnb(cell_90mhz, scheduler=RoundRobinScheduler())


class TestAttachment:
    def test_attach_assigns_ids(self, gnb):
        a = gnb.attach(SyntheticChannel(mean_sinr_db=20.0))
        b = gnb.attach(SyntheticChannel(mean_sinr_db=18.0))
        assert (a, b) == (0, 1)
        assert gnb.n_ues == 2

    def test_detach(self, gnb):
        ue_id = gnb.attach(SyntheticChannel())
        gnb.detach(ue_id)
        assert gnb.n_ues == 0

    def test_detach_unknown(self, gnb):
        with pytest.raises(KeyError):
            gnb.detach(42)


class TestRuns:
    def test_single_ue_path(self, gnb, rng):
        ue_id = gnb.attach(SyntheticChannel(mean_sinr_db=22.0))
        traces = gnb.run_downlink(2.0, rng=rng)
        assert set(traces) == {ue_id}
        assert traces[ue_id].mean_throughput_mbps > 100.0

    def test_multi_ue_shares_cell(self, gnb, rng):
        a = gnb.attach(SyntheticChannel(mean_sinr_db=22.0))
        b = gnb.attach(SyntheticChannel(mean_sinr_db=22.0))
        traces = gnb.run_downlink(2.0, rng=rng)
        assert set(traces) == {a, b}
        ratio = traces[a].mean_throughput_mbps / max(traces[b].mean_throughput_mbps, 1e-9)
        assert 0.5 < ratio < 2.0

    def test_cell_throughput_aggregates(self, gnb, rng):
        gnb.attach(SyntheticChannel(mean_sinr_db=22.0))
        gnb.attach(SyntheticChannel(mean_sinr_db=22.0))
        traces = gnb.run_downlink(2.0, rng=rng)
        assert gnb.cell_throughput_mbps(traces) == pytest.approx(
            sum(t.mean_throughput_mbps for t in traces.values()))

    def test_accepts_prebuilt_realization(self, gnb, rng):
        realization = SyntheticChannel(mean_sinr_db=20.0).realize(1.0, rng=rng)
        ue_id = gnb.attach(realization)
        traces = gnb.run_downlink(1.0, rng=rng)
        assert len(traces[ue_id]) == realization.n_slots

    def test_run_without_ues(self, gnb, rng):
        with pytest.raises(RuntimeError):
            gnb.run_downlink(1.0, rng=rng)

    def test_duration_validation(self, gnb, rng):
        gnb.attach(SyntheticChannel())
        with pytest.raises(ValueError):
            gnb.run_downlink(0.0, rng=rng)
