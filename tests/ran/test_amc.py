"""Tests for repro.ran.amc — BLER model, OLLA, rank adaptation."""

import numpy as np
import pytest

from repro.nr.mcs import MCS_TABLE_256QAM
from repro.ran.amc import BlerModel, LinkAdapter, Olla, RankAdapter


class TestBlerModel:
    def test_monotone_in_mcs_efficiency(self):
        model = BlerModel()
        probabilities = model.error_probability(np.array([1.0, 3.0, 5.0]), 15.0)
        assert np.all(np.diff(probabilities) > 0)

    def test_monotone_in_sinr(self):
        model = BlerModel()
        probabilities = np.array([float(model.error_probability(3.0, s)) for s in (5.0, 10.0, 20.0)])
        assert np.all(np.diff(probabilities) < 0)

    def test_scheduling_far_below_capacity_is_safe(self):
        model = BlerModel()
        assert float(model.error_probability(1.0, 25.0)) < 0.001

    def test_scheduling_above_capacity_fails(self):
        model = BlerModel()
        assert float(model.error_probability(6.0, 5.0)) > 0.99

    def test_draw_errors_rate(self, rng):
        model = BlerModel()
        # Find the efficiency with p ~ 0.5 at 15 dB and check the draws.
        eff = float(0.6 * np.log2(1 + 10 ** 1.5)) + model.bias
        errors = model.draw_errors(np.full(50_000, eff), np.full(50_000, 15.0), rng)
        assert errors.mean() == pytest.approx(0.5, abs=0.02)


class TestOlla:
    def test_asymmetric_steps(self):
        olla = Olla(target_bler=0.1, step_down=0.9)
        assert olla.step_up == pytest.approx(0.1)

    def test_ack_nack_updates(self):
        olla = Olla(step_down=0.5)
        olla.update(acked=False)
        assert olla.delta == pytest.approx(-0.5)
        olla.update(acked=True)
        assert olla.delta == pytest.approx(-0.5 + 0.5 / 9)

    def test_zero_drift_at_target(self):
        # Deterministic ACK/NACK stream at exactly the target rate has
        # zero net drift (the equilibrium property; the closed BLER loop
        # provides the restoring force in the full simulator).
        olla = Olla(target_bler=0.1, step_down=0.2)
        for i in range(1000):
            olla.update(acked=(i % 10 != 0))
        assert abs(olla.delta) < 0.25

    def test_biased_stream_drifts(self):
        olla = Olla(target_bler=0.1, step_down=0.2)
        for _ in range(100):
            olla.update(acked=False)
        assert olla.delta == olla.min_offset

    def test_batch_matches_sequential(self):
        sequential = Olla(step_down=0.3)
        batch = Olla(step_down=0.3)
        for _ in range(7):
            sequential.update(True)
        for _ in range(2):
            sequential.update(False)
        batch.update_batch(7, 2)
        assert batch.delta == pytest.approx(sequential.delta)

    def test_offset_rounding(self):
        olla = Olla()
        olla.delta = -1.4
        assert olla.offset == -1
        olla.delta = -1.6
        assert olla.offset == -2

    def test_clamping(self):
        olla = Olla(step_down=5.0, min_offset=-10.0)
        for _ in range(10):
            olla.update(False)
        assert olla.delta == -10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Olla(target_bler=0.0)
        with pytest.raises(ValueError):
            Olla(step_down=0.0)
        with pytest.raises(ValueError):
            Olla().update_batch(-1, 0)


class TestRankAdapter:
    def test_thresholds(self):
        adapter = RankAdapter(thresholds_db=(5.0, 11.0, 17.0), hysteresis_db=0.0)
        assert adapter.rank_for_sinr(0.0) == 1
        assert adapter.rank_for_sinr(6.0) == 2
        assert adapter.rank_for_sinr(12.0) == 3
        assert adapter.rank_for_sinr(20.0) == 4

    def test_bias_shifts_thresholds(self):
        neutral = RankAdapter(hysteresis_db=0.0)
        biased = RankAdapter(bias_db=5.0, hysteresis_db=0.0)
        assert neutral.rank_for_sinr(18.0) == 4
        assert biased.rank_for_sinr(18.0) == 3

    def test_hysteresis_keeps_rank(self):
        adapter = RankAdapter(thresholds_db=(5.0, 11.0, 17.0), hysteresis_db=2.0)
        # 16 dB is below the rank-4 threshold, but a UE already at rank 4
        # keeps it within the hysteresis margin.
        assert adapter.rank_for_sinr(16.0, previous_rank=4) == 4
        assert adapter.rank_for_sinr(16.0, previous_rank=1) == 3

    def test_max_layers_cap(self):
        adapter = RankAdapter(max_layers=2)
        assert adapter.rank_for_sinr(30.0) == 2

    def test_rank_series_sequential(self):
        adapter = RankAdapter(hysteresis_db=1.0)
        sinr = np.array([20.0, 20.0, 16.5, 10.0, 20.0])
        ranks = adapter.rank_series(sinr)
        assert ranks[0] == 4
        assert ranks[2] == 4  # hysteresis holds
        assert ranks[3] < 4

    def test_validation(self):
        with pytest.raises(ValueError):
            RankAdapter(thresholds_db=(10.0, 5.0, 17.0))
        with pytest.raises(ValueError):
            RankAdapter(max_layers=0)


class TestLinkAdapter:
    def test_select_rank_updates_state(self):
        adapter = LinkAdapter(MCS_TABLE_256QAM)
        assert adapter.select_rank(25.0) == 4
        assert adapter.current_rank == 4

    def test_select_mcs_uses_olla(self, cell_90mhz):
        adapter = LinkAdapter(MCS_TABLE_256QAM)
        base = adapter.select_mcs(cell_90mhz.mapper, 10)
        adapter.olla.delta = -3.0
        assert adapter.select_mcs(cell_90mhz.mapper, 10) == max(0, base - 3)
