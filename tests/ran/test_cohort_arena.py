"""CohortArena: layout, row views, byte identity and schema guards.

The arena's whole value rests on one claim: a row view is
indistinguishable — byte for byte, through every serializer — from a
trace that owns its arrays.  These tests pin that claim, the layout
round-trip the shm transport depends on, and the failure modes
(schema mismatch, short buffer, foreign traces) that must stay loud.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nr.numerology import Numerology
from repro.xcal.arena import (ARENA_SCHEMA_VERSION, CohortArena, arena_nbytes,
                              column_dtype)
from repro.xcal.io import npz_bytes, trace_to_arrays
from repro.xcal.records import (TRACE_COLUMNS, SlotTrace, TraceMetadata,
                                _BOOL_COLUMNS, _INT_COLUMNS)


def _fill_row(trace: SlotTrace, seed: int) -> None:
    rng = np.random.default_rng(seed)
    n = len(trace)
    trace.sinr_db[:] = rng.normal(12.0, 4.0, n)
    trace.mcs_index[:] = rng.integers(0, 28, n)
    trace.tbs_bits[:] = rng.integers(0, 300_000, n)
    trace.delivered_bits[:] = trace.tbs_bits
    trace.scheduled[:] = rng.random(n) < 0.6
    trace.error[:] = rng.random(n) < 0.1


def _bytes_of(trace: SlotTrace) -> bytes:
    return npz_bytes(trace_to_arrays(trace), {"mu": int(trace.mu)})


class TestLayout:
    def test_nbytes_covers_all_columns(self):
        n_cols, n_slots = 3, 100
        total = arena_nbytes(n_cols, n_slots)
        floor = sum(n_cols * n_slots * column_dtype(name).itemsize
                    for name in TRACE_COLUMNS)
        assert floor <= total < floor + 8 * len(TRACE_COLUMNS)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            arena_nbytes(0, 10)
        with pytest.raises(ValueError):
            arena_nbytes(2, -1)

    def test_all_views_share_one_base(self):
        arena = CohortArena.allocate(4, 50)
        for name in TRACE_COLUMNS:
            assert arena.columns[name].base is arena.base
        trace = arena.trace(2)
        # numpy collapses view chains: a row of a column block reports
        # the shared uint8 base, not the block, as its .base.
        assert trace.sinr_db.base is arena.base

    def test_dtypes_match_owning_trace(self):
        arena = CohortArena.allocate(2, 10)
        owned = SlotTrace.empty(10)
        for name in TRACE_COLUMNS:
            assert arena.columns[name].dtype == owned.column(name).dtype, name

    def test_slot_and_time_prefilled(self):
        arena = CohortArena.allocate(3, 20, mu=Numerology.MU_1)
        owned = SlotTrace.empty(20, mu=Numerology.MU_1)
        for c in range(3):
            np.testing.assert_array_equal(arena.columns["slot"][c], owned.slot)
            np.testing.assert_array_equal(arena.columns["time_ms"][c],
                                          owned.time_ms)


class TestRowViews:
    def test_row_serializes_byte_identical_to_owned(self):
        arena = CohortArena.allocate(3, 64)
        owned = SlotTrace.empty(64)
        _fill_row(owned, seed=5)
        arena.pack_row(1, owned)
        assert _bytes_of(arena.trace(1)) == _bytes_of(owned)

    def test_rows_are_contiguous(self):
        arena = CohortArena.allocate(4, 33)
        trace = arena.trace(3)
        for name in TRACE_COLUMNS:
            assert trace.column(name).flags.c_contiguous, name

    def test_rows_are_independent(self):
        arena = CohortArena.allocate(2, 16)
        arena.trace(0).tbs_bits[:] = 111
        arena.trace(1).tbs_bits[:] = 222
        assert set(arena.trace(0).tbs_bits) == {111}
        assert set(arena.trace(1).tbs_bits) == {222}

    def test_row_index_of(self):
        arena = CohortArena.allocate(5, 40)
        for c in (0, 2, 4):
            assert arena.row_index_of(arena.trace(c)) == c
        assert arena.row_index_of(SlotTrace.empty(40)) is None
        other = CohortArena.allocate(5, 40)
        assert arena.row_index_of(other.trace(1)) is None

    def test_trace_row_out_of_range(self):
        arena = CohortArena.allocate(2, 8)
        with pytest.raises(IndexError):
            arena.trace(2)

    def test_pack_row_length_mismatch(self):
        arena = CohortArena.allocate(2, 8)
        with pytest.raises(ValueError):
            arena.pack_row(0, SlotTrace.empty(9))


class TestLayoutRoundTrip:
    def test_from_layout_rebuilds_identical_views(self):
        writer = CohortArena.allocate(3, 32)
        owned = SlotTrace.empty(32)
        _fill_row(owned, seed=9)
        writer.pack_row(2, owned)
        buffer = bytearray(writer.base.tobytes())
        reader = CohortArena.from_layout(buffer, writer.layout())
        assert _bytes_of(reader.trace(2)) == _bytes_of(owned)

    def test_schema_mismatch_is_loud(self):
        arena = CohortArena.allocate(2, 8)
        layout = arena.layout()
        layout["schema"] = ARENA_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema mismatch"):
            CohortArena.from_layout(bytearray(arena.base.tobytes()), layout)

    def test_size_mismatch_is_loud(self):
        arena = CohortArena.allocate(2, 8)
        layout = arena.layout()
        layout["nbytes"] = layout["nbytes"] + 8
        with pytest.raises(ValueError, match="bytes"):
            CohortArena.from_layout(bytearray(arena.base.tobytes()), layout)

    def test_short_buffer_rejected(self):
        arena = CohortArena.allocate(2, 8)
        short = bytearray(arena.base.tobytes()[:-16])
        with pytest.raises(ValueError, match="holds"):
            CohortArena.from_layout(short, arena.layout())


class TestRelease:
    def test_release_drops_references_but_not_live_traces(self):
        arena = CohortArena.allocate(2, 8)
        trace = arena.trace(0)
        trace.tbs_bits[:] = 77
        arena.release()
        assert arena.base is None and arena.columns == {}
        # The row view holds its own reference chain to the buffer.
        assert set(trace.tbs_bits) == {77}
