"""Tests for repro.ran.ca, repro.ran.lte and repro.ran.nsa."""

import numpy as np
import pytest

from repro.channel.blockage import BlockageProcess
from repro.channel.model import SyntheticChannel
from repro.nr.tdd import TddPattern
from repro.ran.ca import AggregatedResult, CarrierAggregation
from repro.ran.config import CellConfig
from repro.ran.lte import LTE_NRB, LteCellConfig, simulate_lte_uplink
from repro.ran.nsa import NsaUplink
from repro.ran.simulator import simulate_downlink


def _cells():
    pattern = TddPattern.from_string("DDDSU")
    return [
        CellConfig(name="cc0", band_name="n41", bandwidth_mhz=100, tdd=pattern),
        CellConfig(name="cc1", band_name="n41", bandwidth_mhz=40, tdd=pattern),
    ]


class TestCarrierAggregation:
    def test_aggregate_bandwidth(self):
        ca = CarrierAggregation(carriers=_cells())
        assert ca.aggregate_bandwidth_mhz == 140.0

    def test_aggregate_exceeds_primary(self, rng):
        ca = CarrierAggregation(carriers=_cells())
        base = SyntheticChannel(mean_sinr_db=20.0)
        result = ca.simulate_downlink(base, 3.0, rng=rng)
        primary_alone = simulate_downlink(_cells()[0], base.realize(3.0, rng=np.random.default_rng(7)),
                                          rng=np.random.default_rng(7))
        assert result.mean_throughput_mbps > primary_alone.mean_throughput_mbps

    def test_per_carrier_offsets(self, rng):
        ca = CarrierAggregation(carriers=_cells(), sinr_offsets_db=[0.0, -15.0])
        result = ca.simulate_downlink(SyntheticChannel(mean_sinr_db=20.0), 3.0, rng=rng)
        # The degraded secondary contributes much less per MHz.
        primary, secondary = result.per_carrier
        per_mhz_primary = primary.mean_throughput_mbps / 100.0
        per_mhz_secondary = secondary.mean_throughput_mbps / 40.0
        assert per_mhz_secondary < 0.7 * per_mhz_primary

    def test_throughput_series_sums(self, rng):
        ca = CarrierAggregation(carriers=_cells())
        result = ca.simulate_downlink(SyntheticChannel(mean_sinr_db=18.0), 2.0, rng=rng)
        series = result.throughput_mbps(500.0)
        assert series.size == 4
        assert series.mean() == pytest.approx(result.mean_throughput_mbps, rel=0.1)

    def test_shared_blockage_hits_all_carriers(self):
        blockage = BlockageProcess(blockage_rate_hz=2.0, mean_blockage_duration_s=0.3,
                                   blockage_attenuation_db=40.0)
        ca = CarrierAggregation(carriers=_cells())
        base = SyntheticChannel(mean_sinr_db=22.0, blockage=blockage)
        result = ca.simulate_downlink(base, 5.0, rng=np.random.default_rng(3))
        series = result.throughput_mbps(100.0)
        # Common outages produce near-zero aggregate bins.
        assert series.min() < 0.15 * series.mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            CarrierAggregation(carriers=[])
        with pytest.raises(ValueError):
            CarrierAggregation(carriers=_cells(), sinr_offsets_db=[0.0])
        with pytest.raises(ValueError):
            AggregatedResult(per_carrier=[])


class TestLte:
    def test_nrb_table(self):
        assert LTE_NRB[20] == 100
        assert LTE_NRB[10] == 50

    def test_rate_monotone_in_sinr(self):
        config = LteCellConfig()
        rates = config.ul_rate_mbps(np.array([0.0, 10.0, 20.0]))
        assert np.all(np.diff(rates) > 0)

    def test_rate_capped(self):
        config = LteCellConfig(ul_max_efficiency=4.3)
        # Huge SINR saturates at the modulation ceiling.
        ceiling = 4.3 * 100 * 0.18 * (1 - 2 / 14)
        assert float(config.ul_rate_mbps(60.0)) == pytest.approx(ceiling)

    def test_lte_ul_realistic_peak(self):
        # A 20 MHz LTE UL peaks in the tens of Mbps (Fig. 10's ~72 Mbps).
        assert 50.0 < float(LteCellConfig().ul_rate_mbps(30.0)) < 80.0

    def test_simulate_applies_harq_losses(self, rng):
        config = LteCellConfig()
        series = simulate_lte_uplink(config, np.full(5000, 20.0), rng=rng, bler_target=0.1)
        clean_rate = float(config.ul_rate_mbps(20.0))
        assert series.max() == pytest.approx(clean_rate)
        assert series.mean() == pytest.approx(clean_rate * 0.95, rel=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            LteCellConfig(bandwidth_mhz=7.0)
        with pytest.raises(ValueError):
            simulate_lte_uplink(LteCellConfig(), np.ones(10), subframe_ms=0.0)


class TestNsa:
    @pytest.fixture
    def nr_cell(self):
        return CellConfig(name="nr", bandwidth_mhz=90, tdd=TddPattern.from_string("DDDSU"))

    def test_nr_only(self, nr_cell, rng):
        nsa = NsaUplink(nr_cell=nr_cell, nr_fraction=1.0)
        result = nsa.simulate(SyntheticChannel(mean_sinr_db=12.0).realize(2.0, rng=rng), rng=rng)
        assert result.nr_mean_mbps > 0
        assert result.lte_mean_mbps == 0.0

    def test_lte_only(self, nr_cell, rng):
        nsa = NsaUplink(nr_cell=nr_cell, nr_fraction=0.0)
        result = nsa.simulate(SyntheticChannel(mean_sinr_db=5.0).realize(2.0, rng=rng), rng=rng)
        assert result.nr_mean_mbps == 0.0
        assert result.lte_mean_mbps > 0

    def test_split_bearer_uses_both(self, nr_cell, rng):
        nsa = NsaUplink(nr_cell=nr_cell, nr_fraction=0.5)
        result = nsa.simulate(SyntheticChannel(mean_sinr_db=10.0).realize(2.0, rng=rng), rng=rng)
        assert result.nr_mean_mbps > 0
        assert result.lte_mean_mbps > 0
        assert result.total_mean_mbps == pytest.approx(
            result.nr_mean_mbps + result.lte_mean_mbps)

    def test_lte_offset_improves_lte_leg(self, nr_cell):
        channel = SyntheticChannel(mean_sinr_db=0.0).realize(2.0, rng=np.random.default_rng(5))
        weak = NsaUplink(nr_cell=nr_cell, nr_fraction=0.0, lte_sinr_offset_db=5.0).simulate(
            channel, rng=np.random.default_rng(6))
        strong = NsaUplink(nr_cell=nr_cell, nr_fraction=0.0, lte_sinr_offset_db=20.0).simulate(
            channel, rng=np.random.default_rng(6))
        assert strong.lte_mean_mbps > weak.lte_mean_mbps

    def test_fraction_validation(self, nr_cell):
        with pytest.raises(ValueError):
            NsaUplink(nr_cell=nr_cell, nr_fraction=1.5)
