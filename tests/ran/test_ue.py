"""Tests for repro.ran.ue."""

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.cqi import CQI_TABLE_2
from repro.ran.ue import UserEquipment


@pytest.fixture
def ue(good_channel):
    return UserEquipment(ue_id=0, channel=good_channel)


class TestMeasurement:
    def test_delayed_measurement(self, good_channel):
        ue = UserEquipment(ue_id=0, channel=good_channel, cqi_delay_slots=8,
                           cqi_measurement_noise_db=0.0)
        # The report at slot 100 reflects the channel 8 slots earlier.
        assert ue.measured_sinr_db(100) == pytest.approx(float(good_channel.sinr_db[92]))

    def test_delay_clamped_at_start(self, good_channel):
        ue = UserEquipment(ue_id=0, channel=good_channel, cqi_delay_slots=8,
                           cqi_measurement_noise_db=0.0)
        assert ue.measured_sinr_db(3) == pytest.approx(float(good_channel.sinr_db[0]))

    def test_slot_clamped_at_end(self, good_channel):
        ue = UserEquipment(ue_id=0, channel=good_channel, cqi_measurement_noise_db=0.0)
        out_of_range = good_channel.n_slots + 100
        assert ue.measured_sinr_db(out_of_range) == pytest.approx(
            float(good_channel.sinr_db[-1]))

    def test_noise_applied_with_rng(self, good_channel, rng):
        ue = UserEquipment(ue_id=0, channel=good_channel, cqi_measurement_noise_db=2.0)
        clean = ue.measured_sinr_db(50)
        noisy = ue.measured_sinr_db(50, rng)
        assert noisy != clean

    def test_report_cqi(self, ue, rng):
        cqi, sinr = ue.report_cqi(40, CQI_TABLE_2, rng)
        assert 0 <= cqi <= 15
        assert np.isfinite(sinr)

    def test_good_channel_reports_high(self, rng):
        channel = SyntheticChannel(mean_sinr_db=30.0, fast_sigma_db=0.5,
                                   slow_sigma_db=0.5).realize(1.0, rng=rng)
        ue = UserEquipment(ue_id=1, channel=channel, cqi_measurement_noise_db=0.0)
        cqi, _ = ue.report_cqi(500, CQI_TABLE_2)
        assert cqi >= 13

    def test_validation(self, good_channel):
        with pytest.raises(ValueError):
            UserEquipment(ue_id=0, channel=good_channel, cqi_delay_slots=-1)
        with pytest.raises(ValueError):
            UserEquipment(ue_id=0, channel=good_channel, cqi_measurement_noise_db=-1.0)
