"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.video.abr import AbrContext, Bola
from repro.apps.video.buffer import PlaybackBuffer
from repro.apps.video.content import PAPER_LADDER_MIDBAND
from repro.core.qoe import stall_percentage
from repro.core.variability import block_averages, scaled_variability
from repro.nr.cqi import CQI_TABLE_1, CQI_TABLE_2
from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM
from repro.nr.signal import rsrq_from_sinr, sinr_to_cqi
from repro.nr.tbs import transport_block_size
from repro.nr.tdd import SlotType, SpecialSlotConfig, TddPattern

finite_floats = st.floats(min_value=-50.0, max_value=60.0, allow_nan=False)


class TestTbsProperties:
    @given(
        n_prb=st.integers(min_value=1, max_value=273),
        mcs=st.integers(min_value=0, max_value=27),
        layers=st.integers(min_value=1, max_value=4),
        symbols=st.integers(min_value=2, max_value=14),
    )
    @settings(max_examples=200, deadline=None)
    def test_tbs_nonnegative_and_byte_friendly(self, n_prb, mcs, layers, symbols):
        tbs = transport_block_size(n_prb, MCS_TABLE_256QAM[mcs], layers, symbols=symbols)
        assert tbs >= 0
        if tbs > 3824:
            assert (tbs + 24) % 8 == 0
        elif tbs > 0:
            from repro.nr.tbs import TBS_TABLE_5_1_3_2_1

            assert tbs in TBS_TABLE_5_1_3_2_1

    @given(
        n_prb=st.integers(min_value=1, max_value=270),
        mcs=st.integers(min_value=0, max_value=27),
        layers=st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_tbs_monotone_in_prbs(self, n_prb, mcs, layers):
        entry = MCS_TABLE_256QAM[mcs]
        assert transport_block_size(n_prb + 1, entry, layers) >= \
            transport_block_size(n_prb, entry, layers)

    @given(
        n_prb=st.integers(min_value=1, max_value=273),
        mcs=st.integers(min_value=0, max_value=27),
        layers=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_tbs_monotone_in_layers(self, n_prb, mcs, layers):
        entry = MCS_TABLE_256QAM[mcs]
        assert transport_block_size(n_prb, entry, layers + 1) >= \
            transport_block_size(n_prb, entry, layers)


class TestSignalProperties:
    @given(sinr=finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_cqi_in_range(self, sinr):
        for table in (CQI_TABLE_1, CQI_TABLE_2):
            cqi = int(sinr_to_cqi(sinr, table))
            assert 0 <= cqi <= 15

    @given(a=finite_floats, b=finite_floats)
    @settings(max_examples=200, deadline=None)
    def test_cqi_monotone(self, a, b):
        low, high = min(a, b), max(a, b)
        assert int(sinr_to_cqi(low, CQI_TABLE_2)) <= int(sinr_to_cqi(high, CQI_TABLE_2))

    @given(sinr=finite_floats, load=st.floats(min_value=0.05, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_rsrq_bounded(self, sinr, load):
        rsrq = float(rsrq_from_sinr(sinr, load=load))
        # RSRQ can never exceed the zero-load single-RE bound of -10log10(12*load).
        assert rsrq <= -10.0 * np.log10(12.0 * load) + 1e-9


class TestMcsLookupProperties:
    @given(eff=st.floats(min_value=0.0, max_value=9.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_highest_index_below_is_feasible(self, eff):
        for table in (MCS_TABLE_64QAM, MCS_TABLE_256QAM):
            idx = table.highest_index_below(eff)
            assert 0 <= idx <= table.max_index
            if eff >= table.efficiencies[0]:
                assert table.efficiencies[idx] <= eff + 1e-12

    @given(eff=st.floats(min_value=0.3, max_value=9.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_highest_index_below_is_optimal(self, eff):
        table = MCS_TABLE_256QAM
        idx = table.highest_index_below(eff)
        feasible = table.efficiencies[table.efficiencies <= eff]
        if feasible.size:
            assert table.efficiencies[idx] == feasible.max()


class TestVariabilityProperties:
    @given(
        data=st.lists(st.floats(min_value=-1e4, max_value=1e4, allow_nan=False),
                      min_size=8, max_size=256),
        block=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=150, deadline=None)
    def test_variability_nonnegative(self, data, block):
        v = scaled_variability(np.array(data), block)
        assert np.isnan(v) or v >= 0.0

    @given(
        data=st.lists(st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
                      min_size=8, max_size=128),
        shift=st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_variability_shift_invariant(self, data, shift):
        samples = np.array(data)
        v1 = scaled_variability(samples, 2)
        v2 = scaled_variability(samples + shift, 2)
        assert (np.isnan(v1) and np.isnan(v2)) or v1 == pytest.approx(v2, abs=1e-6)

    @given(
        data=st.lists(st.floats(min_value=0.0, max_value=1e3, allow_nan=False),
                      min_size=4, max_size=64),
        scale=st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=150, deadline=None)
    def test_variability_scales_linearly(self, data, scale):
        samples = np.array(data)
        v1 = scaled_variability(samples, 1)
        v2 = scaled_variability(samples * scale, 1)
        if not np.isnan(v1):
            assert v2 == pytest.approx(scale * v1, rel=1e-6, abs=1e-9)

    @given(data=st.lists(st.floats(min_value=-100, max_value=100, allow_nan=False),
                         min_size=4, max_size=64),
           block=st.integers(min_value=1, max_value=4))
    @settings(max_examples=150, deadline=None)
    def test_block_average_preserves_mean(self, data, block):
        samples = np.array(data)
        m = samples.size // block
        if m == 0:
            return
        averaged = block_averages(samples, block)
        assert averaged.mean() == pytest.approx(samples[: m * block].mean(), abs=1e-6)


class TestTddProperties:
    @st.composite
    def patterns(draw):
        length = draw(st.integers(min_value=2, max_value=12))
        chars = draw(st.lists(st.sampled_from("DUS"), min_size=length, max_size=length))
        if "D" not in chars:
            chars[0] = "D"
        if "U" not in chars and "S" not in chars:
            chars[-1] = "U"
        return TddPattern.from_string("".join(chars))

    @given(pattern=patterns())
    @settings(max_examples=100, deadline=None)
    def test_fractions_bounded(self, pattern):
        assert 0.0 <= pattern.dl_symbol_fraction <= 1.0
        assert 0.0 <= pattern.ul_symbol_fraction <= 1.0
        total = pattern.dl_symbol_fraction + pattern.ul_symbol_fraction
        assert total <= 1.0  # guard symbols are lost

    @given(pattern=patterns(), slot=st.integers(min_value=0, max_value=100))
    @settings(max_examples=100, deadline=None)
    def test_next_slot_is_correct_type(self, pattern, slot):
        for direction in (SlotType.DL, SlotType.UL):
            try:
                idx = pattern.next_slot_of(direction, slot)
            except ValueError:
                continue
            assert idx >= slot
            kind = pattern.slot_type(idx)
            assert kind is direction or kind is SlotType.SPECIAL


class TestBufferProperties:
    @given(ops=st.lists(st.tuples(st.booleans(),
                                  st.floats(min_value=0.01, max_value=10.0)),
                        min_size=1, max_size=60))
    @settings(max_examples=150, deadline=None)
    def test_buffer_invariants(self, ops):
        buffer = PlaybackBuffer(capacity_s=30.0)
        for is_append, amount in ops:
            if is_append:
                buffer.append(amount)
            else:
                buffer.drain(amount)
            assert buffer.level_s >= 0.0
            assert buffer.total_stall_s >= 0.0
        assert buffer.n_stalls <= sum(1 for a, _ in ops if not a)


class TestBolaProperties:
    @given(
        buffer_s=st.floats(min_value=0.0, max_value=30.0, allow_nan=False),
        estimate=st.floats(min_value=1.0, max_value=5000.0, allow_nan=False),
    )
    @settings(max_examples=200, deadline=None)
    def test_choice_always_valid(self, buffer_s, estimate):
        bola = Bola(PAPER_LADDER_MIDBAND)
        context = AbrContext(
            buffer_level_s=buffer_s, buffer_capacity_s=30.0, chunk_s=4.0,
            throughput_estimate_mbps=estimate, last_level=0, chunk_index=0,
        )
        level = bola.choose(context)
        assert 0 <= level <= PAPER_LADDER_MIDBAND.max_level


class TestQoeProperties:
    @given(stall=st.floats(min_value=0.0, max_value=1e4),
           playback=st.floats(min_value=0.0, max_value=1e4))
    @settings(max_examples=200, deadline=None)
    def test_stall_percentage_bounded(self, stall, playback):
        value = stall_percentage(stall, playback)
        assert 0.0 <= value <= 100.0
