"""Tests for repro.experiments.plots — ASCII figure rendering."""

import pytest

from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult
from repro.experiments.plots import render_plots


@pytest.fixture(scope="module")
def rendered():
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            result = run_experiment(experiment_id, quick=True)
            cache[experiment_id] = render_plots(result)
        return cache[experiment_id]

    return get


class TestRenderings:
    def test_fig11_bar_chart(self, rendered):
        block = rendered("fig11")
        assert "DDDSU" in block
        assert "█" in block

    def test_fig02_bar_chart(self, rendered):
        block = rendered("fig02")
        assert "V_Sp" in block and "O_Sp_100" in block

    def test_fig03_cdfs(self, rendered):
        block = rendered("fig03")
        assert "REs" in block
        assert "•" in block

    def test_fig12_profiles(self, rendered):
        block = rendered("fig12")
        assert "V(t)" in block
        assert "log2" in block

    def test_fig13_sparklines(self, rendered):
        block = rendered("fig13")
        assert "tput" in block and "mimo" in block
        assert any(tick in block for tick in "▁▂▃▄▅▆▇█")

    def test_fig16_sparklines(self, rendered):
        block = rendered("fig16")
        assert "buffer" in block

    def test_unregistered_returns_empty(self):
        result = ExperimentResult("eq32", "x", rows=["y"], data={})
        assert render_plots(result) == ""

    def test_cli_plot_flag(self, capsys):
        from repro.__main__ import main

        assert main(["run", "fig11", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "█" in out
