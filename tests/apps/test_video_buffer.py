"""Tests for repro.apps.video.buffer."""

import pytest

from repro.apps.video.buffer import PlaybackBuffer


class TestBuffer:
    def test_append_and_drain(self):
        buffer = PlaybackBuffer(capacity_s=30.0)
        buffer.append(4.0)
        assert buffer.level_s == 4.0
        stall = buffer.drain(2.0)
        assert stall == 0.0
        assert buffer.level_s == 2.0

    def test_stall_when_dry(self):
        buffer = PlaybackBuffer()
        buffer.append(1.0)
        stall = buffer.drain(3.0)
        assert stall == pytest.approx(2.0)
        assert buffer.total_stall_s == pytest.approx(2.0)
        assert buffer.n_stalls == 1
        assert buffer.is_empty

    def test_contiguous_stall_counts_once(self):
        buffer = PlaybackBuffer()
        buffer.drain(1.0)
        buffer.drain(1.0)
        assert buffer.n_stalls == 1
        assert buffer.total_stall_s == 2.0

    def test_append_ends_stall_event(self):
        buffer = PlaybackBuffer()
        buffer.drain(1.0)
        buffer.append(4.0)
        buffer.drain(5.0)
        assert buffer.n_stalls == 2

    def test_overflow_check(self):
        buffer = PlaybackBuffer(capacity_s=10.0)
        buffer.append(8.0)
        assert buffer.would_overflow(4.0)
        assert not buffer.would_overflow(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PlaybackBuffer(capacity_s=0.0)
        buffer = PlaybackBuffer()
        with pytest.raises(ValueError):
            buffer.append(0.0)
        with pytest.raises(ValueError):
            buffer.drain(-1.0)
