"""Tests for repro.apps.iperf."""

import numpy as np
import pytest

from repro.apps.iperf import run_iperf_dl, run_iperf_ul


class TestIperfDl:
    def test_goodput_below_phy(self, cell_90mhz, good_channel, rng):
        result = run_iperf_dl(cell_90mhz, good_channel, rng=rng)
        assert result.mean_goodput_mbps < result.trace.mean_throughput_mbps

    def test_goodput_scaling(self, cell_90mhz, good_channel, rng):
        result = run_iperf_dl(cell_90mhz, good_channel, rng=rng, protocol_efficiency=0.9)
        assert result.mean_goodput_mbps == pytest.approx(
            0.9 * result.trace.mean_throughput_mbps)

    def test_interval_rows(self, cell_90mhz, good_channel, rng):
        result = run_iperf_dl(cell_90mhz, good_channel, rng=rng, interval_s=1.0)
        assert result.goodput_mbps.shape == (3,)
        rows = result.report_rows()
        assert len(rows) == 4  # 3 intervals + total
        assert "total" in rows[-1]

    def test_transferred_bytes(self, cell_90mhz, good_channel, rng):
        result = run_iperf_dl(cell_90mhz, good_channel, rng=rng)
        expected = result.trace.total_bits * result.protocol_efficiency / 8e6
        assert result.transferred_mbytes == pytest.approx(expected)

    def test_validation(self, cell_90mhz, good_channel, rng):
        with pytest.raises(ValueError):
            run_iperf_dl(cell_90mhz, good_channel, rng=rng, interval_s=0.0)
        with pytest.raises(ValueError):
            run_iperf_dl(cell_90mhz, good_channel, rng=rng, protocol_efficiency=0.0)


class TestIperfUl:
    def test_ul_slower(self, cell_90mhz, good_channel):
        dl = run_iperf_dl(cell_90mhz, good_channel, rng=np.random.default_rng(1))
        ul = run_iperf_ul(cell_90mhz, good_channel, rng=np.random.default_rng(1))
        assert ul.mean_goodput_mbps < dl.mean_goodput_mbps

    def test_ul_validation(self, cell_90mhz, good_channel, rng):
        with pytest.raises(ValueError):
            run_iperf_ul(cell_90mhz, good_channel, rng=rng, interval_s=-1.0)
