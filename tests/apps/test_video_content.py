"""Tests for repro.apps.video.content."""

import numpy as np
import pytest

from repro.apps.video.content import (
    BitrateLadder,
    PAPER_LADDER_MIDBAND,
    PAPER_LADDER_MMWAVE,
    QualityLevel,
    Video,
)


class TestQualityLevel:
    def test_chunk_bits(self):
        level = QualityLevel(level=4, bitrate_mbps=400.0)
        assert level.chunk_bits(4.0) == pytest.approx(1.6e9)

    def test_validation(self):
        with pytest.raises(ValueError):
            QualityLevel(level=-1, bitrate_mbps=10.0)
        with pytest.raises(ValueError):
            QualityLevel(level=0, bitrate_mbps=0.0)
        with pytest.raises(ValueError):
            QualityLevel(level=0, bitrate_mbps=10.0).chunk_bits(0.0)


class TestLadder:
    def test_paper_midband_ladder(self):
        # §6's seven levels: ~30..750 Mbps.
        assert len(PAPER_LADDER_MIDBAND) == 7
        assert PAPER_LADDER_MIDBAND.min_bitrate_mbps == 30.0
        assert PAPER_LADDER_MIDBAND.max_bitrate_mbps == 750.0

    def test_paper_mmwave_ladder(self):
        # §7's scaled-up ladder: 400 Mbps..2.8 Gbps.
        assert PAPER_LADDER_MMWAVE.max_bitrate_mbps == 2800.0
        assert PAPER_LADDER_MMWAVE.min_bitrate_mbps == 400.0

    def test_utilities_bola_form(self):
        utilities = PAPER_LADDER_MIDBAND.utilities
        assert utilities[0] == 0.0
        assert utilities[-1] == pytest.approx(np.log(750 / 30))
        assert np.all(np.diff(utilities) > 0)

    def test_highest_below(self):
        assert PAPER_LADDER_MIDBAND.highest_below(500.0) == 4  # 400 Mbps
        assert PAPER_LADDER_MIDBAND.highest_below(29.0) == 0   # clamps
        assert PAPER_LADDER_MIDBAND.highest_below(10_000.0) == 6

    def test_unsorted_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder([100.0, 50.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BitrateLadder([])

    def test_index_bounds(self):
        with pytest.raises(IndexError):
            PAPER_LADDER_MIDBAND[7]

    def test_labels(self):
        ladder = BitrateLadder([10.0, 20.0], labels=["360p", "720p"])
        assert ladder[1].label == "720p"
        with pytest.raises(ValueError):
            BitrateLadder([10.0, 20.0], labels=["only-one"])


class TestVideo:
    def test_chunk_count(self):
        video = Video(duration_s=120.0, chunk_s=4.0)
        assert video.n_chunks == 30

    def test_chunk_bits(self):
        video = Video(duration_s=60.0, chunk_s=1.0)
        assert video.chunk_bits(0) == pytest.approx(30e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            Video(duration_s=0.0)
        with pytest.raises(ValueError):
            Video(duration_s=2.0, chunk_s=4.0)
