"""Tests for repro.apps.video.aware — the 5G-network-aware ABR extension."""

import numpy as np
import pytest

from repro.apps.video.abr import AbrContext
from repro.apps.video.aware import NetworkAwareBola, phy_instability_series
from repro.apps.video.content import PAPER_LADDER_MIDBAND


def _context(buffer_s=20.0, estimate=800.0, now_s=0.0, last_level=0):
    return AbrContext(
        buffer_level_s=buffer_s, buffer_capacity_s=30.0, chunk_s=4.0,
        throughput_estimate_mbps=estimate, last_level=last_level,
        chunk_index=5, now_s=now_s,
    )


class TestInstabilitySeries:
    def test_stable_trace_low_score(self, short_dl_trace):
        scores = phy_instability_series(short_dl_trace, window_s=1.0)
        assert scores.shape[0] >= 1
        assert np.all((0.0 <= scores) & (scores <= 1.0))

    def test_variable_channel_scores_higher(self, cell_90mhz, rng):
        from repro.channel.model import SyntheticChannel
        from repro.ran.simulator import simulate_downlink

        quiet = SyntheticChannel(mean_sinr_db=22.0, fast_sigma_db=0.5,
                                 slow_sigma_db=0.3).realize(5.0, rng=np.random.default_rng(1))
        noisy = SyntheticChannel(mean_sinr_db=22.0, fast_sigma_db=4.0,
                                 slow_sigma_db=3.0).realize(5.0, rng=np.random.default_rng(1))
        quiet_trace = simulate_downlink(cell_90mhz, quiet, rng=np.random.default_rng(2))
        noisy_trace = simulate_downlink(cell_90mhz, noisy, rng=np.random.default_rng(2))
        assert phy_instability_series(noisy_trace).mean() > \
            phy_instability_series(quiet_trace).mean()

    def test_window_validation(self, short_dl_trace):
        with pytest.raises(ValueError):
            phy_instability_series(short_dl_trace, window_s=0.0)


class TestNetworkAwareBola:
    def _aware(self, scores):
        abr = NetworkAwareBola(PAPER_LADDER_MIDBAND, np.asarray(scores, dtype=float))
        abr._in_startup = False
        return abr

    def test_quiet_channel_matches_bola(self):
        from repro.apps.video.abr import Bola

        aware = self._aware([0.0, 0.0])
        bola = Bola(PAPER_LADDER_MIDBAND)
        bola._in_startup = False
        context = _context()
        assert aware.choose(context) == bola.choose(context)

    def test_instability_discounts_estimate_in_startup(self):
        calm = NetworkAwareBola(PAPER_LADDER_MIDBAND, np.array([0.0]))
        shaky = NetworkAwareBola(PAPER_LADDER_MIDBAND, np.array([1.0]))
        # Startup picks by throughput: the discount lowers the rung.
        context = _context(buffer_s=1.0, estimate=900.0)
        assert shaky.choose(context) < calm.choose(context)

    def test_upswitch_capped_when_unstable(self):
        aware = self._aware([1.0])
        level = aware.choose(_context(buffer_s=29.0, last_level=1))
        assert level == 2  # one rung at a time, not a jump to 6

    def test_upswitch_free_when_stable(self):
        aware = self._aware([0.0])
        assert aware.choose(_context(buffer_s=29.0, last_level=1)) == 6

    def test_instability_indexed_by_time(self):
        aware = self._aware([0.0, 1.0])
        assert aware.instability_at(0.5) == 0.0
        assert aware.instability_at(2.5) == 1.0
        assert aware.instability_at(99.0) == 1.0  # clamps to the last window

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkAwareBola(PAPER_LADDER_MIDBAND, np.array([]))
        with pytest.raises(ValueError):
            NetworkAwareBola(PAPER_LADDER_MIDBAND, np.array([0.5]), instability_window_s=0.0)
        with pytest.raises(ValueError):
            NetworkAwareBola(PAPER_LADDER_MIDBAND, np.array([0.5]), max_discount=1.0)
