"""Tests for repro.apps.video.player — the DASH session driver."""

import numpy as np
import pytest

from repro.apps.video.abr import Bola, ThroughputBased
from repro.apps.video.content import PAPER_LADDER_MIDBAND, Video
from repro.apps.video.player import StreamingSession


def _session(capacity, video=None, abr_cls=Bola, **kwargs):
    video = video or Video(duration_s=60.0, chunk_s=4.0)
    return StreamingSession(
        video=video,
        abr=abr_cls(video.ladder),
        capacity_mbps=np.asarray(capacity, dtype=float),
        **kwargs,
    )


class TestHappyPath:
    def test_all_chunks_played(self):
        result = _session(np.full(2000, 800.0)).run()
        assert len(result.chunks) == 15
        assert result.playback_s == 60.0

    def test_fast_link_reaches_top_quality(self):
        result = _session(np.full(4000, 2000.0)).run()
        # After the ramp, the session sits at the top rung.
        assert result.quality_levels[-1] == 6
        assert result.qoe().stall_percentage == 0.0

    def test_slow_link_stays_low(self):
        result = _session(np.full(4000, 40.0)).run()
        assert result.qoe().mean_quality_level <= 1.0

    def test_startup_delay_recorded(self):
        result = _session(np.full(2000, 100.0)).run()
        assert result.startup_delay_s > 0

    def test_buffer_respects_capacity(self):
        result = _session(np.full(4000, 3000.0), buffer_capacity_s=12.0).run()
        assert result.buffer_timeline_s.max() <= 12.0 + 1e-6


class TestStalls:
    def _dropping_capacity(self):
        # 20 s of 900 Mbps, then a deep 15 s collapse, then recovery.
        return np.concatenate([
            np.full(400, 900.0), np.full(300, 8.0), np.full(1300, 900.0),
        ])

    def test_collapse_produces_stall_without_abandonment(self):
        video = Video(duration_s=90.0, chunk_s=4.0)
        session = _session(self._dropping_capacity(), video=video,
                           abr_cls=ThroughputBased, buffer_capacity_s=12.0)
        result = session.run()
        assert result.total_stall_s > 0
        assert result.n_stalls >= 1

    def test_stall_attributed_to_chunk(self):
        video = Video(duration_s=90.0, chunk_s=4.0)
        result = _session(self._dropping_capacity(), video=video,
                          abr_cls=ThroughputBased, buffer_capacity_s=12.0).run()
        assert max(c.stall_s for c in result.chunks) > 0

    def test_abandonment_limits_stall(self):
        video = Video(duration_s=90.0, chunk_s=4.0)
        with_bola = _session(self._dropping_capacity(), video=video,
                             abr_cls=Bola, buffer_capacity_s=12.0).run()
        without = _session(self._dropping_capacity(), video=video,
                           abr_cls=ThroughputBased, buffer_capacity_s=12.0).run()
        # BOLA's abandonment rule keeps rebuffering at or below the
        # non-abandoning player's.
        assert with_bola.total_stall_s <= without.total_stall_s + 1e-9


class TestMechanics:
    def test_capacity_series_repeats(self):
        # A short capacity series wraps around rather than running out.
        result = _session(np.full(100, 500.0)).run()
        assert len(result.chunks) == 15

    def test_insufficient_buffer_guard_caps_quality(self):
        video = Video(duration_s=60.0, chunk_s=4.0)
        capacity = np.concatenate([np.full(200, 900.0), np.full(3800, 120.0)])
        guarded = StreamingSession(video=video, abr=ThroughputBased(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0,
                                   insufficient_buffer_guard=True).run()
        unguarded = StreamingSession(video=video, abr=ThroughputBased(video.ladder),
                                     capacity_mbps=capacity, buffer_capacity_s=12.0,
                                     insufficient_buffer_guard=False).run()
        assert guarded.total_stall_s <= unguarded.total_stall_s + 1e-9

    def test_qoe_chunk_accounting(self):
        result = _session(np.full(2000, 600.0)).run()
        qoe = result.qoe()
        assert qoe.n_chunks == len(result.chunks)
        assert 0.0 <= qoe.normalized_bitrate <= 1.0

    def test_validation(self):
        video = Video(duration_s=10.0, chunk_s=1.0)
        with pytest.raises(ValueError):
            StreamingSession(video=video, abr=Bola(video.ladder),
                             capacity_mbps=np.array([]))
        with pytest.raises(ValueError):
            StreamingSession(video=video, abr=Bola(video.ladder),
                             capacity_mbps=np.ones(10), capacity_bin_s=0.0)
        with pytest.raises(ValueError):
            StreamingSession(video=video, abr=Bola(video.ladder),
                             capacity_mbps=np.ones(10), startup_chunks=0)

    def test_timeline_sampled_per_second(self):
        result = _session(np.full(4000, 700.0)).run()
        # ~one sample per wall-clock second of the session.
        wall = result.startup_delay_s + result.playback_s + result.total_stall_s
        assert abs(result.buffer_timeline_s.size - wall) <= 62.0
