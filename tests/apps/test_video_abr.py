"""Tests for repro.apps.video.abr — BOLA, throughput-based, dynamic."""

import pytest

from repro.apps.video.abr import AbrContext, Bola, DynamicAbr, ThroughputBased
from repro.apps.video.content import PAPER_LADDER_MIDBAND


def _context(buffer_s=20.0, estimate=500.0, chunk_s=4.0, capacity_s=30.0,
             index=10, stalled=False):
    return AbrContext(
        buffer_level_s=buffer_s,
        buffer_capacity_s=capacity_s,
        chunk_s=chunk_s,
        throughput_estimate_mbps=estimate,
        last_level=0,
        chunk_index=index,
        stalled_since_last=stalled,
    )


def _steady_bola(**kwargs):
    """A BOLA instance past its startup phase."""
    bola = Bola(PAPER_LADDER_MIDBAND, **kwargs)
    bola._in_startup = False
    return bola


class TestBola:
    def test_quality_monotone_in_buffer(self):
        bola = _steady_bola()
        levels = [bola.choose(_context(buffer_s=b)) for b in (1.0, 6.0, 12.0, 20.0, 28.0)]
        assert levels == sorted(levels)

    def test_empty_buffer_lowest(self):
        assert _steady_bola().choose(_context(buffer_s=0.0)) == 0

    def test_full_buffer_highest(self):
        assert _steady_bola().choose(_context(buffer_s=29.0)) == 6

    def test_control_parameter_scales_with_buffer(self):
        bola = Bola(PAPER_LADDER_MIDBAND)
        assert bola.control_parameter(30.0, 4.0) > bola.control_parameter(12.0, 4.0)

    def test_smaller_chunks_raise_top_threshold(self):
        # dash.js seconds-form: 1 s chunks need more buffered seconds
        # before the top rung than 4 s chunks (the §6.2 conservatism).
        bola = Bola(PAPER_LADDER_MIDBAND)
        v4 = bola.control_parameter(12.0, 4.0)
        v1 = bola.control_parameter(12.0, 1.0)
        assert v1 > v4

    def test_startup_rides_throughput(self):
        bola = Bola(PAPER_LADDER_MIDBAND)
        level = bola.choose(_context(buffer_s=1.0, estimate=900.0, index=1))
        assert level == 6  # 0.9 * 900 > 750

    def test_startup_exits_on_buffer(self):
        bola = Bola(PAPER_LADDER_MIDBAND)
        bola.choose(_context(buffer_s=20.0))
        assert not bola._in_startup

    def test_stall_reenters_startup(self):
        bola = Bola(PAPER_LADDER_MIDBAND)
        bola._in_startup = False
        # Post-stall with a collapsed estimate: conservative recovery.
        level = bola.choose(_context(buffer_s=2.0, estimate=40.0, stalled=True))
        assert level == 0

    def test_reset(self):
        bola = Bola(PAPER_LADDER_MIDBAND)
        bola._in_startup = False
        bola.reset()
        assert bola._in_startup

    def test_validation(self):
        with pytest.raises(ValueError):
            Bola(PAPER_LADDER_MIDBAND, gamma_p=0.0)
        with pytest.raises(ValueError):
            Bola(PAPER_LADDER_MIDBAND, startup_safety=0.0)

    def test_supports_abandonment(self):
        assert Bola(PAPER_LADDER_MIDBAND).supports_abandonment
        assert not ThroughputBased(PAPER_LADDER_MIDBAND).supports_abandonment


class TestThroughputBased:
    def test_follows_estimate(self):
        abr = ThroughputBased(PAPER_LADDER_MIDBAND, safety=1.0)
        assert abr.choose(_context(estimate=750.0)) == 6
        assert abr.choose(_context(estimate=90.0)) == 2

    def test_safety_margin(self):
        abr = ThroughputBased(PAPER_LADDER_MIDBAND, safety=0.9)
        # 0.9 * 800 = 720 < 750 -> level 5.
        assert abr.choose(_context(estimate=800.0)) == 5

    def test_ignores_buffer(self):
        abr = ThroughputBased(PAPER_LADDER_MIDBAND)
        assert abr.choose(_context(buffer_s=0.0, estimate=500.0)) == \
            abr.choose(_context(buffer_s=29.0, estimate=500.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputBased(PAPER_LADDER_MIDBAND, safety=1.5)


class TestDynamic:
    def test_low_buffer_uses_throughput(self):
        abr = DynamicAbr(PAPER_LADDER_MIDBAND, switch_buffer_s=10.0)
        level = abr.choose(_context(buffer_s=2.0, estimate=500.0))
        expected = ThroughputBased(PAPER_LADDER_MIDBAND).choose(_context(buffer_s=2.0, estimate=500.0))
        assert level == expected

    def test_high_buffer_uses_bola(self):
        abr = DynamicAbr(PAPER_LADDER_MIDBAND, switch_buffer_s=10.0)
        bola = _steady_bola()
        context = _context(buffer_s=28.0, estimate=100.0)
        assert abr.choose(context) == bola.choose(context)

    def test_hysteresis(self):
        abr = DynamicAbr(PAPER_LADDER_MIDBAND, switch_buffer_s=10.0)
        abr.choose(_context(buffer_s=12.0))   # enters BOLA mode
        assert abr._using_bola
        abr.choose(_context(buffer_s=7.0))    # above half threshold: stays
        assert abr._using_bola
        abr.choose(_context(buffer_s=4.0))    # below half: falls back
        assert not abr._using_bola

    def test_reset(self):
        abr = DynamicAbr(PAPER_LADDER_MIDBAND)
        abr._using_bola = True
        abr.reset()
        assert not abr._using_bola

    def test_validation(self):
        with pytest.raises(ValueError):
            DynamicAbr(PAPER_LADDER_MIDBAND, switch_buffer_s=0.0)
