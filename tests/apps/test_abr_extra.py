"""Tests for repro.apps.video.abr_extra — the footnote-6 algorithms."""

import numpy as np
import pytest

from repro.apps.video.abr import AbrContext
from repro.apps.video.abr_extra import L2A, LolPlus, project_to_simplex
from repro.apps.video.content import PAPER_LADDER_MIDBAND


def _context(buffer_s=15.0, estimate=500.0, last_level=3):
    return AbrContext(
        buffer_level_s=buffer_s, buffer_capacity_s=30.0, chunk_s=4.0,
        throughput_estimate_mbps=estimate, last_level=last_level, chunk_index=5,
    )


class TestSimplexProjection:
    def test_already_on_simplex(self):
        w = np.array([0.2, 0.3, 0.5])
        assert project_to_simplex(w) == pytest.approx(w)

    def test_projection_properties(self):
        for raw in ([2.0, -1.0, 0.5], [10.0, 10.0], [-5.0, -6.0, -7.0, 0.0]):
            projected = project_to_simplex(np.array(raw))
            assert projected.sum() == pytest.approx(1.0)
            assert (projected >= 0).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            project_to_simplex(np.array([]))


class TestL2A:
    def test_choice_in_range(self):
        abr = L2A(PAPER_LADDER_MIDBAND)
        for estimate in (50.0, 400.0, 900.0):
            level = abr.choose(_context(estimate=estimate))
            assert 0 <= level <= 6

    def test_weights_stay_on_simplex(self):
        abr = L2A(PAPER_LADDER_MIDBAND)
        for _ in range(30):
            abr.choose(_context(estimate=300.0, buffer_s=6.0))
            assert abr.weights.sum() == pytest.approx(1.0)
            assert (abr.weights >= 0).all()

    def test_learns_down_under_starvation(self):
        abr = L2A(PAPER_LADDER_MIDBAND)
        # Repeated low-throughput, low-buffer rounds push weights down.
        for _ in range(20):
            level = abr.choose(_context(estimate=40.0, buffer_s=1.0))
        assert level <= 1

    def test_learns_up_on_fast_link(self):
        abr = L2A(PAPER_LADDER_MIDBAND)
        for _ in range(30):
            level = abr.choose(_context(estimate=2000.0, buffer_s=25.0))
        assert level >= 4

    def test_reset(self):
        abr = L2A(PAPER_LADDER_MIDBAND)
        for _ in range(10):
            abr.choose(_context(estimate=40.0, buffer_s=1.0))
        abr.reset()
        assert abr.weights == pytest.approx(np.full(7, 1 / 7))

    def test_validation(self):
        with pytest.raises(ValueError):
            L2A(PAPER_LADDER_MIDBAND, learning_rate=0.0)
        with pytest.raises(ValueError):
            L2A(PAPER_LADDER_MIDBAND, target_buffer_s=0.0)


class TestLolPlus:
    def test_choice_in_range(self):
        abr = LolPlus(PAPER_LADDER_MIDBAND)
        for estimate in (50.0, 400.0, 3000.0):
            assert 0 <= abr.choose(_context(estimate=estimate)) <= 6

    def test_tracks_throughput(self):
        abr = LolPlus(PAPER_LADDER_MIDBAND)
        slow = abr.choose(_context(estimate=80.0))
        fast = abr.choose(_context(estimate=900.0, last_level=5))
        assert fast > slow

    def test_switch_penalty_dampens_jumps(self):
        smooth = LolPlus(PAPER_LADDER_MIDBAND, switch_weight=0.6,
                         throughput_weight=0.3, buffer_weight=0.1)
        jumpy = LolPlus(PAPER_LADDER_MIDBAND, switch_weight=0.0,
                        throughput_weight=0.9, buffer_weight=0.1)
        context = _context(estimate=900.0, last_level=0)
        assert smooth.choose(context) <= jumpy.choose(context)

    def test_low_buffer_conservative(self):
        abr = LolPlus(PAPER_LADDER_MIDBAND)
        starving = abr.choose(_context(estimate=700.0, buffer_s=0.5))
        comfortable = abr.choose(_context(estimate=700.0, buffer_s=25.0))
        assert starving <= comfortable

    def test_validation(self):
        with pytest.raises(ValueError):
            LolPlus(PAPER_LADDER_MIDBAND, throughput_weight=0.0,
                    buffer_weight=0.0, switch_weight=0.0)
        with pytest.raises(ValueError):
            LolPlus(PAPER_LADDER_MIDBAND, safety=0.0)


class TestInPlayer:
    def test_both_complete_sessions(self):
        from repro.apps.video.content import Video
        from repro.apps.video.player import StreamingSession

        video = Video(duration_s=40.0, chunk_s=4.0)
        capacity = np.full(2000, 500.0)
        for abr_cls in (L2A, LolPlus):
            session = StreamingSession(video=video, abr=abr_cls(video.ladder),
                                       capacity_mbps=capacity).run()
            assert len(session.chunks) == 10
            assert session.qoe().mean_quality_level > 0
