"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.channel.model import SyntheticChannel
from repro.nr.mcs import Modulation
from repro.nr.tdd import TddPattern
from repro.ran.config import CellConfig
from repro.ran.simulator import SimParams, simulate_downlink


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def cell_90mhz() -> CellConfig:
    """A representative 90 MHz n78 TDD carrier (the V_Sp configuration)."""
    return CellConfig(
        name="test n78 90MHz",
        band_name="n78",
        bandwidth_mhz=90,
        scs_khz=30,
        max_modulation=Modulation.QAM256,
        tdd=TddPattern.from_string("DDDSU"),
    )


@pytest.fixture
def cell_fdd() -> CellConfig:
    """A small FDD carrier (T-Mobile n25-style)."""
    return CellConfig(
        name="test n25 20MHz",
        band_name="n25",
        bandwidth_mhz=20,
        scs_khz=15,
        max_modulation=Modulation.QAM256,
        tdd=None,
        n_rb_override=51,
    )


@pytest.fixture
def good_channel(rng):
    """A 3-second good-SINR synthetic channel realization."""
    return SyntheticChannel(mean_sinr_db=22.0).realize(3.0, rng=rng)


@pytest.fixture
def short_dl_trace(cell_90mhz, good_channel, rng):
    """A short full-buffer DL trace."""
    return simulate_downlink(cell_90mhz, good_channel, rng=rng, params=SimParams())
