"""Tests for repro.store.remote — the shared trace-store tier."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.store import (
    LocalDirectoryRemote,
    RemoteError,
    RemoteStore,
    RetryPolicy,
    TraceStore,
    open_remote,
    pull,
    push,
    register_remote_scheme,
    status,
    sync,
)
from repro.store.remote import _SCHEMES
from repro.xcal.records import SlotTrace, TraceMetadata


def _trace(n: int = 16, seed: int = 3) -> SlotTrace:
    trace = SlotTrace.empty(n, metadata=TraceMetadata(operator="T", seed=seed))
    trace.delivered_bits[:] = np.random.default_rng(seed).integers(0, 9000, n)
    trace.sinr_db[:] = np.random.default_rng(seed + 1).normal(20.0, 2.0, n)
    return trace


def _key(tag: str) -> str:
    return (tag * 64)[:64]


def _fill(store: TraceStore, tags: str) -> list[str]:
    keys = []
    for i, tag in enumerate(tags):
        store.put(_key(tag), _trace(seed=i))
        keys.append(_key(tag))
    return keys


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "cache")


@pytest.fixture
def remote(tmp_path) -> LocalDirectoryRemote:
    return LocalDirectoryRemote(tmp_path / "remote")


def _blob_bytes(root: Path, key: str) -> tuple[bytes, bytes]:
    shard = root / "objects" / key[:2]
    return (shard / f"{key}.npz").read_bytes(), (shard / f"{key}.json").read_bytes()


class TestPushPull:
    def test_push_pull_byte_identical(self, store, remote, tmp_path):
        keys = _fill(store, "abc")
        report = push(store, remote)
        assert report.pushed == 3 and not report.failed

        other = TraceStore(tmp_path / "other")
        report = pull(other, remote)
        assert report.pulled == 3 and not report.failed
        for key in keys:
            assert _blob_bytes(store.root, key) == _blob_bytes(other.root, key)
            # the pulled entry is a first-class store entry
            loaded = other.get(key)
            assert np.array_equal(loaded.delivered_bits,
                                  store.get(key).delivered_bits)

    def test_push_skips_keys_remote_has(self, store, remote):
        _fill(store, "ab")
        assert push(store, remote).pushed == 2
        report = push(store, remote)
        assert report.pushed == 0 and report.skipped == 2

    def test_pull_skips_keys_store_has(self, store, remote):
        _fill(store, "ab")
        push(store, remote)
        report = pull(store, remote)
        assert report.pulled == 0 and report.skipped == 2

    def test_push_subset_by_keys(self, store, remote):
        _fill(store, "abc")
        report = push(store, remote, keys=[_key("a")])
        assert report.pushed == 1
        assert remote.list_keys() == {_key("a")}

    def test_sync_merges_and_resync_is_noop(self, store, remote, tmp_path):
        _fill(store, "ab")
        other = TraceStore(tmp_path / "other")
        other.put(_key("c"), _trace(seed=9))
        sync(store, remote)
        report = sync(other, remote)
        assert report.pushed == 1 and report.pulled == 2
        # both sides now hold the union, byte for byte
        assert set(store.keys()) | {_key("c")} == set(other.keys())
        again = sync(other, remote).merge(sync(store, remote))
        assert again.pushed == 0 and again.pulled == 1  # store lacks "c"
        final = sync(store, remote)
        assert final.pushed == final.pulled == 0
        for key in (_key("a"), _key("b"), _key("c")):
            assert _blob_bytes(store.root, key) == _blob_bytes(other.root, key)

    def test_status_counts(self, store, remote, tmp_path):
        _fill(store, "ab")
        other = TraceStore(tmp_path / "other")
        other.put(_key("c"), _trace(seed=9))
        push(other, remote)
        report = status(store, remote)
        assert report.local_only == 2
        assert report.remote_only == 1
        assert report.shared == 0
        assert report.local_only_bytes > 0
        assert "local-only=2" in report.render()

    def test_pull_respects_size_cap(self, store, remote, tmp_path, monkeypatch):
        _fill(store, "abcd")
        push(store, remote)
        capped = TraceStore(tmp_path / "capped", max_bytes=1)  # evict all
        report = pull(capped, remote)
        assert report.pulled == 4
        assert capped.stats().entries < 4


class TestPullIntegrity:
    def test_tampered_payload_quarantined(self, store, remote, tmp_path):
        _fill(store, "a")
        push(store, remote)
        payload_path = remote.root / "objects" / _key("a")[:2] / f"{_key('a')}.npz"
        payload_path.write_bytes(b"X" + payload_path.read_bytes()[1:])

        other = TraceStore(tmp_path / "other")
        report = pull(other, remote)
        assert report.quarantined == 1 and report.pulled == 0
        assert not other.contains(_key("a"))
        assert not other.keys()
        assert (other.root / "quarantine" / f"{_key('a')}.npz").exists()

    def test_blob_served_under_wrong_key_quarantined(self, store, remote, tmp_path):
        _fill(store, "ab")
        push(store, remote)
        # the remote serves blob "a" under key "b"
        a_payload, a_sidecar = _blob_bytes(store.root, _key("a"))
        remote.store(_key("b"), a_payload, a_sidecar)

        other = TraceStore(tmp_path / "other")
        report = pull(other, remote)
        assert report.pulled == 1 and report.quarantined == 1
        assert other.contains(_key("a")) and not other.contains(_key("b"))

    def test_unreadable_sidecar_quarantined(self, remote, tmp_path):
        remote.store(_key("a"), b"payload", b"not json")
        other = TraceStore(tmp_path / "other")
        report = pull(other, remote)
        assert report.quarantined == 1 and not other.keys()

    def test_push_quarantines_local_corruption(self, store, remote):
        _fill(store, "a")
        payload_path, _ = store.object_paths(_key("a"))
        payload_path.write_bytes(b"X" + payload_path.read_bytes()[1:])
        report = push(store, remote)
        assert report.quarantined == 1 and report.pushed == 0
        assert remote.list_keys() == set()  # corruption never propagates
        assert not store.contains(_key("a"))


class _FlakyRemote:
    """Reference remote that fails the first ``failures`` calls per op."""

    def __init__(self, inner: LocalDirectoryRemote, failures: int) -> None:
        self.inner = inner
        self.failures = failures
        self.calls = 0

    def describe(self) -> str:
        return f"flaky({self.inner.describe()})"

    def _maybe_fail(self) -> None:
        self.calls += 1
        if self.calls <= self.failures:
            raise RemoteError("transient flake")

    def list_keys(self) -> set:
        self._maybe_fail()
        return self.inner.list_keys()

    def fetch(self, key: str):
        self._maybe_fail()
        return self.inner.fetch(key)

    def store(self, key: str, payload: bytes, sidecar: bytes) -> None:
        self._maybe_fail()
        self.inner.store(key, payload, sidecar)


class TestRetryPolicy:
    def test_retries_through_transient_failures(self, store, remote):
        _fill(store, "a")
        flaky = _FlakyRemote(remote, failures=2)
        policy = RetryPolicy(attempts=3, backoff_s=0.0)
        report = push(store, flaky, policy=policy)
        assert report.pushed == 1 and not report.failed

    def test_dead_remote_fails_blob_not_batch(self, store, remote):
        _fill(store, "ab")
        flaky = _FlakyRemote(remote, failures=10 ** 6)
        flaky.list_keys = remote.list_keys  # only the uploads fail
        policy = RetryPolicy(attempts=2, backoff_s=0.0)
        report = push(store, flaky, policy=policy)
        assert sorted(report.failed) == sorted([_key("a"), _key("b")])
        assert report.pushed == 0

    def test_dead_remote_listing_raises(self, store, remote):
        flaky = _FlakyRemote(remote, failures=10 ** 6)
        with pytest.raises(RemoteError, match="failed after 2 attempts"):
            push(store, flaky, policy=RetryPolicy(attempts=2, backoff_s=0.0))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(timeout_s=0.0)

    def test_deadline_cuts_retries_short(self, store, remote):
        flaky = _FlakyRemote(remote, failures=10 ** 6)
        policy = RetryPolicy(attempts=50, backoff_s=10.0, timeout_s=0.01)
        with pytest.raises(RemoteError):
            push(store, flaky, policy=policy)
        assert flaky.calls < 5  # deadline stopped the ladder early


class TestOpenRemote:
    def test_bare_path(self, tmp_path):
        remote = open_remote(tmp_path / "r")
        assert isinstance(remote, LocalDirectoryRemote)
        assert remote.root == tmp_path / "r"

    def test_file_url(self, tmp_path):
        remote = open_remote(f"file://{tmp_path}/r")
        assert isinstance(remote, LocalDirectoryRemote)
        assert remote.root == tmp_path / "r"

    def test_unknown_scheme_lists_known(self, tmp_path):
        with pytest.raises(ValueError, match="unknown remote scheme 's3'"):
            open_remote("s3://bucket/prefix")

    def test_registered_scheme(self, tmp_path):
        seen = {}

        def factory(url: str) -> RemoteStore:
            seen["url"] = url
            return LocalDirectoryRemote(tmp_path / "reg")

        register_remote_scheme("teststore", factory)
        try:
            remote = open_remote("teststore://somewhere")
            assert isinstance(remote, LocalDirectoryRemote)
            assert seen["url"] == "teststore://somewhere"
        finally:
            _SCHEMES.pop("teststore", None)

    def test_remote_satisfies_protocol(self, remote):
        assert isinstance(remote, RemoteStore)


class TestLocalDirectoryRemote:
    def test_fetch_missing_raises(self, remote):
        with pytest.raises(RemoteError, match="has no blob"):
            remote.fetch(_key("a"))

    def test_store_is_atomic_no_litter(self, remote):
        remote.store(_key("a"), b"payload", json.dumps({"key": _key("a")}).encode())
        assert not list(remote.root.rglob("*.tmp"))

    def test_pushed_directory_opens_as_store(self, store, remote):
        _fill(store, "a")
        push(store, remote)
        as_store = TraceStore(remote.root)
        loaded = as_store.get(_key("a"))
        assert np.array_equal(loaded.delivered_bits,
                              store.get(_key("a")).delivered_bits)
