"""Tests for repro.store.backend — the on-disk content-addressed store."""

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.ran.ca import AggregatedResult
from repro.store import TraceStore
from repro.xcal.records import SlotTrace, TraceMetadata

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _trace(n: int = 16, seed: int = 3) -> SlotTrace:
    trace = SlotTrace.empty(n, metadata=TraceMetadata(operator="T", seed=seed))
    trace.delivered_bits[:] = np.random.default_rng(seed).integers(0, 9000, n)
    trace.sinr_db[:] = np.random.default_rng(seed + 1).normal(20.0, 2.0, n)
    return trace


def _key(tag: str) -> str:
    return (tag * 64)[:64]


@pytest.fixture
def store(tmp_path) -> TraceStore:
    return TraceStore(tmp_path / "cache")


class TestPutGet:
    def test_roundtrip_trace(self, store):
        trace = _trace()
        assert store.put(_key("a"), trace) is True
        loaded = store.get(_key("a"))
        assert np.array_equal(loaded.delivered_bits, trace.delivered_bits)
        assert np.array_equal(loaded.sinr_db, trace.sinr_db)
        assert loaded.metadata == trace.metadata
        assert loaded.mu == trace.mu

    def test_roundtrip_aggregated(self, store):
        result = AggregatedResult(per_carrier=[_trace(8, 1), _trace(8, 2)])
        store.put(_key("b"), result)
        loaded = store.get(_key("b"))
        assert isinstance(loaded, AggregatedResult)
        assert loaded.n_carriers == 2
        for a, b in zip(loaded.per_carrier, result.per_carrier):
            assert np.array_equal(a.delivered_bits, b.delivered_bits)

    def test_miss_raises(self, store):
        with pytest.raises(KeyError):
            store.get(_key("0"))
        assert store.misses == 1

    def test_uncacheable_value_rejected(self, store):
        assert store.put(_key("c"), {"not": "a trace"}) is False
        with pytest.raises(KeyError):
            store.get(_key("c"))

    def test_sharded_layout(self, store):
        store.put(_key("d"), _trace())
        payload = store.root / "objects" / _key("d")[:2] / f"{_key('d')}.npz"
        assert payload.exists()
        assert payload.with_suffix(".json").exists()

    def test_no_temp_litter(self, store):
        store.put(_key("e"), _trace())
        assert not list(store.root.rglob("*.tmp"))


class TestCorruption:
    def test_payload_tamper_quarantines_and_misses(self, store):
        store.put(_key("a"), _trace())
        payload = store.root / "objects" / _key("a")[:2] / f"{_key('a')}.npz"
        payload.write_bytes(b"garbage" + payload.read_bytes()[7:])
        with pytest.raises(KeyError):
            store.get(_key("a"))
        assert (store.root / "quarantine" / payload.name).exists()
        # The entry is gone, not broken: a fresh put-and-get heals it.
        store.put(_key("a"), _trace())
        assert store.get(_key("a")) is not None

    def test_sidecar_tamper_quarantines(self, store):
        store.put(_key("b"), _trace())
        sidecar = store.root / "objects" / _key("b")[:2] / f"{_key('b')}.json"
        sidecar.write_text("{not json")
        with pytest.raises(KeyError):
            store.get(_key("b"))
        assert not sidecar.exists()

    def test_missing_payload_is_a_plain_miss(self, store):
        store.put(_key("c"), _trace())
        (store.root / "objects" / _key("c")[:2] / f"{_key('c')}.npz").unlink()
        with pytest.raises(KeyError):
            store.get(_key("c"))

    def test_verify_quarantines_tampered(self, store):
        store.put(_key("a"), _trace(seed=1))
        store.put(_key("b"), _trace(seed=2))
        payload = store.root / "objects" / _key("b")[:2] / f"{_key('b')}.npz"
        payload.write_bytes(payload.read_bytes()[:-1] + b"X")
        ok, bad = store.verify()
        assert ok == 1
        assert bad == [_key("b")]
        assert store.stats().quarantined == 1


class TestMaintenance:
    def test_stats(self, store):
        store.put(_key("a"), _trace())
        stats = store.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0
        assert stats.quarantined == 0
        assert "entries" in stats.render()

    def test_clear(self, store):
        store.put(_key("a"), _trace())
        store.put(_key("b"), _trace())
        assert store.clear() == 2
        assert store.stats().entries == 0
        with pytest.raises(KeyError):
            store.get(_key("a"))


class TestLruEviction:
    def _entry_bytes(self, store, key) -> int:
        payload = store.root / "objects" / key[:2] / f"{key}.npz"
        return payload.stat().st_size + payload.with_suffix(".json").stat().st_size

    def test_evicts_least_recently_accessed_first(self, store):
        keys = [_key(tag) for tag in "abc"]
        for i, key in enumerate(keys):
            store.put(key, _trace(seed=i))
            os.utime(store.root / "objects" / key[:2] / f"{key}.json",
                     (1000.0 + i, 1000.0 + i))
        # Touch "a" (oldest written) so "b" becomes least recently used.
        store.get(keys[0])
        budget = sum(self._entry_bytes(store, k) for k in keys) - 1
        evicted = store.evict(budget)
        assert evicted == [keys[1]]
        store.get(keys[0])
        store.get(keys[2])
        with pytest.raises(KeyError):
            store.get(keys[1])

    def test_read_refreshes_lru_without_counting(self, store):
        """Routed reads must age like hits: a hot store-routed trace is
        not the next eviction victim, yet reads stay out of the
        hit/miss tally (they would otherwise fake a 100% hit rate)."""
        keys = [_key(tag) for tag in "abc"]
        for i, key in enumerate(keys):
            store.put(key, _trace(seed=i))
            os.utime(store.root / "objects" / key[:2] / f"{key}.json",
                     (1000.0 + i, 1000.0 + i))
        store.read(keys[0])  # oldest written, freshly read
        budget = sum(self._entry_bytes(store, k) for k in keys) - 1
        assert store.evict(budget) == [keys[1]]
        assert store.hits == 0 and store.misses == 0
        assert store.read(keys[0]) is not None

    def test_evict_same_mtime_ties_break_lexicographically(self, store):
        """Same-mtime entries evict in key order — deterministic across
        runs instead of following directory-listing order."""
        keys = [_key(tag) for tag in "cab"]
        for i, key in enumerate(keys):
            store.put(key, _trace(seed=i))
        for key in keys:
            os.utime(store.root / "objects" / key[:2] / f"{key}.json",
                     (1000.0, 1000.0))
        budget = sum(self._entry_bytes(store, k) for k in keys) - 1
        assert store.evict(budget) == [_key("a")]
        assert store.evict(0) == sorted([_key("b"), _key("c")])

    def test_evict_to_zero_empties_store(self, store):
        for tag in "ab":
            store.put(_key(tag), _trace())
        assert len(store.evict(0)) == 2
        assert store.stats().entries == 0

    def test_put_applies_cap_automatically(self, tmp_path):
        capped = TraceStore(tmp_path / "capped", max_bytes=1)
        capped.put(_key("a"), _trace())
        capped.put(_key("b"), _trace())
        # Each put evicts down to the (tiny) cap; the store never grows.
        assert capped.stats().entries <= 1

    def test_from_env(self, tmp_path, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE", raising=False)
        assert TraceStore.from_env() is None
        monkeypatch.setenv("REPRO_CACHE", str(tmp_path / "env-cache"))
        monkeypatch.setenv("REPRO_CACHE_MAX_MB", "2.5")
        store = TraceStore.from_env()
        assert store is not None
        assert store.root == tmp_path / "env-cache"
        assert store.max_bytes == int(2.5e6)


class TestAccounting:
    def test_get_counts_hits_and_bytes_read(self, store):
        store.put(_key("a"), _trace())
        assert store.bytes_written > 0
        before = store.bytes_read
        store.get(_key("a"))
        assert store.hits == 1 and store.misses == 0
        assert store.bytes_read > before

    def test_read_is_outside_the_tally(self, store):
        """The store-routed runner's read-back must not look like a hit."""
        store.put(_key("a"), _trace())
        loaded = store.read(_key("a"))
        assert loaded is not None
        assert store.hits == 0 and store.misses == 0
        assert store.bytes_read > 0  # bytes moved are still accounted

    def test_read_miss_raises_without_counting(self, store):
        with pytest.raises(KeyError):
            store.read(_key("0"))
        assert store.hits == 0 and store.misses == 0

    def test_note_routed_write_accumulates(self, store):
        store.note_routed_write(1000)
        store.note_routed_write(500)
        assert store.bytes_written == 1500

    def test_stats_render_includes_bytes(self, store):
        store.put(_key("a"), _trace())
        store.get(_key("a"))
        text = store.stats().render()
        assert "read=" in text and "written=" in text

    def test_stats_to_dict_matches_counters(self, store):
        """One serializer feeds ``cache stats --json``, the serve
        daemon's ``/stats`` and the CI gates — keep it faithful."""
        store.put(_key("a"), _trace())
        store.get(_key("a"))
        with pytest.raises(KeyError):
            store.get(_key("b"))
        stats = store.stats()
        document = stats.to_dict()
        assert document["entries"] == 1
        assert document["hits"] == 1 and document["misses"] == 1
        assert document["total_bytes"] == stats.total_bytes
        assert document["bytes_read"] == store.bytes_read
        assert document["bytes_written"] == store.bytes_written
        assert document["quarantined"] == 0
        assert document["root"] == str(store.root)
        assert json.loads(json.dumps(document)) == document

    def test_keys_and_object_paths(self, store):
        for tag in "ba":
            store.put(_key(tag), _trace())
        assert store.keys() == sorted([_key("a"), _key("b")])
        payload, sidecar = store.object_paths(_key("a"))
        assert payload.exists() and sidecar.exists()
        assert json.loads(sidecar.read_text())["key"] == _key("a")


class TestQuarantineRecompute:
    def _manifest(self):
        from repro.operators.profiles import EU_PROFILES
        from repro.xcal.dataset import CampaignSpec, campaign_manifest

        spec = CampaignSpec(minutes_per_operator=0.02, session_s=1.0, seed=77)
        return campaign_manifest({"V_Sp": EU_PROFILES["V_Sp"]}, spec)

    def test_quarantine_recompute_write_back_roundtrip(self, tmp_path):
        """A tampered entry heals end to end: the next run quarantines
        it, recomputes the session, and writes the same bytes back."""
        from repro.core.runner import run_tasks

        store = TraceStore(tmp_path / "cache")
        manifest = self._manifest()
        first = run_tasks(manifest, jobs=1, store=store)
        assert store.misses == len(manifest)
        [key] = store.keys()
        payload, _ = store.object_paths(key)
        good_bytes = payload.read_bytes()
        payload.write_bytes(b"garbage" + good_bytes[7:])

        second = run_tasks(manifest, jobs=1, store=store)
        # the tampered blob was parked, the session recomputed, and the
        # deterministic simulation wrote back byte-identical content
        assert (store.root / "quarantine" / f"{key}.npz").exists()
        assert store.misses == 2 * len(manifest)
        assert store.keys() == [key]
        assert payload.read_bytes() == good_bytes
        ok, bad = store.verify()
        assert ok == 1 and not bad

        before_hits = store.hits
        third = run_tasks(manifest, jobs=1, store=store)
        assert store.hits == before_hits + len(manifest)
        for a, b in zip(first, third):
            assert np.array_equal(a.delivered_bits, second[0].delivered_bits)
            assert np.array_equal(a.delivered_bits, b.delivered_bits)


_WRITER_SNIPPET = """
import sys
import numpy as np
from repro.store import TraceStore
from repro.xcal.records import SlotTrace, TraceMetadata

root, worker = sys.argv[1], int(sys.argv[2])
store = TraceStore(root)
for round_ in range(5):
    for tag in "abcd":
        key = (tag * 64)[:64]
        n = 64 + ord(tag)
        trace = SlotTrace.empty(n, metadata=TraceMetadata(operator=tag, seed=ord(tag)))
        trace.delivered_bits[:] = np.random.default_rng(ord(tag)).integers(0, 9000, n)
        store.put(key, trace)
        try:
            loaded = store.get(key)
            assert len(loaded) == n
        except KeyError:
            pass  # concurrently mid-replace is fine; torn reads are not
print("ok")
"""


_DISTINCT_WRITER_SNIPPET = """
import sys
import numpy as np
from repro.store import TraceStore
from repro.xcal.records import SlotTrace, TraceMetadata

root, worker = sys.argv[1], int(sys.argv[2])
store = TraceStore(root)
for item in range(6):
    key = (f"{worker}{item}" * 32)[:64]
    n = 16 + worker + item
    trace = SlotTrace.empty(n, metadata=TraceMetadata(operator=str(worker), seed=item))
    trace.delivered_bits[:] = np.random.default_rng(worker * 10 + item).integers(0, 9000, n)
    store.put(key, trace)
    assert len(store.read(key)) == n
print("ok")
"""


class TestConcurrentWriters:
    def test_parallel_processes_never_tear_entries(self, tmp_path):
        """N processes hammering the same keys must leave a clean store."""
        root = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen([sys.executable, "-c", _WRITER_SNIPPET, str(root), str(i)],
                             env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                             text=True)
            for i in range(4)
        ]
        for proc in workers:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        store = TraceStore(root)
        ok, bad = store.verify()
        assert ok == 4
        assert bad == []
        for tag in "abcd":
            assert len(store.get((tag * 64)[:64])) == 64 + ord(tag)
        assert not list(root.rglob("*.tmp"))

    def test_parallel_processes_on_distinct_keys(self, tmp_path):
        """Workers writing disjoint key sets (the store-routed campaign
        pattern) must leave every entry intact and quarantine nothing."""
        root = tmp_path / "shared"
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", _DISTINCT_WRITER_SNIPPET, str(root), str(i)],
                env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
            for i in range(4)
        ]
        for proc in workers:
            out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err
            assert out.strip() == "ok"
        store = TraceStore(root)
        ok, bad = store.verify()
        assert ok == 4 * 6
        assert bad == []
        assert store.stats().quarantined == 0
        for worker in range(4):
            for item in range(6):
                key = (f"{worker}{item}" * 32)[:64]
                assert len(store.read(key)) == 16 + worker + item
