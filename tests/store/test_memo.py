"""Tests for the memoizing runner — run_tasks(..., store=...)."""

from pathlib import Path

import numpy as np

from repro.core.runner import CampaignExecutor, SessionTask, derive_seed, run_tasks
from repro.store import TraceStore
from repro.store.codec import encode
from repro.xcal.records import SlotTrace, TraceMetadata

MARKER_DIR_KW = "marker_dir"


def _traced_session(n_slots: int, seed: int, marker_dir: str) -> SlotTrace:
    """A deterministic fake session that leaves one marker file per call."""
    marker = Path(marker_dir) / f"exec-{n_slots}-{seed}"
    marker.write_text(marker.read_text() + "x" if marker.exists() else "x")
    trace = SlotTrace.empty(n_slots, metadata=TraceMetadata(operator="memo", seed=seed))
    trace.delivered_bits[:] = np.random.default_rng(seed).integers(0, 9000, n_slots)
    return trace


def _uncacheable(seed: int, blob: object = None) -> int:
    return seed * 2


def _manifest(marker_dir, n_tasks: int = 4) -> list[SessionTask]:
    return [
        SessionTask(fn=_traced_session,
                    kwargs={"n_slots": 32 + i, MARKER_DIR_KW: str(marker_dir)},
                    seed=derive_seed(7, "memo", i), label=f"memo/{i}")
        for i in range(n_tasks)
    ]


def _executions(marker_dir) -> int:
    return sum(len(p.read_text()) for p in Path(marker_dir).glob("exec-*"))


def _assert_same_results(a, b):
    assert len(a) == len(b)
    for left, right in zip(a, b):
        assert np.array_equal(left.delivered_bits, right.delivered_bits)
        assert left.metadata == right.metadata


class TestMemoizedRunTasks:
    def test_cold_run_executes_and_backfills(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        results = run_tasks(_manifest(tmp_path), store=store)
        assert _executions(tmp_path) == 4
        assert store.misses == 4 and store.hits == 0
        assert store.stats().entries == 4
        assert all(r is not None for r in results)

    def test_warm_run_serves_hits_without_executing(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        cold = run_tasks(_manifest(tmp_path), store=store)
        warm = run_tasks(_manifest(tmp_path), store=TraceStore(tmp_path / "cache"))
        assert _executions(tmp_path) == 4  # no new executions on the warm run
        _assert_same_results(cold, warm)

    def test_warm_run_matches_uncached_run(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        run_tasks(_manifest(tmp_path), store=store)
        warm = run_tasks(_manifest(tmp_path), store=TraceStore(tmp_path / "cache"))
        uncached = run_tasks(_manifest(tmp_path))
        _assert_same_results(warm, uncached)

    def test_partial_hits_execute_only_misses_in_order(self, tmp_path):
        manifest = _manifest(tmp_path)
        store = TraceStore(tmp_path / "cache")
        # Prime tasks 1 and 3 only.
        run_tasks([manifest[1], manifest[3]], store=store)
        assert _executions(tmp_path) == 2
        results = run_tasks(manifest, store=store)
        assert _executions(tmp_path) == 4  # tasks 0 and 2 ran, 1 and 3 hit
        assert store.hits == 2
        _assert_same_results(results, run_tasks(manifest))

    def test_parallel_warm_run_identical(self, tmp_path):
        manifest = _manifest(tmp_path)
        store = TraceStore(tmp_path / "cache")
        cold = run_tasks(manifest, jobs=2, store=store)
        warm = run_tasks(manifest, jobs=2, store=TraceStore(tmp_path / "cache"))
        _assert_same_results(cold, warm)
        assert _executions(tmp_path) == 4

    def test_uncacheable_kwargs_always_execute(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        task = SessionTask(fn=_uncacheable, kwargs={"blob": object()}, seed=1)
        assert run_tasks([task], store=store) == [2]
        assert run_tasks([task], store=store) == [2]
        assert store.stats().entries == 0

    def test_uncacheable_result_always_executes(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        task = SessionTask(fn=_uncacheable, seed=21)
        assert run_tasks([task], store=store) == [42]
        assert run_tasks([task], store=store) == [42]
        assert store.stats().entries == 0  # int results are not cacheable

    def test_corruption_recomputes_and_heals(self, tmp_path):
        manifest = _manifest(tmp_path, n_tasks=1)
        store = TraceStore(tmp_path / "cache")
        run_tasks(manifest, store=store)
        key = store.task_key(manifest[0])
        payload = store.root / "objects" / key[:2] / f"{key}.npz"
        payload.write_bytes(b"\x00" * payload.stat().st_size)
        healed = run_tasks(manifest, store=store)
        assert _executions(tmp_path) == 2  # recomputed exactly once
        assert store.stats().quarantined == 1
        # ... and the store is healed: next run hits again.
        run_tasks(manifest, store=store)
        assert _executions(tmp_path) == 2
        _assert_same_results(healed, run_tasks(manifest))

    def test_key_excludes_label_so_renames_still_hit(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        manifest = _manifest(tmp_path, n_tasks=2)
        run_tasks(manifest, store=store)
        renamed = [SessionTask(fn=t.fn, kwargs=t.kwargs, seed=t.seed, label="other")
                   for t in manifest]
        run_tasks(renamed, store=store)
        assert _executions(tmp_path) == 2


class TestStoreRoutedTransport:
    def test_routed_cold_counts_misses_not_hits(self, tmp_path):
        """Materializing worker-written results must not count as hits."""
        store = TraceStore(tmp_path / "cache")
        with CampaignExecutor(jobs=2, store=store) as executor:
            run_tasks(_manifest(tmp_path), store=store, executor=executor,
                      transport="store")
            assert executor.stats()["tasks_routed"] == 4
        assert store.misses == 4 and store.hits == 0
        assert store.stats().entries == 4
        assert store.bytes_read > 0 and store.bytes_written > 0

    def test_routed_executions_happen_in_workers(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        with CampaignExecutor(jobs=2, store=store) as executor:
            run_tasks(_manifest(tmp_path), store=store, executor=executor)
        assert _executions(tmp_path) == 4

    def test_mismatched_store_falls_back_to_pipe(self, tmp_path):
        """An executor warmed for one store must not route into another."""
        pool_store = TraceStore(tmp_path / "pool-cache")
        other = TraceStore(tmp_path / "other-cache")
        manifest = _manifest(tmp_path)
        with CampaignExecutor(jobs=2, store=pool_store) as executor:
            results = run_tasks(manifest, store=other, executor=executor)
            assert executor.stats()["tasks_routed"] == 0
        assert other.stats().entries == 4  # parent backfilled over the pipe
        assert pool_store.stats().entries == 0
        _assert_same_results(results, run_tasks(manifest))

    def test_transient_pool_routes_without_executor(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        results = run_tasks(_manifest(tmp_path), jobs=2, store=store)
        assert _executions(tmp_path) == 4
        assert store.stats().entries == 4
        _assert_same_results(results, run_tasks(_manifest(tmp_path),
                                                store=TraceStore(tmp_path / "cache")))

    def test_determinism_matrix_byte_identical(self, tmp_path):
        """Every transport and worker count must produce the same bytes.

        jobs=1, jobs=2 pipe, jobs=2 store-routed (executor and
        transient pool) and a warm re-read are compared through the
        store codec — the same serialization campaign exports use.
        """
        manifest = _manifest(tmp_path)
        reference = [encode(r) for r in run_tasks(manifest)]

        pipe = run_tasks(manifest, jobs=2, store=TraceStore(tmp_path / "pipe"),
                         transport="pipe")
        routed_store = TraceStore(tmp_path / "routed")
        with CampaignExecutor(jobs=2, store=routed_store) as executor:
            routed = run_tasks(manifest, store=routed_store, executor=executor,
                               transport="store")
            warm = run_tasks(manifest, store=TraceStore(tmp_path / "routed"),
                             executor=executor)
        transient = run_tasks(manifest, jobs=2, store=TraceStore(tmp_path / "tr"))
        for results in (pipe, routed, warm, transient):
            assert [encode(r) for r in results] == reference


class _EvictingStore(TraceStore):
    """Simulates mid-flight LRU eviction: the first parent-side read of
    every key fails as if the entry vanished after the worker wrote it."""

    def __init__(self, root):
        super().__init__(root)
        self.failed_reads: set = set()

    def read(self, key):
        if key not in self.failed_reads:
            self.failed_reads.add(key)
            raise KeyError(key)
        return super().read(key)


class TestRoutedEvictionFallback:
    def test_recompute_writes_back_and_accounts(self, tmp_path):
        store = _EvictingStore(tmp_path / "cache")
        manifest = _manifest(tmp_path)
        with CampaignExecutor(jobs=2, store=store) as executor:
            results = run_tasks(manifest, store=store, executor=executor,
                                transport="store")
            stats = executor.stats()
        # Workers executed all four, the parent recomputed all four.
        assert stats["tasks_routed"] == 4
        assert stats["tasks_recomputed"] == 4
        assert _executions(tmp_path) == 8
        _assert_same_results(results, [t.execute() for t in manifest])
        # The recomputed results were written back: a fresh handle on
        # the same directory replays the campaign without executing.
        warm_store = TraceStore(tmp_path / "cache")
        warm = run_tasks(manifest, store=warm_store)
        assert _executions(tmp_path) == 8 + 4  # _assert serial executes above
        assert warm_store.hits == 4 and warm_store.misses == 0
        _assert_same_results(warm, results)


class TestCampaignMemoization:
    def test_campaign_csv_exports_byte_identical(self, tmp_path):
        from repro.operators.profiles import EU_PROFILES
        from repro.xcal.dataset import CampaignSpec, generate_campaign

        profiles = {"V_Sp": EU_PROFILES["V_Sp"]}
        spec = CampaignSpec(minutes_per_operator=0.1, session_s=3.0, seed=11)
        cold = generate_campaign(profiles, spec, store=TraceStore(tmp_path / "cache"))
        warm_store = TraceStore(tmp_path / "cache")
        warm = generate_campaign(profiles, spec, store=warm_store)
        assert warm_store.misses == 0 and warm_store.hits > 0
        uncached = generate_campaign(profiles, spec)
        for fmt in ("csv", "jsonl", "npz"):
            cold_paths = cold.export(tmp_path / f"cold-{fmt}", format=fmt)
            warm_paths = warm.export(tmp_path / f"warm-{fmt}", format=fmt)
            plain_paths = uncached.export(tmp_path / f"plain-{fmt}", format=fmt)
            assert [p.name for p in cold_paths] == [p.name for p in warm_paths]
            for a, b, c in zip(cold_paths, warm_paths, plain_paths):
                assert a.read_bytes() == b.read_bytes() == c.read_bytes()
