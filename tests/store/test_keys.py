"""Tests for repro.store.keys — canonical task fingerprints."""

import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.runner import SessionTask
from repro.operators.profiles import EU_PROFILES
from repro.store.keys import (
    STORE_SCHEMA_VERSION,
    UnfingerprintableTask,
    canonical_json,
    task_fingerprint,
)
from repro.xcal.dataset import CampaignSpec, run_session

SRC = str(Path(__file__).resolve().parents[2] / "src")


def _campaign_task(direction: str = "DL", seed: int = 41) -> SessionTask:
    return SessionTask(
        fn=run_session,
        kwargs={"profile": EU_PROFILES["V_Sp"],
                "spec": CampaignSpec(minutes_per_operator=0.2, session_s=4.0, seed=9),
                "direction": direction},
        seed=seed,
        label="V_Sp/DL/000",
    )


class TestCanonicalJson:
    def test_dict_order_irrelevant(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_dataclass_and_enum(self):
        spec = CampaignSpec(seed=7)
        encoded = canonical_json(spec)
        assert "CampaignSpec" in encoded
        assert canonical_json(spec) == canonical_json(CampaignSpec(seed=7))
        assert canonical_json(spec) != canonical_json(CampaignSpec(seed=8))

    def test_profile_encodes(self):
        # Profiles nest cells, enums, TDD patterns — all must canonicalize.
        a = canonical_json(EU_PROFILES["V_Sp"])
        assert a == canonical_json(EU_PROFILES["V_Sp"])
        assert a != canonical_json(EU_PROFILES["V_It"])

    def test_numpy_values_collapse(self):
        assert canonical_json(np.int64(3)) == canonical_json(3)
        assert canonical_json({"x": np.float64(1.5)}) == canonical_json({"x": 1.5})
        assert canonical_json(np.arange(3)) == canonical_json(np.arange(3))

    def test_unfingerprintable(self):
        with pytest.raises(UnfingerprintableTask):
            canonical_json(object())
        with pytest.raises(UnfingerprintableTask):
            canonical_json({1: "non-string key"})


class TestTaskFingerprint:
    def test_deterministic(self):
        assert task_fingerprint(_campaign_task()) == task_fingerprint(_campaign_task())

    def test_hex_sha256_shape(self):
        key = task_fingerprint(_campaign_task())
        assert len(key) == 64
        int(key, 16)

    def test_label_is_not_identity(self):
        a = _campaign_task()
        b = SessionTask(fn=a.fn, kwargs=a.kwargs, seed=a.seed, label="renamed")
        assert task_fingerprint(a) == task_fingerprint(b)

    def test_seed_kwargs_fn_salt_all_matter(self):
        base = task_fingerprint(_campaign_task())
        assert task_fingerprint(_campaign_task(seed=42)) != base
        assert task_fingerprint(_campaign_task(direction="UL")) != base
        other_fn = SessionTask(fn=CampaignSpec, kwargs={}, seed=41)
        assert task_fingerprint(other_fn) != base
        assert task_fingerprint(_campaign_task(),
                                salt=STORE_SCHEMA_VERSION + 1) != base

    def test_lambda_rejected(self):
        with pytest.raises(UnfingerprintableTask):
            task_fingerprint(SessionTask(fn=lambda: 0))

    def test_local_function_rejected(self):
        def local():
            return 0

        with pytest.raises(UnfingerprintableTask):
            task_fingerprint(SessionTask(fn=local))


class TestCrossProcessStability:
    _SNIPPET = """
from repro.core.runner import SessionTask
from repro.operators.profiles import EU_PROFILES
from repro.store.keys import task_fingerprint
from repro.xcal.dataset import CampaignSpec, run_session
task = SessionTask(
    fn=run_session,
    kwargs={"profile": EU_PROFILES["V_Sp"],
            "spec": CampaignSpec(minutes_per_operator=0.2, session_s=4.0, seed=9),
            "direction": "DL"},
    seed=41,
)
print(task_fingerprint(task))
"""

    def _fingerprint_in_subprocess(self, hashseed: str) -> str:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = hashseed
        out = subprocess.run([sys.executable, "-c", self._SNIPPET], env=env,
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()

    def test_stable_across_processes_and_hash_seeds(self):
        local = task_fingerprint(_campaign_task())
        assert self._fingerprint_in_subprocess("0") == local
        assert self._fingerprint_in_subprocess("12345") == local
