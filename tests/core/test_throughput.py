"""Tests for repro.core.throughput — the §3.2 / TS 38.306 formula."""

import pytest

from repro.core.throughput import (
    CarrierSpec,
    OVERHEAD_FR1_DL,
    OVERHEAD_FR1_UL,
    R_MAX,
    max_throughput_mbps,
    tdd_adjusted_throughput_mbps,
)
from repro.nr.mcs import Modulation


class TestCarrierSpec:
    def test_n_rb_derived(self):
        assert CarrierSpec(90).n_rb == 245
        assert CarrierSpec(100).n_rb == 273

    def test_n_rb_override(self):
        assert CarrierSpec(20, scs_khz=15, n_rb_override=51).n_rb == 51

    def test_validation(self):
        with pytest.raises(ValueError):
            CarrierSpec(90, layers=0)
        with pytest.raises(ValueError):
            CarrierSpec(90, scaling_factor=0.9)
        with pytest.raises(ValueError):
            CarrierSpec(90, overhead=1.0)


class TestFormula:
    def test_paper_quoted_values(self):
        # §3.2 quotes 1213.44 / 1352.12 Mbps; these are the formula at
        # 2 layers / 256QAM / zero overhead (ratio exactly 273/245).
        v90 = max_throughput_mbps(CarrierSpec(90, layers=2, overhead=0.0))
        v100 = max_throughput_mbps(CarrierSpec(100, layers=2, overhead=0.0))
        assert v90 == pytest.approx(1213.44, rel=0.006)
        assert v100 == pytest.approx(1352.12, rel=0.006)
        assert v100 / v90 == pytest.approx(273 / 245)

    def test_standard_90mhz_value(self):
        # 4 layers, 256QAM, DL overhead 0.14: ~2.1 Gbps.
        value = max_throughput_mbps(CarrierSpec(90))
        expected = 4 * 8 * R_MAX * 12 * 245 / (1e-3 / 28) * (1 - 0.14) * 1e-6
        assert value == pytest.approx(expected)

    def test_linear_in_layers(self):
        one = max_throughput_mbps(CarrierSpec(90, layers=1))
        four = max_throughput_mbps(CarrierSpec(90, layers=4))
        assert four == pytest.approx(4 * one)

    def test_modulation_ratio(self):
        qam64 = max_throughput_mbps(CarrierSpec(90, max_modulation=Modulation.QAM64))
        qam256 = max_throughput_mbps(CarrierSpec(90, max_modulation=Modulation.QAM256))
        assert qam256 / qam64 == pytest.approx(8 / 6)

    def test_ul_overhead_smaller(self):
        assert OVERHEAD_FR1_UL < OVERHEAD_FR1_DL
        dl = max_throughput_mbps(CarrierSpec(90, overhead=OVERHEAD_FR1_DL))
        ul = max_throughput_mbps(CarrierSpec(90, overhead=OVERHEAD_FR1_UL))
        assert ul > dl

    def test_ca_sums(self):
        carriers = [CarrierSpec(100), CarrierSpec(40)]
        assert max_throughput_mbps(carriers) == pytest.approx(
            max_throughput_mbps(carriers[0]) + max_throughput_mbps(carriers[1]))

    def test_scaling_factor(self):
        full = max_throughput_mbps(CarrierSpec(90, scaling_factor=1.0))
        scaled = max_throughput_mbps(CarrierSpec(90, scaling_factor=0.4))
        assert scaled == pytest.approx(0.4 * full)

    def test_empty_ca_rejected(self):
        with pytest.raises(ValueError):
            max_throughput_mbps([])

    def test_fr2_carrier(self):
        value = max_throughput_mbps(CarrierSpec(100, scs_khz=120, fr2=True,
                                                max_modulation=Modulation.QAM64))
        assert value > 500.0  # 66 RBs at 8x slot rate


class TestTddAdjustment:
    def test_scales_by_fraction(self):
        spec = CarrierSpec(90)
        assert tdd_adjusted_throughput_mbps(spec, 0.686) == pytest.approx(
            0.686 * spec.throughput_mbps())

    def test_validation(self):
        with pytest.raises(ValueError):
            tdd_adjusted_throughput_mbps(CarrierSpec(90), 0.0)
        with pytest.raises(ValueError):
            tdd_adjusted_throughput_mbps(CarrierSpec(90), 1.5)
