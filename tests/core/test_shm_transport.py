"""Shared-memory transport: correctness, fallback and segment lifecycle.

The shm transport moves parallel results as POSIX shared-memory arenas
instead of pickles; the contracts under test are that it is invisible
to callers (byte-identical results, plain values pass through), that it
degrades to the pipe when shm is unavailable, and — the part that can
silently rot a host — that ``/dev/shm`` holds no ``repro-*`` segments
after any outcome: success, explicit release, or a worker crash.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core import runner as runner_mod
from repro.core.runner import (SessionTask, release_shm_segments, run_tasks,
                               shm_transport_available)
from repro.xcal.io import npz_bytes, trace_to_arrays
from repro.xcal.records import SlotTrace

needs_shm = pytest.mark.skipif(not shm_transport_available(),
                               reason="POSIX shared memory unavailable")


def _make_trace(n_slots: int = 64, seed: int = 0) -> SlotTrace:
    rng = np.random.default_rng(seed)
    trace = SlotTrace.empty(n_slots)
    trace.sinr_db[:] = rng.normal(15.0, 3.0, n_slots)
    trace.tbs_bits[:] = rng.integers(0, 200_000, n_slots)
    trace.delivered_bits[:] = trace.tbs_bits
    trace.scheduled[:] = rng.random(n_slots) < 0.7
    return trace


def _trace_task(n_slots: int = 64, seed: int = 0) -> SlotTrace:
    return _make_trace(n_slots, seed)


def _int_task(x: int = 0, seed: int = 0) -> int:
    return x + seed


def _crash_task(seed: int = 0) -> None:
    os._exit(3)  # hard kill: no finally blocks, no atexit — a real crash


def _trace_manifest(n: int = 6, n_slots: int = 64) -> list[SessionTask]:
    return [SessionTask(fn=_trace_task, kwargs={"n_slots": n_slots}, seed=s)
            for s in range(n)]


def _bytes_of(trace: SlotTrace) -> bytes:
    return npz_bytes(trace_to_arrays(trace), {"mu": int(trace.mu)})


def _own_segments() -> list[str]:
    """Leaked ``/dev/shm`` segments created by this process tree."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):
        return []
    prefix = f"repro-{os.getpid()}-"
    return [name for name in os.listdir(shm_dir) if name.startswith(prefix)]


class TestShmByteIdentity:
    @needs_shm
    def test_matches_serial_and_pipe(self):
        manifest = _trace_manifest()
        serial = run_tasks(manifest, jobs=1)
        pipe = run_tasks(manifest, jobs=2, transport="pipe")
        shm = run_tasks(manifest, jobs=2, transport="shm")
        for a, b, c in zip(serial, pipe, shm):
            assert _bytes_of(a) == _bytes_of(b) == _bytes_of(c)

    @needs_shm
    def test_plain_values_pass_through(self):
        manifest = [SessionTask(fn=_int_task, kwargs={"x": 10 * i}, seed=i)
                    for i in range(5)]
        assert run_tasks(manifest, jobs=2, transport="shm") == \
            [10 * i + i for i in range(5)]

    @needs_shm
    def test_mixed_traces_and_plain(self):
        manifest = [SessionTask(fn=_trace_task, kwargs={}, seed=1),
                    SessionTask(fn=_int_task, kwargs={"x": 7}, seed=2),
                    SessionTask(fn=_trace_task, kwargs={}, seed=3)]
        serial = run_tasks(manifest, jobs=1)
        shm = run_tasks(manifest, jobs=2, transport="shm")
        assert _bytes_of(shm[0]) == _bytes_of(serial[0])
        assert shm[1] == serial[1] == 9
        assert _bytes_of(shm[2]) == _bytes_of(serial[2])


class TestShmFallback:
    def test_unavailable_without_module(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_shm", None)
        assert shm_transport_available() is False

    def test_run_tasks_falls_back_to_pipe(self, monkeypatch):
        monkeypatch.setattr(runner_mod, "_shm", None)
        manifest = _trace_manifest(n=4)
        serial = run_tasks(manifest, jobs=1)
        shm_requested = run_tasks(manifest, jobs=2, transport="shm")
        for a, b in zip(serial, shm_requested):
            assert _bytes_of(a) == _bytes_of(b)


class TestSegmentLifecycle:
    @needs_shm
    def test_no_leak_after_successful_run(self):
        results = run_tasks(_trace_manifest(), jobs=2, transport="shm")
        # Segments are unlinked as soon as the parent attaches: nothing
        # may remain visible in /dev/shm even while results are alive.
        assert _own_segments() == []
        del results
        release_shm_segments()
        assert _own_segments() == []

    @needs_shm
    def test_release_is_idempotent(self):
        run_tasks(_trace_manifest(n=3), jobs=2, transport="shm")
        release_shm_segments()
        assert release_shm_segments() == 0
        assert release_shm_segments() == 0

    @needs_shm
    def test_worker_crash_leaks_no_segments(self):
        # Trace tasks force arena segments into existence in the chunks
        # that complete; the crashing task then kills its worker
        # mid-run.  The dispatcher must sweep every chunk prefix —
        # completed, in-flight and never-started — on the way out.
        manifest = _trace_manifest(n=8)
        manifest.append(SessionTask(fn=_crash_task, kwargs={}, seed=99))
        with pytest.raises(BaseException):
            run_tasks(manifest, jobs=2, transport="shm")
        release_shm_segments()
        assert _own_segments() == []
