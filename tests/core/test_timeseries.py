"""Tests for repro.core.timeseries."""

import numpy as np
import pytest

from repro.core.timeseries import KpiSeries


class TestBasics:
    def test_length_and_duration(self):
        series = KpiSeries(np.ones(200), 0.5)
        assert len(series) == 200
        assert series.duration_s == pytest.approx(0.1)

    def test_times(self):
        series = KpiSeries(np.arange(4.0), 10.0)
        assert series.times_ms().tolist() == [0.0, 10.0, 20.0, 30.0]

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            KpiSeries(np.ones(5), 0.0)

    def test_stats(self):
        series = KpiSeries(np.array([1.0, 2.0, 3.0, 4.0]), 1.0)
        assert series.mean == 2.5
        assert series.percentile(50) == 2.5
        assert series.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_empty_stats_nan(self):
        series = KpiSeries(np.array([]), 1.0)
        assert np.isnan(series.mean)
        assert np.isnan(series.percentile(50))


class TestResampling:
    def test_resample_mean(self):
        series = KpiSeries(np.array([0.0, 2.0, 4.0, 6.0]), 1.0)
        coarse = series.resample_mean(2.0)
        assert coarse.values.tolist() == [1.0, 5.0]
        assert coarse.interval_ms == 2.0

    def test_resample_sum(self):
        series = KpiSeries(np.array([1.0, 1.0, 1.0, 1.0]), 0.5)
        coarse = series.resample_sum(1.0)
        assert coarse.values.tolist() == [2.0, 2.0]

    def test_non_integer_multiple_rejected(self):
        with pytest.raises(ValueError, match="integer multiple"):
            KpiSeries(np.ones(10), 0.5).resample_mean(0.7)

    def test_upsampling_rejected(self):
        with pytest.raises(ValueError, match="finer"):
            KpiSeries(np.ones(10), 1.0).resample_mean(0.5)

    def test_resample_sum_empty_result(self):
        out = KpiSeries(np.ones(3), 1.0).resample_sum(5.0)
        assert len(out) == 0


class TestVariabilityIntegration:
    def test_variability_delegates(self):
        series = KpiSeries(np.tile([0.0, 1.0], 100), 0.5)
        assert series.variability(0.5) == pytest.approx(1.0)
        assert series.variability(1.0) == pytest.approx(0.0)

    def test_profile_scales(self):
        series = KpiSeries(np.random.default_rng(0).standard_normal(1024), 0.5)
        scales, values = series.variability_profile(max_scale_ms=8.0)
        assert scales[0] == 0.5
        assert scales[-1] == 8.0


class TestFromTrace:
    def test_throughput_from_trace(self, short_dl_trace):
        series = KpiSeries.throughput_from_trace(short_dl_trace, 100.0)
        assert series.interval_ms == 100.0
        assert series.mean > 0

    def test_column_forward_fill(self, short_dl_trace):
        series = KpiSeries.from_trace_column(short_dl_trace, "mcs_index")
        # UL slots (unscheduled) carry the last scheduled MCS, so the
        # series never spuriously drops to zero mid-run.
        sched_min = short_dl_trace.mcs_index[short_dl_trace.scheduled].min()
        assert series.values.min() >= min(sched_min, series.values[0])

    def test_column_binned(self, short_dl_trace):
        series = KpiSeries.from_trace_column(short_dl_trace, "layers", bin_ms=60.0)
        assert series.interval_ms == 60.0
        assert 1.0 <= series.mean <= 4.0
