"""Tests for repro.core.prediction."""

import numpy as np
import pytest

from repro.core.prediction import (
    FEATURE_NAMES,
    ThroughputPredictor,
    evaluate,
    extract_features,
    persistence_baseline,
)


@pytest.fixture(scope="module")
def trace_features():
    from repro.channel.model import SyntheticChannel
    from repro.operators.profiles import EU_PROFILES
    from repro.ran.simulator import simulate_downlink

    profile = EU_PROFILES["V_Sp"]
    cell = profile.primary_cell
    rng = np.random.default_rng(5)
    channel = SyntheticChannel(mean_sinr_db=20.0, slow_sigma_db=4.0,
                               slow_coherence_slots=4000.0).realize(30.0, rng=rng)
    trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
    return extract_features(trace, window_ms=500.0)


class TestFeatureExtraction:
    def test_shapes(self, trace_features):
        features, targets = trace_features
        assert features.shape[1] == len(FEATURE_NAMES)
        assert features.shape[0] == targets.shape[0]
        assert features.shape[0] >= 50

    def test_finite(self, trace_features):
        features, targets = trace_features
        assert np.isfinite(features).all()
        assert np.isfinite(targets).all()

    def test_persistence_column(self, trace_features):
        features, _ = trace_features
        baseline = persistence_baseline(features)
        assert baseline == pytest.approx(features[:, 0])

    def test_window_validation(self, short_dl_trace):
        with pytest.raises(ValueError):
            extract_features(short_dl_trace, window_ms=0.0)

    def test_too_short_trace(self, short_dl_trace):
        with pytest.raises(ValueError, match="too short"):
            extract_features(short_dl_trace, window_ms=5000.0)


class TestPredictor:
    def test_fits_linear_relationship(self, rng):
        n, d = 200, len(FEATURE_NAMES)
        features = rng.normal(size=(n, d))
        true_coef = np.zeros(d)
        true_coef[3] = 5.0  # mcs_mean drives the target
        targets = features @ true_coef + 100.0 + 0.01 * rng.normal(size=n)
        predictor = ThroughputPredictor(alpha=0.1).fit(features, targets)
        predicted = predictor.predict(features)
        assert np.mean(np.abs(predicted - targets)) < 0.5
        importance = predictor.feature_importance()
        assert max(importance, key=importance.get) == FEATURE_NAMES[3]

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            ThroughputPredictor().predict(np.zeros((1, len(FEATURE_NAMES))))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            ThroughputPredictor().fit(np.zeros((5, 10)), np.zeros(4))
        with pytest.raises(ValueError):
            ThroughputPredictor().fit(np.zeros((3, 10)), np.zeros(3))

    def test_constant_feature_handled(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(50, len(FEATURE_NAMES)))
        features[:, 5] = 7.0  # zero-variance column must not divide by 0
        targets = rng.normal(size=50)
        predictor = ThroughputPredictor().fit(features, targets)
        assert np.isfinite(predictor.predict(features)).all()


class TestEvaluation:
    def test_real_trace_model_not_catastrophic(self, trace_features):
        features, targets = trace_features
        outcome = evaluate(features, targets)
        # On a single stationary-ish trace the residual model must stay
        # within striking distance of persistence (it nests it).
        assert outcome.model_mae < 1.5 * outcome.baseline_mae
        assert outcome.model_mape >= 0.0

    def test_improvement_sign_convention(self):
        from repro.core.prediction import EvaluationResult

        better = EvaluationResult(model_mae=50.0, baseline_mae=100.0,
                                  model_mape=0.1, baseline_mape=0.2)
        assert better.improvement == pytest.approx(0.5)
        worse = EvaluationResult(model_mae=120.0, baseline_mae=100.0,
                                 model_mape=0.2, baseline_mape=0.1)
        assert worse.improvement < 0

    def test_split_validation(self, trace_features):
        features, targets = trace_features
        with pytest.raises(ValueError):
            evaluate(features, targets, train_fraction=1.0)
