"""Tests for repro.core.latency — the §4.3 user-plane latency model."""

import numpy as np
import pytest

from repro.core.latency import LatencyBreakdown, UserPlaneLatencyModel
from repro.nr.tdd import TddPattern

DDDSU = TddPattern.from_string("DDDSU")
LONG = TddPattern.from_string("DDDDDDDSUU")


class TestBreakdown:
    def test_total_is_sum(self):
        breakdown = LatencyBreakdown(0.35, 0.5, 0.3, 0.0, 0.0, 0.85, 0.5, 0.25)
        assert breakdown.total_ms == pytest.approx(2.75)
        assert breakdown.dl_latency_ms == pytest.approx(1.15)
        assert breakdown.ul_latency_ms == pytest.approx(1.60)

    def test_configured_grant_has_no_sr_terms(self):
        model = UserPlaneLatencyModel(DDDSU, sr_based_ul=False)
        breakdown = model.breakdown()
        assert breakdown.sr_alignment == 0.0
        assert breakdown.grant_round_trip == 0.0

    def test_sr_adds_terms(self):
        model = UserPlaneLatencyModel(LONG, sr_based_ul=True)
        breakdown = model.breakdown()
        assert breakdown.sr_alignment > 0.0
        assert breakdown.grant_round_trip > 0.0


class TestMeanLatency:
    def test_pattern_drives_latency(self):
        # §4.3 headline: frame structure, not bandwidth, sets the delay.
        short = UserPlaneLatencyModel(DDDSU, sr_based_ul=False).mean_latency_ms()
        long_sr = UserPlaneLatencyModel(LONG, sr_based_ul=True).mean_latency_ms()
        assert long_sr > 2.0 * short

    def test_paper_magnitudes(self):
        # DDDSU configured-grant deployments land in the 2-3 ms band,
        # DDDDDDDSUU SR-based deployments in the 5-7 ms band (Fig. 11).
        short = UserPlaneLatencyModel(DDDSU, sr_based_ul=False,
                                      ue_processing_ms=0.1, gnb_processing_ms=0.1)
        assert 2.0 <= short.mean_latency_ms() <= 3.0
        long_model = UserPlaneLatencyModel(LONG, sr_based_ul=True,
                                           ue_processing_ms=0.3, gnb_processing_ms=0.3)
        assert 5.0 <= long_model.mean_latency_ms() <= 7.5

    def test_bler_positive_adds_penalty(self):
        model = UserPlaneLatencyModel(DDDSU, retx_fraction=0.3)
        assert model.mean_latency_ms(True) > model.mean_latency_ms(False)
        delta = model.mean_latency_ms(True) - model.mean_latency_ms(False)
        assert delta == pytest.approx(0.3 * model.harq_penalty_ms())

    def test_harq_penalty_positive(self):
        assert UserPlaneLatencyModel(DDDSU).harq_penalty_ms() > 1.0

    def test_retx_fraction_validation(self):
        with pytest.raises(ValueError):
            UserPlaneLatencyModel(DDDSU, retx_fraction=1.5)


class TestMonteCarlo:
    def test_sample_mean_close_to_analytic(self, rng):
        model = UserPlaneLatencyModel(DDDSU, sr_based_ul=False)
        samples = model.sample(20000, rng=rng)
        # MC walks actual slot boundaries; the analytic mean chains
        # averages, so they agree only approximately.
        assert samples.mean() == pytest.approx(model.mean_latency_ms(), rel=0.25)

    def test_samples_positive_and_bounded(self, rng):
        model = UserPlaneLatencyModel(LONG, sr_based_ul=True)
        samples = model.sample(5000, rng=rng)
        assert samples.min() > 0
        assert samples.max() < 25.0

    def test_retx_probability_shifts_tail(self, rng):
        model = UserPlaneLatencyModel(DDDSU)
        clean = model.sample(20000, rng=np.random.default_rng(1))
        retx = model.sample(20000, rng=np.random.default_rng(1), retx_probability=0.5)
        assert retx.mean() > clean.mean()

    def test_sample_validation(self, rng):
        model = UserPlaneLatencyModel(DDDSU)
        with pytest.raises(ValueError):
            model.sample(0, rng=rng)
        with pytest.raises(ValueError):
            model.sample(10, rng=rng, retx_probability=2.0)
