"""Tests for repro.core.qoe."""

import numpy as np
import pytest

from repro.core.qoe import (
    QoeMetrics,
    bitrate_smoothness,
    normalized_bitrate,
    stall_percentage,
)


class TestNormalizedBitrate:
    def test_basic(self):
        assert normalized_bitrate(np.array([375.0, 375.0]), 750.0) == pytest.approx(0.5)

    def test_empty(self):
        assert normalized_bitrate(np.array([]), 750.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            normalized_bitrate(np.array([1.0]), 0.0)


class TestStallPercentage:
    def test_basic(self):
        # 10 s stalled over a 100 s playback -> 10/110 of session time.
        assert stall_percentage(10.0, 100.0) == pytest.approx(100 * 10 / 110)

    def test_zero_session(self):
        assert stall_percentage(0.0, 0.0) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            stall_percentage(-1.0, 10.0)


class TestSmoothness:
    def test_constant_is_smooth(self):
        assert bitrate_smoothness(np.full(10, 400.0)) == 0.0

    def test_oscillation_penalized(self):
        oscillating = np.tile([30.0, 750.0], 10)
        assert bitrate_smoothness(oscillating) == pytest.approx(720.0)

    def test_short_series(self):
        assert bitrate_smoothness(np.array([400.0])) == 0.0


class TestQoeMetrics:
    def test_from_session(self):
        metrics = QoeMetrics.from_session(
            quality_levels=np.array([6, 6, 5, 4]),
            chunk_bitrates_mbps=np.array([750.0, 750.0, 600.0, 400.0]),
            max_bitrate_mbps=750.0,
            stall_events_s=np.array([0.0, 0.0, 2.0, 0.0]),
            playback_s=16.0,
        )
        assert metrics.mean_quality_level == pytest.approx(5.25)
        assert metrics.n_stalls == 1
        assert metrics.stall_time_s == 2.0
        assert metrics.stall_percentage == pytest.approx(100 * 2 / 18)
        assert metrics.normalized_bitrate == pytest.approx(625 / 750)
        assert metrics.n_chunks == 4

    def test_empty_session(self):
        metrics = QoeMetrics.from_session(
            quality_levels=np.array([]),
            chunk_bitrates_mbps=np.array([]),
            max_bitrate_mbps=750.0,
            stall_events_s=np.array([]),
            playback_s=0.0,
        )
        assert metrics.mean_quality_level == 0.0
        assert metrics.n_chunks == 0

    def test_row_renders(self):
        metrics = QoeMetrics.from_session(
            quality_levels=np.array([3]),
            chunk_bitrates_mbps=np.array([200.0]),
            max_bitrate_mbps=750.0,
            stall_events_s=np.array([0.0]),
            playback_s=4.0,
        )
        assert "stall=" in metrics.row()
