"""Cohort grouping and campaign-level byte-identity of cohort execution.

``group_tasks_by_shape`` partitions a manifest into maximal consecutive
same-shape runs; ``run_tasks`` executes such runs as single tensor
passes when a cohort runner is registered.  The contract under test:
campaign output is *byte-identical* — same npz bytes per session — no
matter the cohort chunk size (1/2/7/64), the jobs count (1/2/auto), or
whether the tensor engine runs at all.
"""

from __future__ import annotations

import pytest

from repro.core import runner as runner_mod
from repro.core.runner import SessionTask, group_tasks_by_shape, run_tasks
from repro.operators.profiles import EU_PROFILES
from repro.xcal.dataset import (CampaignSpec, campaign_manifest,
                                campaign_reduction, run_session)
from repro.xcal.io import npz_bytes, trace_to_arrays


def _noop(x: int = 0, seed: int | None = None) -> int:
    return x


def _other(x: int = 0, seed: int | None = None) -> int:
    return x


class TestGroupTasksByShape:
    def test_single_run(self):
        tasks = [SessionTask(fn=_noop, kwargs={"x": 1}, seed=s)
                 for s in range(4)]
        assert group_tasks_by_shape(tasks) == [[0, 1, 2, 3]]

    def test_splits_on_kwargs_change(self):
        tasks = [SessionTask(fn=_noop, kwargs={"x": 1}, seed=0),
                 SessionTask(fn=_noop, kwargs={"x": 1}, seed=1),
                 SessionTask(fn=_noop, kwargs={"x": 2}, seed=2),
                 SessionTask(fn=_noop, kwargs={"x": 1}, seed=3)]
        assert group_tasks_by_shape(tasks) == [[0, 1], [2], [3]]

    def test_splits_on_fn_change(self):
        tasks = [SessionTask(fn=_noop, kwargs={"x": 1}, seed=0),
                 SessionTask(fn=_other, kwargs={"x": 1}, seed=1)]
        assert group_tasks_by_shape(tasks) == [[0], [1]]

    def test_seedless_tasks_never_group(self):
        tasks = [SessionTask(fn=_noop, kwargs={"x": 1}),
                 SessionTask(fn=_noop, kwargs={"x": 1}),
                 SessionTask(fn=_noop, kwargs={"x": 1}, seed=1)]
        assert group_tasks_by_shape(tasks) == [[0], [1], [2]]

    def test_consecutive_only(self):
        # A same-shape task separated by a different one starts a new
        # group — grouping must preserve manifest order.
        a = SessionTask(fn=_noop, kwargs={"x": 1}, seed=0)
        b = SessionTask(fn=_noop, kwargs={"x": 2}, seed=1)
        c = SessionTask(fn=_noop, kwargs={"x": 1}, seed=2)
        assert group_tasks_by_shape([a, b, c]) == [[0], [1], [2]]

    def test_empty(self):
        assert group_tasks_by_shape([]) == []

    def test_campaign_manifest_groups_by_operator_direction(self):
        spec = CampaignSpec(minutes_per_operator=0.3, session_s=3.0)
        profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Fr")}
        manifest = campaign_manifest(profiles, spec)
        groups = group_tasks_by_shape(manifest)
        # One group per (operator, direction) pair, contiguous, covering
        # the manifest in order.
        assert [i for g in groups for i in g] == list(range(len(manifest)))
        assert len(groups) == 4
        for group in groups:
            kinds = {(manifest[i].kwargs["profile"].key,
                      manifest[i].kwargs["direction"]) for i in group}
            assert len(kinds) == 1


def _campaign(n_dl_heavy: bool = True):
    spec = CampaignSpec(minutes_per_operator=0.9, session_s=3.0,
                        seed=314)
    profiles = {k: EU_PROFILES[k] for k in ("V_Sp", "O_Fr")}
    return campaign_manifest(profiles, spec)


def _bytes_list(traces) -> list[bytes]:
    return [npz_bytes(trace_to_arrays(t), {}) for t in traces]


class TestCampaignByteIdentity:
    """The satellite equality matrix: cohort sizes x jobs counts."""

    @pytest.fixture(scope="class")
    def per_session_baseline(self):
        manifest = _campaign()
        # REPRO_ENGINE pins every session to the per-session vectorized
        # engine regardless of cohort grouping.
        import os
        os.environ["REPRO_ENGINE"] = "vectorized"
        try:
            return _bytes_list(run_tasks(manifest, jobs=1))
        finally:
            del os.environ["REPRO_ENGINE"]

    @pytest.mark.parametrize("cohort_size", [1, 2, 7, 64])
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_matches_per_session(self, per_session_baseline, monkeypatch,
                                 cohort_size: int, jobs: int):
        monkeypatch.setattr(runner_mod, "_COHORT_MIN_CHUNK", cohort_size)
        monkeypatch.setattr(runner_mod, "_COHORT_MAX_CHUNK", cohort_size)
        got = _bytes_list(run_tasks(_campaign(), jobs=jobs))
        assert got == per_session_baseline

    def test_matches_per_session_jobs_auto(self, per_session_baseline):
        got = _bytes_list(run_tasks(_campaign(), jobs="auto"))
        assert got == per_session_baseline

    def test_reduce_path_identical(self, monkeypatch):
        """Cohort execution folds sketch columns one at a time; the
        merged campaign sketch must serialize byte-identically to the
        per-session fold (sketches compare by identity, so the store
        codec payload is the equality oracle)."""
        manifest = _campaign()
        monkeypatch.setenv("REPRO_ENGINE", "vectorized")
        exact = run_tasks(manifest, jobs=1, reduce=campaign_reduction())
        monkeypatch.delenv("REPRO_ENGINE")
        cohort = run_tasks(manifest, jobs=1, reduce=campaign_reduction())
        assert npz_bytes(*cohort.to_arrays()) == npz_bytes(*exact.to_arrays())


class TestCohortDispatch:
    def test_cohort_runner_consumed_lazily(self):
        calls: list[list[int]] = []

        def one(x: int = 0, seed: int = 0) -> int:
            return seed * x

        def one_cohort(seeds, x: int = 0):
            calls.append(list(seeds))
            return (s * x for s in seeds)

        runner_mod.register_cohort_runner(one, one_cohort)
        try:
            manifest = [SessionTask(fn=one, kwargs={"x": 3}, seed=s)
                        for s in range(5)]
            assert run_tasks(manifest, jobs=1) == [0, 3, 6, 9, 12]
            assert calls == [[0, 1, 2, 3, 4]]
        finally:
            runner_mod._COHORT_RUNNERS.pop(one, None)

    def test_short_cohort_yield_detected(self):
        def two(x: int = 0, seed: int = 0) -> int:
            return seed

        def two_cohort(seeds, x: int = 0):
            return (s for s in seeds[:-1])

        runner_mod.register_cohort_runner(two, two_cohort)
        try:
            manifest = [SessionTask(fn=two, kwargs={"x": 1}, seed=s)
                        for s in range(3)]
            with pytest.raises(RuntimeError, match="fewer results"):
                run_tasks(manifest, jobs=1)
        finally:
            runner_mod._COHORT_RUNNERS.pop(two, None)

    def test_long_cohort_yield_detected(self):
        def three(x: int = 0, seed: int = 0) -> int:
            return seed

        def three_cohort(seeds, x: int = 0):
            return (s for s in list(seeds) + [99])

        runner_mod.register_cohort_runner(three, three_cohort)
        try:
            manifest = [SessionTask(fn=three, kwargs={"x": 1}, seed=s)
                        for s in range(3)]
            with pytest.raises(RuntimeError, match="more results"):
                run_tasks(manifest, jobs=1)
        finally:
            runner_mod._COHORT_RUNNERS.pop(three, None)


def test_prewarm_covers_tensor_shapes():
    """After prewarm, a cohort tensor run adds no TBS-matrix misses.

    ``min_grant_fraction = 1 - BACKGROUND_TRIM_MAX`` is the guaranteed
    floor: the background trim is clipped there, so every grant size
    the tensor pass can stack-resolve is prewarmed.
    """
    from repro.nr.tbs import clear_tbs_matrix_cache, tbs_matrix_cache_stats
    from repro.ran.simulator import BACKGROUND_TRIM_MAX, prewarm_tbs_matrices
    from repro.xcal.dataset import run_session_cohort

    profile = EU_PROFILES["V_Sp"]
    spec = CampaignSpec(minutes_per_operator=0.3, session_s=3.0)
    clear_tbs_matrix_cache()
    prewarm_tbs_matrices(profile.primary_cell,
                         max_layers=profile.primary_cell.max_layers,
                         min_grant_fraction=1.0 - BACKGROUND_TRIM_MAX)
    warm = tbs_matrix_cache_stats()
    for _ in run_session_cohort(profile, spec, "DL",
                                [session_seed_ for session_seed_ in range(4)]):
        pass
    after = tbs_matrix_cache_stats()
    assert after["misses"] == warm["misses"]
    assert after["hits"] > warm["hits"]
