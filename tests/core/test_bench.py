"""Tests for the tracked slot-engine benchmark (``repro bench``)."""

from __future__ import annotations

import copy

import pytest

from repro.core import bench


def _report(single_vec=800_000.0, single_ref=600_000.0,
            multi_vec=60_000.0, multi_ref=35_000.0) -> dict:
    def cell(warm):
        return {"cold_slots_per_s": warm / 2, "warm_slots_per_s": warm}

    return {
        "bench": "slot_engine",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "workloads": {
            "single_ue": {"vectorized": cell(single_vec),
                          "reference": cell(single_ref), "n_slots": 4000},
            "multi_ue": {"vectorized": cell(multi_vec),
                         "reference": cell(multi_ref), "n_slots": 4000,
                         "n_ues": 4},
        },
    }


class TestRegressionGate:
    def test_identical_reports_pass(self):
        report = _report()
        assert bench.regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        # A machine half as fast slows both engines; no regression.
        base = _report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            for engine in ("vectorized", "reference"):
                data[engine]["warm_slots_per_s"] /= 2.0
        assert bench.regression_failures(current, base) == []

    def test_vectorized_only_slowdown_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        current["workloads"]["single_ue"]["vectorized"]["warm_slots_per_s"] /= 2.0
        failures = bench.regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("single_ue:")

    def test_missing_workload_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        del current["workloads"]["multi_ue"]
        failures = bench.regression_failures(current, base)
        assert failures == ["multi_ue: missing from current report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.regression_failures(_report(), _report(), threshold=1.5)


def _campaign_report(jobs1_cold=50.0, jobs1_warm=400.0, pipe=90.0,
                     routed_cold=150.0, routed_warm=420.0) -> dict:
    def cell(rate):
        return {"sessions_per_s": rate, "wall_s": round(12.0 / rate, 3)}

    return {
        "bench": "campaign",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "config": {"profiles": ["V_Sp", "O_Sp_100", "T_Ge", "V_Ge"],
                   "n_sessions": 12, "jobs": 2, "seed": 2024},
        "pool": {"workers": 2, "pools_created": 1, "dispatches": 2,
                 "tasks_executed": 12, "tasks_routed": 12},
        "workloads": {
            "jobs1_cold": cell(jobs1_cold),
            "jobs1_warm": cell(jobs1_warm),
            "pipe_cold": cell(pipe),
            "store_routed_cold": cell(routed_cold),
            "store_routed_warm": cell(routed_warm),
        },
        "speedup": {
            "routed_cold_vs_pipe_cold": round(routed_cold / pipe, 2),
            "warm_vs_pre_pr_pipe": round(routed_warm / pipe, 2),
        },
    }


class TestCampaignRegressionGate:
    def test_identical_reports_pass(self):
        report = _campaign_report()
        assert bench.campaign_regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            data["sessions_per_s"] /= 2.0
        assert bench.campaign_regression_failures(current, base) == []

    def test_routed_only_slowdown_fails(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        current["workloads"]["store_routed_cold"]["sessions_per_s"] /= 2.0
        failures = bench.campaign_regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("store_routed_cold:")

    def test_pipe_path_is_not_gated(self):
        # The legacy comparator may drift; only the tracked paths gate.
        base = _campaign_report()
        current = copy.deepcopy(base)
        current["workloads"]["pipe_cold"]["sessions_per_s"] /= 10.0
        assert bench.campaign_regression_failures(current, base) == []

    def test_missing_gated_workload_fails(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        del current["workloads"]["store_routed_warm"]
        failures = bench.campaign_regression_failures(current, base)
        assert failures == ["store_routed_warm: missing from current report"]

    def test_missing_reference_reports_cleanly(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        del current["workloads"]["jobs1_cold"]
        failures = bench.campaign_regression_failures(current, base)
        assert failures == ["jobs1_cold: reference workload missing from a report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.campaign_regression_failures(_campaign_report(),
                                               _campaign_report(), threshold=0.0)


class TestCampaignRender:
    def test_render_lists_workloads_speedup_and_pool(self):
        text = bench.render_campaign(_campaign_report())
        assert "store_routed_cold" in text and "pipe_cold" in text
        assert "4.67x" in text  # 420 / 90 warm-vs-pipe speedup
        assert "workers=2" in text and "routed=12" in text


class TestCampaignWorkloadShape:
    def test_manifest_is_deterministic_and_covers_profiles(self):
        a = bench.campaign_tasks(quick=True, seed=2024)
        b = bench.campaign_tasks(quick=True, seed=2024)
        assert [t.label for t in a] == [t.label for t in b]
        assert [t.seed for t in a] == [t.seed for t in b]
        operators = {t.label.rsplit("/", 2)[0] for t in a}
        assert operators == {"V_Sp", "O_Sp_100", "T_Ge", "V_Ge"}

    def test_quick_mode_is_smaller(self):
        assert len(bench.campaign_tasks(quick=True)) <= \
            len(bench.campaign_tasks(quick=False))


class TestReportIo:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _report()
        path = tmp_path / "bench.json"
        bench.write_report(report, path)
        assert bench.load_report(path) == report
        # Stable output: diff-friendly, newline-terminated.
        text = path.read_text()
        assert text.endswith("\n")
        bench.write_report(report, path)
        assert path.read_text() == text


class TestRender:
    def test_render_lists_workloads_and_speedup(self):
        report = _report()
        report["quick"] = False
        report["config"] = {"profile": "V_Sp", "duration_s": 5.0,
                            "repetitions": 11, "seed": 2024}
        report["speedup_vs_pre_pr"] = {"single_ue": 3.45, "multi_ue": 5.79}
        text = bench.render(report)
        assert "single_ue" in text and "multi_ue" in text
        assert "vectorized" in text and "reference" in text
        assert "3.45x" in text
