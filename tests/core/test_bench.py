"""Tests for the tracked slot-engine benchmark (``repro bench``)."""

from __future__ import annotations

import copy

import pytest

from repro.core import bench


def _report(single_vec=800_000.0, single_ref=600_000.0,
            multi_vec=60_000.0, multi_ref=35_000.0) -> dict:
    def cell(warm):
        return {"cold_slots_per_s": warm / 2, "warm_slots_per_s": warm}

    return {
        "bench": "slot_engine",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "workloads": {
            "single_ue": {"vectorized": cell(single_vec),
                          "reference": cell(single_ref), "n_slots": 4000},
            "multi_ue": {"vectorized": cell(multi_vec),
                         "reference": cell(multi_ref), "n_slots": 4000,
                         "n_ues": 4},
        },
    }


class TestRegressionGate:
    def test_identical_reports_pass(self):
        report = _report()
        assert bench.regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        # A machine half as fast slows both engines; no regression.
        base = _report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            for engine in ("vectorized", "reference"):
                data[engine]["warm_slots_per_s"] /= 2.0
        assert bench.regression_failures(current, base) == []

    def test_vectorized_only_slowdown_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        current["workloads"]["single_ue"]["vectorized"]["warm_slots_per_s"] /= 2.0
        failures = bench.regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("single_ue:")

    def test_missing_workload_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        del current["workloads"]["multi_ue"]
        failures = bench.regression_failures(current, base)
        assert failures == ["multi_ue: missing from current report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.regression_failures(_report(), _report(), threshold=1.5)


def _campaign_report(jobs1_cold=50.0, jobs1_warm=400.0, pipe=90.0,
                     routed_cold=150.0, routed_warm=420.0,
                     shm_cold=65.0, cpu_count=4) -> dict:
    def cell(rate):
        return {"sessions_per_s": rate, "wall_s": round(12.0 / rate, 3)}

    return {
        "bench": "campaign",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "config": {"profiles": ["V_Sp", "O_Sp_100", "T_Ge", "V_Ge"],
                   "n_sessions": 12, "jobs": 2, "seed": 2024,
                   "cpu_count": cpu_count},
        "pool": {"workers": 2, "pools_created": 1, "dispatches": 2,
                 "tasks_executed": 12, "tasks_routed": 12,
                 "tasks_recomputed": 0},
        "workloads": {
            "jobs1_cold": cell(jobs1_cold),
            "jobs1_warm": cell(jobs1_warm),
            "pipe_cold": cell(pipe),
            "store_routed_cold": cell(routed_cold),
            "store_routed_warm": cell(routed_warm),
            "shm_cold": {**cell(shm_cold), "jobs": 2},
        },
        "speedup": {
            "routed_cold_vs_pipe_cold": round(routed_cold / pipe, 2),
            "warm_vs_pre_pr_pipe": round(routed_warm / pipe, 2),
            "shm_cold_vs_jobs1_cold": round(shm_cold / jobs1_cold, 2),
            "shm_cold_vs_pipe_cold": round(shm_cold / pipe, 2),
        },
    }


class TestCampaignRegressionGate:
    def test_identical_reports_pass(self):
        report = _campaign_report()
        assert bench.campaign_regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            data["sessions_per_s"] /= 2.0
        assert bench.campaign_regression_failures(current, base) == []

    def test_routed_only_slowdown_fails(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        current["workloads"]["store_routed_cold"]["sessions_per_s"] /= 2.0
        failures = bench.campaign_regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("store_routed_cold:")

    def test_pipe_path_is_not_gated(self):
        # The legacy comparator may drift; only the tracked paths gate.
        base = _campaign_report()
        current = copy.deepcopy(base)
        current["workloads"]["pipe_cold"]["sessions_per_s"] /= 10.0
        assert bench.campaign_regression_failures(current, base) == []

    def test_missing_gated_workload_fails(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        del current["workloads"]["store_routed_warm"]
        failures = bench.campaign_regression_failures(current, base)
        assert failures == ["store_routed_warm: missing from current report"]

    def test_routed_cold_below_pipe_floor_fails(self):
        # Same report as baseline, so normalization passes; only the
        # intra-report routed-vs-pipe floor can fire.
        report = _campaign_report(routed_cold=70.0, pipe=90.0)
        report["quick"] = False
        failures = bench.campaign_regression_failures(report, report)
        assert len(failures) == 1
        assert failures[0].startswith("routed_cold_vs_pipe_cold:")

    def test_routed_cold_within_noise_floor_passes(self):
        report = _campaign_report(routed_cold=85.0, pipe=90.0)  # 0.94x
        report["quick"] = False
        assert bench.campaign_regression_failures(report, report) == []

    def test_shm_below_parallel_efficiency_floor_fails(self):
        # Full-mode, multi-core: shm with 2 workers must reach 1.2x serial.
        report = _campaign_report(shm_cold=55.0)  # 1.10x vs jobs1_cold
        report["quick"] = False
        failures = bench.campaign_regression_failures(report, report)
        assert len(failures) == 1
        assert failures[0].startswith("shm_cold_vs_jobs1_cold:")

    def test_shm_floor_relaxed_in_quick_mode(self):
        # Quick workloads are spawn-dominated; 1.10x clears the 0.85 floor.
        report = _campaign_report(shm_cold=55.0)
        assert bench.campaign_regression_failures(report, report) == []

    def test_shm_floor_relaxed_on_single_core(self):
        # Two workers timesharing one core cannot beat serial wall-clock;
        # the gate degrades to break-even there.
        report = _campaign_report(shm_cold=55.0, cpu_count=1)
        report["quick"] = False
        assert bench.campaign_regression_failures(report, report) == []

    def test_shm_losing_to_serial_fails_everywhere(self):
        # The pre-arena serialization tax (0.58x) must fail on any host.
        report = _campaign_report(shm_cold=29.0, cpu_count=1)
        report["quick"] = False
        failures = bench.campaign_regression_failures(report, report)
        assert any(f.startswith("shm_cold_vs_jobs1_cold:") for f in failures)

    def test_shm_unavailable_platform_skips_gate(self):
        report = _campaign_report()
        del report["workloads"]["shm_cold"]
        del report["speedup"]["shm_cold_vs_jobs1_cold"]
        del report["speedup"]["shm_cold_vs_pipe_cold"]
        report["shm_unavailable"] = True
        assert bench.campaign_regression_failures(report, report) == []

    def test_missing_shm_workload_fails_when_available(self):
        report = _campaign_report()
        del report["speedup"]["shm_cold_vs_jobs1_cold"]
        failures = bench.campaign_regression_failures(report, report)
        assert any("shm workload did not run" in f for f in failures)

    def test_quick_reports_get_pipe_floor_slack(self):
        # Pool spawn dominates a quick run's sub-second wall, so the
        # same 0.78x ratio passes in quick mode but not full mode.
        report = _campaign_report(routed_cold=70.0, pipe=90.0)  # quick
        assert bench.campaign_regression_failures(report, report) == []
        worse = _campaign_report(routed_cold=60.0, pipe=90.0)  # 0.67x
        failures = bench.campaign_regression_failures(worse, worse)
        assert any(f.startswith("routed_cold_vs_pipe_cold:")
                   for f in failures)

    def test_routed_warm_is_not_normalized_across_modes(self):
        # Memo-replay sessions/s is fixed-overhead-bound, so a warm
        # rate below the normalized floor must pass as long as it
        # still crushes its own cold run.
        base = _campaign_report(routed_warm=420.0)
        # Machine 2x faster (jobs1_cold 50 -> 100); warm replay only
        # reaches 520 < the 420 * 2 * 0.7 = 588 normalized floor, but
        # still beats its own cold run by 2x+.
        current = _campaign_report(jobs1_cold=100.0, jobs1_warm=800.0,
                                   pipe=180.0, routed_cold=250.0,
                                   routed_warm=520.0, shm_cold=130.0)
        assert bench.campaign_regression_failures(current, base) == []

    def test_routed_warm_below_intra_report_floor_fails(self):
        report = _campaign_report(routed_cold=150.0, routed_warm=200.0)
        failures = bench.campaign_regression_failures(report, report)
        assert any("memo replay is recomputing" in f for f in failures)

    def test_missing_reference_reports_cleanly(self):
        base = _campaign_report()
        current = copy.deepcopy(base)
        del current["workloads"]["jobs1_cold"]
        failures = bench.campaign_regression_failures(current, base)
        assert failures == ["jobs1_cold: reference workload missing from a report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.campaign_regression_failures(_campaign_report(),
                                               _campaign_report(), threshold=0.0)


class TestCampaignRender:
    def test_render_lists_workloads_speedup_and_pool(self):
        text = bench.render_campaign(_campaign_report())
        assert "store_routed_cold" in text and "pipe_cold" in text
        assert "4.67x" in text  # 420 / 90 warm-vs-pipe speedup
        assert "workers=2" in text and "routed=12" in text


class TestCampaignWorkloadShape:
    def test_manifest_is_deterministic_and_covers_profiles(self):
        a = bench.campaign_tasks(quick=True, seed=2024)
        b = bench.campaign_tasks(quick=True, seed=2024)
        assert [t.label for t in a] == [t.label for t in b]
        assert [t.seed for t in a] == [t.seed for t in b]
        operators = {t.label.rsplit("/", 2)[0] for t in a}
        assert operators == {"V_Sp", "O_Sp_100", "T_Ge", "V_Ge"}

    def test_quick_mode_is_smaller(self):
        assert len(bench.campaign_tasks(quick=True)) <= \
            len(bench.campaign_tasks(quick=False))


def _reduce_report(exact=12.0, reduce_cold=12.5, store_cold=11.0,
                   store_warm=1200.0, exact_peak=10.0, reduce_peak=2.7,
                   kpi_ok=True, demo_peak=None) -> dict:
    def cell(rate, peak):
        return {"sessions_per_s": rate, "wall_s": round(12.0 / rate, 3),
                "peak_mb": peak}

    report = {
        "bench": "reduce",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "config": {"profiles": ["V_Sp", "O_Sp_100", "T_Ge", "V_Ge"],
                   "n_sessions": 12, "jobs": 1, "cold_reps": 2, "seed": 2024},
        "workloads": {
            "exact_cold": cell(exact, exact_peak),
            "reduce_cold": cell(reduce_cold, reduce_peak),
            "reduce_store_cold": cell(store_cold, reduce_peak),
            "reduce_store_warm": cell(store_warm, 0.2),
        },
        "kpi_check": {"ok": kpi_ok, "groups": 8, "max_mean_rel_err": 0.0,
                      "max_std_rel_err": 0.0, "max_percentile_err": 1.9,
                      "percentile_tolerance": 4.0},
        "speedup": {"reduce_cold_vs_exact_cold": round(reduce_cold / exact, 2),
                    "memo_warm_vs_cold": round(store_warm / store_cold, 2)},
        "memory": {"reduce_vs_exact_peak": round(reduce_peak / exact_peak, 3)},
    }
    if demo_peak is not None:
        report["demo"] = {"sessions_per_s": 200.0, "wall_s": 50.0,
                          "peak_mb": demo_peak, "n_sessions": 10000,
                          "peak_vs_reduce_cold": round(demo_peak / reduce_peak, 3)}
    return report


class TestReduceRegressionGate:
    def test_identical_reports_pass(self):
        report = _reduce_report(demo_peak=3.0)
        assert bench.reduce_regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        base = _reduce_report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            data["sessions_per_s"] /= 2.0
        assert bench.reduce_regression_failures(current, base) == []

    def test_reduce_only_slowdown_fails(self):
        base = _reduce_report()
        current = copy.deepcopy(base)
        current["workloads"]["reduce_cold"]["sessions_per_s"] /= 2.0
        failures = bench.reduce_regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("reduce_cold:")

    def test_failed_kpi_oracle_fails(self):
        report = _reduce_report(kpi_ok=False)
        failures = bench.reduce_regression_failures(report, report)
        assert any(f.startswith("kpi_check:") for f in failures)

    def test_memo_warm_is_not_normalized_across_modes(self):
        # Memo-hit sessions/s tracks the manifest size, not machine
        # speed: a slow warm rate with a fast exact_cold must not trip
        # the normalized gate as long as it still crushes recompute.
        base = _reduce_report(store_warm=1200.0)
        current = _reduce_report(exact=20.0, reduce_cold=21.0,
                                 store_warm=500.0)
        assert bench.reduce_regression_failures(current, base) == []

    def test_memo_warm_below_intra_report_floor_fails(self):
        report = _reduce_report(store_cold=100.0, store_warm=300.0)  # 3x
        failures = bench.reduce_regression_failures(report, report)
        assert any(f.startswith("memo_warm_vs_cold:") for f in failures)

    def test_unbounded_reduce_peak_fails(self):
        report = _reduce_report(reduce_peak=8.0, exact_peak=10.0)
        failures = bench.reduce_regression_failures(report, report)
        assert any(f.startswith("reduce_cold peak") for f in failures)

    def test_demo_peak_must_track_chunk_size(self):
        report = _reduce_report(demo_peak=50.0)
        failures = bench.reduce_regression_failures(report, report)
        assert any(f.startswith("demo peak") for f in failures)

    def test_missing_reference_reports_cleanly(self):
        base = _reduce_report()
        current = copy.deepcopy(base)
        del current["workloads"]["exact_cold"]
        failures = bench.reduce_regression_failures(current, base)
        assert failures == ["exact_cold: reference workload missing from a report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.reduce_regression_failures(_reduce_report(), _reduce_report(),
                                             threshold=2.0)


class TestReduceRender:
    def test_render_lists_workloads_oracle_and_demo(self):
        text = bench.render_reduce(_reduce_report(demo_peak=3.0))
        assert "reduce_store_warm" in text and "exact_cold" in text
        assert "PASS" in text and "10000 sessions" in text
        assert "0.27x exact peak" in text


class TestReduceWorkloadShape:
    def test_demo_manifest_is_campaign_shaped_and_large(self):
        manifest = bench.reduce_demo_tasks(seed=7)
        assert len(manifest) >= 10_000
        operators = {t.label.rsplit("/", 2)[0] for t in manifest}
        assert operators == {"V_Sp", "O_Sp_100", "T_Ge", "V_Ge"}


def _tensor_report(session_cold=150.0, session_warm=155.0,
                   tensor_cold=525.0, tensor_warm=550.0,
                   cohorts=8, residual_fraction=0.017, quick=True) -> dict:
    def cell(rate):
        return {"sessions_per_s": rate, "wall_s": round(64.0 / rate, 3)}

    return {
        "bench": "tensor",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {"profiles": ["V_Sp", "O_Sp_100"], "n_sessions": 64,
                   "cohort_size": 32, "cold_reps": 2, "seed": 2024},
        "workloads": {
            "session_cold": cell(session_cold),
            "session_warm": cell(session_warm),
            "tensor_cold": cell(tensor_cold),
            "tensor_warm": cell(tensor_warm),
        },
        "cohort": {"cohorts": cohorts, "columns": cohorts * 32,
                   "columns_touched_fallback": cohorts * 32,
                   "cells": 51200,
                   "dirty_periods": 28000,
                   "batched_periods": 27500,
                   "residual_periods": 500,
                   "dirty_fraction": 0.5469,
                   "residual_fraction_of_dirty": residual_fraction,
                   "native_kernel": True,
                   "tensor_slots_per_s": 1.4e6},
        "phases": {"predraw_s": 0.05, "tensor_pass_s": 0.09,
                   "batched_retx_s": 0.04, "residual_fallback_s": 0.02,
                   "flush_s": 0.13, "total_s": 0.45},
        "speedup": {
            "tensor_cold_vs_session_cold": round(tensor_cold / session_cold, 2),
            "tensor_warm_vs_session_warm": round(tensor_warm / session_warm, 2),
        },
    }


class TestTensorRegressionGate:
    def test_identical_reports_pass(self):
        report = _tensor_report()
        assert bench.tensor_regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        base = _tensor_report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            data["sessions_per_s"] /= 2.0
        assert bench.tensor_regression_failures(current, base) == []

    def test_tensor_only_slowdown_fails(self):
        base = _tensor_report()
        current = _tensor_report(tensor_cold=525.0 / 2.5, tensor_warm=220.0)
        failures = bench.tensor_regression_failures(current, base,
                                                    threshold=0.30)
        # Fails both the normalized gate and the intra-report floor.
        assert any(f.startswith("tensor_cold:") for f in failures)
        assert any(f.startswith("tensor_cold_vs_session_cold:")
                   for f in failures)

    def test_speedup_below_floor_fails_intra_report(self):
        # 2.2x < the full-mode 2.5x floor even with itself as baseline.
        report = _tensor_report(tensor_cold=330.0, quick=False)
        failures = bench.tensor_regression_failures(report, report)
        assert any(f.startswith("tensor_cold_vs_session_cold:")
                   for f in failures)

    def test_quick_reports_get_floor_slack(self):
        # The same 2.2x passes in quick mode (floor 2.0x).
        report = _tensor_report(tensor_cold=330.0, quick=True)
        assert bench.tensor_regression_failures(report, report) == []

    def test_residual_above_ceiling_fails(self):
        # The batched pass must carry dirty cells; a punt predicate
        # regression shows up as residual share past the 5% ceiling.
        report = _tensor_report(residual_fraction=0.12)
        failures = bench.tensor_regression_failures(report, report)
        assert any(f.startswith("batched-retx:") for f in failures)

    def test_residual_ceiling_skipped_for_legacy_reports(self):
        report = _tensor_report()
        del report["cohort"]["residual_fraction_of_dirty"]
        assert bench.tensor_regression_failures(report, report) == []

    def test_no_cohorts_run_fails(self):
        # A policy regression degrading every cohort to the per-session
        # engine gates red even at a 1.0x-ish honest ratio.
        report = _tensor_report(cohorts=0)
        failures = bench.tensor_regression_failures(report, report)
        assert any(f.startswith("cohort:") for f in failures)

    def test_missing_reference_reports_cleanly(self):
        base = _tensor_report()
        current = copy.deepcopy(base)
        del current["workloads"]["session_cold"]
        failures = bench.tensor_regression_failures(current, base)
        assert failures == [
            "session_cold: reference workload missing from a report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.tensor_regression_failures(_tensor_report(),
                                             _tensor_report(), threshold=1.0)


class TestTensorRender:
    def test_render_lists_workloads_speedup_and_counters(self):
        text = bench.render_tensor(_tensor_report())
        assert "tensor_cold" in text and "session_cold" in text
        assert "3.50x" in text  # 525 / 150 cold speedup
        assert "columns_touched_fallback=256" in text

    def test_render_shows_dirty_split_and_phases(self):
        text = bench.render_tensor(_tensor_report())
        assert "dirty=54.7%" in text
        assert "batched=27500 (native)" in text
        assert "residual=500 (1.7% of dirty)" in text
        assert "phases:" in text and "batched_retx=0.04s" in text


class TestTensorWorkloadShape:
    def test_manifest_is_maximal_dl_cohorts(self):
        from repro.core.runner import group_tasks_by_shape

        manifest = bench.tensor_tasks(quick=True, seed=2024)
        groups = group_tasks_by_shape(manifest)
        assert len(groups) == 2  # one cohort per operator, no UL split
        assert all(len(g) == 32 for g in groups)
        assert all(t.kwargs["direction"] == "DL" for t in manifest)

    def test_manifest_is_deterministic(self):
        a = bench.tensor_tasks(quick=True, seed=2024)
        b = bench.tensor_tasks(quick=True, seed=2024)
        assert [t.label for t in a] == [t.label for t in b]
        assert [t.seed for t in a] == [t.seed for t in b]


def _serve_report(direct_cold=60.0, serve_cold=58.0, serve_warm=300.0,
                  tasks_computed=22, warm_computed=0, warm_store_served=True,
                  quick=True) -> dict:
    def cell(rate):
        return {"sessions_per_s": rate, "wall_s": round(22.0 / rate, 3)}

    return {
        "bench": "serve",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {"minutes": 0.1, "session_s": 3.0, "n_sessions": 22,
                   "jobs": 1, "cold_reps": 2, "concurrency": 4, "seed": 2024},
        "workloads": {
            "direct_cold": cell(direct_cold),
            "serve_cold": cell(serve_cold),
            "serve_warm": cell(serve_warm),
            "serve_concurrent": {**cell(serve_cold), "requests": 4,
                                 "dedup_hits": 3, "tasks": 22,
                                 "tasks_computed": tasks_computed},
        },
        "serve": {"requests": 9, "dedup_hits": 3, "errors": 0,
                  "tasks_computed": 66, "tasks_memoized": 44},
        "checks": {
            "singleflight_computed_once": tasks_computed == 22,
            "warm_computed": warm_computed,
            "warm_store_served": warm_store_served,
        },
        "speedup": {
            "warm_vs_cold": round(serve_warm / serve_cold, 2),
            "serve_cold_vs_direct_cold": round(serve_cold / direct_cold, 2),
        },
    }


class TestServeRegressionGate:
    def test_identical_reports_pass(self):
        report = _serve_report()
        assert bench.serve_regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        base = _serve_report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            data["sessions_per_s"] /= 2.0
        assert bench.serve_regression_failures(current, base) == []

    def test_serve_only_slowdown_fails(self):
        base = _serve_report()
        current = _serve_report(serve_cold=58.0 / 2.5, serve_warm=300.0)
        failures = bench.serve_regression_failures(current, base)
        assert any(f.startswith("serve_cold:") for f in failures)

    def test_singleflight_recompute_fails(self):
        # 44 tasks computed for a 22-task campaign = the dedup broke.
        report = _serve_report(tasks_computed=44)
        failures = bench.serve_regression_failures(report, report)
        assert any(f.startswith("singleflight:") for f in failures)

    def test_warm_recompute_fails(self):
        report = _serve_report(warm_computed=3, warm_store_served=False)
        failures = bench.serve_regression_failures(report, report)
        assert any(f.startswith("serve_warm:") for f in failures)

    def test_warm_below_intra_report_floor_fails(self):
        report = _serve_report(serve_warm=70.0)  # 1.2x < 2x floor
        failures = bench.serve_regression_failures(report, report)
        assert any(f.startswith("warm_vs_cold:") for f in failures)

    def test_warm_is_not_normalized_across_modes(self):
        # A faster machine with identical warm throughput must pass:
        # warm cost is fixed store-read overhead, not simulation.
        base = _serve_report()
        current = _serve_report(direct_cold=120.0, serve_cold=116.0,
                                serve_warm=300.0)
        assert bench.serve_regression_failures(current, base) == []

    def test_missing_reference_reports_cleanly(self):
        base = _serve_report()
        current = copy.deepcopy(base)
        del current["workloads"]["direct_cold"]
        failures = bench.serve_regression_failures(current, base)
        assert failures == [
            "direct_cold: reference workload missing from a report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.serve_regression_failures(_serve_report(), _serve_report(),
                                            threshold=0.0)


class TestServeRender:
    def test_render_lists_workloads_checks_and_totals(self):
        text = bench.render_serve(_serve_report())
        assert "serve_cold" in text and "direct_cold" in text
        assert "singleflight: 4 concurrent" in text and "PASS" in text
        assert "store_served=True" in text
        assert "requests=9" in text

    def test_render_flags_broken_singleflight(self):
        text = bench.render_serve(_serve_report(tasks_computed=44))
        assert "FAIL" in text


class TestReportIo:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _report()
        path = tmp_path / "bench.json"
        bench.write_report(report, path)
        assert bench.load_report(path) == report
        # Stable output: diff-friendly, newline-terminated.
        text = path.read_text()
        assert text.endswith("\n")
        bench.write_report(report, path)
        assert path.read_text() == text

    def test_write_profile_dumps_stats_and_table(self, tmp_path):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        sum(range(1000))
        profiler.disable()

        report_path = tmp_path / "BENCH_tensor.json"
        pstats_path, table_path = bench.write_profile(profiler, report_path,
                                                      top=5)
        assert pstats_path == tmp_path / "BENCH_tensor.pstats"
        assert table_path == tmp_path / "BENCH_tensor.profile.txt"
        # The dump reloads as pstats and the table lists hot functions
        # by cumulative time.
        pstats.Stats(str(pstats_path))
        table = table_path.read_text()
        assert "cumtime" in table
        assert "sum" in table


class TestRender:
    def test_render_lists_workloads_and_speedup(self):
        report = _report()
        report["quick"] = False
        report["config"] = {"profile": "V_Sp", "duration_s": 5.0,
                            "repetitions": 11, "seed": 2024}
        report["speedup_vs_pre_pr"] = {"single_ue": 3.45, "multi_ue": 5.79}
        text = bench.render(report)
        assert "single_ue" in text and "multi_ue" in text
        assert "vectorized" in text and "reference" in text
        assert "3.45x" in text
