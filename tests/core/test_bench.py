"""Tests for the tracked slot-engine benchmark (``repro bench``)."""

from __future__ import annotations

import copy

import pytest

from repro.core import bench


def _report(single_vec=800_000.0, single_ref=600_000.0,
            multi_vec=60_000.0, multi_ref=35_000.0) -> dict:
    def cell(warm):
        return {"cold_slots_per_s": warm / 2, "warm_slots_per_s": warm}

    return {
        "bench": "slot_engine",
        "schema": bench.BENCH_SCHEMA_VERSION,
        "quick": True,
        "workloads": {
            "single_ue": {"vectorized": cell(single_vec),
                          "reference": cell(single_ref), "n_slots": 4000},
            "multi_ue": {"vectorized": cell(multi_vec),
                         "reference": cell(multi_ref), "n_slots": 4000,
                         "n_ues": 4},
        },
    }


class TestRegressionGate:
    def test_identical_reports_pass(self):
        report = _report()
        assert bench.regression_failures(report, report) == []

    def test_uniform_slowdown_is_hardware_normalized_away(self):
        # A machine half as fast slows both engines; no regression.
        base = _report()
        current = copy.deepcopy(base)
        for data in current["workloads"].values():
            for engine in ("vectorized", "reference"):
                data[engine]["warm_slots_per_s"] /= 2.0
        assert bench.regression_failures(current, base) == []

    def test_vectorized_only_slowdown_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        current["workloads"]["single_ue"]["vectorized"]["warm_slots_per_s"] /= 2.0
        failures = bench.regression_failures(current, base, threshold=0.30)
        assert len(failures) == 1
        assert failures[0].startswith("single_ue:")

    def test_missing_workload_fails(self):
        base = _report()
        current = copy.deepcopy(base)
        del current["workloads"]["multi_ue"]
        failures = bench.regression_failures(current, base)
        assert failures == ["multi_ue: missing from current report"]

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            bench.regression_failures(_report(), _report(), threshold=1.5)


class TestReportIo:
    def test_write_then_load_roundtrip(self, tmp_path):
        report = _report()
        path = tmp_path / "bench.json"
        bench.write_report(report, path)
        assert bench.load_report(path) == report
        # Stable output: diff-friendly, newline-terminated.
        text = path.read_text()
        assert text.endswith("\n")
        bench.write_report(report, path)
        assert path.read_text() == text


class TestRender:
    def test_render_lists_workloads_and_speedup(self):
        report = _report()
        report["quick"] = False
        report["config"] = {"profile": "V_Sp", "duration_s": 5.0,
                            "repetitions": 11, "seed": 2024}
        report["speedup_vs_pre_pr"] = {"single_ue": 3.45, "multi_ue": 5.79}
        text = bench.render(report)
        assert "single_ue" in text and "multi_ue" in text
        assert "vectorized" in text and "reference" in text
        assert "3.45x" in text
