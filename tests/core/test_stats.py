"""Tests for repro.core.stats."""

import numpy as np
import pytest

from repro.core.stats import (
    bootstrap_mean_ci,
    cdf_at,
    empirical_cdf,
    relative_difference,
    summarize,
)


class TestSummarize:
    def test_values(self):
        summary = summarize(np.array([1.0, 2.0, 3.0, 4.0, 5.0]))
        assert summary.n == 5
        assert summary.mean == 3.0
        assert summary.median == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_nan_filtered(self):
        summary = summarize(np.array([1.0, np.nan, 3.0]))
        assert summary.n == 2
        assert summary.mean == 2.0

    def test_empty(self):
        summary = summarize(np.array([]))
        assert summary.n == 0
        assert np.isnan(summary.mean)

    def test_single_sample_std_zero(self):
        assert summarize(np.array([7.0])).std == 0.0

    def test_row_renders(self):
        row = summarize(np.arange(10.0)).row()
        assert "mean=" in row and "p50=" in row


class TestCdf:
    def test_sorted_and_normalized(self):
        values, probs = empirical_cdf(np.array([3.0, 1.0, 2.0]))
        assert values.tolist() == [1.0, 2.0, 3.0]
        assert probs.tolist() == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        values, probs = empirical_cdf(np.array([]))
        assert values.size == 0 and probs.size == 0

    def test_cdf_at_points(self):
        samples = np.arange(1.0, 11.0)  # 1..10
        out = cdf_at(samples, np.array([0.5, 5.0, 10.0, 99.0]))
        assert out.tolist() == [0.0, 0.5, 1.0, 1.0]

    def test_cdf_at_empty_samples(self):
        out = cdf_at(np.array([]), np.array([1.0]))
        assert np.isnan(out).all()


class TestBootstrap:
    def test_contains_true_mean(self, rng):
        samples = rng.normal(10.0, 2.0, size=500)
        low, high = bootstrap_mean_ci(samples, rng=rng)
        assert low < 10.0 < high
        assert high - low < 1.0

    def test_narrows_with_n(self, rng):
        small = rng.normal(0, 1, 50)
        large = rng.normal(0, 1, 5000)
        low_s, high_s = bootstrap_mean_ci(small, rng=rng)
        low_l, high_l = bootstrap_mean_ci(large, rng=rng)
        assert (high_l - low_l) < (high_s - low_s)

    def test_empty(self, rng):
        low, high = bootstrap_mean_ci(np.array([]), rng=rng)
        assert np.isnan(low) and np.isnan(high)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bootstrap_mean_ci(np.ones(10), confidence=1.5, rng=rng)


class TestRelativeDifference:
    def test_basic(self):
        assert relative_difference(110.0, 100.0) == pytest.approx(0.1)

    def test_zero_reference(self):
        assert relative_difference(0.0, 0.0) == 0.0
        assert relative_difference(5.0, 0.0) == float("inf")
