"""Tests for repro.core.plotting — ASCII chart rendering."""

import numpy as np
import pytest

from repro.core.plotting import bar_chart, cdf_plot, line_plot, side_by_side, sparkline


class TestBarChart:
    def test_renders_all_rows(self):
        chart = bar_chart({"V_It": 809.8, "V_Sp": 743.0, "O_Sp_100": 614.7})
        lines = chart.splitlines()
        assert len(lines) == 3
        assert "V_It" in lines[0] and "809.8" in lines[0]

    def test_bar_lengths_proportional(self):
        chart = bar_chart({"a": 100.0, "b": 50.0}, width=20)
        a_bar = chart.splitlines()[0].count("█")
        b_bar = chart.splitlines()[1].count("█")
        assert a_bar == 20
        assert b_bar == 10

    def test_zero_values(self):
        chart = bar_chart({"a": 0.0, "b": 0.0})
        assert "0.0" in chart

    def test_unit_suffix(self):
        assert "Mbps" in bar_chart({"a": 5.0}, unit=" Mbps")

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart({})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=2)


class TestLinePlot:
    def test_grid_dimensions(self):
        x = np.linspace(0, 10, 50)
        plot = line_plot(x, np.sin(x), height=8, width=40)
        lines = plot.splitlines()
        assert len(lines) == 8 + 2  # grid + axis + footer
        assert "└" in plot

    def test_extremes_annotated(self):
        x = np.arange(10.0)
        plot = line_plot(x, x * 2)
        assert "18.0" in plot
        assert "0.0" in plot

    def test_constant_series(self):
        plot = line_plot(np.arange(5.0), np.full(5, 3.0))
        assert "•" in plot

    def test_nan_filtered(self):
        x = np.arange(6.0)
        y = np.array([1.0, np.nan, 2.0, 3.0, np.nan, 4.0])
        plot = line_plot(x, y)
        assert "•" in plot

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot(np.arange(3.0), np.arange(4.0))
        with pytest.raises(ValueError):
            line_plot(np.arange(5.0), np.arange(5.0), height=1)


class TestCdfPlot:
    def test_monotone_render(self, rng):
        plot = cdf_plot(rng.normal(size=500), label="REs")
        assert "CDF" in plot
        assert "REs" in plot

    def test_validation(self):
        with pytest.raises(ValueError):
            cdf_plot(np.array([1.0]))


class TestSparkline:
    def test_length(self):
        line = sparkline(np.arange(10.0))
        assert len(line) == 10

    def test_resampled(self):
        line = sparkline(np.arange(100.0), width=20)
        assert len(line) == 20

    def test_monotone_levels(self):
        line = sparkline(np.arange(8.0))
        assert line == "▁▂▃▄▅▆▇█"

    def test_flat(self):
        assert sparkline(np.full(5, 2.0)) == "▁▁▁▁▁"

    def test_validation(self):
        with pytest.raises(ValueError):
            sparkline(np.array([]))


class TestSideBySide:
    def test_joins_blocks(self):
        merged = side_by_side(["a\nb", "xx\nyy\nzz"])
        lines = merged.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith("a")
        assert "xx" in lines[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            side_by_side([])
