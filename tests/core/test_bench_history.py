"""``repro bench --history``: folding BENCH_*.json into one trajectory."""

from __future__ import annotations

import json

from repro.core import bench


def _write(path, payload):
    path.write_text(json.dumps(payload))


def _campaign_report():
    return {
        "bench": "campaign", "schema": 1, "quick": False,
        "workloads": {
            "jobs1_cold": {"sessions_per_s": 40.0, "wall_s": 0.6},
            "shm_cold": {"sessions_per_s": 50.0, "wall_s": 0.48, "jobs": 2},
        },
        "speedup": {"shm_cold_vs_jobs1_cold": 1.25},
    }


def _tensor_report():
    return {
        "bench": "tensor", "schema": 1, "quick": True,
        "workloads": {"tensor_cold": {"sessions_per_s": 260.0, "wall_s": 0.5}},
        "speedup": {"tensor_cold_vs_session_cold": 3.1},
        "phases": {"total_s": 2.0, "flush_s": 0.3},
    }


class TestHistoryReport:
    def test_folds_all_reports(self, tmp_path):
        _write(tmp_path / "BENCH_campaign.json", _campaign_report())
        _write(tmp_path / "BENCH_tensor.json", _tensor_report())
        report = bench.history_report(tmp_path)
        assert report["bench"] == "history"
        kinds = {e["kind"]: e for e in report["reports"]}
        assert set(kinds) == {"campaign", "tensor"}
        assert kinds["campaign"]["throughput"]["shm_cold"] == 50.0
        assert kinds["campaign"]["speedup"]["shm_cold_vs_jobs1_cold"] == 1.25
        assert kinds["tensor"]["flush_share"] == 0.15
        assert report["skipped"] == []

    def test_corrupt_file_is_skipped_not_fatal(self, tmp_path):
        _write(tmp_path / "BENCH_campaign.json", _campaign_report())
        (tmp_path / "BENCH_broken.json").write_text("{not json")
        _write(tmp_path / "BENCH_other.json", {"no": "bench key"})
        report = bench.history_report(tmp_path)
        assert [e["kind"] for e in report["reports"]] == ["campaign"]
        assert len(report["skipped"]) == 2

    def test_empty_directory(self, tmp_path):
        report = bench.history_report(tmp_path)
        assert report["reports"] == [] and report["skipped"] == []

    def test_committed_reports_fold(self):
        # The repo's own BENCH artifacts must always be foldable.
        report = bench.history_report(".")
        assert len(report["reports"]) >= 5
        assert report["skipped"] == []


class TestRenderHistory:
    def test_renders_table(self, tmp_path):
        _write(tmp_path / "BENCH_campaign.json", _campaign_report())
        _write(tmp_path / "BENCH_tensor.json", _tensor_report())
        text = bench.render_history(bench.history_report(tmp_path))
        assert "BENCH_campaign.json [campaign, full]" in text
        assert "BENCH_tensor.json [tensor, quick]" in text
        assert "shm_cold_vs_jobs1_cold" in text
        assert "flush share of tensor wall" in text
        assert "15.0%" in text

    def test_renders_empty(self, tmp_path):
        text = bench.render_history(bench.history_report(tmp_path))
        assert "no BENCH_*.json reports found" in text

    def test_cli_flag(self, capsys):
        from repro.__main__ import main

        assert main(["bench", "--history"]) == 0
        out = capsys.readouterr().out
        assert "benchmark trajectory" in out
