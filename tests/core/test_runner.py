"""Tests for repro.core.runner — manifest execution and seed derivation."""

import numpy as np
import pytest

from repro.core.runner import (
    CampaignExecutor,
    SessionTask,
    derive_seed,
    derive_seeds,
    dispatch_chunksize,
    resolve_jobs,
    run_tasks,
)


def _draw(seed: int, scale: float = 1.0) -> float:
    """Module-level session fn so tasks can cross a process boundary."""
    return scale * float(np.random.default_rng(seed).standard_normal())


def _no_seed(value: int) -> int:
    return value * 2


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(2024, "V_Sp", 3) == derive_seed(2024, "V_Sp", 3)

    def test_fits_uint64(self):
        seed = derive_seed(2024, "V_Sp", 0)
        assert 0 <= seed < 2**64

    def test_children_differ_across_keys(self):
        seeds = {derive_seed(2024, op, s) for op in ("V_Sp", "O_Sp_100", "Vzw_US")
                 for s in range(8)}
        assert len(seeds) == 24

    def test_children_differ_across_roots(self):
        assert derive_seed(1, "op", 0) != derive_seed(2, "op", 0)

    def test_key_independent_of_siblings(self):
        # A child's seed must not depend on how many siblings exist.
        alone = derive_seed(7, "op", 5)
        assert derive_seeds(7, 10, "op")[5] == alone

    def test_string_and_int_parts_mix(self):
        assert derive_seed(0, "a", 1, "b") != derive_seed(0, "a", 1, "c")

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            derive_seed(0, -1)

    def test_derive_seeds_length(self):
        assert derive_seeds(0, 5) == [derive_seed(0, i) for i in range(5)]
        assert derive_seeds(0, 0) == []
        with pytest.raises(ValueError):
            derive_seeds(0, -1)


class TestResolveJobs:
    def test_default_and_none(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(1) == 1

    def test_int_string(self):
        assert resolve_jobs("4") == 4

    def test_auto_at_least_one(self):
        assert resolve_jobs("auto") >= 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        with pytest.raises(ValueError):
            resolve_jobs("fast")


class TestSessionTask:
    def test_seed_injected_into_kwargs(self):
        task = SessionTask(fn=_draw, kwargs={"scale": 2.0}, seed=11)
        assert task.execute() == _draw(11, scale=2.0)

    def test_seedless_task(self):
        assert SessionTask(fn=_no_seed, kwargs={"value": 21}).execute() == 42

    def test_with_seed_derives_and_preserves(self):
        task = SessionTask(fn=_draw, kwargs={"scale": 2.0}, label="s0")
        seeded = task.with_seed(2024, "V_Sp", 0)
        assert seeded.seed == derive_seed(2024, "V_Sp", 0)
        assert (seeded.fn, seeded.kwargs, seeded.label) == \
            (task.fn, task.kwargs, task.label)
        assert task.seed is None  # frozen original untouched


class TestRunTasks:
    def _manifest(self, n=6):
        return [SessionTask(fn=_draw, seed=derive_seed(99, "t", i), label=str(i))
                for i in range(n)]

    def test_serial_preserves_order(self):
        manifest = self._manifest()
        results = run_tasks(manifest, jobs=1)
        assert results == [task.execute() for task in manifest]

    def test_parallel_matches_serial(self):
        manifest = self._manifest()
        assert run_tasks(manifest, jobs=2) == run_tasks(manifest, jobs=1)

    def test_empty_manifest(self):
        assert run_tasks([], jobs=4) == []

    def test_jobs_exceeding_tasks(self):
        manifest = self._manifest(2)
        assert run_tasks(manifest, jobs=8) == run_tasks(manifest, jobs=1)

    def test_transport_validated(self):
        with pytest.raises(ValueError):
            run_tasks([], transport="carrier-pigeon")

    def test_store_transport_requires_store(self):
        with pytest.raises(ValueError):
            run_tasks(self._manifest(2), jobs=2, transport="store")


class TestDispatchChunksize:
    def test_serial_is_one(self):
        assert dispatch_chunksize(1000, 1) == 1

    def test_fewer_tasks_than_workers_is_one(self):
        assert dispatch_chunksize(3, 4) == 1
        assert dispatch_chunksize(4, 4) == 1

    def test_targets_four_chunks_per_worker(self):
        assert dispatch_chunksize(256, 4) == 16
        assert dispatch_chunksize(64, 2) == 8

    def test_floor_one(self):
        # Just above the worker count still yields chunksize 1.
        assert dispatch_chunksize(9, 4) == 1

    def test_capped_for_huge_manifests(self):
        assert dispatch_chunksize(1_000_000, 4) == 32


class TestCampaignExecutor:
    def _manifest(self, n=6):
        return [SessionTask(fn=_draw, seed=derive_seed(99, "t", i), label=str(i))
                for i in range(n)]

    def test_pool_is_lazy(self):
        with CampaignExecutor(jobs=2) as executor:
            assert executor.stats()["pools_created"] == 0

    def test_pool_reused_across_dispatches(self):
        manifest = self._manifest()
        serial = run_tasks(manifest, jobs=1)
        with CampaignExecutor(jobs=2) as executor:
            assert run_tasks(manifest, executor=executor) == serial
            assert run_tasks(manifest, executor=executor) == serial
            stats = executor.stats()
        assert stats["pools_created"] == 1
        assert stats["dispatches"] == 2
        assert stats["tasks_executed"] == 12

    def test_executor_overrides_jobs(self):
        # The executor's worker count wins over the jobs argument.
        manifest = self._manifest()
        with CampaignExecutor(jobs=2) as executor:
            assert run_tasks(manifest, jobs=1, executor=executor) == \
                run_tasks(manifest, jobs=1)
            assert executor.stats()["dispatches"] == 1

    def test_routes_for(self, tmp_path):
        from repro.store import TraceStore

        store = TraceStore(tmp_path / "cache")
        other = TraceStore(tmp_path / "other")
        same_root = TraceStore(tmp_path / "cache")
        with CampaignExecutor(jobs=2, store=store) as executor:
            assert executor.routes_for(store)
            assert executor.routes_for(same_root)
            assert not executor.routes_for(other)
            assert not executor.routes_for(None)
        with CampaignExecutor(jobs=2) as storeless:
            assert not storeless.routes_for(store)

    def test_routes_for_resolves_path_spellings(self, tmp_path, monkeypatch):
        # A relative or symlinked spelling of the same directory is the
        # same store; textual root comparison used to disable routing.
        from pathlib import Path

        from repro.store import TraceStore

        root = tmp_path / "cache"
        store = TraceStore(root)
        alias = tmp_path / "alias"
        alias.symlink_to(root)
        monkeypatch.chdir(tmp_path)
        with CampaignExecutor(jobs=2, store=store) as executor:
            assert executor.routes_for(TraceStore(Path("cache")))
            assert executor.routes_for(TraceStore(alias))
            assert not executor.routes_for(TraceStore(tmp_path / "elsewhere"))

    def test_close_idempotent_and_reopens(self):
        executor = CampaignExecutor(jobs=2)
        manifest = self._manifest(4)
        first = run_tasks(manifest, executor=executor)
        executor.close()
        executor.close()
        # A closed executor builds a fresh pool on the next dispatch.
        assert run_tasks(manifest, executor=executor) == first
        assert executor.stats()["pools_created"] == 2
        executor.close()

    def test_render_stats_mentions_counters(self):
        with CampaignExecutor(jobs=3) as executor:
            text = executor.render_stats()
        assert "workers=3" in text and "routed=" in text
