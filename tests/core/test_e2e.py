"""Tests for repro.core.e2e — end-to-end latency with server placement."""

import numpy as np
import pytest

from repro.core.e2e import E2eLatencyModel, ServerPlacement, placement_sweep
from repro.core.latency import UserPlaneLatencyModel
from repro.nr.tdd import TddPattern


@pytest.fixture
def phy_model():
    return UserPlaneLatencyModel(TddPattern.from_string("DDDSU"))


class TestRtt:
    def test_rtt_exceeds_phy(self, phy_model):
        model = E2eLatencyModel(phy=phy_model)
        assert model.mean_rtt_ms() > phy_model.mean_latency_ms()

    def test_placement_ordering(self, phy_model):
        # Deeper placements cost more RTT, monotonically.
        sweep = placement_sweep(phy_model)
        assert (sweep["wavelength"] < sweep["edge"]
                < sweep["metro"] < sweep["regional"])

    def test_edge_dominated_by_phy(self, phy_model):
        # §2's rationale: at the edge, the radio leg dominates the RTT.
        model = E2eLatencyModel(phy=phy_model, placement=ServerPlacement.EDGE)
        phy_share = phy_model.mean_latency_ms() / model.mean_rtt_ms()
        assert phy_share > 0.3

    def test_bler_positive_raises_rtt(self, phy_model):
        model = E2eLatencyModel(phy=phy_model)
        assert model.mean_rtt_ms(bler_positive=True) > model.mean_rtt_ms()

    def test_validation(self, phy_model):
        with pytest.raises(ValueError):
            E2eLatencyModel(phy=phy_model, ran_processing_ms=-1.0)


class TestSampling:
    def test_sample_mean_close(self, phy_model, rng):
        model = E2eLatencyModel(phy=phy_model)
        samples = model.sample_rtt_ms(20000, rng=rng)
        # Transport jitter adds its exponential mean on top.
        expected = model.mean_rtt_ms() + 0.3
        assert samples.mean() == pytest.approx(expected, rel=0.25)

    def test_samples_above_deterministic_floor(self, phy_model, rng):
        model = E2eLatencyModel(phy=phy_model)
        floor = 2.0 * (model.ran_processing_ms + model.core_ms + model.transport_one_way_ms)
        samples = model.sample_rtt_ms(1000, rng=rng)
        assert samples.min() > floor

    def test_jitter_validation(self, phy_model, rng):
        model = E2eLatencyModel(phy=phy_model)
        with pytest.raises(ValueError):
            model.sample_rtt_ms(10, rng=rng, transport_jitter_ms=-1.0)
