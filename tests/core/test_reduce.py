"""Tests for repro.core.reduce — mergeable streaming KPI sketches."""

import numpy as np
import pytest

from repro.core.reduce import (
    CampaignReduction,
    MomentSketch,
    QuantileSketch,
    VariabilitySketch,
)
from repro.core.runner import CampaignExecutor, SessionTask, derive_seed, run_tasks
from repro.core.stats import summarize
from repro.core.variability import variability_profile
from repro.store import TraceStore
from repro.store.codec import encode
from repro.xcal.records import SlotTrace, TraceMetadata


def _session(n_slots: int, seed: int) -> SlotTrace:
    """A deterministic fake session with enough KPI columns to fold."""
    rng = np.random.default_rng(seed)
    trace = SlotTrace.empty(n_slots, metadata=TraceMetadata(operator="red", seed=seed))
    trace.scheduled[:] = True
    trace.delivered_bits[:] = rng.integers(0, 9000, n_slots)
    trace.tbs_bits[:] = trace.delivered_bits
    trace.mcs_index[:] = rng.integers(0, 28, n_slots)
    trace.layers[:] = rng.integers(1, 5, n_slots)
    return trace


def _manifest(n: int = 8) -> list[SessionTask]:
    return [
        SessionTask(fn=_session, kwargs={"n_slots": 512},
                    seed=derive_seed(5, "reduce", i),
                    label=f"op{i % 2}/{'DL' if i % 4 < 2 else 'UL'}/{i:03d}")
        for i in range(n)
    ]


class TestMomentSketch:
    def test_matches_numpy(self):
        data = np.random.default_rng(0).standard_normal(257) * 40 + 100
        sketch = MomentSketch()
        for x in data:
            sketch.add(x)
        assert sketch.count == data.size
        assert sketch.mean == pytest.approx(data.mean(), rel=1e-12)
        assert sketch.std == pytest.approx(data.std(ddof=1), rel=1e-9)
        assert sketch.minimum == data.min() and sketch.maximum == data.max()

    def test_merge_equals_bulk(self):
        data = np.random.default_rng(1).standard_normal(100)
        bulk = MomentSketch()
        left, right = MomentSketch(), MomentSketch()
        for x in data:
            bulk.add(x)
        for x in data[:37]:
            left.add(x)
        for x in data[37:]:
            right.add(x)
        left.merge(right)
        assert left.count == bulk.count
        assert left.mean == pytest.approx(bulk.mean, rel=1e-12)
        assert left.std == pytest.approx(bulk.std, rel=1e-9)
        assert (left.minimum, left.maximum) == (bulk.minimum, bulk.maximum)

    def test_empty_and_single(self):
        empty = MomentSketch()
        assert np.isnan(empty.mean) and np.isnan(empty.std)
        single = MomentSketch()
        single.add(3.0)
        assert single.mean == 3.0 and single.std == 0.0

    def test_state_roundtrip(self):
        sketch = MomentSketch()
        for x in (1.0, 5.0, 2.0):
            sketch.add(x)
        back = MomentSketch.from_state(sketch.state())
        assert back.state() == sketch.state()


class TestQuantileSketch:
    def test_percentiles_within_one_bin(self):
        data = np.random.default_rng(2).uniform(0.0, 1000.0, 5000)
        sketch = QuantileSketch(0.0, 1024.0, n_bins=256)
        for x in data:
            sketch.add(x)
        lo, hi = data.min(), data.max()
        for q in (25.0, 50.0, 75.0):
            assert sketch.percentile(q, lo, hi) == pytest.approx(
                np.percentile(data, q), abs=sketch.resolution)

    def test_merge_equals_bulk(self):
        data = np.random.default_rng(3).uniform(0.0, 100.0, 400)
        bulk = QuantileSketch(0.0, 128.0)
        left, right = QuantileSketch(0.0, 128.0), QuantileSketch(0.0, 128.0)
        for x in data:
            bulk.add(x)
        for x in data[:111]:
            left.add(x)
        for x in data[111:]:
            right.add(x)
        left.merge(right)
        assert np.array_equal(left.counts, bulk.counts)

    def test_out_of_range_clamps_to_edge_bins(self):
        sketch = QuantileSketch(0.0, 10.0, n_bins=10)
        sketch.add(-5.0)
        sketch.add(50.0)
        assert sketch.counts[0] == 1 and sketch.counts[-1] == 1

    def test_merge_rejects_different_binning(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.0, 10.0).merge(QuantileSketch(0.0, 20.0))


class TestVariabilitySketch:
    def test_single_series_profile_is_exact(self):
        series = np.random.default_rng(4).standard_normal(4096)
        sketch = VariabilitySketch(base_interval_ms=0.5, max_scale_ms=64.0)
        sketch.fold_series(series)
        scales, values = sketch.profile()
        want_scales, want_values = variability_profile(series, 0.5,
                                                       max_scale_ms=64.0)
        assert np.array_equal(scales, want_scales)
        assert np.array_equal(values, want_values)

    def test_merge_pools_counts(self):
        a = VariabilitySketch(base_interval_ms=1.0, max_scale_ms=4.0)
        b = VariabilitySketch(base_interval_ms=1.0, max_scale_ms=4.0)
        a.fold_series(np.arange(64, dtype=float))
        b.fold_series(np.arange(64, dtype=float))
        a.merge(b)
        single = VariabilitySketch(base_interval_ms=1.0, max_scale_ms=4.0)
        single.fold_series(np.arange(64, dtype=float))
        assert a.counts[0] == 2 * single.counts[0]
        _, pooled = a.profile()
        _, alone = single.profile()
        assert pooled == pytest.approx(alone)  # identical sessions pool to same V

    def test_state_roundtrip(self):
        sketch = VariabilitySketch(base_interval_ms=0.5, max_scale_ms=8.0)
        sketch.fold_series(np.random.default_rng(6).standard_normal(256))
        back = VariabilitySketch.from_state(sketch.state())
        assert np.array_equal(back.profile()[1], sketch.profile()[1])


class TestCampaignReductionFold:
    def test_campaign_group_key_parses_operator_direction(self):
        reduction = CampaignReduction(group_mode="campaign")
        sketch = reduction.fold(_manifest()[0], _session(64, 1))
        assert list(sketch.groups) == ["op0/DL"]

    def test_label_mode_groups_per_label(self):
        reduction = CampaignReduction(group_mode="label")
        task = _manifest()[3]
        sketch = reduction.fold(task, _session(64, 1))
        assert list(sketch.groups) == [task.label]

    def test_malformed_campaign_label_rejected(self):
        reduction = CampaignReduction(group_mode="campaign")
        bad = SessionTask(fn=_session, kwargs={"n_slots": 8}, seed=1, label="flat")
        with pytest.raises(ValueError):
            reduction.fold(bad, _session(8, 1))

    def test_fold_accumulates_session_kpis(self):
        trace = _session(512, 9)
        reduction = CampaignReduction(group_mode="campaign")
        group = reduction.fold(_manifest()[0], trace).groups["op0/DL"]
        assert group.n_sessions == 1
        assert group.total_bits == trace.total_bits
        assert group.n_slots == len(trace)
        assert group.throughput.mean == trace.mean_throughput_mbps

    def test_unknown_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignReduction(group_mode="dynasty")
        with pytest.raises(ValueError):
            CampaignReduction(variability_kpis=("rainfall",))

    def test_fingerprint_tracks_config_not_stats(self):
        a = CampaignReduction(group_mode="campaign")
        b = CampaignReduction(group_mode="campaign")
        b.stats["sessions"] = 99
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != CampaignReduction(quantile_bins=512).fingerprint()


class TestReducedRunTasks:
    def _sketch_bytes(self, **kwargs) -> bytes:
        reduction = CampaignReduction(group_mode="campaign",
                                      variability_kpis=("throughput",))
        sketch = run_tasks(_manifest(), reduce=reduction, **kwargs)
        return encode(sketch)

    def test_serial_parallel_and_routed_bytes_identical(self, tmp_path):
        serial = self._sketch_bytes(jobs=1)
        parallel = self._sketch_bytes(jobs=2)
        store = TraceStore(tmp_path / "cache")
        with CampaignExecutor(jobs=2, store=store) as executor:
            routed = self._sketch_bytes(store=store, executor=executor,
                                        transport="store")
        assert serial == parallel == routed

    def test_summary_matches_exact_path(self):
        traces = run_tasks(_manifest(), jobs=1)
        reduction = CampaignReduction(group_mode="campaign")
        sketch = run_tasks(_manifest(), jobs=1, reduce=reduction)
        groups: dict[str, list] = {}
        for task, trace in zip(_manifest(), traces):
            key = task.label.rsplit("/", 1)[0]
            groups.setdefault(key, []).append(trace.mean_throughput_mbps)
        for key, samples in groups.items():
            want = summarize(np.asarray(samples))
            have = sketch.groups[key].summary()
            assert have.n == want.n
            assert have.mean == pytest.approx(want.mean, rel=1e-12)
            assert have.minimum == want.minimum and have.maximum == want.maximum
            tolerance = sketch.groups[key].quantiles.resolution
            assert have.median == pytest.approx(want.median, abs=tolerance)

    def test_memo_hit_on_warm_run(self, tmp_path):
        store = TraceStore(tmp_path / "cache")
        cold_reduction = CampaignReduction(group_mode="campaign")
        cold = run_tasks(_manifest(), store=store, reduce=cold_reduction)
        assert cold_reduction.stats["memo"] == "write"
        warm_store = TraceStore(tmp_path / "cache")
        warm_reduction = CampaignReduction(group_mode="campaign")
        warm = run_tasks(_manifest(), store=warm_store, reduce=warm_reduction)
        assert warm_reduction.stats["memo"] == "hit"
        assert warm_store.hits == 1  # one memo get replays the campaign
        assert encode(cold) == encode(warm)

    def test_reduce_accounting_stats(self):
        reduction = CampaignReduction(group_mode="campaign")
        run_tasks(_manifest(), jobs=1, reduce=reduction)
        assert reduction.stats["sessions"] == 8
        assert reduction.stats["folded_local"] == 8
        assert reduction.stats["memo"] == "off"

    def test_reduce_requires_fold_and_merge(self):
        with pytest.raises(TypeError):
            run_tasks(_manifest(), reduce=object())

    def test_codec_roundtrip_preserves_summaries(self):
        from repro.store.codec import decode

        reduction = CampaignReduction(group_mode="campaign",
                                      variability_kpis=("throughput", "mcs"))
        sketch = run_tasks(_manifest(), jobs=1, reduce=reduction)
        back = decode(encode(sketch))
        assert list(back.groups) == list(sketch.groups)
        for key, group in sketch.groups.items():
            assert back.groups[key].summary() == group.summary()
            assert back.groups[key].total_bits == group.total_bits
            for kpi, vs in group.variability.items():
                assert np.array_equal(back.groups[key].variability[kpi].profile()[1],
                                      vs.profile()[1])
