"""Tests for repro.core.variability — the §5 eq. (1) metric."""

import numpy as np
import pytest

from repro.core.variability import (
    MIN_VALID_FRACTION,
    JointVariability,
    abs_diff_stats,
    block_averages,
    joint_variability,
    scaled_variability,
    segment_variability,
    stabilization_scale_ms,
    variability_profile,
)


class TestBlockAverages:
    def test_exact_blocks(self):
        out = block_averages(np.array([1.0, 3.0, 5.0, 7.0]), 2)
        assert out.tolist() == [2.0, 6.0]

    def test_trailing_partial_dropped(self):
        out = block_averages(np.arange(7, dtype=float), 3)
        assert out.shape == (2,)

    def test_block_one_identity(self):
        data = np.array([1.0, 2.0, 3.0])
        assert block_averages(data, 1).tolist() == data.tolist()

    def test_validation(self):
        with pytest.raises(ValueError):
            block_averages(np.ones(4), 0)


class TestNanAwareness:
    def test_gap_free_path_bit_identical(self):
        data = np.random.default_rng(3).standard_normal(256)
        want = data.reshape(64, 4).mean(axis=1)
        assert np.array_equal(block_averages(data, 4), want)

    def test_gaps_excluded_from_window_mean(self):
        out = block_averages(np.array([1.0, np.nan, 3.0, 5.0]), 2)
        assert out.tolist() == [1.0, 4.0]

    def test_window_below_threshold_is_nan(self):
        out = block_averages(np.array([1.0, np.nan, np.nan, np.nan]), 4)
        assert np.isnan(out).all()

    def test_threshold_is_tunable(self):
        data = np.array([1.0, np.nan, np.nan, np.nan])
        assert block_averages(data, 4, min_valid_fraction=0.25).tolist() == [1.0]
        assert MIN_VALID_FRACTION == 0.5

    def test_min_valid_fraction_validated(self):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                block_averages(np.ones(4), 2, min_valid_fraction=bad)

    def test_scaled_variability_over_gappy_trace(self):
        # Windows: [0,2]->1, [nan,4]->4 (half valid, kept), [4,0]->2;
        # diffs |4-1| and |2-4| give V = (3+2)/2.
        series = np.array([0.0, 2.0, np.nan, 4.0, 4.0, 0.0])
        assert scaled_variability(series, 2) == pytest.approx(2.5)

    def test_scaled_variability_nan_when_all_diffs_poisoned(self):
        series = np.array([0.0, 2.0, np.nan, np.nan, 4.0, 0.0])
        assert np.isnan(scaled_variability(series, 2))

    def test_abs_diff_stats_matches_scaled_variability(self):
        data = np.random.default_rng(5).standard_normal(300)
        total, count = abs_diff_stats(data, 4)
        assert count == 300 // 4 - 1
        assert total / count == scaled_variability(data, 4)

    def test_abs_diff_stats_empty(self):
        assert abs_diff_stats(np.ones(3), 2) == (0.0, 0)

    def test_profile_threads_min_valid_fraction(self):
        series = np.ones(64)
        series[::2] = np.nan  # every 2-window is half-valid
        scales_strict, _ = variability_profile(series, 1.0, max_scale_ms=8.0,
                                               min_valid_fraction=0.75)
        scales_loose, values = variability_profile(series, 1.0, max_scale_ms=8.0,
                                                   min_valid_fraction=0.5)
        assert 2.0 not in scales_strict.tolist()
        assert 2.0 in scales_loose.tolist()
        assert np.all(np.isfinite(values))


class TestScaledVariability:
    def test_constant_series_zero(self):
        assert scaled_variability(np.full(100, 5.0), 4) == 0.0

    def test_alternating_series(self):
        # 0,1,0,1,... at block 1: every |diff| is 1.
        series = np.tile([0.0, 1.0], 50)
        assert scaled_variability(series, 1) == pytest.approx(1.0)

    def test_alternating_vanishes_when_averaged(self):
        # At block 2 the alternation averages out completely.
        series = np.tile([0.0, 1.0], 50)
        assert scaled_variability(series, 2) == pytest.approx(0.0)

    def test_eq1_hand_computation(self):
        # x = [0, 2, 4, 0], t = 2tau: X = [1, 2], V = |2-1| / (2-1) = 1.
        assert scaled_variability(np.array([0.0, 2.0, 4.0, 0.0]), 2) == pytest.approx(1.0)

    def test_nan_when_insufficient_windows(self):
        assert np.isnan(scaled_variability(np.ones(3), 2))

    def test_white_noise_decays_with_scale(self, rng):
        noise = rng.standard_normal(2 ** 14)
        v1 = scaled_variability(noise, 1)
        v16 = scaled_variability(noise, 16)
        v256 = scaled_variability(noise, 256)
        # Averaging n IID samples shrinks V by ~sqrt(n).
        assert v16 == pytest.approx(v1 / 4, rel=0.2)
        assert v256 < v16 < v1

    def test_scale_invariance_of_location(self):
        series = np.sin(np.linspace(0, 20, 1000))
        assert scaled_variability(series + 100.0, 8) == pytest.approx(
            scaled_variability(series, 8))


class TestProfile:
    def test_dyadic_scales(self):
        scales, values = variability_profile(np.random.default_rng(0).standard_normal(4096),
                                             base_interval_ms=0.5, max_scale_ms=64.0)
        assert scales.tolist() == [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
        assert values.shape == scales.shape

    def test_omits_underfilled_scales(self):
        scales, _ = variability_profile(np.ones(8), base_interval_ms=1.0, max_scale_ms=16.0)
        # 16 ms scale would need 32 samples for two windows... block 8 gives m=1.
        assert max(scales) <= 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            variability_profile(np.ones(10), base_interval_ms=0.0)

    def test_ar1_profile_decreasing_then_flat(self, rng):
        # An AR(1) process shows the paper's shape: high V at small
        # scales, stabilizing beyond its coherence time.
        from repro.channel.fading import Ar1Fading

        series = Ar1Fading(sigma_db=3.0, coherence_slots=100.0).sample(2 ** 17, rng)
        scales, values = variability_profile(series, 0.5, max_scale_ms=2048.0)
        assert values[0] < values[4]  # slot-level diffs are tiny for smooth AR(1)
        peak = values.argmax()
        assert np.all(np.diff(values[peak:]) <= 1e-9 + 0.15 * values[peak:][:-1])


class TestSegments:
    def test_segment_count(self):
        out = segment_variability(np.random.default_rng(1).standard_normal(1000), 4, 250)
        assert out.shape == (4,)

    def test_segment_too_small(self):
        with pytest.raises(ValueError):
            segment_variability(np.ones(100), 10, 15)


class TestJoint:
    def test_joint_fields(self):
        mcs = np.tile([10.0, 12.0], 100)
        mimo = np.full(200, 4.0)
        jv = joint_variability(mcs, mimo, 1)
        assert jv.mcs == pytest.approx(2.0)
        assert jv.mimo == 0.0
        assert jv.magnitude == pytest.approx(2.0)

    def test_magnitude_euclidean(self):
        assert JointVariability(3.0, 4.0).magnitude == 5.0


class TestStabilization:
    def test_stabilizes_near_coherence(self, rng):
        from repro.channel.fading import Ar1Fading

        series = Ar1Fading(sigma_db=3.0, coherence_slots=200.0).sample(2 ** 17, rng)
        scale = stabilization_scale_ms(series, 0.5)
        # ~100 ms coherence -> stabilization in the 100 ms - 1 s region,
        # consistent with §5's 0.2-0.5 s observation for real channels.
        assert 16.0 <= scale <= 2048.0

    def test_constant_series(self):
        scale = stabilization_scale_ms(np.ones(4096), 0.5)
        assert scale == 0.5  # V=0 at the very first scale
