"""Tests for repro.channel.fading."""

import numpy as np
import pytest

from repro.channel.fading import Ar1Fading, ar1_scan, coherence_time_s, doppler_hz


def _scan_loop(coeff, noise, init):
    """Direct recursion — the reference ar1_scan must reproduce."""
    coeff = np.broadcast_to(coeff, np.shape(noise))
    x = np.empty(len(noise))
    x[0] = init
    for t in range(1, len(noise)):
        x[t] = coeff[t] * x[t - 1] + noise[t]
    return x


class TestAr1Scan:
    def test_scalar_coeff_matches_loop(self, rng):
        for a in (0.999, 0.5, 0.01, -0.7):
            noise = rng.standard_normal(3000)
            got = ar1_scan(a, noise, init=1.5)
            np.testing.assert_allclose(got, _scan_loop(a, noise, 1.5),
                                       rtol=1e-9, atol=1e-12)

    def test_varying_coeff_matches_loop(self, rng):
        coeff = rng.uniform(0.0, 1.0, 2500)
        noise = rng.standard_normal(2500)
        got = ar1_scan(coeff, noise, init=float(noise[0]))
        np.testing.assert_allclose(got, _scan_loop(coeff, noise, float(noise[0])),
                                   rtol=1e-9, atol=1e-12)

    def test_zero_coefficients_restart_recursion(self, rng):
        coeff = rng.uniform(0.5, 0.99, 400)
        coeff[[1, 50, 399]] = 0.0
        noise = rng.standard_normal(400)
        got = ar1_scan(coeff, noise, init=0.0)
        np.testing.assert_allclose(got, _scan_loop(coeff, noise, 0.0),
                                   rtol=1e-9, atol=1e-12)
        # A zero coefficient makes the output exactly the innovation.
        assert got[50] == noise[50]

    def test_extreme_coefficients_stay_finite(self, rng):
        # Coefficients small enough that the scaled scan would overflow
        # must fall back to the exact per-element recursion.
        coeff = np.full(100, 1e-280)
        noise = rng.standard_normal(100)
        got = ar1_scan(coeff, noise, init=1.0)
        assert np.all(np.isfinite(got))
        np.testing.assert_allclose(got, _scan_loop(coeff, noise, 1.0),
                                   rtol=1e-9, atol=1e-12)

    def test_long_run_short_coherence_no_overflow(self, rng):
        # |log a| accumulation over 200k steps must chunk, not overflow.
        got = ar1_scan(0.6, rng.standard_normal(200_000), init=0.0)
        assert np.all(np.isfinite(got))

    def test_single_element(self):
        assert ar1_scan(0.9, np.array([5.0]), init=3.0) == np.array([3.0])

    def test_shape_validation(self, rng):
        with pytest.raises(ValueError):
            ar1_scan(0.5, np.array([]), init=0.0)
        with pytest.raises(ValueError):
            ar1_scan(0.5, np.ones((3, 3)), init=0.0)
        with pytest.raises(ValueError):
            ar1_scan(np.ones(5), np.ones(7), init=0.0)


class TestDoppler:
    def test_doppler_value(self):
        # 1.4 m/s at 3.5 GHz ~ 16.3 Hz.
        assert doppler_hz(1.4, 3.5) == pytest.approx(16.34, abs=0.1)

    def test_static_ue(self):
        assert doppler_hz(0.0, 3.5) == 0.0
        assert coherence_time_s(0.0, 3.5) == float("inf")

    def test_coherence_shrinks_with_speed(self):
        assert coherence_time_s(11.0, 3.5) < coherence_time_s(1.4, 3.5)

    def test_coherence_shrinks_with_frequency(self):
        # mmWave decorrelates ~8x faster at the same speed.
        ratio = coherence_time_s(1.4, 3.5) / coherence_time_s(1.4, 28.0)
        assert ratio == pytest.approx(8.0)

    def test_negative_speed(self):
        with pytest.raises(ValueError):
            doppler_hz(-1.0, 3.5)


class TestAr1:
    def test_stationary_std(self, rng):
        fading = Ar1Fading(sigma_db=2.5, coherence_slots=20.0)
        series = fading.sample(200_000, rng)
        assert series.std() == pytest.approx(2.5, rel=0.05)
        assert abs(series.mean()) < 0.1

    def test_lag1_autocorrelation(self, rng):
        fading = Ar1Fading(sigma_db=2.0, coherence_slots=50.0)
        series = fading.sample(100_000, rng)
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 == pytest.approx(fading.rho, abs=0.01)

    def test_rho_from_coherence(self):
        assert Ar1Fading(coherence_slots=100.0).rho == pytest.approx(np.exp(-0.01))

    def test_zero_sigma(self, rng):
        assert np.all(Ar1Fading(sigma_db=0.0).sample(100, rng) == 0.0)

    def test_single_sample(self, rng):
        out = Ar1Fading().sample(1, rng)
        assert out.shape == (1,)

    def test_long_series_no_overflow(self, rng):
        # The chunked scan must stay finite over long runs with short
        # coherence (the a^-t overflow hazard).
        fading = Ar1Fading(sigma_db=3.0, coherence_slots=2.0)
        series = fading.sample(500_000, rng)
        assert np.all(np.isfinite(series))
        assert series.std() == pytest.approx(3.0, rel=0.05)

    def test_for_speed_builds_coherence(self):
        slow = Ar1Fading.for_speed(1.4, 3.5, 0.5)
        fast = Ar1Fading.for_speed(11.0, 3.5, 0.5)
        assert fast.coherence_slots < slow.coherence_slots

    def test_for_speed_stationary(self):
        static = Ar1Fading.for_speed(0.0, 3.5, 0.5)
        assert static.coherence_slots > 1000.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Ar1Fading(sigma_db=-1.0)
        with pytest.raises(ValueError):
            Ar1Fading(coherence_slots=0.0)
        with pytest.raises(ValueError):
            Ar1Fading().sample(0, rng)

    def test_sample_matches_direct_recursion(self):
        # The scan must equal x[t] = rho x[t-1] + sigma sqrt(1-rho^2) w[t].
        fading = Ar1Fading(sigma_db=2.5, coherence_slots=30.0)
        w = np.random.default_rng(5).standard_normal(5000)
        a = fading.rho
        b = fading.sigma_db * np.sqrt(1.0 - a * a)
        got = fading.sample(5000, np.random.default_rng(5))
        np.testing.assert_allclose(got, _scan_loop(a, b * w, fading.sigma_db * w[0]),
                                   rtol=1e-9, atol=1e-12)

    def test_underflowing_rho_stays_finite(self, rng):
        # coherence so short that rho underflows to exactly 0: the
        # series degenerates to IID draws instead of NaN.
        series = Ar1Fading(sigma_db=2.0, coherence_slots=1e-6).sample(64, rng)
        assert np.all(np.isfinite(series))
