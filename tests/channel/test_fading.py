"""Tests for repro.channel.fading."""

import numpy as np
import pytest

from repro.channel.fading import Ar1Fading, coherence_time_s, doppler_hz


class TestDoppler:
    def test_doppler_value(self):
        # 1.4 m/s at 3.5 GHz ~ 16.3 Hz.
        assert doppler_hz(1.4, 3.5) == pytest.approx(16.34, abs=0.1)

    def test_static_ue(self):
        assert doppler_hz(0.0, 3.5) == 0.0
        assert coherence_time_s(0.0, 3.5) == float("inf")

    def test_coherence_shrinks_with_speed(self):
        assert coherence_time_s(11.0, 3.5) < coherence_time_s(1.4, 3.5)

    def test_coherence_shrinks_with_frequency(self):
        # mmWave decorrelates ~8x faster at the same speed.
        ratio = coherence_time_s(1.4, 3.5) / coherence_time_s(1.4, 28.0)
        assert ratio == pytest.approx(8.0)

    def test_negative_speed(self):
        with pytest.raises(ValueError):
            doppler_hz(-1.0, 3.5)


class TestAr1:
    def test_stationary_std(self, rng):
        fading = Ar1Fading(sigma_db=2.5, coherence_slots=20.0)
        series = fading.sample(200_000, rng)
        assert series.std() == pytest.approx(2.5, rel=0.05)
        assert abs(series.mean()) < 0.1

    def test_lag1_autocorrelation(self, rng):
        fading = Ar1Fading(sigma_db=2.0, coherence_slots=50.0)
        series = fading.sample(100_000, rng)
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 == pytest.approx(fading.rho, abs=0.01)

    def test_rho_from_coherence(self):
        assert Ar1Fading(coherence_slots=100.0).rho == pytest.approx(np.exp(-0.01))

    def test_zero_sigma(self, rng):
        assert np.all(Ar1Fading(sigma_db=0.0).sample(100, rng) == 0.0)

    def test_single_sample(self, rng):
        out = Ar1Fading().sample(1, rng)
        assert out.shape == (1,)

    def test_long_series_no_overflow(self, rng):
        # The chunked scan must stay finite over long runs with short
        # coherence (the a^-t overflow hazard).
        fading = Ar1Fading(sigma_db=3.0, coherence_slots=2.0)
        series = fading.sample(500_000, rng)
        assert np.all(np.isfinite(series))
        assert series.std() == pytest.approx(3.0, rel=0.05)

    def test_for_speed_builds_coherence(self):
        slow = Ar1Fading.for_speed(1.4, 3.5, 0.5)
        fast = Ar1Fading.for_speed(11.0, 3.5, 0.5)
        assert fast.coherence_slots < slow.coherence_slots

    def test_for_speed_stationary(self):
        static = Ar1Fading.for_speed(0.0, 3.5, 0.5)
        assert static.coherence_slots > 1000.0

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            Ar1Fading(sigma_db=-1.0)
        with pytest.raises(ValueError):
            Ar1Fading(coherence_slots=0.0)
        with pytest.raises(ValueError):
            Ar1Fading().sample(0, rng)
