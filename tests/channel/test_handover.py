"""Tests for repro.channel.handover."""

import numpy as np
import pytest

from repro.channel.handover import A3Handover, HandoverResult, handover_interruption_mask


def _crossover_rx(n=200, n_cells=2, cross_at=100, gap=10.0):
    """Cell 0 strong then cell 1 strong, with a clean crossover."""
    rx = np.zeros((n, n_cells))
    ramp = np.linspace(-gap, gap, n)
    rx[:, 0] = -70.0 - ramp
    rx[:, 1] = -70.0 + ramp
    return rx


class TestA3Rule:
    def test_single_handover_at_crossover(self):
        rule = A3Handover(hysteresis_db=3.0, time_to_trigger_s=0.2, sample_interval_s=0.05)
        result = rule.apply(_crossover_rx())
        assert result.n_handovers == 1
        event = result.events[0]
        assert (event.source_cell, event.target_cell) == (0, 1)
        # The handover fires after the crossover, not at it.
        assert event.sample_index > 100

    def test_serving_series_consistent(self):
        rule = A3Handover()
        result = rule.apply(_crossover_rx())
        assert result.serving[0] == 0
        assert result.serving[-1] == 1
        # Serving changes exactly at the events.
        changes = np.nonzero(np.diff(result.serving))[0] + 1
        assert changes.tolist() == [e.sample_index for e in result.events]

    def test_hysteresis_suppresses_noise(self):
        rng = np.random.default_rng(3)
        rx = np.full((400, 2), -70.0) + rng.normal(0.0, 1.5, size=(400, 2))
        tight = A3Handover(hysteresis_db=0.0, time_to_trigger_s=0.0)
        safe = A3Handover(hysteresis_db=4.0, time_to_trigger_s=0.3)
        assert safe.apply(rx).n_handovers < tight.apply(rx).n_handovers

    def test_time_to_trigger_delays(self):
        fast = A3Handover(hysteresis_db=3.0, time_to_trigger_s=0.0)
        slow = A3Handover(hysteresis_db=3.0, time_to_trigger_s=1.0)
        rx = _crossover_rx()
        fast_index = fast.apply(rx).events[0].sample_index
        slow_index = slow.apply(rx).events[0].sample_index
        assert slow_index > fast_index

    def test_no_handover_when_serving_stays_best(self):
        rx = np.zeros((100, 2))
        rx[:, 0] = -60.0
        rx[:, 1] = -80.0
        assert A3Handover().apply(rx).n_handovers == 0

    def test_initial_cell_override(self):
        rx = np.zeros((50, 2))
        rx[:, 0] = -60.0
        rx[:, 1] = -80.0
        result = A3Handover(time_to_trigger_s=0.1).apply(rx, initial_cell=1)
        # Starts on the weak cell, hands over to the strong one.
        assert result.serving[0] == 1
        assert result.serving[-1] == 0

    def test_ping_pong_detection(self):
        from repro.channel.handover import HandoverEvent

        result = HandoverResult(
            serving=np.zeros(10, dtype=np.int64),
            events=(HandoverEvent(10, 0, 1), HandoverEvent(15, 1, 0), HandoverEvent(80, 0, 1)),
        )
        assert result.ping_pong_count(window_samples=10) == 1
        assert result.ping_pong_count(window_samples=2) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            A3Handover(hysteresis_db=-1.0)
        with pytest.raises(ValueError):
            A3Handover(sample_interval_s=0.0)
        with pytest.raises(ValueError):
            A3Handover().apply(np.zeros(10))
        with pytest.raises(ValueError):
            A3Handover().apply(np.zeros((10, 2)), initial_cell=5)


class TestInterruption:
    def test_mask_spans_events(self):
        rule = A3Handover(hysteresis_db=3.0, time_to_trigger_s=0.1)
        result = rule.apply(_crossover_rx())
        mask = handover_interruption_mask(result, 200, interruption_samples=4)
        assert mask.sum() == 4
        start = result.events[0].sample_index
        assert mask[start:start + 4].all()

    def test_validation(self):
        result = HandoverResult(serving=np.zeros(5, dtype=np.int64), events=())
        with pytest.raises(ValueError):
            handover_interruption_mask(result, 5, interruption_samples=-1)
