"""Tests for repro.channel.blockage."""

import numpy as np
import pytest

from repro.channel.blockage import NO_BLOCKAGE, BlockageProcess


class TestRates:
    def test_speed_scaling(self):
        process = BlockageProcess(blockage_rate_hz=0.1, speed_scaling=0.5)
        assert process.effective_rate_hz(0.0) == pytest.approx(0.1)
        assert process.effective_rate_hz(10.0) == pytest.approx(0.6)

    def test_negative_speed(self):
        with pytest.raises(ValueError):
            BlockageProcess().effective_rate_hz(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            BlockageProcess(blockage_rate_hz=-0.1)
        with pytest.raises(ValueError):
            BlockageProcess(mean_blockage_duration_s=0.0)
        with pytest.raises(ValueError):
            BlockageProcess(blockage_attenuation_db=-5.0)


class TestSampling:
    def test_no_blockage_all_clear(self, rng):
        states = NO_BLOCKAGE.sample_states(1000, 0.5, 1.4, rng)
        assert not states.any()

    def test_blocked_fraction_matches_theory(self, rng):
        # Stationary two-state process: blocked fraction = r*d / (1 + r*d).
        process = BlockageProcess(blockage_rate_hz=0.5, mean_blockage_duration_s=0.5,
                                  speed_scaling=0.0)
        fractions = [
            process.sample_states(1_000_000, 0.5, 0.0, np.random.default_rng(seed)).mean()
            for seed in range(5)
        ]
        expected = 0.25 / 1.25
        assert np.mean(fractions) == pytest.approx(expected, rel=0.1)

    def test_driving_blocks_more(self, rng):
        process = BlockageProcess(blockage_rate_hz=0.2, speed_scaling=0.5)
        walking = process.sample_states(400_000, 0.5, 1.4, rng).mean()
        driving = process.sample_states(400_000, 0.5, 11.0, rng).mean()
        assert driving > walking

    def test_blockages_are_contiguous(self, rng):
        process = BlockageProcess(blockage_rate_hz=0.3, mean_blockage_duration_s=1.0)
        states = process.sample_states(100_000, 0.5, 0.0, rng)
        transitions = int(np.abs(np.diff(states.astype(int))).sum())
        # Far fewer transitions than blocked slots: events are runs.
        assert transitions < 0.05 * max(states.sum(), 1)

    def test_attenuation_values(self, rng):
        process = BlockageProcess(blockage_rate_hz=0.5, blockage_attenuation_db=25.0)
        att = process.attenuation_db(50_000, 0.5, 0.0, rng)
        assert set(np.unique(att)).issubset({0.0, 25.0})
        assert att.max() == 25.0

    def test_n_slots_validation(self, rng):
        with pytest.raises(ValueError):
            BlockageProcess().sample_states(0, 0.5, 0.0, rng)
