"""Tests for repro.channel.shadowing."""

import numpy as np
import pytest

from repro.channel.shadowing import CorrelatedShadowing


class TestCorrelation:
    def test_correlation_at_zero(self):
        model = CorrelatedShadowing(decorrelation_distance_m=37.0)
        assert float(model.correlation(0.0)) == 1.0

    def test_e_folding(self):
        model = CorrelatedShadowing(decorrelation_distance_m=37.0)
        assert float(model.correlation(37.0)) == pytest.approx(np.exp(-1))

    def test_symmetric_in_displacement(self):
        model = CorrelatedShadowing()
        assert float(model.correlation(-10.0)) == float(model.correlation(10.0))


class TestSampling:
    def test_stationary_variance(self, rng):
        model = CorrelatedShadowing(sigma_db=6.0, decorrelation_distance_m=10.0)
        # Large displacements -> effectively IID; sample std approaches sigma.
        series = model.sample_along(np.full(20000, 100.0), rng)
        assert series.std() == pytest.approx(6.0, rel=0.05)

    def test_small_steps_highly_correlated(self, rng):
        model = CorrelatedShadowing(sigma_db=4.0, decorrelation_distance_m=37.0)
        series = model.sample_along(np.full(5000, 0.5), rng)
        lag1 = np.corrcoef(series[:-1], series[1:])[0, 1]
        assert lag1 > 0.95

    def test_zero_sigma(self, rng):
        model = CorrelatedShadowing(sigma_db=0.0)
        assert np.all(model.sample_along(np.ones(100), rng) == 0.0)

    def test_stationary_ue_nearly_constant(self, rng):
        model = CorrelatedShadowing(sigma_db=4.0)
        series = model.sample_along(np.zeros(100), rng)
        assert np.ptp(series) == pytest.approx(0.0, abs=1e-9)

    def test_empty_rejected(self, rng):
        with pytest.raises(ValueError):
            CorrelatedShadowing().sample_along(np.array([]), rng)

    def test_sample_stationary(self, rng):
        out = CorrelatedShadowing(sigma_db=3.0).sample_stationary(1000, rng)
        assert out.std() == pytest.approx(3.0, rel=0.15)
        with pytest.raises(ValueError):
            CorrelatedShadowing().sample_stationary(0, rng)

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedShadowing(sigma_db=-1.0)
        with pytest.raises(ValueError):
            CorrelatedShadowing(decorrelation_distance_m=0.0)


class TestVectorizedScan:
    """sample_along is a vectorized AR(1) scan; it must equal the
    per-sample recursion it replaced, for any (non-uniform) route."""

    def _loop_reference(self, model, displacements, rng):
        rho = model.correlation(displacements)
        innovations = rng.standard_normal(len(displacements))
        series = np.empty(len(displacements))
        series[0] = model.sigma_db * innovations[0]
        for i in range(1, len(displacements)):
            r = rho[i]
            series[i] = (r * series[i - 1]
                         + model.sigma_db * np.sqrt(1.0 - r * r) * innovations[i])
        return series

    def test_matches_loop_on_nonuniform_route(self):
        model = CorrelatedShadowing(sigma_db=4.0, decorrelation_distance_m=37.0)
        disp = np.random.default_rng(0).exponential(10.0, 4000)
        got = model.sample_along(disp, np.random.default_rng(1))
        want = self._loop_reference(model, disp, np.random.default_rng(1))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_matches_loop_with_pauses_and_jumps(self):
        # Zero displacements (rho == 1) and huge jumps (rho underflows
        # to exactly 0) exercise both scan edge cases.
        model = CorrelatedShadowing(sigma_db=6.0, decorrelation_distance_m=10.0)
        rng_route = np.random.default_rng(2)
        disp = rng_route.exponential(5.0, 2000)
        disp[rng_route.integers(0, 2000, 200)] = 0.0
        disp[rng_route.integers(0, 2000, 200)] = 1e6
        got = model.sample_along(disp, np.random.default_rng(3))
        want = self._loop_reference(model, disp, np.random.default_rng(3))
        assert np.all(np.isfinite(got))
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-12)

    def test_single_sample_route(self):
        model = CorrelatedShadowing(sigma_db=4.0)
        out = model.sample_along(np.array([12.0]), np.random.default_rng(4))
        assert out.shape == (1,)
