"""Tests for repro.channel.pathloss."""

import numpy as np
import pytest

from repro.channel.pathloss import (
    UMA,
    UMI,
    FreeSpace,
    los_probability_uma,
    los_probability_umi,
)


class TestFreeSpace:
    def test_reference_value(self):
        # FSPL at 1 km, 3.5 GHz ~ 103.3 dB.
        loss = float(FreeSpace().loss_db(1000.0, 3.5))
        assert loss == pytest.approx(103.3, abs=0.2)

    def test_distance_clamped_at_1m(self):
        model = FreeSpace()
        assert float(model.loss_db(0.1, 3.5)) == float(model.loss_db(1.0, 3.5))

    def test_six_db_per_octave(self):
        model = FreeSpace()
        assert float(model.loss_db(200.0, 3.5)) - float(model.loss_db(100.0, 3.5)) == pytest.approx(6.02, abs=0.05)


class TestUma:
    def test_los_slope(self):
        # 22 dB/decade in LOS.
        model = UMA()
        delta = float(model.loss_db(1000.0, 3.5)) - float(model.loss_db(100.0, 3.5))
        assert delta == pytest.approx(22.0, abs=0.01)

    def test_nlos_slope_steeper(self):
        model = UMA()
        d = np.array([50.0, 500.0])
        los = model.loss_db(d, 3.5, los=True)
        nlos = model.loss_db(d, 3.5, los=False)
        assert (nlos[1] - nlos[0]) > (los[1] - los[0])

    def test_nlos_never_below_los(self):
        model = UMA()
        d = np.logspace(0.5, 3, 30)
        assert np.all(model.loss_db(d, 3.5, los=False) >= model.loss_db(d, 3.5, los=True))

    def test_frequency_dependence(self):
        model = UMA()
        # 20 log10(f): 28 GHz vs 3.5 GHz differs by ~18 dB.
        delta = float(model.loss_db(100.0, 28.0)) - float(model.loss_db(100.0, 3.5))
        assert delta == pytest.approx(20 * np.log10(28 / 3.5), abs=0.01)

    def test_vectorized(self):
        out = UMA().loss_db(np.array([10.0, 100.0, 1000.0]), 3.5)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)


class TestUmi:
    def test_umi_los_reference(self):
        # 32.4 + 21 log10(100) + 20 log10(3.5) ~ 85.3 dB.
        assert float(UMI().loss_db(100.0, 3.5)) == pytest.approx(85.28, abs=0.1)

    def test_nlos_above_los(self):
        model = UMI()
        d = np.logspace(1, 3, 20)
        assert np.all(model.loss_db(d, 3.5, los=False) >= model.loss_db(d, 3.5, los=True))


class TestLosProbability:
    def test_certain_when_close(self):
        assert float(los_probability_uma(10.0)) == 1.0
        assert float(los_probability_umi(15.0)) == 1.0

    def test_decreasing(self):
        d = np.array([20.0, 50.0, 100.0, 300.0])
        for prob_fn in (los_probability_uma, los_probability_umi):
            p = prob_fn(d)
            assert np.all(np.diff(p) < 0)
            assert np.all((0 <= p) & (p <= 1))

    def test_umi_decays_faster(self):
        # Street canyons lose LOS sooner than macro layouts.
        assert float(los_probability_umi(150.0)) < float(los_probability_uma(150.0))
