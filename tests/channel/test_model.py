"""Tests for repro.channel.model — the composite SINR engines."""

import numpy as np
import pytest

from repro.channel.blockage import BlockageProcess
from repro.channel.mobility import Position, Stationary, Walking
from repro.channel.model import ChannelModel, ChannelRealization, GnbSite, SyntheticChannel
from repro.nr.numerology import Numerology


class TestRealizationContainer:
    def test_shape_validation(self):
        with pytest.raises(ValueError, match="length mismatch"):
            ChannelRealization(
                sinr_db=np.zeros(10), rsrp_dbm=np.zeros(9),
                rsrq_db=np.zeros(10), serving_cell=np.zeros(10, dtype=int),
            )

    def test_duration_and_times(self):
        realization = SyntheticChannel().realize(1.0)
        assert realization.n_slots == 2000
        assert realization.duration_s == pytest.approx(1.0)
        times = realization.times_ms()
        assert times[0] == 0.0
        assert times[1] == 0.5


class TestSyntheticChannel:
    def test_mean_matches_spec(self, rng):
        spec = SyntheticChannel(mean_sinr_db=18.0, fast_sigma_db=2.0, slow_sigma_db=1.5)
        realization = spec.realize(20.0, rng=rng)
        assert realization.sinr_db.mean() == pytest.approx(18.0, abs=1.0)

    def test_std_combines_components(self, rng):
        spec = SyntheticChannel(mean_sinr_db=15.0, fast_sigma_db=2.0,
                                slow_sigma_db=1.5, slow_coherence_slots=200.0)
        realization = spec.realize(60.0, rng=rng)
        expected = np.hypot(2.0, 1.5)
        assert realization.sinr_db.std() == pytest.approx(expected, rel=0.25)

    def test_blockage_pulls_sinr_down(self, rng):
        blockage = BlockageProcess(blockage_rate_hz=1.0, mean_blockage_duration_s=0.5,
                                   blockage_attenuation_db=30.0)
        clear = SyntheticChannel(mean_sinr_db=20.0).realize(60.0, rng=np.random.default_rng(1))
        blocked = SyntheticChannel(mean_sinr_db=20.0, blockage=blockage).realize(
            60.0, rng=np.random.default_rng(1))
        assert blocked.sinr_db.mean() < clear.sinr_db.mean() - 3.0

    def test_extra_attenuation_overrides_blockage(self, rng):
        att = np.full(2000, 10.0)
        spec = SyntheticChannel(mean_sinr_db=20.0, fast_sigma_db=0.0, slow_sigma_db=0.0)
        realization = spec.realize(1.0, rng=rng, extra_attenuation_db=att)
        assert realization.sinr_db.mean() == pytest.approx(10.0, abs=0.01)

    def test_extra_attenuation_too_short(self, rng):
        with pytest.raises(ValueError, match="shorter"):
            SyntheticChannel().realize(1.0, rng=rng, extra_attenuation_db=np.zeros(10))

    def test_mu_controls_grid(self, rng):
        fr2 = SyntheticChannel().realize(1.0, mu=Numerology.MU_3, rng=rng)
        assert fr2.n_slots == 8000

    def test_rsrq_reasonable(self, rng):
        realization = SyntheticChannel(mean_sinr_db=25.0).realize(2.0, rng=rng)
        assert -20.0 < realization.rsrq_db.mean() < -10.0

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            SyntheticChannel().realize(0.0)


class TestGeometricChannel:
    @pytest.fixture
    def two_site_model(self):
        return ChannelModel(
            sites=[GnbSite(Position(0, 0)), GnbSite(Position(400, 0))],
            frequency_ghz=3.5, bandwidth_mhz=90.0, n_rb=245,
            neighbour_load=0.1,
        )

    def test_realize_shapes(self, two_site_model, rng):
        realization = two_site_model.realize(2.0, rng=rng)
        assert realization.n_slots == 4000
        assert realization.serving_cell.shape == (4000,)

    def test_serving_cell_follows_proximity(self, two_site_model, rng):
        near_a = two_site_model.realize(1.0, mobility=Stationary(Position(10, 0)), rng=rng)
        near_b = two_site_model.realize(1.0, mobility=Stationary(Position(390, 0)), rng=rng)
        assert np.bincount(near_a.serving_cell).argmax() == 0
        assert np.bincount(near_b.serving_cell).argmax() == 1

    def test_sinr_degrades_with_distance(self, rng):
        model = ChannelModel(sites=[GnbSite(Position(0, 0))], neighbour_load=0.0)
        near = model.realize(1.0, mobility=Stationary(Position(30, 0)), rng=np.random.default_rng(5))
        far = model.realize(1.0, mobility=Stationary(Position(800, 0)), rng=np.random.default_rng(5))
        assert near.sinr_db.mean() > far.sinr_db.mean()

    def test_walking_produces_variation(self, two_site_model, rng):
        moving = two_site_model.realize(30.0, mobility=Walking(Position(0, 30)), rng=rng)
        static = two_site_model.realize(30.0, mobility=Stationary(Position(0, 30)), rng=rng)
        assert moving.sinr_db.std() >= static.sinr_db.std() * 0.5  # both vary, sanity only

    def test_requires_sites(self):
        with pytest.raises(ValueError):
            ChannelModel(sites=[])

    def test_load_validation(self):
        with pytest.raises(ValueError):
            ChannelModel(sites=[GnbSite(Position(0, 0))], neighbour_load=1.5)
