"""Tests for repro.channel.mobility."""

import numpy as np
import pytest

from repro.channel.mobility import Driving, Position, RouteTrace, Stationary, Walking


class TestPosition:
    def test_distance(self):
        assert Position(0, 0).distance_to(Position(3, 4)) == 5.0


class TestStationary:
    def test_fixed(self):
        model = Stationary(Position(5.0, -2.0))
        pos = model.positions_at(np.array([0.0, 10.0, 100.0]))
        assert np.all(pos[:, 0] == 5.0)
        assert np.all(pos[:, 1] == -2.0)
        assert model.speed_mps == 0.0

    def test_displacements_zero(self):
        disp = Stationary().displacements(np.linspace(0, 10, 5))
        assert np.all(disp == 0.0)


class TestConstantVelocity:
    def test_walking_defaults(self):
        model = Walking()
        assert model.speed_mps == pytest.approx(1.4)
        pos = model.positions_at(np.array([0.0, 10.0]))
        assert pos[1, 0] == pytest.approx(14.0)
        assert pos[1, 1] == pytest.approx(0.0)

    def test_driving_faster(self):
        assert Driving().speed_mps > Walking().speed_mps

    def test_heading(self):
        model = Walking(heading_deg=90.0)
        pos = model.positions_at(np.array([10.0]))
        assert pos[0, 0] == pytest.approx(0.0, abs=1e-9)
        assert pos[0, 1] == pytest.approx(14.0)

    def test_displacements_uniform(self):
        model = Driving(speed_mps=10.0)
        disp = model.displacements(np.arange(0, 5, 1.0))
        assert disp[0] == 0.0
        assert np.allclose(disp[1:], 10.0)

    def test_speed_validation(self):
        with pytest.raises(ValueError):
            Walking(speed_mps=0.0)
        with pytest.raises(ValueError):
            Driving(speed_mps=-1.0)


class TestRouteTrace:
    @pytest.fixture
    def l_route(self):
        # An L-shaped 200 m route.
        return RouteTrace(
            waypoints=(Position(0, 0), Position(100, 0), Position(100, 100)),
            _speed_mps=2.0,
        )

    def test_total_length(self, l_route):
        assert l_route.total_length_m == 200.0
        assert l_route.duration_s == 100.0

    def test_position_on_first_segment(self, l_route):
        pos = l_route.positions_at(np.array([25.0]))  # 50 m along
        assert pos[0].tolist() == [50.0, 0.0]

    def test_position_on_second_segment(self, l_route):
        pos = l_route.positions_at(np.array([75.0]))  # 150 m along
        assert pos[0].tolist() == [100.0, 50.0]

    def test_clamps_at_end(self, l_route):
        pos = l_route.positions_at(np.array([1000.0]))
        assert pos[0].tolist() == [100.0, 100.0]

    def test_corner_exact(self, l_route):
        pos = l_route.positions_at(np.array([50.0]))
        assert pos[0].tolist() == [100.0, 0.0]

    def test_displacement_magnitudes(self, l_route):
        disp = l_route.displacements(np.arange(0.0, 99.0, 1.0))
        assert np.allclose(disp[1:], 2.0, atol=1e-9)

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            RouteTrace(waypoints=(Position(0, 0),))

    def test_requires_positive_speed(self):
        with pytest.raises(ValueError):
            RouteTrace(waypoints=(Position(0, 0), Position(1, 0)), _speed_mps=0.0)
