"""Integration tests: every experiment runs and reproduces the paper's
shape-level findings (orderings, ratios, signs) in quick mode."""

import numpy as np
import pytest

from repro import papertargets as targets
from repro.experiments import EXPERIMENT_IDS, run_experiment


@pytest.fixture(scope="module")
def results():
    """Run each experiment once per test session (quick mode)."""
    cache = {}

    def get(experiment_id):
        if experiment_id not in cache:
            cache[experiment_id] = run_experiment(experiment_id, seed=2024, quick=True)
        return cache[experiment_id]

    return get


class TestHarness:
    def test_registry_complete(self):
        # One experiment per table/figure of DESIGN.md's index, plus the
        # §8 network-aware and AI/ML prediction extensions.
        assert len(EXPERIMENT_IDS) == 28

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            run_experiment("fig99")

    @pytest.mark.parametrize("experiment_id", ["table1", "table2", "table3", "eq32"])
    def test_cheap_experiments_render(self, results, experiment_id):
        result = results(experiment_id)
        assert result.rows
        assert result.experiment_id in result.render()


class TestConfigurations:
    def test_table2_rows(self, results):
        data = results("table2").data
        assert data["V_Sp"][0]["n_rb"] == 245
        assert data["O_Sp_100"][0]["max_modulation"] == "QAM64"
        assert all(not rows[0]["ca"] for rows in data.values())

    def test_table3_rows(self, results):
        data = results("table3").data
        assert [c["n_rb"] for c in data["Tmb_US"]] == [273, 106, 51, 11]
        assert data["Att_US"][0]["ca"] is False

    def test_eq32_matches_paper_values(self, results):
        data = results("eq32").data
        assert data["V_Sp_90MHz"]["two_layer_no_oh"] == pytest.approx(1213.44, rel=0.01)
        assert data["ratio"] == pytest.approx(273 / 245, rel=1e-4)


class TestFig1Fig2:
    def test_eu_means_within_band(self, results):
        data = results("fig01").data["eu"]
        for key, measured in data.items():
            paper = targets.FIG1_EU_DL_MBPS[key]
            assert measured == pytest.approx(paper, rel=0.20), key

    def test_eu_best_is_vit(self, results):
        data = results("fig01").data["eu"]
        assert max(data, key=data.get) == "V_It"

    def test_us_ca_exceeds_1gbps_except_att(self, results):
        data = results("fig01").data["us"]
        assert data["Tmb_US"] > 1.0
        assert data["Vzw_US"] > 1.0
        assert data["Att_US"] < 0.6

    def test_fig2_gap(self, results):
        data = results("fig02").data
        # The headline: both 90 MHz carriers beat the 100 MHz carrier.
        assert data["V_Sp"]["cqi12_mbps"] > data["O_Sp_100"]["cqi12_mbps"]
        assert data["O_Sp_90"]["cqi12_mbps"] > data["O_Sp_100"]["cqi12_mbps"]
        assert 0.10 < data["gap"] < 0.45


class TestResourceDissection:
    def test_fig3_ordering(self, results):
        data = results("fig03").data
        # More REs on the wider channel: allocation does NOT explain Fig 2.
        assert data["O_Sp_100"]["mean_re"] > data["O_Sp_90"]["mean_re"]
        assert data["O_Sp_100"]["mean_re"] > data["V_Sp"]["mean_re"]

    def test_fig4_near_max_everywhere(self, results):
        data = results("fig04").data
        for key, row in data.items():
            assert row["utilization"] > 0.9, key
            assert row["max_allocated"] <= row["configured_n_rb"]

    def test_fig5_modulation_shares(self, results):
        data = results("fig05").data
        assert data["O_Sp_100"].get("256QAM", 0.0) == 0.0
        for key in ("V_Sp", "O_Sp_90"):
            assert 1.0 < data[key].get("256QAM", 0.0) < 20.0
            assert data[key].get("64QAM", 0.0) > 60.0

    def test_fig6_layer_shares(self, results):
        data = results("fig06").data
        assert data["V_Sp"].get(4, 0.0) > 60.0
        assert data["O_Sp_90"].get(4, 0.0) > 60.0
        assert data["O_Sp_100"].get(4, 0.0) < 30.0
        assert data["O_Sp_100"].get(3, 0.0) > 50.0

    def test_fig7_density_advantage(self, results):
        data = results("fig07").data
        vodafone = data["V_Sp (3 gNBs)"]
        orange = data["O_Sp (2 gNBs)"]
        assert vodafone["n_sites"] > orange["n_sites"]
        assert vodafone["rsrq_p10"] >= orange["rsrq_p10"] - 0.5
        assert vodafone["share_4l"] > orange["share_4l"]
        assert vodafone["mean_tput_mbps"] > orange["mean_tput_mbps"]

    def test_fig8_interplay(self, results):
        data = results("fig08").data
        # O_Sp_100 leads on REs but trails on layers and throughput.
        assert data["O_Sp_100"]["mean_re"] > data["V_Sp"]["mean_re"]
        assert data["O_Sp_100"]["mean_layers"] < data["V_Sp"]["mean_layers"]
        assert data["O_Sp_100"]["tput_mbps"] < data["V_Sp"]["tput_mbps"]


class TestUplink:
    def test_fig9_all_below_120(self, results):
        data = results("fig09").data
        for key, row in data.items():
            if isinstance(row, dict):
                assert row["ul_mbps"] < 120.0, key

    def test_fig9_means_close(self, results):
        data = results("fig09").data
        for key, paper in targets.FIG9_EU_UL_MBPS.items():
            assert data[key]["ul_mbps"] == pytest.approx(paper, rel=0.30), key

    def test_fig9_weak_bandwidth_correlation(self, results):
        assert abs(results("fig09").data["bandwidth_correlation"]) < 0.6

    def test_fig10_lte_beats_tmobile_nr(self, results):
        data = results("fig10").data
        for condition in ("good", "poor"):
            assert data[condition]["LTE_US"] > data[condition]["Tmb_US"]

    def test_fig10_poor_degrades(self, results):
        data = results("fig10").data
        for key in ("Att_US", "Vzw_US", "Tmb_US"):
            assert data["poor"][key] < data["good"][key]


class TestLatency:
    def test_fig11_pattern_ordering(self, results):
        data = results("fig11").data
        assert data["V_It"]["bler0_ms"] > 2.0 * data["V_Ge"]["bler0_ms"]
        assert data["O_Fr"]["bler0_ms"] > 1.5 * data["T_Ge"]["bler0_ms"]

    def test_fig11_bler_tail(self, results):
        data = results("fig11").data
        for key, row in data.items():
            assert row["bler_pos_ms"] > row["bler0_ms"]

    def test_fig11_absolute_values(self, results):
        data = results("fig11").data
        for key in ("V_It", "V_Ge", "O_Fr", "T_Ge"):
            paper = targets.FIG11_LATENCY_MS["bler0"][key]
            assert data[key]["bler0_ms"] == pytest.approx(paper, rel=0.25), key


class TestVariability:
    def test_fig12_ordering(self, results):
        data = results("fig12").data
        order = data["ordering_128ms"]
        assert order[0] == "O_Sp_100"
        assert order[-1] == "V_It"

    def test_fig12_mimo_below_mcs(self, results):
        data = results("fig12").data
        for key in ("O_Sp_100", "V_Sp", "V_It"):
            mcs = data[key]["mcs"]["v"]
            mimo = data[key]["mimo"]["v"]
            n = min(mcs.size, mimo.size)
            assert np.all(mimo[2:n] <= mcs[2:n])

    def test_fig13_correlations(self, results):
        data = results("fig13").data
        assert data["corr_mcs"] > 0.5
        assert data["corr_mimo"] > 0.5
        assert data["rb_cv"] < 0.5 * data["mcs_cv"]

    def test_fig14_halving(self, results):
        data = results("fig14").data
        assert data["tput_ratio"] == pytest.approx(0.5, abs=0.15)
        assert data["rb_ratio"] == pytest.approx(0.5, abs=0.1)

    def test_fig14_variability_location_dependence(self, results):
        data = results("fig14").data
        # Farther UE B shows more MCS variability; competition does not
        # change per-UE variability much.
        assert data["sequential"]["B"]["v_mcs"] > data["sequential"]["A"]["v_mcs"]


class TestQoeExperiments:
    def test_fig15_correlations(self, results):
        data = results("fig15").data
        assert data["corr_bitrate"] > 0.5
        assert data["corr_stall"] > 0.0

    def test_fig16_shape(self, results):
        data = results("fig16").data
        qoe = data["qoe"]
        assert 3.0 <= qoe.mean_quality_level <= 6.5
        assert qoe.stall_percentage < 30.0
        assert data["oscillation"] >= 0.0

    def test_fig17_stall_reduction(self, results):
        data = results("fig17").data
        for key in ("O_Fr", "V_Ge"):
            assert data[key]["stall_reduction"] > 0.3
            # Bitrate roughly preserved or improved with 1 s chunks.
            assert data[key]["bitrate_gain"] > -0.15

    def test_fig24_bola_best(self, results):
        data = results("fig24").data
        assert data["best"] == "Bola"


class TestMmwave:
    def test_fig18_shapes(self, results):
        data = results("fig18").data
        for scenario in ("walking", "driving"):
            row = data[scenario]
            assert row["mmwave_gbps"] > row["midband_gbps"] * 0.8
            assert row["rv_mmwave"] > row["rv_midband"]
            assert row["stability_gain"] > 0.0
        # The mmWave advantage narrows under driving.
        walking_gap = data["walking"]["mmwave_gbps"] / data["walking"]["midband_gbps"]
        driving_gap = data["driving"]["mmwave_gbps"] / data["driving"]["midband_gbps"]
        assert driving_gap < walking_gap

    def test_fig19_shapes(self, results):
        data = results("fig19").data
        set_a = data["set_a"]
        assert set_a["mmwave"]["norm_bitrate"] >= set_a["midband"]["norm_bitrate"] - 0.05
        assert set_a["mmwave"]["stall_pct"] >= set_a["midband"]["stall_pct"] - 0.01
        set_b = data["set_b"]
        assert set_b["driving"]["bitrate_mbps"] <= set_b["walking"]["bitrate_mbps"]
        assert 0.3 <= set_b["driving"]["bitrate_tput_fraction"] <= 1.1

    def test_fig23_ca_monotone(self, results):
        data = results("fig23").data
        means = [row["mean_gbps"] for row in data.values()]
        assert means == sorted(means)
        assert means[-1] > 1.0
        assert means[0] < means[-1] * 0.8


class TestCampaign:
    def test_table1_statistics(self, results):
        data = results("table1").data
        assert data["minutes"] > 0
        assert len(data["operators"]) == 11
        assert set(data["countries"]) == {"Spain", "France", "Italy", "Germany", "USA"}
