"""End-to-end integration tests: whole pipelines, failure injection."""

import numpy as np
import pytest

from repro.apps.video import Bola, PAPER_LADDER_MIDBAND, StreamingSession, Video
from repro.channel.blockage import BlockageProcess
from repro.channel.model import SyntheticChannel
from repro.operators import get_profile
from repro.ran.simulator import SimParams, simulate_downlink
from repro.xcal.io import read_csv, write_csv
from repro.xcal.kpis import summarize_trace


class TestFullPipeline:
    """profile -> channel -> simulate -> serialize -> reload -> analyze -> stream."""

    @pytest.fixture(scope="class")
    def pipeline(self, tmp_path_factory):
        profile = get_profile("V_Sp")
        cell = profile.primary_cell
        rng = np.random.default_rng(2024)
        channel = profile.dl_channel().realize(6.0, mu=cell.mu, rng=rng)
        trace = simulate_downlink(cell, channel, rng=rng, params=profile.sim_params())
        path = tmp_path_factory.mktemp("pipeline") / "trace.csv"
        write_csv(trace, path)
        reloaded = read_csv(path)
        return trace, reloaded

    def test_reloaded_kpis_identical(self, pipeline):
        trace, reloaded = pipeline
        original = summarize_trace(trace, "a")
        recovered = summarize_trace(reloaded, "a")
        assert recovered.mean_tput_mbps == pytest.approx(original.mean_tput_mbps)
        assert recovered.bler == pytest.approx(original.bler)
        assert recovered.layer_shares == original.layer_shares
        assert recovered.tput_variability_128ms == pytest.approx(
            original.tput_variability_128ms)

    def test_streaming_over_reloaded_trace(self, pipeline):
        _, reloaded = pipeline
        capacity = reloaded.throughput_mbps(50.0)
        video = Video(duration_s=5.0, chunk_s=1.0, ladder=PAPER_LADDER_MIDBAND)
        session = StreamingSession(video=video, abr=Bola(video.ladder),
                                   capacity_mbps=capacity).run()
        assert len(session.chunks) == 5
        assert session.qoe().mean_bitrate_mbps > 0

    def test_variability_pipeline(self, pipeline):
        from repro.core.variability import variability_profile

        trace, _ = pipeline
        slot_tput = trace.throughput_mbps(trace.slot_duration_ms)
        scales, values = variability_profile(slot_tput, trace.slot_duration_ms)
        assert values[np.searchsorted(scales, 128.0)] < values[np.searchsorted(scales, 2.0)]


class TestFailureInjection:
    def test_total_outage_channel(self, cell_90mhz, rng):
        # A channel deep in outage: the link delivers (almost) nothing
        # but the simulator stays numerically sane.
        channel = SyntheticChannel(mean_sinr_db=-25.0, fast_sigma_db=1.0,
                                   slow_sigma_db=0.5).realize(2.0, rng=rng)
        trace = simulate_downlink(cell_90mhz, channel, rng=rng)
        assert trace.mean_throughput_mbps < 30.0
        assert np.isfinite(trace.delivered_bits).all()

    def test_intermittent_blackouts(self, cell_90mhz, rng):
        blockage = BlockageProcess(blockage_rate_hz=0.5, mean_blockage_duration_s=0.5,
                                   blockage_attenuation_db=60.0)
        channel = SyntheticChannel(mean_sinr_db=22.0, blockage=blockage).realize(6.0, rng=rng)
        trace = simulate_downlink(cell_90mhz, channel, rng=rng)
        series = trace.throughput_mbps(100.0)
        assert series.min() < 0.2 * series.max()  # blackouts visible
        assert trace.mean_throughput_mbps > 50.0  # recovery between them

    def test_streaming_through_blackout(self, cell_90mhz, rng):
        # The player survives a capacity series with hard zeros.
        capacity = np.concatenate([np.full(200, 500.0), np.zeros(100),
                                   np.full(1700, 500.0)])
        video = Video(duration_s=60.0, chunk_s=4.0, ladder=PAPER_LADDER_MIDBAND)
        session = StreamingSession(video=video, abr=Bola(video.ladder),
                                   capacity_mbps=capacity, buffer_capacity_s=12.0).run()
        assert len(session.chunks) == video.n_chunks
        assert np.isfinite(session.total_stall_s)

    def test_harq_exhaustion_under_deep_fade(self, cell_90mhz, rng):
        # Persistent deep fade: HARQ hits max attempts and drops TBs
        # rather than looping forever.
        channel = SyntheticChannel(mean_sinr_db=-10.0, fast_sigma_db=6.0,
                                   slow_sigma_db=2.0).realize(2.0, rng=rng)
        params = SimParams(max_attempts=2, retx_error_scale=1.0)
        trace = simulate_downlink(cell_90mhz, channel, rng=rng, params=params)
        failures = trace.is_retx & trace.error
        assert failures.sum() > 0  # retransmissions failing terminally

    def test_corrupt_csv_rejected(self, tmp_path):
        path = tmp_path / "corrupt.csv"
        path.write_text("# mu=1\nslot,time_ms,bogus\n0,0.0,1\n")
        with pytest.raises(ValueError):
            read_csv(path)


class TestSimulatorInvariants:
    """Trace-level invariants every simulation must satisfy."""

    @pytest.fixture(scope="class", params=["V_Sp", "O_Sp_100", "Tmb_US"])
    def any_trace(self, request):
        profile = get_profile(request.param)
        cell = profile.primary_cell
        rng = np.random.default_rng(11)
        channel = profile.dl_channel().realize(3.0, mu=cell.mu, rng=rng)
        return simulate_downlink(cell, channel, rng=rng, params=profile.sim_params()), cell

    def test_delivered_never_exceeds_tbs(self, any_trace):
        trace, _ = any_trace
        assert (trace.delivered_bits <= trace.tbs_bits).all()

    def test_delivered_all_or_nothing(self, any_trace):
        trace, _ = any_trace
        partial = (trace.delivered_bits > 0) & (trace.delivered_bits != trace.tbs_bits)
        assert not partial.any()

    def test_error_xor_delivery_on_grants(self, any_trace):
        trace, _ = any_trace
        sched = trace.scheduled.astype(bool)
        delivered = trace.delivered_bits[sched] > 0
        errored = trace.error[sched]
        assert np.array_equal(delivered, ~errored)

    def test_unscheduled_slots_empty(self, any_trace):
        trace, _ = any_trace
        idle = ~trace.scheduled.astype(bool)
        assert (trace.tbs_bits[idle] == 0).all()
        assert (trace.n_prb[idle] == 0).all()
        assert not trace.error[idle].any()

    def test_grants_within_cell_limits(self, any_trace):
        trace, cell = any_trace
        sched = trace.scheduled.astype(bool)
        assert trace.n_prb[sched].max() <= cell.grantable_rb
        assert trace.layers[sched].max() <= cell.max_layers
        assert trace.mcs_index[sched].max() <= cell.mcs_table.max_index

    def test_re_consistency(self, any_trace):
        trace, _ = any_trace
        sched = trace.scheduled.astype(bool)
        assert np.array_equal(trace.n_re[sched], 12 * trace.n_prb[sched])

    def test_modulation_consistent_with_dci(self, any_trace):
        trace, _ = any_trace
        sched = trace.scheduled.astype(bool)
        fallback = sched & (trace.dci_format == 0)
        assert (trace.modulation_order[fallback] <= 6).all()
