"""5G-network-aware ABR — the paper's proposed extension.

§8 (lessons learned): "developing adaptive algorithms that can better
accommodate 5G channel variability — making them 5G-network-aware — is
key to enhance application QoE."  This module implements that proposal:
:class:`NetworkAwareBola` runs standard BOLA but consults a PHY-layer
instability signal (the §5 joint MCS/MIMO variability, or throughput
variability, computed from the modem's own KPIs) and becomes more
conservative exactly when the channel is unstable:

- the throughput estimate is discounted by an instability-dependent
  safety factor (an unstable channel's recent mean overstates what the
  next seconds will deliver),
- quality upswitches are capped to one level per chunk while unstable
  (no q2 -> q6 jumps straight into a drop).

:func:`phy_instability_series` derives the signal from a
:class:`~repro.xcal.records.SlotTrace`, i.e. from data a UE modem
already exposes — no network-side changes required.
"""

from __future__ import annotations

import numpy as np

from repro.apps.video.abr import AbrContext, Bola
from repro.apps.video.content import BitrateLadder
from repro.core.timeseries import KpiSeries
from repro.core.variability import scaled_variability


def phy_instability_series(
    trace,
    window_s: float = 2.0,
    scale_ms: float = 150.0,
) -> np.ndarray:
    """Per-``window_s`` channel-instability score from a slot trace.

    For each window the score is the normalized joint variability of
    MCS and MIMO layers at ``scale_ms`` (the Fig. 15 signal): V(MCS)
    scaled by the table size plus V(MIMO) scaled by the layer count.
    Returns one score per window; values around 0 mean a quiet channel,
    values approaching 1 a rapidly reconfiguring one.
    """
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    mcs = KpiSeries.from_trace_column(trace, "mcs_index").values
    mimo = KpiSeries.from_trace_column(trace, "layers").values
    slot_ms = trace.slot_duration_ms
    block = max(1, int(round(scale_ms / slot_ms)))
    per_window = max(2 * block, int(round(window_s * 1000.0 / slot_ms)))
    n_windows = max(1, mcs.size // per_window)
    scores = np.empty(n_windows)
    for w in range(n_windows):
        sl = slice(w * per_window, (w + 1) * per_window)
        v_mcs = scaled_variability(mcs[sl], block)
        v_mimo = scaled_variability(mimo[sl], block)
        if np.isnan(v_mcs):
            v_mcs = 0.0
        if np.isnan(v_mimo):
            v_mimo = 0.0
        scores[w] = v_mcs / 28.0 + v_mimo / 4.0
    # Normalize into [0, 1] against a "very unstable" reference level.
    return np.clip(scores / 0.15, 0.0, 1.0)


class NetworkAwareBola(Bola):
    """BOLA with a PHY-instability side channel.

    Parameters
    ----------
    ladder:
        Quality ladder.
    instability:
        Per-window instability scores in ``[0, 1]``
        (:func:`phy_instability_series`).
    instability_window_s:
        Window length the scores were computed over.
    max_discount:
        Throughput-estimate discount applied at instability 1.0.
    """

    name = "aware-bola"

    def __init__(
        self,
        ladder: BitrateLadder,
        instability: np.ndarray,
        instability_window_s: float = 2.0,
        max_discount: float = 0.5,
        gamma_p: float = 5.0,
    ):
        super().__init__(ladder, gamma_p=gamma_p)
        instability = np.asarray(instability, dtype=float)
        if instability.size == 0:
            raise ValueError("instability series must be non-empty")
        if instability_window_s <= 0:
            raise ValueError("instability_window_s must be positive")
        if not 0.0 <= max_discount < 1.0:
            raise ValueError("max_discount must lie in [0, 1)")
        self.instability = instability
        self.instability_window_s = instability_window_s
        self.max_discount = max_discount

    def instability_at(self, now_s: float) -> float:
        """Instability score for the window containing ``now_s``."""
        idx = int(now_s / self.instability_window_s)
        return float(self.instability[min(idx, self.instability.size - 1)])

    def choose(self, context: AbrContext) -> int:
        instability = self.instability_at(context.now_s)
        discount = 1.0 - self.max_discount * instability
        discounted = AbrContext(
            buffer_level_s=context.buffer_level_s,
            buffer_capacity_s=context.buffer_capacity_s,
            chunk_s=context.chunk_s,
            throughput_estimate_mbps=context.throughput_estimate_mbps * discount,
            last_level=context.last_level,
            chunk_index=context.chunk_index,
            stalled_since_last=context.stalled_since_last,
            now_s=context.now_s,
        )
        level = super().choose(discounted)
        if instability > 0.5 and level > context.last_level + 1:
            # Unstable channel: climb one rung at a time.
            level = context.last_level + 1
        return level
