"""ABR (adaptive bitrate) algorithms: BOLA, throughput-based, dynamic.

§6 evaluates three dash.js algorithms:

- **BOLA** (Spiteri, Urgaonkar, Sitaraman — ToN 2020): a Lyapunov
  utility-maximization rule on the buffer level; the paper finds it the
  best performer (appendix Fig. 24) and uses it throughout §6.
- **Throughput-based** ("probe and adapt", Li et al.): pick the highest
  bitrate below a safety-discounted throughput estimate.
- **Dynamic** (dash.js default): throughput-based while the buffer is
  low, BOLA once it is comfortable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.apps.video.content import BitrateLadder


@dataclass(frozen=True)
class AbrContext:
    """Everything an ABR algorithm may inspect before one chunk download."""

    buffer_level_s: float
    buffer_capacity_s: float
    chunk_s: float
    throughput_estimate_mbps: float
    last_level: int
    chunk_index: int
    stalled_since_last: bool = False
    #: Wall-clock time of the request (lets network-aware algorithms
    #: index side-channel PHY signals).
    now_s: float = 0.0


class AbrAlgorithm(abc.ABC):
    """Interface: pick the next chunk's quality level."""

    name = "abr"
    #: Whether the player may abandon this algorithm's in-flight chunks
    #: when the link collapses (dash.js ships an abandonment rule with
    #: BOLA — the BOLA-E refinement — but not with the plain throughput
    #: rule).
    supports_abandonment = False

    def __init__(self, ladder: BitrateLadder):
        self.ladder = ladder

    @abc.abstractmethod
    def choose(self, context: AbrContext) -> int:
        """Quality level for the next chunk."""

    def reset(self) -> None:
        """Clear per-session state (default: stateless)."""


class Bola(AbrAlgorithm):
    """BOLA-BASIC.

    For buffer level ``Q`` (in seconds, the dash.js formulation) the
    algorithm picks::

        argmax_m  (V * (v_m + gamma_p) - Q) / S_m

    with utilities ``v_m = ln(S_m / S_min)`` and ``S_m`` proportional to
    the chunk sizes.  ``V`` is derived from the buffer target so the
    maximum quality is reached just below it (dash.js BolaRule):

        V = (buffer_target - chunk_s) / (v_max + gamma_p)

    A smaller chunk therefore both raises the top-quality threshold
    toward the full buffer and shortens the commitment of every
    decision — the §6.2 mechanism.
    """

    name = "bola"
    supports_abandonment = True

    def __init__(self, ladder: BitrateLadder, gamma_p: float = 5.0,
                 startup_safety: float = 0.9, startup_exit_buffer_s: float = 8.0):
        super().__init__(ladder)
        if gamma_p <= 0:
            raise ValueError("gamma_p must be positive")
        if not 0.0 < startup_safety <= 1.0:
            raise ValueError("startup_safety must lie in (0, 1]")
        self.gamma_p = gamma_p
        self.startup_safety = startup_safety
        self.startup_exit_buffer_s = startup_exit_buffer_s
        self._in_startup = True

    def control_parameter(self, buffer_capacity_s: float, chunk_s: float) -> float:
        """The Lyapunov trade-off parameter V (seconds-based, dash.js)."""
        headroom_s = max(chunk_s, buffer_capacity_s - chunk_s)
        v_max = float(self.ladder.utilities[-1])
        return headroom_s / (v_max + self.gamma_p)

    def choose(self, context: AbrContext) -> int:
        v = self.control_parameter(context.buffer_capacity_s, context.chunk_s)
        q = context.buffer_level_s  # seconds
        sizes = self.ladder.bitrates_mbps  # proportional to chunk size
        scores = (v * (self.ladder.utilities + self.gamma_p) - q) / sizes
        # When every score is negative (buffer above the top-quality
        # threshold) the argmax still lands on the highest quality —
        # Spiteri et al.'s "pause" refinement saves bandwidth but does
        # not change the quality decision, so plain argmax is faithful.
        best = int(np.argmax(scores))
        # dash.js startup state: while the buffer builds (at session
        # start, and again after every rebuffer — dash.js resets BOLA to
        # STARTUP when playback restarts), pick purely by measured
        # throughput.  This is why the paper's Fig. 16 session opens at
        # the highest quality, and why post-stall recoveries are
        # throughput-conservative.
        if context.stalled_since_last:
            self._in_startup = True
        if self._in_startup:
            exit_level_s = min(self.startup_exit_buffer_s, 0.6 * context.buffer_capacity_s)
            if context.buffer_level_s >= exit_level_s:
                self._in_startup = False
            else:
                best = self.ladder.highest_below(
                    self.startup_safety * context.throughput_estimate_mbps)
        return best

    def reset(self) -> None:
        self._in_startup = True


@dataclass
class _EwmaEstimator:
    """Slow/fast EWMA throughput estimator (dash.js style, simplified)."""

    alpha: float = 0.3
    value: float | None = None

    def update(self, sample_mbps: float) -> float:
        if self.value is None:
            self.value = sample_mbps
        else:
            self.value = (1.0 - self.alpha) * self.value + self.alpha * sample_mbps
        return self.value


class ThroughputBased(AbrAlgorithm):
    """Probe-and-adapt: highest bitrate under ``safety * estimate``."""

    name = "throughput"

    def __init__(self, ladder: BitrateLadder, safety: float = 0.9):
        super().__init__(ladder)
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must lie in (0, 1]")
        self.safety = safety

    def choose(self, context: AbrContext) -> int:
        return self.ladder.highest_below(self.safety * context.throughput_estimate_mbps)


class DynamicAbr(AbrAlgorithm):
    """dash.js 'dynamic': throughput-based when the buffer is below a
    threshold, BOLA once it is comfortably full."""

    name = "dynamic"

    def __init__(self, ladder: BitrateLadder, switch_buffer_s: float = 10.0,
                 gamma_p: float = 5.0, safety: float = 0.9):
        super().__init__(ladder)
        if switch_buffer_s <= 0:
            raise ValueError("switch_buffer_s must be positive")
        self.switch_buffer_s = switch_buffer_s
        self._bola = Bola(ladder, gamma_p=gamma_p)
        self._tput = ThroughputBased(ladder, safety=safety)
        self._using_bola = False

    def choose(self, context: AbrContext) -> int:
        # Hysteresis: enter BOLA above the threshold, fall back only when
        # the buffer halves below it (mirrors dash.js switching rules).
        if context.buffer_level_s >= self.switch_buffer_s:
            self._using_bola = True
        elif context.buffer_level_s < self.switch_buffer_s / 2.0:
            self._using_bola = False
        algorithm = self._bola if self._using_bola else self._tput
        return algorithm.choose(context)

    def reset(self) -> None:
        self._using_bola = False
