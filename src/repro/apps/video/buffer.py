"""Client playback buffer.

The DASH client appends downloaded chunks and drains the buffer in real
time during playback; when it empties mid-stream the player stalls
(rebuffers) until the in-flight chunk lands.  §6 uses the buffer level
as one of its evaluation metrics (Fig. 16's third panel).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PlaybackBuffer:
    """Seconds-denominated playback buffer.

    Parameters
    ----------
    capacity_s:
        Maximum buffered playback time; downloads pause (the client
        idles) when the next chunk would overflow it.  dash.js defaults
        to ~30 s of forward buffer.
    """

    capacity_s: float = 30.0
    level_s: float = 0.0
    total_stall_s: float = 0.0
    n_stalls: int = 0
    _in_stall: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_s <= 0:
            raise ValueError("capacity must be positive")
        if self.level_s < 0:
            raise ValueError("level must be non-negative")

    def would_overflow(self, chunk_s: float) -> bool:
        """True if appending a chunk would exceed capacity."""
        return self.level_s + chunk_s > self.capacity_s

    def append(self, chunk_s: float) -> None:
        """Add a downloaded chunk."""
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        self.level_s += chunk_s
        self._in_stall = False

    def drain(self, wall_s: float) -> float:
        """Play out ``wall_s`` seconds of wall-clock time.

        Returns the stall time incurred within the interval: when the
        buffer runs dry before the interval ends, the remainder counts
        as a stall (a new stall event is recorded at the dry-run point).
        """
        if wall_s < 0:
            raise ValueError("wall_s must be non-negative")
        played = min(self.level_s, wall_s)
        self.level_s -= played
        stall = wall_s - played
        if stall > 0:
            self.total_stall_s += stall
            if not self._in_stall:
                self.n_stalls += 1
                self._in_stall = True
        return stall

    @property
    def is_empty(self) -> bool:
        return self.level_s <= 1e-12
