"""DASH streaming session over a (simulated or measured) link trace.

Drives the §6 evaluation: sequential chunk downloads over a capacity
series, client buffer dynamics, stall accounting, and the ABR decision
loop.  Mirrors the paper's setup — DASH.js client, Apache server in the
same country (so the radio link is the bottleneck), XCAL recording the
PHY KPIs underneath.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.apps.video.abr import AbrAlgorithm, AbrContext
from repro.apps.video.buffer import PlaybackBuffer
from repro.apps.video.content import Video
from repro.core.qoe import QoeMetrics

#: PHY-to-application goodput factor.
DEFAULT_PROTOCOL_EFFICIENCY = 0.95


@dataclass(frozen=True)
class ChunkRecord:
    """One downloaded chunk."""

    index: int
    level: int
    bitrate_mbps: float
    request_time_s: float
    finish_time_s: float
    stall_s: float
    buffer_after_s: float

    @property
    def download_time_s(self) -> float:
        return self.finish_time_s - self.request_time_s


@dataclass
class SessionResult:
    """Outcome of one streaming session."""

    video: Video
    chunks: list[ChunkRecord]
    startup_delay_s: float
    buffer_timeline_s: np.ndarray  # buffer level sampled once per second
    total_stall_s: float
    n_stalls: int

    @property
    def quality_levels(self) -> np.ndarray:
        return np.array([c.level for c in self.chunks])

    @property
    def chunk_bitrates_mbps(self) -> np.ndarray:
        return np.array([c.bitrate_mbps for c in self.chunks])

    @property
    def playback_s(self) -> float:
        return len(self.chunks) * self.video.chunk_s

    def qoe(self) -> QoeMetrics:
        """QoE summary (§6 metrics)."""
        stalls = np.array([c.stall_s for c in self.chunks])
        return QoeMetrics.from_session(
            quality_levels=self.quality_levels,
            chunk_bitrates_mbps=self.chunk_bitrates_mbps,
            max_bitrate_mbps=self.video.ladder.max_bitrate_mbps,
            stall_events_s=stalls,
            playback_s=self.playback_s,
            startup_delay_s=self.startup_delay_s,
        )


@dataclass
class StreamingSession:
    """A DASH client session.

    Parameters
    ----------
    video:
        The content (duration, chunk length, ladder).
    abr:
        The adaptation algorithm.
    capacity_mbps:
        Link capacity series (application-visible PHY throughput).
    capacity_bin_s:
        Time granularity of the capacity series.
    buffer_capacity_s:
        Client forward-buffer limit.
    startup_chunks:
        Chunks buffered before playback starts.
    protocol_efficiency:
        PHY→application haircut applied to the capacity series.
    estimator_alpha:
        EWMA weight of the per-chunk throughput estimator.
    insufficient_buffer_guard:
        dash.js's InsufficientBufferRule: when the buffer is below half
        its target, cap the quality so the chunk's expected download
        time fits the buffer.  Applied on top of any ABR algorithm,
        exactly like the dash.js rule stack.
    """

    video: Video
    abr: AbrAlgorithm
    capacity_mbps: np.ndarray
    capacity_bin_s: float = 0.05
    buffer_capacity_s: float = 30.0
    startup_chunks: int = 1
    protocol_efficiency: float = DEFAULT_PROTOCOL_EFFICIENCY
    estimator_alpha: float = 0.3
    insufficient_buffer_guard: bool = True

    def __post_init__(self) -> None:
        self.capacity_mbps = np.asarray(self.capacity_mbps, dtype=float)
        if self.capacity_mbps.size == 0:
            raise ValueError("capacity series must be non-empty")
        if self.capacity_bin_s <= 0:
            raise ValueError("capacity_bin_s must be positive")
        if self.startup_chunks < 1:
            raise ValueError("startup_chunks must be at least 1")

    # ------------------------------------------------------------------ #
    # Capacity integration
    # ------------------------------------------------------------------ #
    def _capacity_at(self, bin_index: int) -> float:
        """Capacity of a bin in Mbps; the series repeats if exhausted."""
        return float(self.capacity_mbps[bin_index % self.capacity_mbps.size])

    def _download(
        self,
        start_s: float,
        bits: float,
        abandon_deadline_s: float | None = None,
        abandon_min_fraction: float = 0.8,
    ) -> tuple[float, bool]:
        """Advance a ``bits``-sized transfer; returns ``(end_s, abandoned)``.

        With ``abandon_deadline_s`` set, the transfer is abandoned once
        the elapsed time exceeds the deadline while less than
        ``abandon_min_fraction`` of the chunk has arrived (the BOLA-E /
        dash.js abandonment rule: a collapsing link should not hold the
        buffer hostage to an oversized request).
        """
        total = bits / self.protocol_efficiency  # pre-haircut PHY bits
        remaining = total
        t = start_s
        bin_index = int(t / self.capacity_bin_s)
        bin_end = (bin_index + 1) * self.capacity_bin_s
        while remaining > 0:
            rate_bps = self._capacity_at(bin_index) * 1e6
            window = bin_end - t
            can_move = rate_bps * window
            if can_move >= remaining and rate_bps > 0:
                return t + remaining / rate_bps, False
            remaining -= can_move
            t = bin_end
            bin_index += 1
            bin_end += self.capacity_bin_s
            if abandon_deadline_s is not None and t - start_s > abandon_deadline_s \
                    and (total - remaining) / total < abandon_min_fraction:
                return t, True
            if t > start_s + 600.0:
                # Pathological outage guard: declare the chunk done after
                # 10 minutes of wall time rather than looping forever.
                return t, False
        return t, False

    # ------------------------------------------------------------------ #
    # Session loop
    # ------------------------------------------------------------------ #
    def run(self) -> SessionResult:
        """Play the whole video; returns the session outcome."""
        self.abr.reset()
        buffer = PlaybackBuffer(capacity_s=self.buffer_capacity_s)
        records: list[ChunkRecord] = []
        estimate: float | None = None
        t = 0.0
        playing = False
        startup_delay = 0.0
        timeline: list[float] = []
        next_sample_s = 0.0

        stalled_since_last = False
        for index in range(self.video.n_chunks):
            context = AbrContext(
                buffer_level_s=buffer.level_s,
                buffer_capacity_s=self.buffer_capacity_s,
                chunk_s=self.video.chunk_s,
                throughput_estimate_mbps=estimate if estimate is not None else self.video.ladder.min_bitrate_mbps,
                last_level=records[-1].level if records else 0,
                chunk_index=index,
                stalled_since_last=stalled_since_last,
                now_s=t,
            )
            level = self.abr.choose(context)
            if self.insufficient_buffer_guard and estimate is not None and playing \
                    and buffer.level_s < 0.5 * self.buffer_capacity_s:
                budget_s = max(0.8 * buffer.level_s, 0.5 * self.video.chunk_s)
                while level > 0 and self.video.chunk_bits(level) / 1e6 / max(estimate, 1e-9) > budget_s:
                    level -= 1
            quality = self.video.ladder[level]
            bits = self.video.chunk_bits(level)

            # Respect the forward-buffer cap: idle until there is room.
            if playing and buffer.would_overflow(self.video.chunk_s):
                idle = buffer.level_s + self.video.chunk_s - self.buffer_capacity_s
                buffer.drain(idle)  # buffer is full; no stall possible
                t, next_sample_s = self._advance_timeline(t, idle, buffer, timeline, next_sample_s)

            start = t
            stall_before = buffer.total_stall_s
            deadline = None
            if self.abr.supports_abandonment and playing and level > 0:
                # Abandon once the chunk has taken a full buffer's worth
                # of wall time without nearing completion.
                deadline = max(self.video.chunk_s, buffer.level_s)
            finish, abandoned = self._download(start, bits, abandon_deadline_s=deadline)
            if abandoned:
                # Re-request at the lowest quality; the wasted wall time
                # still drains the buffer.
                level = 0
                quality = self.video.ladder[0]
                bits = self.video.chunk_bits(0)
                finish, _ = self._download(finish, bits)
            dt = finish - start
            if playing:
                buffer.drain(dt)
            else:
                startup_delay += dt
            t, next_sample_s = self._advance_timeline(start, dt, buffer, timeline, next_sample_s)
            buffer.append(self.video.chunk_s)
            if not playing and len(records) + 1 >= self.startup_chunks:
                playing = True

            sample_mbps = bits / 1e6 / max(dt, 1e-9)
            if estimate is None:
                estimate = sample_mbps
            else:
                estimate = (1.0 - self.estimator_alpha) * estimate + self.estimator_alpha * sample_mbps

            stall_this_chunk = buffer.total_stall_s - stall_before
            stalled_since_last = stall_this_chunk > 0
            records.append(ChunkRecord(
                index=index,
                level=level,
                bitrate_mbps=quality.bitrate_mbps,
                request_time_s=start,
                finish_time_s=finish,
                stall_s=stall_this_chunk,
                buffer_after_s=buffer.level_s,
            ))

        return SessionResult(
            video=self.video,
            chunks=records,
            startup_delay_s=startup_delay,
            buffer_timeline_s=np.array(timeline),
            total_stall_s=buffer.total_stall_s,
            n_stalls=buffer.n_stalls,
        )

    @staticmethod
    def _advance_timeline(
        start: float,
        dt: float,
        buffer: PlaybackBuffer,
        timeline: list[float],
        next_sample_s: float,
    ) -> tuple[float, float]:
        """Advance wall time, sampling the buffer level once per second."""
        end = start + dt
        while next_sample_s <= end:
            timeline.append(buffer.level_s)
            next_sample_s += 1.0
        return end, next_sample_s
