"""DASH video streaming stack (§6): content model, client buffer, ABR
algorithms, and the streaming session driver."""

from repro.apps.video.content import (
    QualityLevel,
    BitrateLadder,
    Video,
    PAPER_LADDER_MIDBAND,
    PAPER_LADDER_MMWAVE,
)
from repro.apps.video.buffer import PlaybackBuffer
from repro.apps.video.abr import AbrAlgorithm, AbrContext, Bola, ThroughputBased, DynamicAbr
from repro.apps.video.aware import NetworkAwareBola, phy_instability_series
from repro.apps.video.player import StreamingSession, SessionResult, ChunkRecord

__all__ = [
    "QualityLevel",
    "BitrateLadder",
    "Video",
    "PAPER_LADDER_MIDBAND",
    "PAPER_LADDER_MMWAVE",
    "PlaybackBuffer",
    "AbrAlgorithm",
    "AbrContext",
    "Bola",
    "ThroughputBased",
    "DynamicAbr",
    "NetworkAwareBola",
    "phy_instability_series",
    "StreamingSession",
    "SessionResult",
    "ChunkRecord",
]
