"""Additional ABR algorithms the paper profiled (footnote 6).

"We have also used L2A [43] and LoLP [19], the results of which are not
included in this paper."  For completeness this module provides working
simplified implementations of both, so the Fig. 24-style comparison can
be extended to the full algorithm set the campaign ran:

- :class:`L2A` — Learn2Adapt-LowLatency (Karagkioules et al., MMSys'20):
  online learning over the bitrate simplex via online gradient descent
  on a buffer-violation surrogate loss.
- :class:`LolPlus` — LoL+ (Bentaleb et al., TMM'22): a weighted
  multi-metric scoring rule over throughput fit, buffer safety and
  switching cost (the learning-based playback-speed control of the full
  system is out of scope for a throughput-trace player).
"""

from __future__ import annotations

import numpy as np

from repro.apps.video.abr import AbrAlgorithm, AbrContext
from repro.apps.video.content import BitrateLadder


def project_to_simplex(weights: np.ndarray) -> np.ndarray:
    """Euclidean projection of a vector onto the probability simplex."""
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D vector")
    sorted_desc = np.sort(weights)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    rho_candidates = sorted_desc - cumulative / np.arange(1, weights.size + 1)
    rho = int(np.nonzero(rho_candidates > 0)[0][-1])
    theta = cumulative[rho] / (rho + 1)
    return np.maximum(weights - theta, 0.0)


class L2A(AbrAlgorithm):
    """Simplified Learn2Adapt: OGD over the bitrate simplex.

    Each chunk, the expected buffer drain of every level is scored
    against the measured throughput; the weight vector takes a gradient
    step away from levels whose expected download time would violate
    the buffer and is re-projected onto the simplex.  The chosen level
    is the weighted-average bitrate's ladder rung.
    """

    name = "l2a"

    def __init__(self, ladder: BitrateLadder, learning_rate: float = 0.3,
                 target_buffer_s: float = 8.0):
        super().__init__(ladder)
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if target_buffer_s <= 0:
            raise ValueError("target_buffer_s must be positive")
        self.learning_rate = learning_rate
        self.target_buffer_s = target_buffer_s
        self.weights = np.full(len(ladder), 1.0 / len(ladder))

    def reset(self) -> None:
        self.weights = np.full(len(self.ladder), 1.0 / len(self.ladder))

    def choose(self, context: AbrContext) -> int:
        estimate = max(context.throughput_estimate_mbps, 1e-6)
        # Expected download seconds per chunk for each level.
        download_s = self.ladder.bitrates_mbps * context.chunk_s / estimate
        # Surrogate loss: buffer violation (download beyond what the
        # buffer plus one chunk absorbs), minus a small utility reward.
        headroom = max(context.buffer_level_s, 0.1) + context.chunk_s - self.target_buffer_s / 4.0
        violation = np.maximum(0.0, download_s - headroom)
        gradient = violation - 0.05 * self.ladder.utilities
        self.weights = project_to_simplex(self.weights - self.learning_rate * gradient)
        expected_bitrate = float(self.weights @ self.ladder.bitrates_mbps)
        return self.ladder.highest_below(expected_bitrate + 1e-9)


class LolPlus(AbrAlgorithm):
    """Simplified LoL+: weighted multi-metric scoring.

    Scores every level by throughput fit, buffer safety and switching
    smoothness, and picks the maximum — the heuristic core of LoL+'s
    QoE-weighted SOM selection, without the playback-speed controller.
    """

    name = "lolp"

    def __init__(self, ladder: BitrateLadder, throughput_weight: float = 0.5,
                 buffer_weight: float = 0.35, switch_weight: float = 0.15,
                 safety: float = 0.9):
        super().__init__(ladder)
        total = throughput_weight + buffer_weight + switch_weight
        if total <= 0:
            raise ValueError("weights must be positive")
        self.throughput_weight = throughput_weight / total
        self.buffer_weight = buffer_weight / total
        self.switch_weight = switch_weight / total
        if not 0.0 < safety <= 1.0:
            raise ValueError("safety must lie in (0, 1]")
        self.safety = safety

    def choose(self, context: AbrContext) -> int:
        estimate = max(context.throughput_estimate_mbps * self.safety, 1e-6)
        bitrates = self.ladder.bitrates_mbps
        # Throughput fit: best when the bitrate uses the estimate without
        # exceeding it; harshly penalized above.
        fit = np.where(bitrates <= estimate, bitrates / estimate,
                       -2.0 * (bitrates / estimate - 1.0))
        # Buffer safety: expected download time relative to the buffer.
        download_s = bitrates * context.chunk_s / estimate
        buffer_score = 1.0 - download_s / max(context.buffer_level_s + context.chunk_s, 0.5)
        # Switching smoothness: penalize big jumps from the last level.
        switch_score = -np.abs(np.arange(len(self.ladder)) - context.last_level) / len(self.ladder)
        scores = (self.throughput_weight * fit
                  + self.buffer_weight * np.clip(buffer_score, -2.0, 1.0)
                  + self.switch_weight * switch_score)
        return int(np.argmax(scores))
