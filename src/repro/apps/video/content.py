"""Video content model: quality ladders and chunked videos.

§6: videos were segmented into chunks (4 s default, 1 s in the §6.2
enhancement study) at seven quality levels with bandwidth requirements
of ~30 / 60 / 75 / 200 / 400 / 600 / 750 Mbps (mid-band experiments) or
400 Mbps-2.8 Gbps (the §7 scaled-up mmWave ladder).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np


@dataclass(frozen=True)
class QualityLevel:
    """One rung of a bitrate ladder."""

    level: int
    bitrate_mbps: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.level < 0:
            raise ValueError("level must be non-negative")
        if self.bitrate_mbps <= 0:
            raise ValueError("bitrate must be positive")

    def chunk_bits(self, chunk_s: float) -> float:
        """Size of one chunk at this quality, in bits."""
        if chunk_s <= 0:
            raise ValueError("chunk_s must be positive")
        return self.bitrate_mbps * 1e6 * chunk_s


class BitrateLadder:
    """An ordered set of quality levels (level 0 = lowest)."""

    def __init__(self, bitrates_mbps: list[float], labels: list[str] | None = None):
        if not bitrates_mbps:
            raise ValueError("a ladder needs at least one level")
        if sorted(bitrates_mbps) != list(bitrates_mbps):
            raise ValueError("bitrates must be sorted ascending")
        labels = labels or [""] * len(bitrates_mbps)
        if len(labels) != len(bitrates_mbps):
            raise ValueError("one label per level required")
        self.levels = tuple(
            QualityLevel(level=i, bitrate_mbps=b, label=label)
            for i, (b, label) in enumerate(zip(bitrates_mbps, labels))
        )

    def __len__(self) -> int:
        return len(self.levels)

    def __getitem__(self, level: int) -> QualityLevel:
        if not 0 <= level < len(self.levels):
            raise IndexError(f"quality level {level} outside [0, {len(self.levels) - 1}]")
        return self.levels[level]

    def __iter__(self):
        return iter(self.levels)

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    @property
    def min_bitrate_mbps(self) -> float:
        return self.levels[0].bitrate_mbps

    @property
    def max_bitrate_mbps(self) -> float:
        return self.levels[-1].bitrate_mbps

    @cached_property
    def bitrates_mbps(self) -> np.ndarray:
        return np.array([q.bitrate_mbps for q in self.levels])

    @cached_property
    def utilities(self) -> np.ndarray:
        """BOLA utilities ``v_m = ln(S_m / S_min)`` (Spiteri et al.)."""
        return np.log(self.bitrates_mbps / self.min_bitrate_mbps)

    def highest_below(self, throughput_mbps: float) -> int:
        """Highest level whose bitrate fits the given throughput
        (level 0 if none does)."""
        idx = int(np.searchsorted(self.bitrates_mbps, throughput_mbps, side="right")) - 1
        return max(0, idx)


#: §6 mid-band ladder: seven levels, ~400 Mbps average requirement.
PAPER_LADDER_MIDBAND = BitrateLadder([30.0, 60.0, 75.0, 200.0, 400.0, 600.0, 750.0])

#: §7 scaled-up mmWave ladder: ~1.25 Gbps average requirement.
PAPER_LADDER_MMWAVE = BitrateLadder([400.0, 800.0, 1200.0, 1500.0, 2000.0, 2400.0, 2800.0])


@dataclass(frozen=True)
class Video:
    """A chunked video asset.

    Parameters
    ----------
    duration_s:
        Total playback duration.
    chunk_s:
        Chunk length (4 s default per §6; 1 s in the enhancement study).
    ladder:
        Available quality levels.
    """

    duration_s: float
    chunk_s: float = 4.0
    ladder: BitrateLadder = PAPER_LADDER_MIDBAND

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.chunk_s <= 0:
            raise ValueError("durations must be positive")
        if self.chunk_s > self.duration_s:
            raise ValueError("chunk length exceeds the video duration")

    @property
    def n_chunks(self) -> int:
        """Number of chunks (the last one may be shorter; we count full)."""
        return int(self.duration_s // self.chunk_s)

    def chunk_bits(self, level: int) -> float:
        """Bits of one chunk at the given quality level."""
        return self.ladder[level].chunk_bits(self.chunk_s)
