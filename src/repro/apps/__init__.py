"""Profiled applications (§2, §6): bulk transfer and video streaming."""

from repro.apps.iperf import IperfResult, run_iperf_dl, run_iperf_ul
from repro.apps.video import (
    QualityLevel,
    BitrateLadder,
    Video,
    PAPER_LADDER_MIDBAND,
    PAPER_LADDER_MMWAVE,
    PlaybackBuffer,
    StreamingSession,
    SessionResult,
    Bola,
    ThroughputBased,
    DynamicAbr,
)

__all__ = [
    "IperfResult",
    "run_iperf_dl",
    "run_iperf_ul",
    "QualityLevel",
    "BitrateLadder",
    "Video",
    "PAPER_LADDER_MIDBAND",
    "PAPER_LADDER_MMWAVE",
    "PlaybackBuffer",
    "StreamingSession",
    "SessionResult",
    "Bola",
    "ThroughputBased",
    "DynamicAbr",
]
