"""Full-buffer bulk transfer — the iPerf3 equivalent (§2).

iPerf with a large TCP window saturates the radio link; the PHY-level
equivalent is a permanently backlogged UE, which is exactly what
:func:`repro.ran.simulator.simulate_downlink` models.  This module adds
the application-side view: per-interval goodput rows (what the iPerf
client prints) with a configurable protocol-overhead haircut.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.channel.model import ChannelRealization
from repro.ran.config import CellConfig
from repro.ran.simulator import SimParams, simulate_downlink, simulate_uplink
from repro.xcal.records import SlotTrace

#: PHY-to-application goodput factor (MAC/RLC/PDCP/IP/TCP headers).
DEFAULT_PROTOCOL_EFFICIENCY = 0.95


@dataclass(frozen=True)
class IperfResult:
    """Outcome of a bulk-transfer run."""

    trace: SlotTrace
    interval_s: float
    protocol_efficiency: float

    @property
    def goodput_mbps(self) -> np.ndarray:
        """Per-interval application goodput (the iPerf report rows)."""
        phy = self.trace.throughput_mbps(self.interval_s * 1000.0)
        return phy * self.protocol_efficiency

    @property
    def mean_goodput_mbps(self) -> float:
        """Session-mean application goodput."""
        return self.trace.mean_throughput_mbps * self.protocol_efficiency

    @property
    def transferred_mbytes(self) -> float:
        """Total bytes transferred, in MB."""
        return self.trace.total_bits * self.protocol_efficiency / 8e6

    def report_rows(self) -> list[str]:
        """iPerf-style per-interval report lines."""
        rows = []
        for i, mbps in enumerate(self.goodput_mbps):
            start = i * self.interval_s
            rows.append(f"[{start:6.1f}-{start + self.interval_s:6.1f} s]  {mbps:9.1f} Mbits/sec")
        rows.append(f"[ total ]  {self.mean_goodput_mbps:9.1f} Mbits/sec  "
                    f"({self.transferred_mbytes:.0f} MBytes)")
        return rows


def run_iperf_dl(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    interval_s: float = 1.0,
    protocol_efficiency: float = DEFAULT_PROTOCOL_EFFICIENCY,
) -> IperfResult:
    """Downlink bulk transfer over a channel realization."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    if not 0.0 < protocol_efficiency <= 1.0:
        raise ValueError("protocol_efficiency must lie in (0, 1]")
    trace = simulate_downlink(cell, channel, rng=rng, params=params)
    return IperfResult(trace=trace, interval_s=interval_s, protocol_efficiency=protocol_efficiency)


def run_iperf_ul(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    interval_s: float = 1.0,
    max_layers: int = 2,
    protocol_efficiency: float = DEFAULT_PROTOCOL_EFFICIENCY,
) -> IperfResult:
    """Uplink bulk transfer (reverse-mode iPerf)."""
    if interval_s <= 0:
        raise ValueError("interval_s must be positive")
    trace = simulate_uplink(cell, channel, rng=rng, params=params, max_layers=max_layers)
    return IperfResult(trace=trace, interval_s=interval_s, protocol_efficiency=protocol_efficiency)
