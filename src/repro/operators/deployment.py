"""Deployment geometry: gNB placement and coverage (appendix 10.3).

The paper explains the Vodafone-vs-Orange Spain performance gap partly
through deployment density: along the same Madrid walking route,
Vodafone's three gNBs keep the UE close to a serving site while
Orange's two leave a coverage trough in the middle (Figs. 7 and 22).
:func:`spain_deployments` builds the corresponding geometric models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.mobility import Position, RouteTrace
from repro.channel.model import ChannelModel, GnbSite
from repro.channel.pathloss import UMA
from repro.channel.shadowing import CorrelatedShadowing


@dataclass(frozen=True)
class Deployment:
    """A named gNB deployment over a local coordinate frame."""

    name: str
    sites: tuple[GnbSite, ...]
    frequency_ghz: float = 3.5
    bandwidth_mhz: float = 90.0
    n_rb: int = 245

    def __post_init__(self) -> None:
        if not self.sites:
            raise ValueError("a deployment needs at least one site")

    @property
    def n_sites(self) -> int:
        return len(self.sites)

    def channel_model(self, fading_sigma_db: float = 2.0, neighbour_load: float = 0.1) -> ChannelModel:
        """Geometry-driven channel model over this deployment.

        Street-level urban propagation: NLOS-dominated (clutter, bodies,
        vehicles) with modest sector EIRP toward the street, so signal
        quality degrades visibly over the 100-200 m scale the Fig. 7
        walking route spans.  Same-operator neighbour cells are
        coordinated and mostly point away from the UE — hence the low
        neighbour load.
        """
        sites = [GnbSite(s.position, tx_power_dbm=28.0, antenna_gain_db=8.0) for s in self.sites]
        return ChannelModel(
            sites=sites,
            frequency_ghz=self.frequency_ghz,
            bandwidth_mhz=self.bandwidth_mhz,
            n_rb=self.n_rb,
            pathloss=UMA(),
            shadowing=CorrelatedShadowing(sigma_db=4.0, decorrelation_distance_m=37.0),
            fading_sigma_db=fading_sigma_db,
            neighbour_load=neighbour_load,
            los=False,
        )

    def mean_site_distance_m(self, positions: np.ndarray) -> float:
        """Mean distance from given positions to the nearest site."""
        site_xy = np.array([(s.position.x, s.position.y) for s in self.sites])
        deltas = positions[:, None, :] - site_xy[None, :, :]
        distances = np.hypot(deltas[..., 0], deltas[..., 1]).min(axis=1)
        return float(distances.mean())


def spain_deployments(route_length_m: float = 600.0) -> tuple[Deployment, Deployment, RouteTrace]:
    """The Fig. 7 / Fig. 22 comparison setup.

    Returns ``(vodafone, orange, route)``: Vodafone places three gNBs
    along the route, Orange two (at the ends, leaving the middle far
    from any site); the route is the shared walking path.
    """
    if route_length_m <= 0:
        raise ValueError("route_length_m must be positive")
    l = route_length_m
    street_offset = 40.0  # gNBs sit a street-width away from the path
    vodafone = Deployment(
        name="V_Sp (3 gNBs)",
        sites=(
            GnbSite(Position(0.10 * l, street_offset)),
            GnbSite(Position(0.50 * l, -street_offset)),
            GnbSite(Position(0.90 * l, street_offset)),
        ),
    )
    orange = Deployment(
        name="O_Sp (2 gNBs)",
        sites=(
            GnbSite(Position(0.05 * l, street_offset)),
            GnbSite(Position(0.95 * l, -street_offset)),
        ),
        bandwidth_mhz=100.0,
        n_rb=273,
    )
    route = RouteTrace(
        waypoints=(Position(0.0, 0.0), Position(l, 0.0)),
        _speed_mps=1.4,
    )
    return vodafone, orange, route
