"""Calibration utilities: analytic throughput estimates and SINR fitting.

The operator profiles' radio priors were derived in two steps:

1. an analytic first guess from the attenuated-Shannon chain
   (:func:`estimate_dl_throughput_mbps` inverted by
   :func:`sinr_for_target_throughput`),
2. a short-simulation bisection (:func:`calibrate_mean_sinr`) to absorb
   the quantization/OLLA/HARQ effects the analytic chain ignores.

These helpers are exposed so users adding their own operators can
calibrate against their own measurement targets.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.nr.signal import DEFAULT_ALPHA, shannon_efficiency
from repro.ran.config import CellConfig
from repro.ran.simulator import SimParams, simulate_downlink

#: Net efficiency of the HARQ/OLLA loop (10% BLER mostly recovered).
HARQ_NET_EFFICIENCY = 0.95

#: Data REs per PRB per full slot (TS 38.214 cap).
RE_PER_PRB = 156


def estimate_dl_throughput_mbps(
    cell: CellConfig,
    mean_sinr_db: float,
    mean_layers: float,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Analytic mean DL throughput of a single carrier.

    ``tput = net_eff * dl_symbol_fraction * RE_slot * eff(SINR) * layers / slot``
    — the first-order chain behind the calibrated profile values.
    """
    if mean_layers < 1:
        raise ValueError("mean_layers must be at least 1")
    eff = float(shannon_efficiency(mean_sinr_db, alpha))
    eff = min(eff, cell.mcs_table.entries[-1].spectral_efficiency)
    re_slot = RE_PER_PRB * cell.grantable_rb
    slots_per_s = 1000.0 / cell.slot_ms
    bits_per_s = HARQ_NET_EFFICIENCY * cell.dl_slot_fraction() * re_slot * eff * mean_layers * slots_per_s
    return bits_per_s * 1e-6


def sinr_for_target_throughput(
    cell: CellConfig,
    target_mbps: float,
    mean_layers: float,
    alpha: float = DEFAULT_ALPHA,
) -> float:
    """Invert :func:`estimate_dl_throughput_mbps` for the mean SINR (dB)."""
    if target_mbps <= 0:
        raise ValueError("target must be positive")
    re_slot = RE_PER_PRB * cell.grantable_rb
    slots_per_s = 1000.0 / cell.slot_ms
    denom = HARQ_NET_EFFICIENCY * cell.dl_slot_fraction() * re_slot * mean_layers * slots_per_s
    eff_needed = target_mbps * 1e6 / denom
    table_max = cell.mcs_table.entries[-1].spectral_efficiency
    if eff_needed > table_max:
        raise ValueError(
            f"target {target_mbps} Mbps needs efficiency {eff_needed:.2f} > "
            f"table maximum {table_max:.2f} at {mean_layers} layers"
        )
    return float(10.0 * np.log10(np.power(2.0, eff_needed / alpha) - 1.0))


def simulated_mean_dl_mbps(
    profile,
    duration_s: float = 20.0,
    seed: int = 7,
    sinr_offset_db: float = 0.0,
) -> float:
    """Short-simulation mean DL throughput of a profile's primary carrier."""
    rng = np.random.default_rng(seed)
    channel = profile.dl_channel(sinr_offset_db).realize(duration_s, mu=profile.primary_cell.mu, rng=rng)
    trace = simulate_downlink(profile.primary_cell, channel, rng=rng, params=profile.sim_params())
    return trace.mean_throughput_mbps


def calibrate_mean_sinr(
    profile,
    target_mbps: float,
    duration_s: float = 20.0,
    tolerance_mbps: float = 10.0,
    max_iterations: int = 12,
    seed: int = 7,
) -> float:
    """Bisection on the SINR offset so the simulated mean hits a target.

    Returns the calibrated ``mean_sinr_db`` (profile value + fitted
    offset).  The search brackets ±8 dB around the profile prior.
    """
    if target_mbps <= 0:
        raise ValueError("target must be positive")
    low, high = -8.0, 8.0
    f_low = simulated_mean_dl_mbps(profile, duration_s, seed, low) - target_mbps
    f_high = simulated_mean_dl_mbps(profile, duration_s, seed, high) - target_mbps
    if f_low > 0:
        return profile.mean_sinr_db + low
    if f_high < 0:
        return profile.mean_sinr_db + high
    offset = 0.0
    for _ in range(max_iterations):
        offset = (low + high) / 2.0
        error = simulated_mean_dl_mbps(profile, duration_s, seed, offset) - target_mbps
        if abs(error) <= tolerance_mbps:
            break
        if error > 0:
            high = offset
        else:
            low = offset
    return profile.mean_sinr_db + offset
