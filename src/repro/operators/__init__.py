"""Operator deployment profiles (Tables 2 and 3 of the paper).

Each :class:`~repro.operators.profiles.OperatorProfile` bundles the
verbatim configuration the paper reports for one operator-channel —
band, bandwidth, SCS, duplexing, TDD pattern, maximum modulation, CA
combination — together with the calibrated radio-environment priors
(mean SINR, variability components, rank bias, UL offsets) that stand in
for the city deployments the team measured.
"""

from repro.operators.profiles import (
    OperatorProfile,
    EU_PROFILES,
    US_PROFILES,
    ALL_PROFILES,
    get_profile,
)
from repro.operators.deployment import Deployment, spain_deployments
from repro.operators.calibration import estimate_dl_throughput_mbps, calibrate_mean_sinr

__all__ = [
    "OperatorProfile",
    "EU_PROFILES",
    "US_PROFILES",
    "ALL_PROFILES",
    "get_profile",
    "Deployment",
    "spain_deployments",
    "estimate_dl_throughput_mbps",
    "calibrate_mean_sinr",
]
