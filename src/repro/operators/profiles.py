"""Operator profiles — Tables 2 and 3 of the paper, plus calibrated
radio-environment priors.

The 3GPP configuration columns (band, SCS, duplexing, bandwidth, N_RB,
maximum modulation, CA) are copied verbatim from the paper.  The radio
priors (mean SINR, fast/slow variability, rank bias, UL offsets) stand
in for the physical city environments; their values were calibrated so
the experiment harness regenerates the paper's reported means and
shares (see DESIGN.md §4 and ``repro.operators.calibration``).

Naming: Orange Spain operated two channels (90 and 100 MHz), modeled as
two profiles ``O_Sp_90`` / ``O_Sp_100``; the appendix notes the 90 MHz
channel is spectrum shared with Vodafone Spain.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.blockage import NO_BLOCKAGE, BlockageProcess
from repro.channel.model import SyntheticChannel
from repro.core.latency import UserPlaneLatencyModel
from repro.nr.mcs import Modulation
from repro.nr.numerology import Numerology
from repro.nr.tdd import TddPattern
from repro.ran.amc import RankAdapter
from repro.ran.ca import CarrierAggregation
from repro.ran.config import CellConfig
from repro.ran.lte import LteCellConfig
from repro.ran.nsa import NsaUplink
from repro.ran.simulator import SimParams


@dataclass(frozen=True)
class OperatorProfile:
    """One operator-channel deployment.

    3GPP configuration fields mirror Tables 2-3; the remaining fields
    are the calibrated environment priors substituting for the measured
    cities (see module docstring).
    """

    key: str
    operator: str
    country: str
    city: str
    cells: tuple[CellConfig, ...]
    ca_sinr_offsets_db: tuple[float, ...] = ()
    # Radio environment priors (DL).
    mean_sinr_db: float = 18.0
    fast_sigma_db: float = 2.4
    fast_coherence_slots: float = 40.0
    slow_sigma_db: float = 1.8
    slow_coherence_slots: float = 900.0
    rank_bias_db: float = 0.0
    # Uplink.
    ul_sinr_offset_db: float = -8.0
    ul_max_layers: int = 2
    ul_nr_fraction: float = 1.0
    lte_ul_offset_db: float = 18.0
    # Latency model knobs (§4.3).
    sr_based_ul: bool = False
    ue_processing_ms: float = 0.30
    gnb_processing_ms: float = 0.25
    latency_retx_fraction: float = 0.10
    # Deployment density (appendix 10.3 / Fig. 22).
    n_gnb_sites: int = 3
    nsa: bool = True
    notes: str = ""

    def __post_init__(self) -> None:
        if not self.cells:
            raise ValueError("an operator profile needs at least one carrier")
        if self.ca_sinr_offsets_db and len(self.ca_sinr_offsets_db) != len(self.cells):
            raise ValueError("one CA SINR offset per carrier required")

    # ------------------------------------------------------------------ #
    # Derived accessors
    # ------------------------------------------------------------------ #
    @property
    def primary_cell(self) -> CellConfig:
        """The primary component carrier."""
        return self.cells[0]

    @property
    def uses_ca(self) -> bool:
        return len(self.cells) > 1

    @property
    def total_bandwidth_mhz(self) -> float:
        return float(sum(c.bandwidth_mhz for c in self.cells))

    def dl_channel(self, sinr_offset_db: float = 0.0) -> SyntheticChannel:
        """Synthetic DL channel spec for this deployment."""
        return SyntheticChannel(
            mean_sinr_db=self.mean_sinr_db + sinr_offset_db,
            fast_sigma_db=self.fast_sigma_db,
            fast_coherence_slots=self.fast_coherence_slots,
            slow_sigma_db=self.slow_sigma_db,
            slow_coherence_slots=self.slow_coherence_slots,
        )

    def ul_channel(self, sinr_offset_db: float = 0.0) -> SyntheticChannel:
        """Synthetic UL channel spec (UE power budget applied)."""
        return self.dl_channel(self.ul_sinr_offset_db + sinr_offset_db)

    def sim_params(self, **overrides) -> SimParams:
        """Simulation parameters with this deployment's rank policy."""
        params = SimParams(rank_adapter=RankAdapter(
            bias_db=self.rank_bias_db, max_layers=self.primary_cell.max_layers,
        ))
        return replace(params, **overrides) if overrides else params

    def carrier_aggregation(self) -> CarrierAggregation:
        """CA configuration over all component carriers."""
        offsets = list(self.ca_sinr_offsets_db) or [0.0] * len(self.cells)
        return CarrierAggregation(carriers=list(self.cells), sinr_offsets_db=offsets)

    def nsa_uplink(self, lte_cell: LteCellConfig | None = None) -> NsaUplink:
        """NSA UL configuration (NR leg + LTE anchor)."""
        return NsaUplink(
            nr_cell=self.primary_cell,
            lte_cell=lte_cell or LteCellConfig(),
            nr_fraction=self.ul_nr_fraction,
            lte_sinr_offset_db=self.lte_ul_offset_db,
        )

    def latency_model(self) -> UserPlaneLatencyModel:
        """§4.3 user-plane latency model for this deployment."""
        cell = self.primary_cell
        if cell.tdd is None:
            raise ValueError(f"{self.key}: latency model requires a TDD carrier")
        return UserPlaneLatencyModel(
            pattern=cell.tdd,
            mu=cell.mu,
            sr_based_ul=self.sr_based_ul,
            ue_processing_ms=self.ue_processing_ms,
            gnb_processing_ms=self.gnb_processing_ms,
            retx_fraction=self.latency_retx_fraction,
        )


# -------------------------------------------------------------------------- #
# TDD patterns (§4.3 names the V_It/V_Ge/O_Fr/T_Ge patterns; the remaining
# deployments use the pattern family common in their market).
# -------------------------------------------------------------------------- #
_DDDSU = TddPattern.from_string("DDDSU")
_DDDDDDDSUU = TddPattern.from_string("DDDDDDDSUU")


def _eu_cell(name: str, bandwidth: int, max_mod: Modulation, tdd: TddPattern) -> CellConfig:
    return CellConfig(
        name=name, band_name="n78", bandwidth_mhz=bandwidth, scs_khz=30,
        max_modulation=max_mod, tdd=tdd,
    )


# -------------------------------------------------------------------------- #
# Europe (Table 2)
# -------------------------------------------------------------------------- #
EU_PROFILES: dict[str, OperatorProfile] = {}

EU_PROFILES["O_Sp_100"] = OperatorProfile(
    key="O_Sp_100", operator="Orange", country="Spain", city="Madrid",
    cells=(_eu_cell("O_Sp n78 100MHz", 100, Modulation.QAM64, _DDDSU),),
    mean_sinr_db=24.4, fast_sigma_db=3.2, fast_coherence_slots=30.0,
    slow_sigma_db=2.2, slow_coherence_slots=700.0,
    rank_bias_db=10.85, ul_sinr_offset_db=-9.7, sr_based_ul=False,
    n_gnb_sites=2,
    notes="64QAM ceiling; sparser deployment (2 gNBs) -> mostly 3 MIMO layers",
)

EU_PROFILES["O_Sp_90"] = OperatorProfile(
    key="O_Sp_90", operator="Orange", country="Spain", city="Madrid",
    cells=(_eu_cell("O_Sp n78 90MHz", 90, Modulation.QAM256, _DDDSU),),
    mean_sinr_db=25.4, fast_sigma_db=2.6, fast_coherence_slots=35.0,
    slow_sigma_db=1.8, slow_coherence_slots=900.0,
    rank_bias_db=7.05, ul_sinr_offset_db=-7.4, sr_based_ul=False,
    n_gnb_sites=3,
    notes="spectrum shared with Vodafone Spain (appendix 10.1)",
)

EU_PROFILES["V_Sp"] = OperatorProfile(
    key="V_Sp", operator="Vodafone", country="Spain", city="Madrid",
    cells=(_eu_cell("V_Sp n78 90MHz", 90, Modulation.QAM256, _DDDSU),),
    mean_sinr_db=25.9, fast_sigma_db=2.4, fast_coherence_slots=35.0,
    slow_sigma_db=1.8, slow_coherence_slots=900.0,
    rank_bias_db=7.3, ul_sinr_offset_db=-13.2, sr_based_ul=False,
    n_gnb_sites=3,
)

EU_PROFILES["O_Fr"] = OperatorProfile(
    key="O_Fr", operator="Orange", country="France", city="Paris",
    cells=(_eu_cell("O_Fr n78 90MHz", 90, Modulation.QAM256, _DDDDDDDSUU),),
    mean_sinr_db=21.4, fast_sigma_db=2.4, fast_coherence_slots=40.0,
    slow_sigma_db=1.9, slow_coherence_slots=900.0,
    rank_bias_db=4.0, ul_sinr_offset_db=-9.4, sr_based_ul=True,
    ue_processing_ms=0.10, gnb_processing_ms=0.10, latency_retx_fraction=0.22,
)

EU_PROFILES["S_Fr"] = OperatorProfile(
    key="S_Fr", operator="SFR", country="France", city="Paris",
    cells=(_eu_cell("S_Fr n78 80MHz", 80, Modulation.QAM256, _DDDDDDDSUU),),
    mean_sinr_db=22.16, fast_sigma_db=2.5, fast_coherence_slots=40.0,
    slow_sigma_db=2.0, slow_coherence_slots=900.0,
    rank_bias_db=4.72, ul_sinr_offset_db=-12.5, sr_based_ul=True,
)

EU_PROFILES["V_It"] = OperatorProfile(
    key="V_It", operator="Vodafone", country="Italy", city="Rome",
    cells=(_eu_cell("V_It n78 80MHz", 80, Modulation.QAM256, _DDDDDDDSUU),),
    mean_sinr_db=26.75, fast_sigma_db=1.7, fast_coherence_slots=50.0,
    slow_sigma_db=1.2, slow_coherence_slots=1200.0,
    rank_bias_db=8.68, ul_sinr_offset_db=-7.55, sr_based_ul=True,
    ue_processing_ms=0.45, gnb_processing_ms=0.40,
    notes="best coverage of the EU set: highest mean DL tput, lowest variability",
)

EU_PROFILES["T_Ge"] = OperatorProfile(
    key="T_Ge", operator="Deutsche Telekom", country="Germany", city="Munich",
    cells=(_eu_cell("T_Ge n78 90MHz", 90, Modulation.QAM256, _DDDSU),),
    mean_sinr_db=22.3, fast_sigma_db=2.5, fast_coherence_slots=40.0,
    slow_sigma_db=1.9, slow_coherence_slots=900.0,
    rank_bias_db=5.12, ul_sinr_offset_db=-13.0, sr_based_ul=False,
    ue_processing_ms=0.12, gnb_processing_ms=0.10, latency_retx_fraction=0.30,
)

EU_PROFILES["V_Ge"] = OperatorProfile(
    key="V_Ge", operator="Vodafone", country="Germany", city="Munich",
    cells=(_eu_cell("V_Ge n78 80MHz", 80, Modulation.QAM256, _DDDSU),),
    mean_sinr_db=24.89, fast_sigma_db=2.4, fast_coherence_slots=40.0,
    slow_sigma_db=1.8, slow_coherence_slots=900.0,
    rank_bias_db=7.18, ul_sinr_offset_db=-15.25, sr_based_ul=False,
    ue_processing_ms=0.20, gnb_processing_ms=0.15,
)


# -------------------------------------------------------------------------- #
# United States (Table 3)
# -------------------------------------------------------------------------- #
US_PROFILES: dict[str, OperatorProfile] = {}

# T-Mobile: n41 100+40 MHz TDD plus n25 20+5 MHz FDD, aggregated (Table 3
# reports 51+11 RBs for the n25 pair; encoded verbatim via overrides).
_TMB_CELLS = (
    CellConfig(name="Tmb n41 100MHz", band_name="n41", bandwidth_mhz=100, scs_khz=30,
               max_modulation=Modulation.QAM256, tdd=_DDDSU),
    CellConfig(name="Tmb n41 40MHz", band_name="n41", bandwidth_mhz=40, scs_khz=30,
               max_modulation=Modulation.QAM256, tdd=_DDDSU),
    CellConfig(name="Tmb n25 20MHz", band_name="n25", bandwidth_mhz=20, scs_khz=15,
               max_modulation=Modulation.QAM256, tdd=None, n_rb_override=51),
    CellConfig(name="Tmb n25 5MHz", band_name="n25", bandwidth_mhz=5, scs_khz=15,
               max_modulation=Modulation.QAM256, tdd=None, n_rb_override=11),
)

US_PROFILES["Tmb_US"] = OperatorProfile(
    key="Tmb_US", operator="T-Mobile", country="USA", city="Chicago",
    cells=_TMB_CELLS,
    ca_sinr_offsets_db=(0.0, -0.5, -1.5, -1.5),
    mean_sinr_db=25.1, fast_sigma_db=2.6, fast_coherence_slots=35.0,
    slow_sigma_db=2.0, slow_coherence_slots=900.0,
    rank_bias_db=7.21, ul_sinr_offset_db=-16.8,
    ul_nr_fraction=0.0, lte_ul_offset_db=19.5, sr_based_ul=False,
    notes="NSA focus; prefers the LTE leg for UL (§4.2)",
)

# Verizon: C-band (upper n78 range within n77).  Table 3 lists the 60 MHz
# mid-band channel; the Fig. 1 aggregate (~1.3 Gbps) reflects CA with a
# second C-band carrier and a low-band FDD carrier (documented in DESIGN.md).
_VZW_CELLS = (
    CellConfig(name="Vzw n77 60MHz", band_name="n77", bandwidth_mhz=60, scs_khz=30,
               max_modulation=Modulation.QAM256, tdd=_DDDSU),
    CellConfig(name="Vzw n77 60MHz cc2", band_name="n77", bandwidth_mhz=60, scs_khz=30,
               max_modulation=Modulation.QAM256, tdd=_DDDSU),
    CellConfig(name="Vzw low-band 10MHz", band_name="n25", bandwidth_mhz=10, scs_khz=15,
               max_modulation=Modulation.QAM64, tdd=None),
)

US_PROFILES["Vzw_US"] = OperatorProfile(
    key="Vzw_US", operator="Verizon", country="USA", city="Chicago",
    cells=_VZW_CELLS,
    ca_sinr_offsets_db=(0.0, -0.5, -1.5),
    mean_sinr_db=28.8, fast_sigma_db=2.4, fast_coherence_slots=35.0,
    slow_sigma_db=1.8, slow_coherence_slots=900.0,
    rank_bias_db=11.1, ul_sinr_offset_db=-13.3,
    ul_nr_fraction=0.6, lte_ul_offset_db=14.0, sr_based_ul=False,
)

# AT&T: C-band 40 MHz.  The second 3.45 GHz channel was not deployed in the
# measured city (paper footnote 2), so the profile is single-carrier.
US_PROFILES["Att_US"] = OperatorProfile(
    key="Att_US", operator="AT&T", country="USA", city="Chicago",
    cells=(CellConfig(name="Att n77 40MHz", band_name="n77", bandwidth_mhz=40, scs_khz=30,
                      max_modulation=Modulation.QAM256, tdd=_DDDSU),),
    mean_sinr_db=30.1, fast_sigma_db=2.4, fast_coherence_slots=35.0,
    slow_sigma_db=1.8, slow_coherence_slots=900.0,
    rank_bias_db=12.4, ul_sinr_offset_db=-15.35,
    ul_nr_fraction=0.7, lte_ul_offset_db=16.0, sr_based_ul=False,
    notes="second mid-band channel not deployed in Chicago (footnote 2)",
)


# -------------------------------------------------------------------------- #
# mmWave comparison profile (§7): FR2 n261, 4 x 100 MHz CA, blockage-prone.
# -------------------------------------------------------------------------- #
def mmwave_profile(speed_mps: float = 1.4) -> OperatorProfile:
    """An FR2 deployment for the §7 mid-band-vs-mmWave comparison.

    The blockage process intensifies with UE speed, reproducing the
    documented outage behaviour under driving.
    """
    cells = tuple(
        CellConfig(
            name=f"mmWave n261 100MHz cc{j}", band_name="n261", bandwidth_mhz=100,
            scs_khz=120, max_modulation=Modulation.QAM64, tdd=_DDDSU, fr2=True,
        )
        for j in range(4)
    )
    return OperatorProfile(
        key="mmWave_US", operator="mmWave (US)", country="USA", city="Chicago",
        cells=cells, ca_sinr_offsets_db=(0.0, -1.0, -1.5, -2.0),
        mean_sinr_db=25.0, fast_sigma_db=5.0, fast_coherence_slots=30.0,
        slow_sigma_db=4.5, slow_coherence_slots=1200.0,
        rank_bias_db=-2.0, ul_sinr_offset_db=-12.0,
        notes=f"FR2 comparison profile at {speed_mps} m/s",
    )


def mmwave_blockage(speed_mps: float) -> BlockageProcess:
    """Blockage process for the mmWave profile at a given speed."""
    if speed_mps < 0:
        raise ValueError("speed must be non-negative")
    return BlockageProcess(
        blockage_rate_hz=0.05, mean_blockage_duration_s=1.8,
        blockage_attenuation_db=30.0, speed_scaling=0.45,
    )


ALL_PROFILES: dict[str, OperatorProfile] = {**EU_PROFILES, **US_PROFILES}


def get_profile(key: str) -> OperatorProfile:
    """Look up a profile by key (e.g. ``"V_Sp"``, ``"Tmb_US"``)."""
    try:
        return ALL_PROFILES[key]
    except KeyError:
        raise KeyError(f"unknown operator profile {key!r}; known: {sorted(ALL_PROFILES)}") from None
