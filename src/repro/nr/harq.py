"""HARQ (hybrid ARQ) processes and retransmission timing.

A transport block that fails decoding (a block error, counted by the
paper's BLER KPI) is retransmitted by the same HARQ process after the
ACK/NACK round trip.  §4.3 of the paper shows BLER > 0 inflates the PHY
user-plane latency by roughly one HARQ round trip, and link adaptation
targets a ~10% initial BLER (the standard operating point).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Typical number of parallel HARQ processes configured in NR.
DEFAULT_NUM_PROCESSES = 16

#: Maximum transmission attempts (initial + retransmissions).
DEFAULT_MAX_ATTEMPTS = 4


@dataclass
class HarqProcess:
    """State of a single HARQ process."""

    process_id: int
    active: bool = False
    tbs_bits: int = 0
    attempts: int = 0
    first_tx_slot: int = -1
    last_tx_slot: int = -1

    def start(self, slot: int, tbs_bits: int) -> None:
        """Begin a new transport block (initial transmission)."""
        if tbs_bits < 0:
            raise ValueError("tbs_bits must be non-negative")
        self.active = True
        self.tbs_bits = tbs_bits
        self.attempts = 1
        self.first_tx_slot = slot
        self.last_tx_slot = slot

    def retransmit(self, slot: int) -> None:
        """Record a retransmission attempt."""
        if not self.active:
            raise RuntimeError(f"HARQ process {self.process_id} has no active TB")
        if slot <= self.last_tx_slot:
            raise ValueError("retransmission slot must advance")
        self.attempts += 1
        self.last_tx_slot = slot

    def complete(self) -> int:
        """Finish the TB (ACK or max attempts); return delivered bits."""
        bits = self.tbs_bits if self.active else 0
        self.active = False
        self.tbs_bits = 0
        return bits


@dataclass
class HarqStats:
    """Aggregate HARQ counters for a run."""

    initial_tx: int = 0
    retransmissions: int = 0
    residual_failures: int = 0

    @property
    def bler(self) -> float:
        """Initial-transmission block error rate."""
        if self.initial_tx == 0:
            return 0.0
        return self.retransmissions / (self.retransmissions + self.initial_tx)

    @property
    def initial_bler(self) -> float:
        """Fraction of initial transmissions that needed a retransmission.

        This is the BLER KPI the paper reports (errors on first attempt).
        """
        if self.initial_tx == 0:
            return 0.0
        # Each retransmission chain corresponds to one failed attempt; a TB
        # retransmitted k times contributes k failed attempts, but the
        # initial BLER counts only first-attempt failures, bounded by 1.
        return min(1.0, self.retransmissions / self.initial_tx)


@dataclass
class HarqEntity:
    """A bank of HARQ processes with round-trip timing.

    Parameters
    ----------
    num_processes:
        Parallel processes (16 keeps the pipe full at slot granularity).
    rtt_slots:
        Slots between a failed attempt and its retransmission opportunity
        (NACK decode + scheduling + TDD alignment); ~8 slots (4 ms) is a
        representative mid-band figure at 30 kHz SCS.
    max_attempts:
        Attempts before the TB is dropped to RLC (residual failure).
    """

    num_processes: int = DEFAULT_NUM_PROCESSES
    rtt_slots: int = 8
    max_attempts: int = DEFAULT_MAX_ATTEMPTS
    processes: list[HarqProcess] = field(default_factory=list)
    stats: HarqStats = field(default_factory=HarqStats)
    _pending: dict[int, int] = field(default_factory=dict)  # process_id -> ready slot

    def __post_init__(self) -> None:
        if self.num_processes < 1:
            raise ValueError("need at least one HARQ process")
        if self.rtt_slots < 1:
            raise ValueError("rtt_slots must be positive")
        if not self.processes:
            self.processes = [HarqProcess(i) for i in range(self.num_processes)]

    def idle_process(self) -> HarqProcess | None:
        """An idle process, or None if all are busy."""
        for process in self.processes:
            if not process.active:
                return process
        return None

    def transmit(self, slot: int, tbs_bits: int, decoded: bool) -> tuple[int, int]:
        """Record an initial transmission and its decode outcome.

        Returns ``(delivered_bits, harq_id)``: bits count immediately on
        success, else 0 and the TB enters the retransmission queue.
        """
        process = self.idle_process()
        self.stats.initial_tx += 1
        if process is None:
            # All processes busy: the scheduler stalls; model as a drop of
            # this scheduling opportunity (no bits, no new process).
            return 0, -1
        process.start(slot, tbs_bits)
        if decoded:
            return process.complete(), process.process_id
        self._pending[process.process_id] = slot + self.rtt_slots
        return 0, process.process_id

    def retransmissions_due(self, slot: int) -> list[HarqProcess]:
        """Processes whose retransmission is due at or before ``slot``."""
        return [
            self.processes[pid]
            for pid, ready in sorted(self._pending.items())
            if ready <= slot
        ]

    def retransmit(self, process: HarqProcess, slot: int, decoded: bool) -> int:
        """Perform one retransmission attempt; return delivered bits."""
        process.retransmit(slot)
        self.stats.retransmissions += 1
        if decoded:
            self._pending.pop(process.process_id, None)
            return process.complete()
        if process.attempts >= self.max_attempts:
            self._pending.pop(process.process_id, None)
            self.stats.residual_failures += 1
            process.complete()
            return 0
        self._pending[process.process_id] = slot + self.rtt_slots
        return 0

    @property
    def busy_processes(self) -> int:
        """Number of processes holding an undelivered TB."""
        return sum(1 for p in self.processes if p.active)
