"""Downlink control information (DCI) — TS 38.212 formats 1_0 and 1_1.

Each scheduled slot carries a DCI describing the grant: which RBs were
allocated, the MCS index, and the number of layers.  The paper extracts
exactly these fields from XCAL captures; our simulator emits the same
structure so the analysis pipeline is agnostic to the data's origin.

Format semantics relevant to the study (§3.1):

- **1_1** addresses the 256QAM MCS table (used under good conditions),
- **1_0** is the fallback format addressing the 64QAM table (used, e.g.,
  when channel conditions worsen).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.nr.mcs import MCS_TABLE_64QAM, MCS_TABLE_256QAM, McsEntry, McsTable, Modulation


class DciFormat(enum.Enum):
    """DL scheduling DCI format."""

    FORMAT_1_0 = "1_0"
    FORMAT_1_1 = "1_1"

    @property
    def mcs_table(self) -> McsTable:
        """MCS table this format addresses (given a 256QAM-capable cell)."""
        return MCS_TABLE_256QAM if self is DciFormat.FORMAT_1_1 else MCS_TABLE_64QAM


def format_for_conditions(cell_max_modulation: Modulation, good_conditions: bool) -> DciFormat:
    """Which DCI format a gNB uses given cell capability and channel state.

    A 64QAM-only cell always schedules with 1_0; a 256QAM cell falls back
    to 1_0 when conditions degrade (§3.1).
    """
    if cell_max_modulation is not Modulation.QAM256:
        return DciFormat.FORMAT_1_0
    return DciFormat.FORMAT_1_1 if good_conditions else DciFormat.FORMAT_1_0


@dataclass(frozen=True)
class DownlinkGrant:
    """A decoded per-slot DL grant, as XCAL would report it.

    Attributes
    ----------
    slot:
        Absolute slot index of the grant.
    n_prb:
        Number of allocated PRBs.
    mcs_index:
        MCS index within the table addressed by ``dci_format``.
    layers:
        Number of MIMO layers.
    dci_format:
        DCI format used (determines the MCS table).
    ndi:
        New-data indicator: ``True`` for an initial transmission, ``False``
        for a HARQ retransmission.
    harq_id:
        HARQ process the grant belongs to.
    """

    slot: int
    n_prb: int
    mcs_index: int
    layers: int
    dci_format: DciFormat = DciFormat.FORMAT_1_1
    ndi: bool = True
    harq_id: int = 0

    def __post_init__(self) -> None:
        if self.n_prb < 0:
            raise ValueError("n_prb must be non-negative")
        if not 1 <= self.layers <= 8:
            raise ValueError("layers must lie in [1, 8]")
        table = self.dci_format.mcs_table
        if not 0 <= self.mcs_index <= table.max_index:
            raise ValueError(
                f"MCS {self.mcs_index} invalid for DCI format {self.dci_format.value} "
                f"(table {table.name}, max {table.max_index})"
            )

    @property
    def mcs(self) -> McsEntry:
        """Resolved MCS entry."""
        return self.dci_format.mcs_table[self.mcs_index]

    @property
    def modulation(self) -> Modulation:
        """Modulation order the grant uses."""
        return self.mcs.modulation
