"""Initial access and channel identification — appendix 10.1.

The paper extracts each operator's mid-band channel from the MIB/SIB
signaling captured during initial access: *absoluteFrequencyPointA*,
*offsetToCarrier* and *carrierBandwidth* identify the frequency channel,
and *carrierBandwidth* indexes the TS 38.101-1 Table 5.3.2-1 row that
yields the channel bandwidth.  This module models that procedure: a
gNB-side broadcast configuration, the UE-side decode, and the channel
identification math the paper's appendix spells out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nr.bands import BAND_CATALOG, Band, arfcn_to_frequency_mhz, bands_containing, frequency_mhz_to_arfcn
from repro.nr.grid import max_rb, transmission_bandwidth_mhz, valid_bandwidths_mhz
from repro.nr.numerology import Numerology

#: Sub-carriers per resource block (frequency-domain step of offsets).
_SC_PER_RB = 12


@dataclass(frozen=True)
class MasterInformationBlock:
    """The MIB fields the paper's appendix mentions.

    ``controlResourceSetZero`` / ``searchSpaceZero`` index the TS 38.213
    tables that locate the SIB1 CORESET; the system frame number anchors
    the frame timing.
    """

    system_frame_number: int
    control_resource_set_zero: int = 0
    search_space_zero: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.system_frame_number < 1024:
            raise ValueError("SFN is a 10-bit counter (0..1023)")
        if not 0 <= self.control_resource_set_zero <= 15:
            raise ValueError("controlResourceSetZero indexes a 4-bit table row")
        if not 0 <= self.search_space_zero <= 15:
            raise ValueError("searchSpaceZero indexes a 4-bit table row")


@dataclass(frozen=True)
class SystemInformationBlock1:
    """The SIB1 carrier description (appendix 10.1 fields).

    Attributes
    ----------
    absolute_frequency_point_a:
        NR-ARFCN of "point A", the common reference subcarrier 0.
    offset_to_carrier:
        Offset from point A to the carrier's first usable subcarrier,
        in resource blocks.
    carrier_bandwidth:
        The carrier's transmission bandwidth in resource blocks (the
        Table 5.3.2-1 value).
    scs_khz:
        Sub-carrier spacing of the carrier.
    """

    absolute_frequency_point_a: int
    offset_to_carrier: int
    carrier_bandwidth: int
    scs_khz: int = 30

    def __post_init__(self) -> None:
        if self.absolute_frequency_point_a < 0:
            raise ValueError("ARFCN must be non-negative")
        if self.offset_to_carrier < 0:
            raise ValueError("offsetToCarrier is a non-negative RB count")
        if self.carrier_bandwidth <= 0:
            raise ValueError("carrierBandwidth must be positive")
        Numerology.from_scs_khz(self.scs_khz)  # validates


@dataclass(frozen=True)
class IdentifiedChannel:
    """Outcome of the appendix-10.1 identification procedure."""

    band: Band
    center_frequency_mhz: float
    channel_bandwidth_mhz: int
    n_rb: int
    scs_khz: int

    @property
    def occupied_bandwidth_mhz(self) -> float:
        """Transmission bandwidth actually occupied by the N_RB grid."""
        return transmission_bandwidth_mhz(self.n_rb, self.scs_khz)


def channel_bandwidth_from_carrier_rb(carrier_bandwidth_rb: int, scs_khz: int,
                                      fr2: bool = False) -> int:
    """Invert Table 5.3.2-1: RB count -> nominal channel bandwidth (MHz).

    This is the lookup the appendix describes ("carrierBandwidth
    retrieves channel bandwidth from the lookup table 5.3.2-1").
    """
    for bandwidth in valid_bandwidths_mhz(scs_khz, fr2=fr2):
        if max_rb(bandwidth, scs_khz, fr2=fr2) == carrier_bandwidth_rb:
            return bandwidth
    raise ValueError(
        f"{carrier_bandwidth_rb} RBs at {scs_khz} kHz is not a Table 5.3.2-1 row"
    )


def identify_channel(sib1: SystemInformationBlock1, fr2: bool = False) -> IdentifiedChannel:
    """Identify the operating channel from a decoded SIB1.

    Replicates the paper's extraction: point A plus the RB offset and
    half the carrier's RB span give the center frequency; the RB count
    gives the nominal channel bandwidth; the center frequency selects
    the 3GPP band.
    """
    point_a_mhz = arfcn_to_frequency_mhz(sib1.absolute_frequency_point_a)
    rb_khz = _SC_PER_RB * sib1.scs_khz
    first_usable_mhz = point_a_mhz + sib1.offset_to_carrier * rb_khz * 1e-3
    center_mhz = first_usable_mhz + sib1.carrier_bandwidth * rb_khz * 1e-3 / 2.0
    bandwidth_mhz = channel_bandwidth_from_carrier_rb(sib1.carrier_bandwidth,
                                                      sib1.scs_khz, fr2=fr2)
    candidates = bands_containing(center_mhz)
    if not candidates:
        raise ValueError(f"no catalog band contains {center_mhz:.1f} MHz")
    # Prefer the narrowest containing band (n78 inside n77, like the
    # paper's attribution of AT&T/Verizon C-band channels).
    band = min(candidates, key=lambda b: b.width_mhz)
    return IdentifiedChannel(
        band=band,
        center_frequency_mhz=center_mhz,
        channel_bandwidth_mhz=bandwidth_mhz,
        n_rb=sib1.carrier_bandwidth,
        scs_khz=sib1.scs_khz,
    )


def sib1_for_channel(center_frequency_mhz: float, bandwidth_mhz: int,
                     scs_khz: int = 30, fr2: bool = False) -> SystemInformationBlock1:
    """Build the SIB1 a gNB would broadcast for a given channel.

    The inverse of :func:`identify_channel`, used by tests and by the
    campaign generator to stamp realistic signaling onto traces.
    """
    n_rb = max_rb(bandwidth_mhz, scs_khz, fr2=fr2)
    rb_mhz = _SC_PER_RB * scs_khz * 1e-3
    first_usable_mhz = center_frequency_mhz - n_rb * rb_mhz / 2.0
    # Put point A a small integer number of RBs below the carrier.
    offset_to_carrier = 10
    point_a_mhz = first_usable_mhz - offset_to_carrier * rb_mhz
    return SystemInformationBlock1(
        absolute_frequency_point_a=frequency_mhz_to_arfcn(point_a_mhz),
        offset_to_carrier=offset_to_carrier,
        carrier_bandwidth=n_rb,
        scs_khz=scs_khz,
    )
