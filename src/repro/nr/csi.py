"""CSI feedback and DCI scheduling exchange — appendix 10.2.

The UE periodically reports channel state information (CSI) containing
RI (rank indicator), PMI (precoding matrix indicator), CQI (channel
quality indicator) and LI (layer indicator); the gNB combines the
report with load and scheduling policy to build each slot's DCI (RBs,
MCS, layers), and the UE's ACK/NACK feedback closes the loop (Fig. 21).

This module provides the typed report/feedback structures plus a
reference report generator from a measured SINR — the same mapping the
slot simulator applies, exposed as a reusable component so external
tools can produce or consume CSI streams.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nr.cqi import CQI_MAX, CqiTable
from repro.nr.signal import sinr_to_cqi
from repro.ran.amc import RankAdapter


@dataclass(frozen=True)
class CsiReport:
    """One CSI report (appendix 10.2's RI/PMI/CQI/LI quadruple)."""

    slot: int
    rank_indicator: int
    precoding_matrix_indicator: int
    channel_quality_indicator: int
    layer_indicator: int

    def __post_init__(self) -> None:
        if self.rank_indicator < 1:
            raise ValueError("RI is at least 1")
        if not 0 <= self.channel_quality_indicator <= CQI_MAX:
            raise ValueError(f"CQI outside [0, {CQI_MAX}]")
        if self.precoding_matrix_indicator < 0:
            raise ValueError("PMI must be non-negative")
        if not 0 <= self.layer_indicator < self.rank_indicator:
            raise ValueError("LI indexes a layer within the reported rank")


@dataclass(frozen=True)
class HarqFeedback:
    """ACK/NACK for one transport block (the loop-closing message)."""

    slot: int
    harq_id: int
    ack: bool


class CsiReporter:
    """Generates the periodic CSI stream a UE would send.

    Parameters
    ----------
    cqi_table:
        CQI table configured for the cell (64QAM or 256QAM family).
    rank_adapter:
        Rank policy (thresholds + hysteresis) producing the RI.
    period_slots:
        Report periodicity ("10's of ms time scales" per the paper —
        20 slots = 10 ms at 30 kHz SCS).
    cqi_alpha:
        Efficiency factor of the UE's CQI estimate.
    n_precoders:
        Size of the PMI codebook being indexed.
    """

    def __init__(self, cqi_table: CqiTable, rank_adapter: RankAdapter | None = None,
                 period_slots: int = 20, cqi_alpha: float = 0.9, n_precoders: int = 16):
        if period_slots < 1:
            raise ValueError("period_slots must be positive")
        if n_precoders < 1:
            raise ValueError("n_precoders must be positive")
        self.cqi_table = cqi_table
        self.rank_adapter = rank_adapter or RankAdapter()
        self.period_slots = period_slots
        self.cqi_alpha = cqi_alpha
        self.n_precoders = n_precoders
        self._previous_rank = 1

    def reset(self) -> None:
        """Clear the rank-hysteresis state."""
        self._previous_rank = 1

    def report(self, slot: int, measured_sinr_db: float,
               rng: np.random.Generator | None = None) -> CsiReport:
        """Build the CSI report for a measurement at ``slot``."""
        rank = self.rank_adapter.rank_for_sinr(measured_sinr_db, self._previous_rank)
        self._previous_rank = rank
        cqi = int(sinr_to_cqi(measured_sinr_db, self.cqi_table, alpha=self.cqi_alpha))
        rng = rng or np.random.default_rng(abs(slot) + 1)
        pmi = int(rng.integers(0, self.n_precoders))
        li = int(rng.integers(0, rank))
        return CsiReport(
            slot=slot,
            rank_indicator=rank,
            precoding_matrix_indicator=pmi,
            channel_quality_indicator=min(cqi, CQI_MAX),
            layer_indicator=li,
        )

    def report_series(self, sinr_db: np.ndarray,
                      rng: np.random.Generator | None = None) -> list[CsiReport]:
        """Periodic reports over a per-slot SINR series."""
        sinr_db = np.asarray(sinr_db, dtype=float)
        rng = rng or np.random.default_rng(0)
        return [
            self.report(slot, float(sinr_db[slot]), rng)
            for slot in range(0, sinr_db.size, self.period_slots)
        ]
