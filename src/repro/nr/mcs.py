"""MCS index tables (TS 38.214 Tables 5.1.3.1-1 and 5.1.3.1-2).

The MCS (modulation and coding scheme) index signaled in the DCI selects a
modulation order ``Q_m`` and a target code rate ``R`` (stored as
``R * 1024``).  The paper's §3.1 explains that DCI format 1_1 addresses the
256QAM table while format 1_0 addresses the 64QAM table, and §4.1 (Fig. 5)
dissects which modulation orders operators actually used.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np


class Modulation(enum.Enum):
    """Modulation order (bits per resource element per layer)."""

    QPSK = 2
    QAM16 = 4
    QAM64 = 6
    QAM256 = 8

    @property
    def bits_per_symbol(self) -> int:
        return self.value

    @classmethod
    def from_order(cls, q_m: int) -> "Modulation":
        for modulation in cls:
            if modulation.value == q_m:
                return modulation
        raise ValueError(f"no modulation with order {q_m}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class McsEntry:
    """One row of an MCS table."""

    index: int
    modulation: Modulation
    code_rate_x1024: float

    @property
    def code_rate(self) -> float:
        """Target code rate as a fraction."""
        return self.code_rate_x1024 / 1024.0

    @property
    def spectral_efficiency(self) -> float:
        """Information bits per resource element per layer."""
        return self.modulation.bits_per_symbol * self.code_rate


class McsTable:
    """An ordered MCS table with efficiency-based lookups."""

    def __init__(self, name: str, entries: list[McsEntry], max_modulation: Modulation):
        if not entries:
            raise ValueError("an MCS table needs at least one entry")
        self.name = name
        self.entries = tuple(entries)
        self.max_modulation = max_modulation

    def __len__(self) -> int:
        return len(self.entries)

    def __getitem__(self, index: int) -> McsEntry:
        if not 0 <= index < len(self.entries):
            raise IndexError(f"MCS index {index} outside [0, {len(self.entries) - 1}] for {self.name}")
        return self.entries[index]

    def __iter__(self):
        return iter(self.entries)

    @cached_property
    def efficiencies(self) -> np.ndarray:
        """Spectral efficiency of each index.

        Note: *not* strictly monotone — at modulation transitions the
        first row of the higher order can carry slightly fewer bits than
        the last row of the lower order (e.g. 64QAM index 17 vs 16QAM
        index 16), which is why lookups below use an explicit argmax
        over the feasible set instead of a binary search.
        """
        return np.array([e.spectral_efficiency for e in self.entries])

    @cached_property
    def max_index(self) -> int:
        return len(self.entries) - 1

    @property
    def max_code_rate(self) -> float:
        """Highest target code rate in the table (R_max of §3.2's formula)."""
        return max(e.code_rate for e in self.entries)

    def highest_index_below(self, efficiency: float) -> int:
        """Most efficient MCS index not exceeding ``efficiency``.

        Used by link adaptation: the gNB picks the most aggressive MCS the
        estimated channel can sustain.  Because the table efficiencies dip
        at modulation transitions, this is an argmax over the feasible
        set (ties resolved toward the higher index), clamped to index 0.
        """
        feasible = self.efficiencies <= efficiency
        if not feasible.any():
            return 0
        candidates = np.where(feasible)[0]
        best_eff = self.efficiencies[candidates].max()
        return int(candidates[self.efficiencies[candidates] >= best_eff - 1e-12][-1])

    def indices_for_modulation(self, modulation: Modulation) -> list[int]:
        """All indices using the given modulation order."""
        return [e.index for e in self.entries if e.modulation is modulation]


def _build(name: str, rows: list[tuple[int, float]], max_modulation: Modulation) -> McsTable:
    entries = [
        McsEntry(index=i, modulation=Modulation.from_order(q_m), code_rate_x1024=rate)
        for i, (q_m, rate) in enumerate(rows)
    ]
    return McsTable(name, entries, max_modulation)


#: TS 38.214 Table 5.1.3.1-1 (qam64): indices 0..28 (29-31 reserved).
MCS_TABLE_64QAM = _build(
    "qam64",
    [
        (2, 120), (2, 157), (2, 193), (2, 251), (2, 308), (2, 379), (2, 449),
        (2, 526), (2, 602), (2, 679),
        (4, 340), (4, 378), (4, 434), (4, 490), (4, 553), (4, 616), (4, 658),
        (6, 438), (6, 466), (6, 517), (6, 567), (6, 616), (6, 666), (6, 719),
        (6, 772), (6, 822), (6, 873), (6, 910), (6, 948),
    ],
    Modulation.QAM64,
)

#: TS 38.214 Table 5.1.3.1-2 (qam256): indices 0..27 (28-31 reserved).
MCS_TABLE_256QAM = _build(
    "qam256",
    [
        (2, 120), (2, 193), (2, 308), (2, 449), (2, 602),
        (4, 378), (4, 434), (4, 490), (4, 553), (4, 616), (4, 658),
        (6, 466), (6, 517), (6, 567), (6, 616), (6, 666), (6, 719), (6, 772),
        (6, 822), (6, 873),
        (8, 682.5), (8, 711), (8, 754), (8, 797), (8, 841), (8, 885),
        (8, 916.5), (8, 948),
    ],
    Modulation.QAM256,
)


def table_for_max_modulation(max_modulation: Modulation) -> McsTable:
    """MCS table matching an operator's configured maximum modulation."""
    if max_modulation is Modulation.QAM256:
        return MCS_TABLE_256QAM
    if max_modulation is Modulation.QAM64:
        return MCS_TABLE_64QAM
    raise ValueError(f"operators configure QAM64 or QAM256 ceilings, not {max_modulation}")
