"""NR numerology: sub-carrier spacing, slot and symbol timing (TS 38.211).

5G NR organizes time into 10 ms radio frames of ten 1 ms subframes.  A
subframe contains ``2**mu`` slots, where ``mu`` is the numerology index
derived from the sub-carrier spacing (SCS): ``SCS = 15 kHz * 2**mu``.
Every slot carries 14 OFDM symbols (normal cyclic prefix).

All mid-band channels studied in the paper use 30 kHz SCS (``mu = 1``,
0.5 ms slots) except T-Mobile's n25 FDD carriers; FR2 (mmWave) channels
use 120 kHz SCS (``mu = 3``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

SYMBOLS_PER_SLOT = 14
SUBFRAMES_PER_FRAME = 10
SUBFRAME_DURATION_MS = 1.0


class Numerology(enum.IntEnum):
    """Numerology index ``mu`` as defined in TS 38.211 Table 4.2-1."""

    MU_0 = 0  # 15 kHz SCS
    MU_1 = 1  # 30 kHz SCS
    MU_2 = 2  # 60 kHz SCS
    MU_3 = 3  # 120 kHz SCS
    MU_4 = 4  # 240 kHz SCS

    @property
    def scs_khz(self) -> int:
        """Sub-carrier spacing in kHz."""
        return 15 * (2 ** int(self))

    @classmethod
    def from_scs_khz(cls, scs_khz: int) -> "Numerology":
        """Return the numerology for a sub-carrier spacing in kHz."""
        mapping = {15: cls.MU_0, 30: cls.MU_1, 60: cls.MU_2, 120: cls.MU_3, 240: cls.MU_4}
        try:
            return mapping[scs_khz]
        except KeyError:
            raise ValueError(f"unsupported SCS {scs_khz} kHz; expected one of {sorted(mapping)}") from None


def slots_per_subframe(mu: Numerology | int) -> int:
    """Number of slots in a 1 ms subframe for numerology ``mu``."""
    return 2 ** int(mu)


def slots_per_frame(mu: Numerology | int) -> int:
    """Number of slots in a 10 ms radio frame for numerology ``mu``."""
    return SUBFRAMES_PER_FRAME * slots_per_subframe(mu)


def slots_per_second(mu: Numerology | int) -> int:
    """Number of slots per second for numerology ``mu``."""
    return 1000 * slots_per_subframe(mu)


def slot_duration_ms(mu: Numerology | int) -> float:
    """Slot duration in milliseconds (0.5 ms for the paper's 30 kHz SCS)."""
    return SUBFRAME_DURATION_MS / slots_per_subframe(mu)


def symbol_duration_s(mu: Numerology | int) -> float:
    """Average OFDM symbol duration in seconds.

    This is the ``T_s^mu = 1e-3 / (14 * 2**mu)`` term of the 3GPP TS 38.306
    maximum-throughput formula quoted in §3.2 of the paper.
    """
    return 1e-3 / (SYMBOLS_PER_SLOT * (2 ** int(mu)))


@dataclass(frozen=True)
class SlotClock:
    """A monotone slot counter bound to a numerology.

    The RAN simulator advances one slot at a time; the clock converts slot
    indices to wall-clock time and frame/slot coordinates.
    """

    mu: Numerology

    def time_ms(self, slot_index: int) -> float:
        """Wall-clock time in ms at the *start* of ``slot_index``."""
        if slot_index < 0:
            raise ValueError("slot_index must be non-negative")
        return slot_index * slot_duration_ms(self.mu)

    def frame_slot(self, slot_index: int) -> tuple[int, int]:
        """Return ``(frame_number, slot_in_frame)`` for a slot index."""
        if slot_index < 0:
            raise ValueError("slot_index must be non-negative")
        per_frame = slots_per_frame(self.mu)
        return divmod(slot_index, per_frame)

    def slot_at_time_ms(self, time_ms: float) -> int:
        """Index of the slot containing wall-clock time ``time_ms``."""
        if time_ms < 0:
            raise ValueError("time_ms must be non-negative")
        return int(time_ms / slot_duration_ms(self.mu))
