"""TDD frame-structure algebra (TS 38.213 slot-format configuration).

Mid-band NR channels are TDD: downlink and uplink share the frequency and
alternate in time following a repeating slot pattern such as ``DDDSU``
(Vodafone Germany, Deutsche Telekom) or ``DDDDDDDSUU`` (Vodafone Italy,
Orange France) — §4.3 of the paper shows these patterns, not the channel
bandwidth, drive the user-plane latency, and §4.2 shows they create the
DL/UL throughput asymmetry.

A pattern string uses one character per slot:

- ``D``: downlink-only slot (all 14 symbols DL),
- ``U``: uplink-only slot,
- ``S``: special slot, split into DL symbols, a guard period, and UL
  symbols (``SpecialSlotConfig``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.nr.numerology import SYMBOLS_PER_SLOT, Numerology, slot_duration_ms


class SlotType(enum.Enum):
    """Link direction of a TDD slot."""

    DL = "D"
    UL = "U"
    SPECIAL = "S"

    @classmethod
    def from_char(cls, char: str) -> "SlotType":
        try:
            return {"D": cls.DL, "U": cls.UL, "S": cls.SPECIAL}[char.upper()]
        except KeyError:
            raise ValueError(f"unknown slot character {char!r}; expected D, U, or S") from None


@dataclass(frozen=True)
class SpecialSlotConfig:
    """Symbol split of a special (``S``) slot.

    The common commercial configuration dedicates most symbols to DL with a
    short guard and a small UL tail; the default 6 DL : 4 guard : 4 UL
    mirrors widely reported mid-band deployments.
    """

    dl_symbols: int = 6
    guard_symbols: int = 4
    ul_symbols: int = 4

    def __post_init__(self) -> None:
        total = self.dl_symbols + self.guard_symbols + self.ul_symbols
        if total != SYMBOLS_PER_SLOT:
            raise ValueError(f"special slot symbols must sum to {SYMBOLS_PER_SLOT}, got {total}")
        if min(self.dl_symbols, self.guard_symbols, self.ul_symbols) < 0:
            raise ValueError("symbol counts must be non-negative")


@dataclass(frozen=True)
class TddPattern:
    """A repeating TDD slot pattern.

    Parameters
    ----------
    pattern:
        Slot string, e.g. ``"DDDSU"``.
    special:
        Symbol split used by every ``S`` slot in the pattern.
    """

    pattern: str
    special: SpecialSlotConfig = field(default_factory=SpecialSlotConfig)

    def __post_init__(self) -> None:
        if not self.pattern:
            raise ValueError("pattern must be non-empty")
        for char in self.pattern:
            SlotType.from_char(char)  # validates

    @classmethod
    def from_string(cls, pattern: str, special: SpecialSlotConfig | None = None) -> "TddPattern":
        """Build a pattern from its slot string."""
        return cls(pattern.upper(), special or SpecialSlotConfig())

    # ------------------------------------------------------------------ #
    # Structure
    # ------------------------------------------------------------------ #
    @property
    def period_slots(self) -> int:
        """Number of slots in one pattern period."""
        return len(self.pattern)

    def period_ms(self, mu: Numerology | int = Numerology.MU_1) -> float:
        """Pattern period in milliseconds for numerology ``mu``."""
        return self.period_slots * slot_duration_ms(mu)

    def slot_type(self, slot_index: int) -> SlotType:
        """Direction of (absolute) slot ``slot_index``."""
        return SlotType.from_char(self.pattern[slot_index % self.period_slots])

    @cached_property
    def slot_types(self) -> tuple[SlotType, ...]:
        """Direction of each slot within one period."""
        return tuple(SlotType.from_char(c) for c in self.pattern)

    def type_array(self, n_slots: int) -> np.ndarray:
        """Vector of slot-type codes (0=DL, 1=UL, 2=S) for ``n_slots`` slots.

        Used by the vectorized simulator to mask DL/UL capacity per slot.
        """
        codes = {SlotType.DL: 0, SlotType.UL: 1, SlotType.SPECIAL: 2}
        period = np.array([codes[t] for t in self.slot_types], dtype=np.int8)
        reps = -(-n_slots // self.period_slots)
        return np.tile(period, reps)[:n_slots]

    # ------------------------------------------------------------------ #
    # Symbol accounting
    # ------------------------------------------------------------------ #
    def dl_symbols_in_slot(self, slot_index: int) -> int:
        """DL symbols available in a given slot."""
        kind = self.slot_type(slot_index)
        if kind is SlotType.DL:
            return SYMBOLS_PER_SLOT
        if kind is SlotType.SPECIAL:
            return self.special.dl_symbols
        return 0

    def ul_symbols_in_slot(self, slot_index: int) -> int:
        """UL symbols available in a given slot."""
        kind = self.slot_type(slot_index)
        if kind is SlotType.UL:
            return SYMBOLS_PER_SLOT
        if kind is SlotType.SPECIAL:
            return self.special.ul_symbols
        return 0

    @cached_property
    def dl_symbol_fraction(self) -> float:
        """Fraction of all symbols in a period usable for DL."""
        total = self.period_slots * SYMBOLS_PER_SLOT
        dl = sum(self.dl_symbols_in_slot(i) for i in range(self.period_slots))
        return dl / total

    @cached_property
    def ul_symbol_fraction(self) -> float:
        """Fraction of all symbols in a period usable for UL."""
        total = self.period_slots * SYMBOLS_PER_SLOT
        ul = sum(self.ul_symbols_in_slot(i) for i in range(self.period_slots))
        return ul / total

    @cached_property
    def dl_slot_indices(self) -> tuple[int, ...]:
        """Indices (within a period) of slots carrying any DL symbols."""
        return tuple(i for i in range(self.period_slots) if self.dl_symbols_in_slot(i) > 0)

    @cached_property
    def ul_slot_indices(self) -> tuple[int, ...]:
        """Indices (within a period) of slots carrying any UL symbols."""
        return tuple(i for i in range(self.period_slots) if self.ul_symbols_in_slot(i) > 0)

    # ------------------------------------------------------------------ #
    # Alignment waits (latency building blocks, §4.3)
    # ------------------------------------------------------------------ #
    def next_slot_of(self, direction: SlotType, from_slot: int, *, full_only: bool = False) -> int:
        """Absolute index of the first slot at or after ``from_slot``
        carrying the given direction.

        With ``full_only`` special slots do not count (only pure D/U slots).
        """
        if direction is SlotType.SPECIAL:
            raise ValueError("direction must be DL or UL")
        for offset in range(self.period_slots + 1):
            idx = from_slot + offset
            kind = self.slot_type(idx)
            if kind is direction:
                return idx
            if not full_only and kind is SlotType.SPECIAL:
                symbols = self.special.dl_symbols if direction is SlotType.DL else self.special.ul_symbols
                if symbols > 0:
                    return idx
        raise ValueError(f"pattern {self.pattern!r} has no {direction.value} opportunity")

    def wait_slots(self, direction: SlotType, from_slot: int, *, full_only: bool = False) -> int:
        """Slots to wait (0 if ``from_slot`` itself qualifies)."""
        return self.next_slot_of(direction, from_slot, full_only=full_only) - from_slot

    def mean_wait_ms(
        self,
        direction: SlotType,
        mu: Numerology | int = Numerology.MU_1,
        *,
        full_only: bool = False,
    ) -> float:
        """Expected wait, in ms, from a uniformly random arrival instant to
        the *start* of the next slot carrying ``direction``.

        This is the alignment-delay term of the user-plane latency model:
        a packet arriving mid-slot first waits out the residual slot, then
        any non-matching slots.
        """
        slot_ms = slot_duration_ms(mu)
        total = 0.0
        for slot in range(self.period_slots):
            # Residual of the arrival slot (expected 0.5 slot), then whole
            # slots until the next opportunity starting from slot + 1.
            residual = 0.5 * slot_ms
            whole = self.wait_slots(direction, slot + 1, full_only=full_only) * slot_ms
            total += residual + whole
        return total / self.period_slots


#: Patterns observed in the paper (§4.3) and reasonable defaults for the rest.
WELL_KNOWN_PATTERNS: dict[str, TddPattern] = {
    "DDDSU": TddPattern.from_string("DDDSU"),
    "DDDSUU": TddPattern.from_string("DDDSUU"),
    "DDSU": TddPattern.from_string("DDSU"),
    "DDDDDDDSUU": TddPattern.from_string("DDDDDDDSUU"),
}
