"""Signal-quality relations: SINR, CQI, RSRP, RSRQ.

The measurement campaign used RSRP > -90 dBm and RSRQ > -12 dB as the
"good signal" scouting thresholds (§2 step 1), and Fig. 7 correlates RSRQ
along a walking route with MIMO-layer usage.  This module provides the
standard mappings between these quantities so the simulator can report
the same KPIs XCAL logs.

The SINR→CQI map uses the attenuated Shannon bound
``eff = alpha * log2(1 + SINR)`` (alpha models implementation loss) and
selects the largest CQI whose table efficiency is sustainable — the same
approach used by link-level abstraction in 3GPP system simulators.
"""

from __future__ import annotations

import numpy as np

from repro.nr.cqi import CQI_MAX, CqiTable

#: Implementation-loss factor of the attenuated Shannon bound.
DEFAULT_ALPHA = 0.65

#: Thermal noise density in dBm/Hz at 290 K.
NOISE_DENSITY_DBM_HZ = -174.0


def db_to_linear(db: float | np.ndarray) -> float | np.ndarray:
    """Convert dB to a linear power ratio."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0)


def linear_to_db(linear: float | np.ndarray) -> float | np.ndarray:
    """Convert a linear power ratio to dB."""
    linear = np.asarray(linear, dtype=float)
    with np.errstate(divide="ignore"):
        return 10.0 * np.log10(linear)


def shannon_efficiency(sinr_db: float | np.ndarray, alpha: float = DEFAULT_ALPHA) -> np.ndarray:
    """Attenuated Shannon spectral efficiency in bits/s/Hz."""
    sinr_lin = db_to_linear(np.asarray(sinr_db, dtype=float))
    return alpha * np.log2(1.0 + sinr_lin)


def sinr_to_cqi(
    sinr_db: float | np.ndarray,
    cqi_table: CqiTable,
    alpha: float = DEFAULT_ALPHA,
) -> np.ndarray:
    """Map SINR (dB) to CQI in ``[0, 15]`` (0 = out of range).

    Vectorized; scalar input yields a 0-d array (use ``int(...)``).
    """
    eff = shannon_efficiency(sinr_db, alpha)
    cqi = np.searchsorted(cqi_table.efficiencies, eff, side="right")
    return np.clip(cqi, 0, CQI_MAX)


def cqi_to_min_sinr_db(cqi: int, cqi_table: CqiTable, alpha: float = DEFAULT_ALPHA) -> float:
    """Minimum SINR (dB) at which ``cqi`` becomes sustainable (inverse map)."""
    if not 1 <= cqi <= CQI_MAX:
        raise ValueError(f"CQI {cqi} outside [1, {CQI_MAX}]")
    eff = cqi_table.efficiencies[cqi - 1]
    return float(linear_to_db(np.power(2.0, eff / alpha) - 1.0))


def noise_power_dbm(bandwidth_hz: float, noise_figure_db: float = 9.0) -> float:
    """Thermal noise power over a bandwidth, including the UE noise figure."""
    if bandwidth_hz <= 0:
        raise ValueError("bandwidth must be positive")
    return NOISE_DENSITY_DBM_HZ + 10.0 * np.log10(bandwidth_hz) + noise_figure_db


def rsrp_from_pathloss(
    tx_power_dbm: float,
    pathloss_db: float | np.ndarray,
    n_rb: int,
    antenna_gain_db: float = 8.0,
) -> float | np.ndarray:
    """Reference signal received power (per-RE) in dBm.

    The gNB splits its transmit power across ``12 * n_rb`` sub-carriers;
    RSRP is the received power of a single reference-signal RE.
    """
    if n_rb <= 0:
        raise ValueError("n_rb must be positive")
    per_re_tx = tx_power_dbm - 10.0 * np.log10(12.0 * n_rb)
    return per_re_tx + antenna_gain_db - np.asarray(pathloss_db, dtype=float)


def rsrq_from_sinr(
    sinr_db: float | np.ndarray,
    load: float = 1.0,
) -> float | np.ndarray:
    """RSRQ (dB) from SINR under a given neighbour-cell load.

    Using ``RSRQ = N_RB * RSRP / RSSI`` with a fully granular RSSI model:
    each RB carries 12 REs whose power is ``load * S + I + N`` where the
    serving-cell data activity factor is ``load``.  In linear terms::

        rsrq = 1 / (12 * (load + 1 / sinr))

    A fully loaded cell saturates at -10.79 dB for infinite SINR, matching
    the empirical "RSRQ better than -12 dB is good" rule the paper applies.
    """
    if not 0.0 < load <= 1.0:
        raise ValueError("load must lie in (0, 1]")
    sinr_lin = db_to_linear(np.asarray(sinr_db, dtype=float))
    rsrq_lin = 1.0 / (12.0 * (load + 1.0 / sinr_lin))
    return linear_to_db(rsrq_lin)


def sinr_from_rsrq(rsrq_db: float | np.ndarray, load: float = 1.0) -> float | np.ndarray:
    """Invert :func:`rsrq_from_sinr` (for calibration and tests)."""
    if not 0.0 < load <= 1.0:
        raise ValueError("load must lie in (0, 1]")
    rsrq_lin = db_to_linear(np.asarray(rsrq_db, dtype=float))
    denominator = 1.0 / (12.0 * rsrq_lin) - load
    if np.any(denominator <= 0):
        raise ValueError("RSRQ too high for the given load (no finite SINR)")
    return linear_to_db(1.0 / denominator)
