"""3GPP 5G NR substrate.

This package implements, from the 3GPP specifications, everything the
paper's measurement analysis relies on at the physical layer:

- band catalog and ARFCN <-> frequency conversion (:mod:`repro.nr.bands`),
- numerology, slot and symbol timing (:mod:`repro.nr.numerology`),
- maximum transmission bandwidth configuration ``N_RB`` tables
  (:mod:`repro.nr.grid`),
- TDD frame-structure algebra for patterns such as ``DDDSU`` and
  ``DDDDDDDSUU`` (:mod:`repro.nr.tdd`),
- MCS index tables for the 64QAM and 256QAM families and CQI tables
  (:mod:`repro.nr.mcs`, :mod:`repro.nr.cqi`),
- the TS 38.214 transport-block-size determination algorithm
  (:mod:`repro.nr.tbs`),
- DCI formats 1_0 / 1_1 (:mod:`repro.nr.dci`),
- HARQ processes and retransmission timing (:mod:`repro.nr.harq`),
- RSRP / RSRQ / SINR signal-quality relations (:mod:`repro.nr.signal`).
"""

from repro.nr.bands import Band, BAND_CATALOG, arfcn_to_frequency_mhz, frequency_mhz_to_arfcn
from repro.nr.numerology import Numerology, slot_duration_ms, slots_per_second, symbol_duration_s
from repro.nr.grid import max_rb, transmission_bandwidth_mhz, re_per_slot
from repro.nr.tdd import TddPattern, SlotType
from repro.nr.mcs import McsTable, McsEntry, Modulation, MCS_TABLE_64QAM, MCS_TABLE_256QAM
from repro.nr.cqi import CqiTable, CQI_TABLE_1, CQI_TABLE_2, CqiMcsMapper
from repro.nr.tbs import transport_block_size
from repro.nr.dci import DciFormat, DownlinkGrant
from repro.nr.harq import HarqProcess, HarqEntity
from repro.nr.signal import sinr_to_cqi, rsrq_from_sinr, rsrp_from_pathloss

__all__ = [
    "Band",
    "BAND_CATALOG",
    "arfcn_to_frequency_mhz",
    "frequency_mhz_to_arfcn",
    "Numerology",
    "slot_duration_ms",
    "slots_per_second",
    "symbol_duration_s",
    "max_rb",
    "transmission_bandwidth_mhz",
    "re_per_slot",
    "TddPattern",
    "SlotType",
    "McsTable",
    "McsEntry",
    "Modulation",
    "MCS_TABLE_64QAM",
    "MCS_TABLE_256QAM",
    "CqiTable",
    "CQI_TABLE_1",
    "CQI_TABLE_2",
    "CqiMcsMapper",
    "transport_block_size",
    "DciFormat",
    "DownlinkGrant",
    "HarqProcess",
    "HarqEntity",
    "sinr_to_cqi",
    "rsrq_from_sinr",
    "rsrp_from_pathloss",
]
