"""CQI tables and vendor CQI-to-MCS mapping (TS 38.214 §5.2.2.1).

The UE periodically feeds back a CQI (channel quality indicator) in
``[1, 15]``; 15 is the best channel.  3GPP standardizes the CQI tables but
deliberately leaves the CQI→MCS mapping to vendor implementation — the
paper (§3.1) calls this out as a source of cross-operator performance
differences, and our ablation bench quantifies it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.nr.mcs import McsTable, Modulation

CQI_MIN = 1
CQI_MAX = 15
CQI_OUT_OF_RANGE = 0  # CQI 0 signals "out of range" in 3GPP


@dataclass(frozen=True)
class CqiEntry:
    """One row of a CQI table."""

    cqi: int
    modulation: Modulation
    code_rate_x1024: float

    @property
    def spectral_efficiency(self) -> float:
        return self.modulation.bits_per_symbol * self.code_rate_x1024 / 1024.0


class CqiTable:
    """A CQI table (index 1..15); index 0 means out-of-range."""

    def __init__(self, name: str, entries: list[CqiEntry]):
        if len(entries) != CQI_MAX:
            raise ValueError(f"a CQI table has {CQI_MAX} rows, got {len(entries)}")
        self.name = name
        self.entries = tuple(entries)

    def __getitem__(self, cqi: int) -> CqiEntry:
        if not CQI_MIN <= cqi <= CQI_MAX:
            raise IndexError(f"CQI {cqi} outside [{CQI_MIN}, {CQI_MAX}]")
        return self.entries[cqi - 1]

    def __iter__(self):
        return iter(self.entries)

    @cached_property
    def efficiencies(self) -> np.ndarray:
        """Spectral efficiency per CQI (index 0 of the array is CQI 1)."""
        return np.array([e.spectral_efficiency for e in self.entries])

    def cqi_for_efficiency(self, efficiency: float) -> int:
        """Largest CQI whose efficiency does not exceed ``efficiency``.

        Returns :data:`CQI_OUT_OF_RANGE` when even CQI 1 is unsustainable.
        """
        idx = int(np.searchsorted(self.efficiencies, efficiency, side="right"))
        return idx  # 0 -> out of range, else CQI == idx


def _build(name: str, rows: list[tuple[int, float]]) -> CqiTable:
    entries = [
        CqiEntry(cqi=i + 1, modulation=Modulation.from_order(q_m), code_rate_x1024=rate)
        for i, (q_m, rate) in enumerate(rows)
    ]
    return CqiTable(name, entries)


#: TS 38.214 Table 5.2.2.1-2 — up to 64QAM.
CQI_TABLE_1 = _build(
    "cqi-table-1",
    [
        (2, 78), (2, 120), (2, 193), (2, 308), (2, 449), (2, 602),
        (4, 378), (4, 490), (4, 616),
        (6, 466), (6, 567), (6, 666), (6, 772), (6, 873), (6, 948),
    ],
)

#: TS 38.214 Table 5.2.2.1-3 — up to 256QAM.
CQI_TABLE_2 = _build(
    "cqi-table-2",
    [
        (2, 78), (2, 193), (2, 449),
        (4, 378), (4, 490), (4, 616),
        (6, 466), (6, 567), (6, 666), (6, 772), (6, 873),
        (8, 711), (8, 797), (8, 885), (8, 948),
    ],
)


def cqi_table_for(max_modulation: Modulation) -> CqiTable:
    """CQI table an operator configures for a given modulation ceiling."""
    return CQI_TABLE_2 if max_modulation is Modulation.QAM256 else CQI_TABLE_1


class MappingPolicy(enum.Enum):
    """Vendor CQI→MCS aggressiveness (3GPP leaves this open)."""

    CONSERVATIVE = "conservative"  # one MCS notch below the efficiency match
    MATCHED = "matched"            # highest MCS at or below the CQI efficiency
    AGGRESSIVE = "aggressive"      # one MCS notch above the efficiency match


class CqiMcsMapper:
    """Maps reported CQI to a transmit MCS index, vendor-style.

    The mapping matches spectral efficiencies: for each CQI we find the
    highest MCS whose efficiency does not exceed the CQI's, then shift by
    the policy offset.  An additional (signed) OLLA offset from the outer
    loop (see :mod:`repro.ran.amc`) is applied at lookup time.
    """

    def __init__(
        self,
        cqi_table: CqiTable,
        mcs_table: McsTable,
        policy: MappingPolicy = MappingPolicy.MATCHED,
    ):
        self.cqi_table = cqi_table
        self.mcs_table = mcs_table
        self.policy = policy
        offset = {MappingPolicy.CONSERVATIVE: -1, MappingPolicy.MATCHED: 0, MappingPolicy.AGGRESSIVE: 1}[policy]
        base = [
            mcs_table.highest_index_below(entry.spectral_efficiency) + offset
            for entry in cqi_table
        ]
        self._lookup = np.clip(np.array(base, dtype=np.int64), 0, mcs_table.max_index)

    def mcs_for_cqi(self, cqi: int, olla_offset: int = 0) -> int:
        """MCS index for a CQI report (CQI 0 degrades to MCS 0)."""
        if cqi <= CQI_OUT_OF_RANGE:
            return 0
        if cqi > CQI_MAX:
            raise ValueError(f"CQI {cqi} outside [0, {CQI_MAX}]")
        idx = int(self._lookup[cqi - 1]) + olla_offset
        return int(np.clip(idx, 0, self.mcs_table.max_index))

    def mcs_for_cqi_array(self, cqi: np.ndarray, olla_offset: np.ndarray | int = 0) -> np.ndarray:
        """Vectorized CQI→MCS lookup for the slot-level simulator."""
        cqi = np.asarray(cqi)
        safe = np.clip(cqi, CQI_MIN, CQI_MAX) - 1
        mcs = self._lookup[safe] + olla_offset
        mcs = np.clip(mcs, 0, self.mcs_table.max_index)
        return np.where(cqi <= CQI_OUT_OF_RANGE, 0, mcs)
