"""Transport block size (TBS) determination — TS 38.214 §5.1.3.2.

Given the number of allocated PRBs, the MCS (modulation order + code
rate), the number of MIMO layers and the usable symbols in the slot, this
module computes the exact number of information bits a transport block
carries.  The paper (§3.1) uses exactly this procedure to connect the RB
allocation and MCS index observed in DCIs to the throughput the UE sees:
"given the same number of RBs allocated to the UE, a high MCS index
produces a larger TB size, translating into high throughput."

The algorithm follows the specification step by step:

1. ``N'_RE = 12 * symbols - dmrs_re - overhead`` per PRB, capped at 156;
2. ``N_RE = min(156, N'_RE) * n_prb``;
3. ``N_info = N_RE * R * Q_m * v``;
4. small blocks (``N_info <= 3824``) quantize and round *up* into
   Table 5.1.3.2-1; large blocks quantize, segment into code blocks and
   round to a byte-aligned size.
"""

from __future__ import annotations

import math

import numpy as np

from repro.nr.mcs import McsEntry

#: TS 38.214 Table 5.1.3.2-1 — TBS values for N_info <= 3824 bits.
TBS_TABLE_5_1_3_2_1 = (
    24, 32, 40, 48, 56, 64, 72, 80, 88, 96, 104, 112, 120, 128, 136, 144,
    152, 160, 168, 176, 184, 192, 208, 224, 240, 256, 272, 288, 304, 320,
    336, 352, 368, 384, 408, 432, 456, 480, 504, 528, 552, 576, 608, 640,
    672, 704, 736, 768, 808, 848, 888, 928, 984, 1032, 1064, 1128, 1160,
    1192, 1224, 1256, 1288, 1320, 1352, 1416, 1480, 1544, 1608, 1672, 1736,
    1800, 1864, 1928, 2024, 2088, 2152, 2216, 2280, 2408, 2472, 2536, 2600,
    2664, 2728, 2792, 2856, 2976, 3104, 3240, 3368, 3496, 3624, 3752, 3824,
)

_TBS_ARRAY = np.array(TBS_TABLE_5_1_3_2_1)

#: Cap on usable REs per PRB (spec constant).
MAX_RE_PER_PRB = 156

#: Default DMRS REs per PRB per slot (one front-loaded DMRS symbol, type 1).
DEFAULT_DMRS_RE_PER_PRB = 12


def usable_re_per_prb(
    symbols: int = 14,
    dmrs_re_per_prb: int = DEFAULT_DMRS_RE_PER_PRB,
    overhead_re_per_prb: int = 0,
) -> int:
    """REs per PRB available for data after DMRS/overhead, capped at 156."""
    if symbols < 1 or symbols > 14:
        raise ValueError("symbols must lie in [1, 14]")
    n_re_prime = 12 * symbols - dmrs_re_per_prb - overhead_re_per_prb
    if n_re_prime < 0:
        raise ValueError("overhead exceeds the slot's resource elements")
    return min(MAX_RE_PER_PRB, n_re_prime)


def _quantized_small(n_info: float) -> int:
    """Steps 3-4 quantization for N_info <= 3824, looked up in the table."""
    n = max(3, int(math.floor(math.log2(n_info))) - 6)
    n_info_prime = max(24, (1 << n) * (int(n_info) >> n))
    # Smallest TBS in the table that is >= N'_info.
    idx = int(np.searchsorted(_TBS_ARRAY, n_info_prime, side="left"))
    return int(_TBS_ARRAY[min(idx, len(_TBS_ARRAY) - 1)])


def _quantized_large(n_info: float, code_rate: float) -> int:
    """Step 4 for N_info > 3824: segmentation into code blocks."""
    n = int(math.floor(math.log2(n_info - 24))) - 5
    n_info_prime = max(3840, (1 << n) * round((n_info - 24) / (1 << n)))
    if code_rate <= 0.25:
        c = math.ceil((n_info_prime + 24) / 3816)
        return 8 * c * math.ceil((n_info_prime + 24) / (8 * c)) - 24
    if n_info_prime > 8424:
        c = math.ceil((n_info_prime + 24) / 8424)
        return 8 * c * math.ceil((n_info_prime + 24) / (8 * c)) - 24
    return 8 * math.ceil((n_info_prime + 24) / 8) - 24


def transport_block_size(
    n_prb: int,
    mcs: McsEntry,
    layers: int,
    symbols: int = 14,
    dmrs_re_per_prb: int = DEFAULT_DMRS_RE_PER_PRB,
    overhead_re_per_prb: int = 0,
) -> int:
    """Transport block size in bits (TS 38.214 §5.1.3.2).

    Parameters
    ----------
    n_prb:
        Number of allocated physical resource blocks.
    mcs:
        MCS table entry (modulation order and code rate).
    layers:
        Number of MIMO layers (1..4 for the deployments studied).
    symbols:
        Usable OFDM symbols in the slot (14 for a full DL slot, fewer in a
        special slot).
    dmrs_re_per_prb, overhead_re_per_prb:
        Reference-signal and higher-layer overhead REs per PRB.
    """
    if n_prb < 0:
        raise ValueError("n_prb must be non-negative")
    if not 1 <= layers <= 8:
        raise ValueError("layers must lie in [1, 8]")
    if n_prb == 0 or symbols == 0:
        return 0
    n_re = usable_re_per_prb(symbols, dmrs_re_per_prb, overhead_re_per_prb) * n_prb
    n_info = n_re * mcs.code_rate * mcs.modulation.bits_per_symbol * layers
    if n_info <= 0:
        return 0
    if n_info <= 3824:
        return _quantized_small(n_info)
    return _quantized_large(n_info, mcs.code_rate)


def tbs_lookup_matrix(
    mcs_table,
    n_prb: int,
    max_layers: int = 4,
    symbols: int = 14,
    dmrs_re_per_prb: int = DEFAULT_DMRS_RE_PER_PRB,
) -> np.ndarray:
    """Precomputed TBS (bits) indexed ``[mcs_index, layers-1]``.

    The slot-level simulator runs hundreds of thousands of slots; looking
    TBS up from this matrix keeps the hot loop vectorized.
    """
    matrix = np.zeros((len(mcs_table), max_layers), dtype=np.int64)
    for entry in mcs_table:
        for layers in range(1, max_layers + 1):
            matrix[entry.index, layers - 1] = transport_block_size(
                n_prb, entry, layers, symbols=symbols, dmrs_re_per_prb=dmrs_re_per_prb
            )
    return matrix


# ---------------------------------------------------------------------- #
# Process-wide TBS matrix cache
# ---------------------------------------------------------------------- #
# Campaigns simulate hundreds of sessions per process, and every session
# rebuilds the same handful of (table, quantized grant, symbols) matrices.
# The cache is keyed on table *content*, so two tables that happen to be
# distinct objects with identical entries share one matrix.

_MATRIX_CACHE: dict[tuple, np.ndarray] = {}
_matrix_hits = 0
_matrix_misses = 0


def _table_signature(mcs_table) -> tuple:
    return tuple(
        (entry.index, entry.modulation.bits_per_symbol, entry.code_rate)
        for entry in mcs_table
    )


def cached_tbs_lookup_matrix(
    mcs_table,
    n_prb: int,
    max_layers: int = 4,
    symbols: int = 14,
    dmrs_re_per_prb: int = DEFAULT_DMRS_RE_PER_PRB,
) -> np.ndarray:
    """Process-wide memoized :func:`tbs_lookup_matrix`.

    The returned matrix is shared across callers and marked read-only;
    copy it before mutating.  Hit/miss counters are exposed through
    :func:`tbs_matrix_cache_stats` (``repro cache stats`` prints them).
    """
    global _matrix_hits, _matrix_misses
    key = (_table_signature(mcs_table), n_prb, max_layers, symbols, dmrs_re_per_prb)
    matrix = _MATRIX_CACHE.get(key)
    if matrix is None:
        _matrix_misses += 1
        matrix = tbs_lookup_matrix(mcs_table, n_prb, max_layers, symbols=symbols,
                                   dmrs_re_per_prb=dmrs_re_per_prb)
        matrix.setflags(write=False)
        _MATRIX_CACHE[key] = matrix
    else:
        _matrix_hits += 1
    return matrix


def tbs_matrix_cache_stats() -> dict[str, int | float]:
    """``{entries, hits, misses, hit_rate}`` of the process-wide cache."""
    total = _matrix_hits + _matrix_misses
    return {
        "entries": len(_MATRIX_CACHE),
        "hits": _matrix_hits,
        "misses": _matrix_misses,
        "hit_rate": (_matrix_hits / total) if total else 0.0,
    }


def clear_tbs_matrix_cache() -> None:
    """Drop all cached matrices and reset the counters (tests, benches)."""
    global _matrix_hits, _matrix_misses
    _MATRIX_CACHE.clear()
    _matrix_hits = 0
    _matrix_misses = 0
