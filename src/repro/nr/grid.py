"""Maximum transmission bandwidth configuration (TS 38.101-1/2 Table 5.3.2-1).

A channel's bandwidth together with its sub-carrier spacing determines the
maximum number of resource blocks ``N_RB`` the gNB may allocate — row 7 of
the paper's Tables 2 and 3 (e.g. 273 RBs for a 100 MHz / 30 kHz channel and
245 RBs for 90 MHz).  One resource block spans 12 sub-carriers; a slot is 14
OFDM symbols, so one RB-slot holds ``12 * 14 = 168`` resource elements.
"""

from __future__ import annotations

from repro.nr.numerology import SYMBOLS_PER_SLOT, Numerology

SUBCARRIERS_PER_RB = 12

#: FR1 N_RB per (SCS kHz, channel bandwidth MHz) — TS 38.101-1 Table 5.3.2-1.
_FR1_NRB: dict[int, dict[int, int]] = {
    15: {5: 25, 10: 52, 15: 79, 20: 106, 25: 133, 30: 160, 40: 216, 50: 270},
    30: {
        5: 11, 10: 24, 15: 38, 20: 51, 25: 65, 30: 78, 40: 106, 50: 133,
        60: 162, 70: 189, 80: 217, 90: 245, 100: 273,
    },
    60: {
        10: 11, 15: 18, 20: 24, 25: 31, 30: 38, 40: 51, 50: 65,
        60: 79, 70: 93, 80: 107, 90: 121, 100: 135,
    },
}

#: FR2 N_RB per (SCS kHz, channel bandwidth MHz) — TS 38.101-2 Table 5.3.2-1.
_FR2_NRB: dict[int, dict[int, int]] = {
    60: {50: 66, 100: 132, 200: 264},
    120: {50: 32, 100: 66, 200: 132, 400: 264},
}


def max_rb(bandwidth_mhz: int, scs_khz: int, fr2: bool = False) -> int:
    """Maximum transmission bandwidth ``N_RB`` for a channel.

    Parameters
    ----------
    bandwidth_mhz:
        Channel bandwidth in MHz (an entry of Table 5.3.2-1).
    scs_khz:
        Sub-carrier spacing in kHz.
    fr2:
        Use the FR2 (mmWave) table instead of FR1.

    Raises
    ------
    ValueError
        If the (bandwidth, SCS) combination is not defined by 3GPP.
    """
    table = _FR2_NRB if fr2 else _FR1_NRB
    by_scs = table.get(scs_khz)
    if by_scs is None:
        fr_name = "FR2" if fr2 else "FR1"
        raise ValueError(f"SCS {scs_khz} kHz not defined for {fr_name}")
    nrb = by_scs.get(bandwidth_mhz)
    if nrb is None:
        raise ValueError(
            f"bandwidth {bandwidth_mhz} MHz not defined at SCS {scs_khz} kHz; "
            f"valid: {sorted(by_scs)}"
        )
    return nrb


def transmission_bandwidth_mhz(n_rb: int, scs_khz: int) -> float:
    """Occupied bandwidth of ``n_rb`` resource blocks in MHz.

    This excludes the guard bands at the channel edges, which is why it is
    always strictly smaller than the nominal channel bandwidth
    (cf. Fig. 20 in the paper's appendix).
    """
    if n_rb <= 0:
        raise ValueError("n_rb must be positive")
    return n_rb * SUBCARRIERS_PER_RB * scs_khz * 1e-3


def guard_band_mhz(bandwidth_mhz: int, scs_khz: int, fr2: bool = False) -> float:
    """Total guard band (both edges) of a configured channel in MHz."""
    n_rb = max_rb(bandwidth_mhz, scs_khz, fr2=fr2)
    return bandwidth_mhz - transmission_bandwidth_mhz(n_rb, scs_khz)


def re_per_slot(n_rb: int, symbols: int = SYMBOLS_PER_SLOT) -> int:
    """Resource elements carried by ``n_rb`` RBs over ``symbols`` symbols."""
    if n_rb < 0:
        raise ValueError("n_rb must be non-negative")
    if not 0 <= symbols <= SYMBOLS_PER_SLOT:
        raise ValueError(f"symbols must lie in [0, {SYMBOLS_PER_SLOT}]")
    return n_rb * SUBCARRIERS_PER_RB * symbols


def spectral_efficiency_ceiling(scs_khz: int, bandwidth_mhz: int, fr2: bool = False) -> float:
    """Fraction of the nominal channel usable for data (RB occupancy)."""
    return transmission_bandwidth_mhz(max_rb(bandwidth_mhz, scs_khz, fr2=fr2), scs_khz) / bandwidth_mhz


def valid_bandwidths_mhz(scs_khz: int, fr2: bool = False) -> list[int]:
    """Channel bandwidths defined by 3GPP for a given SCS."""
    table = _FR2_NRB if fr2 else _FR1_NRB
    by_scs = table.get(scs_khz)
    if by_scs is None:
        return []
    return sorted(by_scs)
