"""NR operating bands and ARFCN arithmetic (TS 38.101-1/2, TS 38.104).

The catalog covers every band that appears in the paper: the European
workhorse n78, its superset n77 (C-band, used by AT&T and Verizon),
T-Mobile's n41 (2.5 GHz TDD) and n25 (1.9 GHz FDD), plus the FR2 mmWave
bands n260/n261 used for the §7 comparison.

NR-ARFCN (Absolute Radio Frequency Channel Number) maps channel numbers
to RF frequencies through a piecewise-linear global frequency raster
(TS 38.104 Table 5.4.2.1-1):

    0      <= N <  600000 : F = 0        + 5   kHz * N
    600000 <= N < 2016667 : F = 3000 MHz + 15  kHz * (N - 600000)
    2016667<= N < 3279166 : F = 24250.08 MHz + 60 kHz * (N - 2016667)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Duplexing(enum.Enum):
    """Duplexing mode of an NR band."""

    TDD = "TDD"
    FDD = "FDD"


class FrequencyRange(enum.Enum):
    """3GPP frequency range: FR1 (sub-6 GHz) or FR2 (mmWave)."""

    FR1 = "FR1"
    FR2 = "FR2"


@dataclass(frozen=True)
class Band:
    """An NR operating band.

    Attributes
    ----------
    name:
        3GPP band designator, e.g. ``"n78"``.
    f_low_mhz, f_high_mhz:
        Downlink band edges in MHz.
    duplexing:
        TDD or FDD.
    fr:
        Frequency range (FR1 or FR2).
    ul_low_mhz, ul_high_mhz:
        Uplink band edges; equal to the DL edges for TDD bands.
    """

    name: str
    f_low_mhz: float
    f_high_mhz: float
    duplexing: Duplexing
    fr: FrequencyRange
    ul_low_mhz: float | None = None
    ul_high_mhz: float | None = None

    def __post_init__(self) -> None:
        if self.f_high_mhz <= self.f_low_mhz:
            raise ValueError(f"band {self.name}: f_high must exceed f_low")
        if self.duplexing is Duplexing.FDD and self.ul_low_mhz is None:
            raise ValueError(f"band {self.name}: FDD bands need uplink edges")

    @property
    def width_mhz(self) -> float:
        """Total downlink band width in MHz."""
        return self.f_high_mhz - self.f_low_mhz

    @property
    def center_mhz(self) -> float:
        """Band center frequency in MHz."""
        return (self.f_low_mhz + self.f_high_mhz) / 2.0

    def contains(self, frequency_mhz: float) -> bool:
        """True if ``frequency_mhz`` lies inside the downlink band."""
        return self.f_low_mhz <= frequency_mhz <= self.f_high_mhz

    @property
    def is_mid_band(self) -> bool:
        """True if the band lies in the 1-6 GHz mid-band range (§1)."""
        return 1000.0 <= self.f_low_mhz and self.f_high_mhz <= 6000.0


#: Bands used in the paper (plus n1 as an LTE-anchor stand-in for NSA UL).
BAND_CATALOG: dict[str, Band] = {
    "n25": Band("n25", 1930.0, 1995.0, Duplexing.FDD, FrequencyRange.FR1, ul_low_mhz=1850.0, ul_high_mhz=1915.0),
    "n41": Band("n41", 2496.0, 2690.0, Duplexing.TDD, FrequencyRange.FR1),
    "n77": Band("n77", 3300.0, 4200.0, Duplexing.TDD, FrequencyRange.FR1),
    "n78": Band("n78", 3300.0, 3800.0, Duplexing.TDD, FrequencyRange.FR1),
    "n260": Band("n260", 37000.0, 40000.0, Duplexing.TDD, FrequencyRange.FR2),
    "n261": Band("n261", 27500.0, 28350.0, Duplexing.TDD, FrequencyRange.FR2),
    # 4G LTE band 1 re-used as the NSA anchor carrier abstraction.
    "b1": Band("b1", 2110.0, 2170.0, Duplexing.FDD, FrequencyRange.FR1, ul_low_mhz=1920.0, ul_high_mhz=1980.0),
}

# Global frequency raster breakpoints (TS 38.104 Table 5.4.2.1-1).
_RASTER = (
    # (n_low, n_high, f_offset_mhz, delta_khz, n_offset)
    (0, 600000, 0.0, 5, 0),
    (600000, 2016667, 3000.0, 15, 600000),
    (2016667, 3279166, 24250.08, 60, 2016667),
)


def arfcn_to_frequency_mhz(arfcn: int) -> float:
    """Convert an NR-ARFCN to its RF reference frequency in MHz."""
    for n_low, n_high, f_offset, delta_khz, n_offset in _RASTER:
        if n_low <= arfcn < n_high:
            return f_offset + delta_khz * 1e-3 * (arfcn - n_offset)
    raise ValueError(f"ARFCN {arfcn} outside the global raster [0, 3279166)")


def frequency_mhz_to_arfcn(frequency_mhz: float) -> int:
    """Convert an RF frequency in MHz to the nearest NR-ARFCN."""
    if frequency_mhz < 0:
        raise ValueError("frequency must be non-negative")
    if frequency_mhz < 3000.0:
        return round(frequency_mhz * 1e3 / 5)
    if frequency_mhz < 24250.08:
        return 600000 + round((frequency_mhz - 3000.0) * 1e3 / 15)
    arfcn = 2016667 + round((frequency_mhz - 24250.08) * 1e3 / 60)
    if arfcn >= 3279166:
        raise ValueError(f"frequency {frequency_mhz} MHz outside the global raster")
    return arfcn


def bands_containing(frequency_mhz: float) -> list[Band]:
    """All catalog bands whose DL range contains ``frequency_mhz``."""
    return [band for band in BAND_CATALOG.values() if band.contains(frequency_mhz)]
