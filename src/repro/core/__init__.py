"""Analysis core — the paper's measurement-analysis pipeline.

- :mod:`repro.core.variability` — the scaled variability metric V(t) of
  §5 eq. (1) and multi-time-scale profiles (Fig. 12, Fig. 18),
- :mod:`repro.core.timeseries` — KPI series container and resampling,
- :mod:`repro.core.stats` — CDFs, summary statistics, bootstrap CIs,
- :mod:`repro.core.throughput` — the 3GPP TS 38.306 maximum-throughput
  formula of §3.2,
- :mod:`repro.core.latency` — the PHY user-plane latency decomposition
  of §4.3 (TDD alignment + HARQ),
- :mod:`repro.core.qoe` — video QoE metrics (§6),
- :mod:`repro.core.runner` — the parallel session-execution engine with
  hierarchical (SeedSequence-derived) per-session seeds.
"""

from repro.core.variability import scaled_variability, variability_profile, joint_variability
from repro.core.timeseries import KpiSeries
from repro.core.stats import empirical_cdf, summarize, bootstrap_mean_ci
from repro.core.throughput import max_throughput_mbps, CarrierSpec, OVERHEAD_FR1_DL, OVERHEAD_FR1_UL
from repro.core.latency import UserPlaneLatencyModel, LatencyBreakdown
from repro.core.qoe import QoeMetrics, normalized_bitrate, stall_percentage
from repro.core.e2e import E2eLatencyModel, ServerPlacement, placement_sweep
from repro.core.plotting import bar_chart, cdf_plot, line_plot, sparkline
from repro.core.prediction import ThroughputPredictor, extract_features
from repro.core.runner import (
    CampaignExecutor,
    SessionTask,
    derive_seed,
    derive_seeds,
    dispatch_chunksize,
    resolve_jobs,
    run_tasks,
)

__all__ = [
    "scaled_variability",
    "variability_profile",
    "joint_variability",
    "KpiSeries",
    "empirical_cdf",
    "summarize",
    "bootstrap_mean_ci",
    "max_throughput_mbps",
    "CarrierSpec",
    "OVERHEAD_FR1_DL",
    "OVERHEAD_FR1_UL",
    "UserPlaneLatencyModel",
    "LatencyBreakdown",
    "QoeMetrics",
    "normalized_bitrate",
    "stall_percentage",
    "E2eLatencyModel",
    "ServerPlacement",
    "placement_sweep",
    "bar_chart",
    "cdf_plot",
    "line_plot",
    "sparkline",
    "ThroughputPredictor",
    "extract_features",
    "CampaignExecutor",
    "SessionTask",
    "derive_seed",
    "derive_seeds",
    "dispatch_chunksize",
    "resolve_jobs",
    "run_tasks",
]
