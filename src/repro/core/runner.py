"""Process-parallel session execution with hierarchical seed derivation.

The campaign and experiment layers replay many independent measurement
sessions.  This module gives them one execution engine:

1. **Manifest expansion** — a campaign or multi-session experiment is
   flattened into a list of :class:`SessionTask` descriptors.  Each task
   is a picklable ``(fn, kwargs)`` pair that is fully self-contained:
   everything the session needs, including its RNG seed, travels inside
   the descriptor.
2. **Seed derivation** — :func:`derive_seed` maps a root seed plus a
   stable spawn key onto an independent child seed through
   ``numpy.random.SeedSequence``.  Children are statistically
   independent streams, and a child depends only on ``(root, key)`` —
   never on how many siblings exist or in which order they run.  That
   is what makes per-session traces reproducible in isolation.
3. **Dispatch** — :func:`run_tasks` executes the manifest serially
   (``jobs=1``, the default) or on a ``ProcessPoolExecutor``
   (``jobs=N`` or ``jobs="auto"``) with adaptive chunking.  Results
   come back in manifest order, so outputs are bit-identical for every
   worker count.
4. **Memoization and store routing** — ``run_tasks(..., store=...)``
   consults a :class:`repro.store.TraceStore` first: hits are served
   straight from disk (the process pool is never started when
   everything hits), misses are executed.  On a parallel run each
   *worker* serializes its result into the store itself and returns
   only ``(key, bytes written)`` over the pipe; the parent materializes
   results from disk in manifest order.  Large trace arrays therefore
   never cross a process boundary — the pipe carries kilobytes of keys
   instead of megabytes of pickles.  ``transport="pipe"`` forces the
   legacy pickle-the-result path (the pre-store-routing behaviour,
   kept for benchmarks and cross-checks); results are byte-identical
   either way.
5. **Pool reuse** — :class:`CampaignExecutor` keeps one warm process
   pool alive across many ``run_tasks`` calls (a whole ``repro
   campaign`` / multi-experiment ``repro run``), with a worker
   initializer that opens the per-worker store handle once and
   pre-warms the TBS lookup-matrix cache.
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "CampaignExecutor",
    "SessionTask",
    "derive_seed",
    "derive_seeds",
    "dispatch_chunksize",
    "prewarm_worker_caches",
    "resolve_jobs",
    "run_tasks",
]

#: Cap on the number of tasks batched into one worker round-trip.  Keeps
#: chunks small enough that a warm pool load-balances many-small-task
#: manifests while still amortizing the per-message IPC cost.
_MAX_CHUNK = 32


def _key_part(part: int | str) -> int:
    """Normalize one spawn-key component to a stable non-negative int.

    Strings hash through CRC-32 so a key like an operator name yields
    the same child seed no matter which other operators are present.
    """
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8"))
    part = int(part)
    if part < 0:
        raise ValueError("spawn-key components must be non-negative")
    return part


def derive_seed(root_seed: int, *spawn_key: int | str) -> int:
    """Derive an independent child seed from ``root_seed``.

    The child is ``SeedSequence(root_seed, spawn_key=...)`` collapsed to
    a single integer, so it can be recorded in trace metadata and fed
    back to ``numpy.random.default_rng`` to regenerate the session.
    """
    key = tuple(_key_part(p) for p in spawn_key)
    sequence = np.random.SeedSequence(root_seed, spawn_key=key)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(root_seed: int, n: int, *prefix: int | str) -> list[int]:
    """Child seeds for sessions ``0..n-1`` under an optional key prefix."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [derive_seed(root_seed, *prefix, index) for index in range(n)]


@dataclass(frozen=True)
class SessionTask:
    """One entry of a session manifest.

    ``fn`` must be a module-level callable and ``kwargs`` picklable, so
    the task can cross a process boundary.  When ``seed`` is set it is
    passed to ``fn`` as the ``seed`` keyword argument.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def execute(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(**kwargs)

    def with_seed(self, root_seed: int, *key: int | str) -> "SessionTask":
        """A copy of this task carrying ``derive_seed(root_seed, *key)``.

        Manifest builders repeat the derive-then-replace dance for every
        session; this keeps the derivation next to the task so label and
        kwargs cannot drift from the seed key.
        """
        return dataclasses.replace(self, seed=derive_seed(root_seed, *key))


def _execute(task: SessionTask) -> Any:
    return task.execute()


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value to a worker count (>= 1).

    Accepts an int, an int-valued string, ``"auto"`` (all cores the
    process may use) or ``None`` (same as 1).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # platforms without sched_getaffinity
                return max(1, os.cpu_count() or 1)
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"jobs must be an integer or 'auto', got {jobs!r}") from None
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return int(jobs)


def dispatch_chunksize(n_tasks: int, workers: int) -> int:
    """Adaptive chunk size for dispatching ``n_tasks`` to ``workers``.

    Aims for ~4 chunks per worker so stragglers rebalance, capped so a
    many-small-task manifest stops paying one IPC round-trip per task
    without serializing the whole manifest into one message.
    """
    if workers <= 1 or n_tasks <= workers:
        return 1
    return max(1, min(_MAX_CHUNK, n_tasks // (workers * 4)))


# ---------------------------------------------------------------------- #
# Worker-side state
# ---------------------------------------------------------------------- #
# One store handle per worker process, opened once by the pool
# initializer instead of per task; ``None`` in pipe-transport pools.

_WORKER_STORE: Any = None


def prewarm_worker_caches() -> None:
    """Pre-build the TBS lookup matrices campaign sessions need.

    Every session starts by building the lookup matrix for its carrier's
    full grant; warming them in the pool initializer moves that cost out
    of the first task of every worker.  Best-effort: a profile that
    fails to warm simply pays the build on first use.
    """
    try:
        from repro.nr.tdd import SlotType
        from repro.operators.profiles import ALL_PROFILES
        from repro.ran.simulator import prewarm_tbs_matrices

        for profile in ALL_PROFILES.values():
            prewarm_tbs_matrices(profile.primary_cell, SlotType.DL)
            prewarm_tbs_matrices(profile.primary_cell, SlotType.UL,
                                 max_layers=profile.ul_max_layers)
    except Exception:
        pass


def _pool_initializer(store_config: tuple[str, int | None] | None,
                      prewarm: bool) -> None:
    global _WORKER_STORE
    if store_config is not None:
        from repro.store import TraceStore

        _WORKER_STORE = TraceStore(store_config[0], max_bytes=store_config[1])
    if prewarm:
        prewarm_worker_caches()


def _execute_chunk_routed(chunk: list[tuple[int, SessionTask, str | None]]
                          ) -> list[tuple[int, str | None, Any, int]]:
    """Worker side of the store-routed path.

    Executes each ``(index, task, key)``; results the worker store
    accepts stay on disk and only ``(index, key, None, bytes_written)``
    returns over the pipe.  Uncacheable results (no key, codec refusal,
    no worker store) fall back to the pipe as ``(index, None, value, 0)``.
    """
    out: list[tuple[int, str | None, Any, int]] = []
    for index, task, key in chunk:
        value = task.execute()
        if key is not None and _WORKER_STORE is not None:
            before = _WORKER_STORE.bytes_written
            if _WORKER_STORE.put(key, value, task=task):
                out.append((index, key, None, _WORKER_STORE.bytes_written - before))
                continue
        out.append((index, None, value, 0))
    return out


# ---------------------------------------------------------------------- #
# Persistent pool
# ---------------------------------------------------------------------- #
class CampaignExecutor:
    """A warm worker pool shared across many ``run_tasks`` calls.

    A campaign-scale ``repro run``/``repro campaign`` used to build a
    fresh ``ProcessPoolExecutor`` per experiment, paying interpreter
    start-up, imports and cold caches every time.  A ``CampaignExecutor``
    keeps one pool alive for the whole command::

        with CampaignExecutor(jobs="auto", store=store) as executor:
            for spec in specs:
                generate_campaign(spec=spec, store=store, executor=executor)

    The pool is created lazily on first parallel dispatch, with an
    initializer that opens each worker's store handle once (enabling
    store-routed results) and pre-warms the TBS lookup-matrix cache.
    ``stats()`` reports what the pool actually did — dispatches, tasks
    executed, and how many results were routed through the store versus
    pickled back.
    """

    def __init__(self, jobs: int | str | None = "auto", store: Any = None,
                 prewarm: bool = True) -> None:
        self.workers = resolve_jobs(jobs)
        self.store = store
        self.prewarm = prewarm
        self._pool: ProcessPoolExecutor | None = None
        self.pools_created = 0
        self.dispatches = 0
        self.tasks_executed = 0
        self.tasks_routed = 0

    @property
    def store_config(self) -> tuple[str, int | None] | None:
        if self.store is None:
            return None
        return (str(self.store.root), self.store.max_bytes)

    def routes_for(self, store: Any) -> bool:
        """Whether this executor's workers write into ``store``."""
        return (store is not None and self.store is not None
                and str(self.store.root) == str(store.root))

    def pool(self) -> ProcessPoolExecutor:
        """The shared pool, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_initializer,
                initargs=(self.store_config, self.prewarm),
            )
            self.pools_created += 1
        return self._pool

    def stats(self) -> dict[str, int]:
        return {
            "workers": self.workers,
            "pools_created": self.pools_created,
            "dispatches": self.dispatches,
            "tasks_executed": self.tasks_executed,
            "tasks_routed": self.tasks_routed,
        }

    def render_stats(self) -> str:
        s = self.stats()
        return (f"pool workers={s['workers']} pools={s['pools_created']} "
                f"dispatches={s['dispatches']} tasks={s['tasks_executed']} "
                f"routed={s['tasks_routed']}")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def _chunked(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _dispatch(manifest: Sequence[SessionTask], workers: int,
              executor: CampaignExecutor | None = None) -> list[Any]:
    """Execute tasks in order, serially or on a process pool."""
    if workers == 1 or len(manifest) <= 1:
        return [_execute(task) for task in manifest]
    chunksize = dispatch_chunksize(len(manifest), workers)
    if executor is not None:
        executor.dispatches += 1
        executor.tasks_executed += len(manifest)
        return list(executor.pool().map(_execute, manifest, chunksize=chunksize))
    with ProcessPoolExecutor(max_workers=min(workers, len(manifest))) as pool:
        return list(pool.map(_execute, manifest, chunksize=chunksize))


def _dispatch_routed(manifest: Sequence[SessionTask], indices: list[int],
                     keys: list[str | None], store: Any, workers: int,
                     results: list[Any],
                     executor: CampaignExecutor | None) -> None:
    """Store-routed parallel execution of the miss set, in place.

    Workers write results into the store and return keys; completed
    chunks stream back via ``as_completed`` (no buffering until the
    whole miss set finishes).  The parent materializes routed results
    from disk in manifest order at the end; a result evicted between
    the worker's write and the parent's read is recomputed in-process,
    so the output never depends on store retention.
    """
    chunksize = dispatch_chunksize(len(indices), workers)
    chunks = _chunked([(i, manifest[i], keys[i]) for i in indices], chunksize)

    def _consume(outcomes: Iterable[tuple[int, str | None, Any, int]],
                 routed: dict[int, str]) -> None:
        for index, key, value, nbytes in outcomes:
            if key is not None:
                routed[index] = key
                store.note_routed_write(nbytes)
                if executor is not None:
                    executor.tasks_routed += 1
            else:
                results[index] = value

    routed: dict[int, str] = {}
    if executor is not None:
        executor.dispatches += 1
        executor.tasks_executed += len(indices)
        pool = executor.pool()
        futures = [pool.submit(_execute_chunk_routed, chunk) for chunk in chunks]
        for future in as_completed(futures):
            _consume(future.result(), routed)
    else:
        config = (str(store.root), store.max_bytes)
        with ProcessPoolExecutor(max_workers=min(workers, len(indices)),
                                 initializer=_pool_initializer,
                                 initargs=(config, True)) as pool:
            futures = [pool.submit(_execute_chunk_routed, chunk) for chunk in chunks]
            for future in as_completed(futures):
                _consume(future.result(), routed)

    for index in sorted(routed):
        try:
            results[index] = store.read(routed[index])
        except KeyError:  # evicted/corrupted since the worker wrote it
            results[index] = manifest[index].execute()


def run_tasks(tasks: Iterable[SessionTask] | Sequence[SessionTask],
              jobs: int | str | None = 1,
              store: Any | None = None,
              executor: CampaignExecutor | None = None,
              transport: str = "auto") -> list[Any]:
    """Execute a manifest; results are returned in manifest order.

    ``jobs=1`` runs in-process.  ``jobs>1`` dispatches to a process
    pool; because every task carries its own seed, results are
    bit-identical to the serial run for any worker count.

    ``store`` (a :class:`repro.store.TraceStore`) turns the call into a
    memoized run: the manifest is partitioned into hits — served from
    the store without touching the process pool — and misses, which are
    executed and written back.  On a parallel run misses are
    *store-routed*: each worker writes its result into the store and
    only the key crosses the pipe (see :func:`_dispatch_routed`).
    Tasks whose kwargs cannot be fingerprinted, or whose results the
    store codec does not cover, execute normally every time; the
    returned list is identical to an uncached run either way.

    ``executor`` (a :class:`CampaignExecutor`) supplies a persistent
    pool shared across calls; it overrides ``jobs`` with its own worker
    count.  ``transport`` selects how parallel miss results travel:
    ``"auto"`` routes through the store whenever the workers share one,
    ``"pipe"`` forces the legacy pickle-the-result path, ``"store"``
    requires routing (raises if no store is configured).
    """
    if transport not in ("auto", "pipe", "store"):
        raise ValueError(f"transport must be 'auto', 'pipe' or 'store', got {transport!r}")
    manifest = list(tasks)
    workers = executor.workers if executor is not None else resolve_jobs(jobs)
    if store is None:
        if transport == "store":
            raise ValueError("transport='store' requires a configured store")
        return _dispatch(manifest, workers, executor=executor)

    keys = [store.task_key(task) for task in manifest]
    results: list[Any] = [None] * len(manifest)
    miss_indices: list[int] = []
    for index, (task, key) in enumerate(zip(manifest, keys)):
        if key is not None:
            try:
                results[index] = store.get(key)
                continue
            except KeyError:
                pass
        miss_indices.append(index)
    if not miss_indices:
        return results

    routable = executor.routes_for(store) if executor is not None else True
    route = transport == "store" or (transport == "auto" and routable)
    if workers == 1 or len(miss_indices) == 1:
        # Serial path: execute in manifest order, stream each write.
        for index in miss_indices:
            value = manifest[index].execute()
            results[index] = value
            if keys[index] is not None:
                store.put(keys[index], value, task=manifest[index])
    elif route:
        _dispatch_routed(manifest, miss_indices, keys, store, workers,
                         results, executor)
    else:
        # Pipe transport: results pickle back; backfill streams with the
        # (ordered) result iterator instead of waiting for the full set.
        misses = [manifest[i] for i in miss_indices]
        chunksize = dispatch_chunksize(len(misses), workers)
        if executor is not None:
            executor.dispatches += 1
            executor.tasks_executed += len(misses)
            computed = executor.pool().map(_execute, misses, chunksize=chunksize)
            for index, value in zip(miss_indices, computed):
                results[index] = value
                if keys[index] is not None:
                    store.put(keys[index], value, task=manifest[index])
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(misses))) as pool:
                for index, value in zip(miss_indices,
                                        pool.map(_execute, misses, chunksize=chunksize)):
                    results[index] = value
                    if keys[index] is not None:
                        store.put(keys[index], value, task=manifest[index])
    return results
