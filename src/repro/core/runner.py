"""Process-parallel session execution with hierarchical seed derivation.

The campaign and experiment layers replay many independent measurement
sessions.  This module gives them one execution engine:

1. **Manifest expansion** — a campaign or multi-session experiment is
   flattened into a list of :class:`SessionTask` descriptors.  Each task
   is a picklable ``(fn, kwargs)`` pair that is fully self-contained:
   everything the session needs, including its RNG seed, travels inside
   the descriptor.
2. **Seed derivation** — :func:`derive_seed` maps a root seed plus a
   stable spawn key onto an independent child seed through
   ``numpy.random.SeedSequence``.  Children are statistically
   independent streams, and a child depends only on ``(root, key)`` —
   never on how many siblings exist or in which order they run.  That
   is what makes per-session traces reproducible in isolation.
3. **Dispatch** — :func:`run_tasks` executes the manifest serially
   (``jobs=1``, the default) or on a ``ProcessPoolExecutor``
   (``jobs=N`` or ``jobs="auto"``).  Results come back in manifest
   order, so outputs are bit-identical for every worker count.
4. **Memoization** — ``run_tasks(..., store=...)`` consults a
   :class:`repro.store.TraceStore` first: hits are served straight from
   disk (the process pool is never started when everything hits),
   misses are executed and backfilled.  Because a task's fingerprint
   covers exactly what it computes, the returned list is byte-identical
   to an uncached run in manifest order.
"""

from __future__ import annotations

import dataclasses
import os
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "SessionTask",
    "derive_seed",
    "derive_seeds",
    "resolve_jobs",
    "run_tasks",
]


def _key_part(part: int | str) -> int:
    """Normalize one spawn-key component to a stable non-negative int.

    Strings hash through CRC-32 so a key like an operator name yields
    the same child seed no matter which other operators are present.
    """
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8"))
    part = int(part)
    if part < 0:
        raise ValueError("spawn-key components must be non-negative")
    return part


def derive_seed(root_seed: int, *spawn_key: int | str) -> int:
    """Derive an independent child seed from ``root_seed``.

    The child is ``SeedSequence(root_seed, spawn_key=...)`` collapsed to
    a single integer, so it can be recorded in trace metadata and fed
    back to ``numpy.random.default_rng`` to regenerate the session.
    """
    key = tuple(_key_part(p) for p in spawn_key)
    sequence = np.random.SeedSequence(root_seed, spawn_key=key)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(root_seed: int, n: int, *prefix: int | str) -> list[int]:
    """Child seeds for sessions ``0..n-1`` under an optional key prefix."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [derive_seed(root_seed, *prefix, index) for index in range(n)]


@dataclass(frozen=True)
class SessionTask:
    """One entry of a session manifest.

    ``fn`` must be a module-level callable and ``kwargs`` picklable, so
    the task can cross a process boundary.  When ``seed`` is set it is
    passed to ``fn`` as the ``seed`` keyword argument.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def execute(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(**kwargs)

    def with_seed(self, root_seed: int, *key: int | str) -> "SessionTask":
        """A copy of this task carrying ``derive_seed(root_seed, *key)``.

        Manifest builders repeat the derive-then-replace dance for every
        session; this keeps the derivation next to the task so label and
        kwargs cannot drift from the seed key.
        """
        return dataclasses.replace(self, seed=derive_seed(root_seed, *key))


def _execute(task: SessionTask) -> Any:
    return task.execute()


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value to a worker count (>= 1).

    Accepts an int, an int-valued string, ``"auto"`` (all cores the
    process may use) or ``None`` (same as 1).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # platforms without sched_getaffinity
                return max(1, os.cpu_count() or 1)
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"jobs must be an integer or 'auto', got {jobs!r}") from None
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return int(jobs)


def _dispatch(manifest: Sequence[SessionTask], workers: int) -> list[Any]:
    """Execute tasks in order, serially or on a process pool."""
    if workers == 1 or len(manifest) <= 1:
        return [_execute(task) for task in manifest]
    with ProcessPoolExecutor(max_workers=min(workers, len(manifest))) as pool:
        return list(pool.map(_execute, manifest))


def run_tasks(tasks: Iterable[SessionTask] | Sequence[SessionTask],
              jobs: int | str | None = 1,
              store: Any | None = None) -> list[Any]:
    """Execute a manifest; results are returned in manifest order.

    ``jobs=1`` runs in-process.  ``jobs>1`` dispatches to a process
    pool; because every task carries its own seed, results are
    bit-identical to the serial run for any worker count.

    ``store`` (a :class:`repro.store.TraceStore`) turns the call into a
    memoized run: the manifest is partitioned into hits — served from
    the store without touching the process pool — and misses, which are
    executed (serially or on the pool) and backfilled.  Tasks whose
    kwargs cannot be fingerprinted, or whose results the store codec
    does not cover, execute normally every time; the returned list is
    identical to an uncached run either way.
    """
    manifest = list(tasks)
    workers = resolve_jobs(jobs)
    if store is None:
        return _dispatch(manifest, workers)

    keys = [store.task_key(task) for task in manifest]
    results: list[Any] = [None] * len(manifest)
    miss_indices: list[int] = []
    for index, (task, key) in enumerate(zip(manifest, keys)):
        if key is not None:
            try:
                results[index] = store.get(key)
                continue
            except KeyError:
                pass
        miss_indices.append(index)
    if miss_indices:
        computed = _dispatch([manifest[i] for i in miss_indices], workers)
        for index, value in zip(miss_indices, computed):
            results[index] = value
            if keys[index] is not None:
                store.put(keys[index], value, task=manifest[index])
    return results
