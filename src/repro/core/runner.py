"""Process-parallel session execution with hierarchical seed derivation.

The campaign and experiment layers replay many independent measurement
sessions.  This module gives them one execution engine:

1. **Manifest expansion** — a campaign or multi-session experiment is
   flattened into a list of :class:`SessionTask` descriptors.  Each task
   is a picklable ``(fn, kwargs)`` pair that is fully self-contained:
   everything the session needs, including its RNG seed, travels inside
   the descriptor.
2. **Seed derivation** — :func:`derive_seed` maps a root seed plus a
   stable spawn key onto an independent child seed through
   ``numpy.random.SeedSequence``.  Children are statistically
   independent streams, and a child depends only on ``(root, key)`` —
   never on how many siblings exist or in which order they run.  That
   is what makes per-session traces reproducible in isolation.
3. **Dispatch** — :func:`run_tasks` executes the manifest serially
   (``jobs=1``, the default) or on a ``ProcessPoolExecutor``
   (``jobs=N`` or ``jobs="auto"``) with adaptive chunking.  Results
   come back in manifest order, so outputs are bit-identical for every
   worker count.
4. **Memoization and store routing** — ``run_tasks(..., store=...)``
   consults a :class:`repro.store.TraceStore` first: hits are served
   straight from disk (the process pool is never started when
   everything hits), misses are executed.  On a parallel run each
   *worker* serializes its result into the store itself and returns
   only ``(key, bytes written)`` over the pipe; the parent materializes
   results from disk in manifest order.  Large trace arrays therefore
   never cross a process boundary — the pipe carries kilobytes of keys
   instead of megabytes of pickles.  ``transport="pipe"`` forces the
   legacy pickle-the-result path (the pre-store-routing behaviour,
   kept for benchmarks and cross-checks); results are byte-identical
   either way.  ``transport="shm"`` moves results through
   ``multiprocessing.shared_memory`` instead: a worker flushes its
   cohort straight into a shared-memory trace arena
   (:class:`repro.xcal.arena.CohortArena`) and ships only
   ``(segment name, layout, row index)`` over the pipe; the parent
   re-attaches and materializes traces as zero-copy numpy views.  Cold
   parallel runs without a store select it automatically under
   ``transport="auto"``; platforms without POSIX shm fall back to the
   pipe transport with identical results.
5. **Pool reuse** — :class:`CampaignExecutor` keeps one warm process
   pool alive across many ``run_tasks`` calls (a whole ``repro
   campaign`` / multi-experiment ``repro run``), with a worker
   initializer that opens the per-worker store handle once and
   pre-warms the TBS lookup-matrix cache.
6. **Streaming reduction** — ``run_tasks(..., reduce=...)`` replaces
   the materialized result list with a merged sketch (see
   :mod:`repro.core.reduce`): each worker folds its session result into
   a per-task sketch and ships only the sketch; the parent left-folds
   sketches in manifest order, so the merge tree — and therefore the
   output, byte for byte — is independent of worker count and
   transport, and peak memory is bounded by one in-flight trace per
   worker instead of the campaign size.  With a store, the merged
   campaign-level sketch is itself memoized under a key covering the
   reduction config and every member task.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import weakref
import zlib
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

try:  # POSIX shm transport backend; absent on some minimal platforms
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _shm = None

__all__ = [
    "CampaignExecutor",
    "SessionTask",
    "derive_seed",
    "derive_seeds",
    "dispatch_chunksize",
    "group_tasks_by_shape",
    "prewarm_worker_caches",
    "register_cohort_runner",
    "release_shm_segments",
    "resolve_jobs",
    "run_tasks",
    "shm_transport_available",
]

#: Cap on the number of tasks batched into one worker round-trip.  Keeps
#: chunks small enough that a warm pool load-balances many-small-task
#: manifests while still amortizing the per-message IPC cost.
_MAX_CHUNK = 32

#: Cohort chunk bounds.  A cohort chunk is executed as one tensor pass,
#: so it is worth inflating small chunk sizes up to ``_COHORT_MIN_CHUNK``
#: (the batching win dwarfs the lost load-balancing granularity) and
#: capping at ``_COHORT_MAX_CHUNK`` to bound per-worker tensor memory.
#: The batched dirty-cell pass made the per-period cost mostly fixed
#: numpy dispatch, so wide cohorts amortize it: 64 columns halve the
#: period-loop overhead of 32 at ~40 MB of extra per-worker tensors.
_COHORT_MIN_CHUNK = 64
_COHORT_MAX_CHUNK = 128


def _key_part(part: int | str) -> int:
    """Normalize one spawn-key component to a stable non-negative int.

    Strings hash through CRC-32 so a key like an operator name yields
    the same child seed no matter which other operators are present.
    """
    if isinstance(part, str):
        return zlib.crc32(part.encode("utf-8"))
    part = int(part)
    if part < 0:
        raise ValueError("spawn-key components must be non-negative")
    return part


def derive_seed(root_seed: int, *spawn_key: int | str) -> int:
    """Derive an independent child seed from ``root_seed``.

    The child is ``SeedSequence(root_seed, spawn_key=...)`` collapsed to
    a single integer, so it can be recorded in trace metadata and fed
    back to ``numpy.random.default_rng`` to regenerate the session.
    """
    key = tuple(_key_part(p) for p in spawn_key)
    sequence = np.random.SeedSequence(root_seed, spawn_key=key)
    return int(sequence.generate_state(1, dtype=np.uint64)[0])


def derive_seeds(root_seed: int, n: int, *prefix: int | str) -> list[int]:
    """Child seeds for sessions ``0..n-1`` under an optional key prefix."""
    if n < 0:
        raise ValueError("n must be non-negative")
    return [derive_seed(root_seed, *prefix, index) for index in range(n)]


@dataclass(frozen=True)
class SessionTask:
    """One entry of a session manifest.

    ``fn`` must be a module-level callable and ``kwargs`` picklable, so
    the task can cross a process boundary.  When ``seed`` is set it is
    passed to ``fn`` as the ``seed`` keyword argument.
    """

    fn: Callable[..., Any]
    kwargs: Mapping[str, Any] = field(default_factory=dict)
    seed: int | None = None
    label: str = ""

    def execute(self) -> Any:
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(**kwargs)

    def with_seed(self, root_seed: int, *key: int | str) -> "SessionTask":
        """A copy of this task carrying ``derive_seed(root_seed, *key)``.

        Manifest builders repeat the derive-then-replace dance for every
        session; this keeps the derivation next to the task so label and
        kwargs cannot drift from the seed key.
        """
        return dataclasses.replace(self, seed=derive_seed(root_seed, *key))


def _execute(task: SessionTask) -> Any:
    return task.execute()


# ---------------------------------------------------------------------- #
# Cohort execution
# ---------------------------------------------------------------------- #
# Session functions can register a *cohort runner*: a callable with the
# same kwargs plus ``seeds=[...]`` that returns one result per seed, in
# order, each byte-identical to ``fn(**kwargs, seed=seed)``.  Dispatch
# then executes a maximal run of same-shape tasks as one cohort call
# (e.g. the cross-session tensor pass of :mod:`repro.ran.tensor`)
# instead of task by task.  Registration happens at module import, so
# workers that unpickle the task's ``fn`` register it too.

_COHORT_RUNNERS: dict[Callable[..., Any],
                      tuple[Callable[..., Iterable[Any]], bool]] = {}


def register_cohort_runner(fn: Callable[..., Any],
                           cohort_fn: Callable[..., Iterable[Any]],
                           accepts_arena: bool = False) -> None:
    """Register ``cohort_fn(seeds=[...], **kwargs)`` as the batched
    executor for same-shape runs of ``fn`` tasks.

    ``cohort_fn`` must yield exactly ``len(seeds)`` results in seed
    order, each byte-identical to the corresponding per-task
    ``fn(**kwargs, seed=seed)`` call — dispatch treats the two paths as
    interchangeable.  ``accepts_arena=True`` declares that the runner
    takes an ``arena_factory`` keyword (see
    :class:`repro.xcal.arena.CohortArena`); materializing dispatch
    paths then pass one so the cohort flush writes a whole arena at
    once instead of building traces column by column.
    """
    _COHORT_RUNNERS[fn] = (cohort_fn, accepts_arena)


def _same_shape(a: SessionTask, b: SessionTask) -> bool:
    """Whether two tasks differ only in seed (cohortable together)."""
    return (a.fn is b.fn and a.seed is not None and b.seed is not None
            and a.kwargs == b.kwargs)


def group_tasks_by_shape(tasks: Sequence[SessionTask]) -> list[list[int]]:
    """Partition a manifest into maximal runs of same-shape tasks.

    Returns index groups, in manifest order, where every group is a
    maximal *consecutive* run of tasks sharing ``fn`` (by identity) and
    ``kwargs`` (by value) with per-task seeds.  Consecutive-only
    grouping keeps the partition deterministic and order-preserving —
    group boundaries depend only on the manifest, never on jobs count,
    transport, or which tasks hit the store — which is what makes
    cohort-executed output bit-identical to the per-task path.
    Campaign manifests emit sessions of one (operator, direction) pair
    consecutively, so the natural cohorts are already contiguous.
    """
    groups: list[list[int]] = []
    current: list[int] = []
    for index, task in enumerate(tasks):
        if current and _same_shape(tasks[current[-1]], task):
            current.append(index)
        else:
            if current:
                groups.append(current)
            current = [index]
    if current:
        groups.append(current)
    return groups


def _cohortable(tasks: Sequence[SessionTask]) -> bool:
    """Whether an (already same-shape-grouped) chunk runs as a cohort."""
    return (len(tasks) >= 2 and tasks[0].fn in _COHORT_RUNNERS
            and all(_same_shape(tasks[0], task) for task in tasks[1:]))


def _local_arena_factory(n_cols: int, n_slots: int, mu) -> Any:
    """Default arena factory for materializing consumers: a private
    heap-backed :class:`~repro.xcal.arena.CohortArena`."""
    from repro.xcal.arena import CohortArena

    return CohortArena.allocate(n_cols, n_slots, mu)


def _chunk_values(chunk: list[tuple[int, SessionTask, str | None]],
                  arena_factory: Callable[..., Any] | None = None,
                  ) -> Iterable[tuple[int, SessionTask, str | None, Any]]:
    """Yield ``(index, task, key, value)`` for one dispatch chunk.

    A chunk of same-shape tasks with a registered cohort runner executes
    as one cohort call; values stream out lazily (the tensor pass
    flushes one column trace per ``next()``), so a consumer that folds
    or writes each value before advancing holds at most one result.
    Everything else executes task by task.

    ``arena_factory`` is forwarded to cohort runners registered with
    ``accepts_arena=True``: the cohort then flushes into one backing
    arena and yields zero-copy row views.  Streaming consumers (the
    reducing path) pass ``None`` to keep the one-live-trace memory
    bound.
    """
    tasks = [task for _, task, _ in chunk]
    if not _cohortable(tasks):
        for index, task, key in chunk:
            yield index, task, key, task.execute()
        return
    cohort_fn, accepts_arena = _COHORT_RUNNERS[tasks[0].fn]
    kwargs = dict(tasks[0].kwargs)
    if accepts_arena and arena_factory is not None:
        kwargs["arena_factory"] = arena_factory
    values = iter(cohort_fn(seeds=[task.seed for task in tasks], **kwargs))
    for index, task, key in chunk:
        try:
            value = next(values)
        except StopIteration:
            raise RuntimeError(
                f"cohort runner for {tasks[0].fn!r} yielded fewer results "
                f"than seeds") from None
        yield index, task, key, value
    sentinel = object()
    if next(values, sentinel) is not sentinel:
        raise RuntimeError(
            f"cohort runner for {tasks[0].fn!r} yielded more results than seeds")


def _grouped_chunks(entries: list[tuple[int, SessionTask, str | None]],
                    chunksize: int) -> list[list[tuple[int, SessionTask, str | None]]]:
    """Split dispatch entries into chunks along same-shape group lines.

    Runs with a registered cohort runner become dedicated chunks sized
    ``clamp(chunksize, _COHORT_MIN_CHUNK, _COHORT_MAX_CHUNK)`` so one
    worker executes a whole cohort slice as a single tensor pass;
    everything else batches at the plain chunk size.  Chunk contents
    (though not their parallel completion order) depend only on the
    entry sequence, and every chunk preserves entry order, so ordered
    consumers see the same stream as a serial run.
    """
    plain_size = max(1, min(chunksize, _MAX_CHUNK))
    cohort_size = max(1, min(_COHORT_MAX_CHUNK, max(chunksize, _COHORT_MIN_CHUNK)))
    chunks: list[list[tuple[int, SessionTask, str | None]]] = []
    plain: list[tuple[int, SessionTask, str | None]] = []

    def _flush_plain() -> None:
        if plain:
            chunks.extend(_chunked(plain, plain_size))
            plain.clear()

    for group in group_tasks_by_shape([task for _, task, _ in entries]):
        members = [entries[i] for i in group]
        if len(members) >= 2 and members[0][1].fn in _COHORT_RUNNERS:
            _flush_plain()
            chunks.extend(_chunked(members, cohort_size))
        else:
            plain.extend(members)
    _flush_plain()
    return chunks


def _execute_chunk_plain(chunk: list[tuple[int, SessionTask, str | None]]
                         ) -> list[tuple[int, Any]]:
    """Worker body for the unrouted paths: ``(index, value)`` pairs."""
    return [(index, value) for index, _, _, value
            in _chunk_values(chunk, arena_factory=_local_arena_factory)]


def resolve_jobs(jobs: int | str | None) -> int:
    """Normalize a ``--jobs`` value to a worker count (>= 1).

    Accepts an int, an int-valued string, ``"auto"`` (all cores the
    process may use) or ``None`` (same as 1).
    """
    if jobs is None:
        return 1
    if isinstance(jobs, str):
        if jobs.strip().lower() == "auto":
            try:
                return max(1, len(os.sched_getaffinity(0)))
            except AttributeError:  # platforms without sched_getaffinity
                return max(1, os.cpu_count() or 1)
        try:
            jobs = int(jobs)
        except ValueError:
            raise ValueError(f"jobs must be an integer or 'auto', got {jobs!r}") from None
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    return int(jobs)


def dispatch_chunksize(n_tasks: int, workers: int) -> int:
    """Adaptive chunk size for dispatching ``n_tasks`` to ``workers``.

    Aims for ~4 chunks per worker so stragglers rebalance, capped so a
    many-small-task manifest stops paying one IPC round-trip per task
    without serializing the whole manifest into one message.
    """
    if workers <= 1 or n_tasks <= workers:
        return 1
    return max(1, min(_MAX_CHUNK, n_tasks // (workers * 4)))


# ---------------------------------------------------------------------- #
# Worker-side state
# ---------------------------------------------------------------------- #
# One store handle per worker process, opened once by the pool
# initializer instead of per task; ``None`` in pipe-transport pools.
# Routed writes go through a single-thread writer pool so npz encoding
# of session *i* overlaps the simulation of session *i+1*.

_WORKER_STORE: Any = None
_WORKER_WRITER: ThreadPoolExecutor | None = None


def prewarm_worker_caches() -> None:
    """Pre-build the TBS lookup matrices campaign sessions need.

    Every session starts by building the lookup matrix for its carrier's
    full grant; warming them in the pool initializer moves that cost out
    of the first task of every worker.  ``min_grant_fraction=0.88``
    also covers the background-load-trimmed grant sizes the cohort
    tensor path resolves up front (background mean + 2 sigma under the
    default :class:`~repro.ran.simulator.SimParams` trims ~9.5% of the
    full grant), so tensor cold runs pay no first-touch TBS builds in
    the timed region.  Best-effort: a profile that fails to warm simply
    pays the build on first use.
    """
    try:
        from repro.nr.tdd import SlotType
        from repro.operators.profiles import ALL_PROFILES
        from repro.ran.simulator import prewarm_tbs_matrices

        for profile in ALL_PROFILES.values():
            prewarm_tbs_matrices(profile.primary_cell, SlotType.DL,
                                 min_grant_fraction=0.88)
            prewarm_tbs_matrices(profile.primary_cell, SlotType.UL,
                                 max_layers=profile.ul_max_layers,
                                 min_grant_fraction=0.88)
    except Exception:
        pass


def _pool_initializer(store_config: tuple[str, int | None] | None,
                      prewarm: bool) -> None:
    global _WORKER_STORE
    if store_config is not None:
        from repro.store import TraceStore

        _WORKER_STORE = TraceStore(store_config[0], max_bytes=store_config[1])
    if prewarm:
        prewarm_worker_caches()


def _writer_pool() -> ThreadPoolExecutor:
    global _WORKER_WRITER
    if _WORKER_WRITER is None:
        _WORKER_WRITER = ThreadPoolExecutor(max_workers=1)
    return _WORKER_WRITER


def _store_put_job(key: str, task: SessionTask, value: Any) -> tuple[bool, int]:
    """Writer-thread body: serialize + write one result, report
    ``(accepted, payload bytes)``.  Only this single thread touches
    ``bytes_written`` while a chunk is executing, so the delta is the
    write's own payload size."""
    before = _WORKER_STORE.bytes_written
    accepted = _WORKER_STORE.put(key, value, task=task)
    return accepted, _WORKER_STORE.bytes_written - before


def _execute_chunk_routed(chunk: list[tuple[int, SessionTask, str | None]]
                          ) -> list[tuple[int, str | None, Any, int]]:
    """Worker side of the store-routed path.

    Executes each ``(index, task, key)``; results the worker store
    accepts stay on disk and only ``(index, key, None, bytes_written)``
    returns over the pipe.  Uncacheable results (no key, codec refusal,
    no worker store) fall back to the pipe as ``(index, None, value, 0)``.

    Serialization is off the critical path: each result's npz encode and
    disk write run on the worker's single writer thread while the *next*
    task simulates, with at most one write pending (bounding the worker
    to two live results).  Chunk output order is preserved.
    """
    out: list[tuple[int, str | None, Any, int]] = []
    pending: tuple[int, Any, str, Any] | None = None

    def _finish(entry: tuple[int, Any, str, Any]) -> None:
        index, value, key, future = entry
        accepted, nbytes = future.result()
        if accepted:
            out.append((index, key, None, nbytes))
        else:
            out.append((index, None, value, 0))

    for index, task, key, value in _chunk_values(
            chunk, arena_factory=_local_arena_factory):
        if key is not None and _WORKER_STORE is not None:
            entry = (index, value, key, _writer_pool().submit(_store_put_job,
                                                              key, task, value))
            if pending is not None:
                _finish(pending)
            pending = entry
            continue
        if pending is not None:
            _finish(pending)
            pending = None
        out.append((index, None, value, 0))
    if pending is not None:
        _finish(pending)
    return out


def _execute_chunk_reduced(chunk: list[tuple[int, SessionTask, str | None]],
                           reduction: Any,
                           ) -> list[tuple[int, Any, str | None, int]]:
    """Worker side of the reducing path.

    Each result folds into a per-task sketch; only the sketch (a few KB,
    independent of session length) crosses the pipe.  When the chunk
    carries keys and the worker has a store handle, the full result is
    *also* written to the store on the writer thread — the campaign
    stays cache-warm for later exact runs — but the parent never reads
    those entries back.  Output order matches chunk order.
    """
    out: list[tuple[int, Any, str | None, int]] = []
    pending: tuple[int, Any, str, Any] | None = None

    def _finish(entry: tuple[int, Any, str, Any]) -> None:
        index, sketch, key, future = entry
        accepted, nbytes = future.result()
        out.append((index, sketch, key if accepted else None,
                    nbytes if accepted else 0))

    for index, task, key, value in _chunk_values(chunk):
        sketch = reduction.fold(task, value)
        if key is not None and _WORKER_STORE is not None:
            entry = (index, sketch, key, _writer_pool().submit(_store_put_job,
                                                               key, task, value))
            if pending is not None:
                _finish(pending)
            pending = entry
            continue
        if pending is not None:
            _finish(pending)
            pending = None
        out.append((index, sketch, None, 0))
    if pending is not None:
        _finish(pending)
    return out


# ---------------------------------------------------------------------- #
# Shared-memory transport
# ---------------------------------------------------------------------- #
# The pipe transport pays pickle + copy for every trace crossing a
# process boundary; the store transport pays an npz encode/decode round
# trip through disk.  The shm transport pays neither: the worker's
# cohort pass flushes into a CohortArena allocated inside a POSIX
# shared-memory segment, only ``(segment name, layout, row index,
# metadata)`` crosses the pipe, and the parent re-attaches the segment
# and hands out zero-copy row views.
#
# Lifecycle protocol (start method "fork", the Linux default, shares
# one resource tracker between parent and workers):
#
# - the *worker* creates segments under a parent-chosen, deterministic
#   name prefix, writes them, releases its views, closes its handle and
#   never unlinks;
# - the *parent* attaches, unlinks immediately (the mapping survives
#   until the last close, but the name disappears — nothing can leak
#   in /dev/shm even if the parent dies from here on), and defers its
#   close until the arena's base array is garbage collected
#   (``weakref.finalize``);
# - on any dispatch failure the parent sweeps every possible segment
#   name of every chunk with attach→close→unlink, so a crashed or
#   cancelled worker cannot leak segments either.

_SHM_PREFIX = "repro"
_SHM_RUN = 0
_SHM_PROBED: bool | None = None

#: Deferred parent-side segment closes, kept so callers that want the
#: memory back *now* (benchmarks, tests) can force them via
#: :func:`release_shm_segments` instead of waiting for GC.
_SHM_FINALIZERS: list[Any] = []


def shm_transport_available() -> bool:
    """Whether this platform supports the shared-memory transport.

    Checks the module import each call (tests monkeypatch it away) and
    probes segment creation once per process.
    """
    global _SHM_PROBED
    if _shm is None:
        return False
    if _SHM_PROBED is None:
        try:
            probe = _shm.SharedMemory(create=True, size=16)
        except Exception:
            _SHM_PROBED = False
        else:
            try:
                probe.close()
                probe.unlink()
            except OSError:  # pragma: no cover - probe cleanup best-effort
                pass
            _SHM_PROBED = True
    return _SHM_PROBED


def _close_segment(seg: Any) -> None:
    """Deferred parent-side close of an already-unlinked segment.

    The finalize that calls this fires while the arena's base array is
    mid-deallocation — weakref callbacks run *before* the array releases
    its buffer export — so ``seg.close()`` typically raises
    ``BufferError`` here.  In that case the segment is dismantled by
    hand: dropping the ``SharedMemory`` object's references lets the
    mmap unmap itself the moment the last numpy view dies, the fd is
    closed immediately, and the object's eventual ``__del__`` becomes a
    no-op instead of an unraisable ``BufferError``.  Either way the
    name is already gone from ``/dev/shm``.
    """
    try:
        seg.close()
        return
    except BufferError:
        pass
    try:
        seg._buf = None
        seg._mmap = None
        fd = getattr(seg, "_fd", -1)
        if fd >= 0:
            os.close(fd)
            seg._fd = -1
    except Exception:  # pragma: no cover - stdlib internals changed shape
        pass


def release_shm_segments() -> int:
    """Force every deferred parent-side segment close; returns how many
    segments were actually closed.

    Safe to call repeatedly (double-close is a no-op: a finalizer runs
    at most once, and the list drains).  Call after dropping all trace
    views, e.g. between benchmark repetitions.
    """
    closed = 0
    while _SHM_FINALIZERS:
        finalizer = _SHM_FINALIZERS.pop()
        if finalizer.alive:
            finalizer()
            closed += 1
    return closed


def _execute_chunk_shm(chunk: list[tuple[int, SessionTask, str | None]],
                       prefix: str) -> tuple[list, list]:
    """Worker body for the shm transport.

    Cohort runs flush straight into a shared-memory arena via the
    ``arena_factory`` hook; per-task traces outside a cohort are packed
    (one strided copy per column) into extra arenas grouped by shape.
    Returns ``(segments, plain)`` where ``segments`` is a list of
    ``(name, layout, [(manifest index, row, metadata), ...])`` and
    ``plain`` carries non-trace values the classic pickled way.
    """
    from repro.xcal.arena import CohortArena, arena_nbytes
    from repro.xcal.records import SlotTrace

    handles: list[Any] = []
    arenas: list[Any] = []
    segments: list[tuple[str, dict, list]] = []

    def _new_arena(n_cols: int, n_slots: int, mu: Any) -> Any:
        name = f"{prefix}-{len(handles)}"
        seg = _shm.SharedMemory(name=name, create=True,
                                size=max(1, arena_nbytes(n_cols, n_slots)))
        handles.append(seg)
        arena = CohortArena.over_buffer(seg.buf, n_cols, n_slots, mu,
                                        zeroed=True)
        arenas.append(arena)
        segments.append((name, arena.layout(), []))
        return arena

    def _build() -> list[tuple[int, Any]]:
        # Nested so every trace reference dies when it returns — the
        # segment handles cannot close while numpy exports are alive.
        cohort = None
        plain: list[tuple[int, Any]] = []
        stray: list[tuple[int, Any]] = []
        for index, _, _, value in _chunk_values(chunk,
                                                arena_factory=_new_arena):
            cohort = arenas[0] if arenas else None
            row = cohort.row_index_of(value) \
                if cohort is not None and isinstance(value, SlotTrace) else None
            if row is not None:
                segments[0][2].append((index, row, value.metadata))
            elif isinstance(value, SlotTrace):
                stray.append((index, value))
            else:
                plain.append((index, value))
        groups: dict[tuple[int, int], list[tuple[int, Any]]] = {}
        for index, trace in stray:
            groups.setdefault((len(trace), int(trace.mu)), []).append(
                (index, trace))
        for (n_slots, mu), members in groups.items():
            arena = _new_arena(len(members), n_slots, mu)
            rows = segments[-1][2]
            for row, (index, trace) in enumerate(members):
                arena.pack_row(row, trace)
                rows.append((index, row, trace.metadata))
        return plain

    try:
        plain = _build()
    except BaseException:
        # Unlink our own segments: the parent will sweep the name space
        # too, but a worker that cleans up after itself keeps /dev/shm
        # tidy even when the parent dies mid-dispatch.
        for arena in arenas:
            arena.release()
        for seg in handles:
            try:
                seg.close()
            except BufferError:
                pass
            try:
                seg.unlink()
            except (FileNotFoundError, OSError):
                pass
        raise
    for arena in arenas:
        arena.release()
    arenas.clear()
    for seg in handles:
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        if multiprocessing.get_start_method(allow_none=True) != "fork":
            # Non-fork workers own a private resource tracker that would
            # unlink (and warn about) the segment at worker shutdown;
            # hand ownership to the parent by unregistering here.  Under
            # fork the tracker is shared and the parent's unlink-time
            # unregister balances the books.
            try:  # pragma: no cover - fork is the default on Linux
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    getattr(seg, "_name", "/" + seg.name), "shared_memory")
            except Exception:
                pass
    return segments, plain


def _attach_shm_arena(name: str, layout: Mapping) -> Any:
    """Parent side: attach a worker-written segment as a zero-copy arena.

    Unlinks the name immediately — the mapping stays valid until the
    deferred close, but nothing can leak in ``/dev/shm`` afterwards.
    The close itself fires when the arena's base array dies, i.e. once
    the caller drops the last trace view.
    """
    from repro.xcal.arena import CohortArena

    seg = _shm.SharedMemory(name=name)
    try:
        arena = CohortArena.from_layout(seg.buf, layout)
    except Exception:
        seg.close()
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        raise
    try:
        seg.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - raced cleanup
        pass
    _SHM_FINALIZERS.append(weakref.finalize(arena.base, _close_segment, seg))
    return arena


def _consume_shm_payload(payload: tuple[list, list],
                         results: list[Any]) -> None:
    """Materialize one worker's shm payload into ``results`` in place."""
    segments, plain = payload
    for name, layout, rows in segments:
        arena = _attach_shm_arena(name, layout)
        for index, row, metadata in rows:
            results[index] = arena.trace(row, metadata=metadata)
    for index, value in plain:
        results[index] = value


def _cleanup_shm_chunk(prefix: str, count: int) -> None:
    """Best-effort unlink of every segment a chunk may have created.

    attach→close→unlink by deterministic name: covers workers that died
    before returning (their segments are orphaned but named) and, under
    fork, re-registering on attach then unregistering on unlink leaves
    the shared resource tracker balanced.
    """
    if _shm is None:
        return
    for k in range(count):
        try:
            seg = _shm.SharedMemory(name=f"{prefix}-{k}")
        except (FileNotFoundError, OSError):
            continue
        try:
            seg.close()
        except BufferError:  # pragma: no cover - defensive
            pass
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


def _dispatch_shm(manifest: Sequence[SessionTask], indices: list[int],
                  workers: int, results: list[Any],
                  executor: CampaignExecutor | None) -> None:
    """Shared-memory parallel execution of ``indices``, in place.

    Chunk segment names are chosen by the parent before dispatch
    (``repro-<pid>-<run>-c<chunk>-<k>``), so cleanup after a failure or
    worker crash needs no information back from the workers: every name
    a chunk could have created is enumerable and swept.
    """
    global _SHM_RUN
    _SHM_RUN += 1
    chunks = _grouped_chunks([(i, manifest[i], None) for i in indices],
                             dispatch_chunksize(len(indices), workers))
    prefixes = [f"{_SHM_PREFIX}-{os.getpid()}-{_SHM_RUN}-c{n}"
                for n in range(len(chunks))]

    def _collect(pool: ProcessPoolExecutor) -> None:
        futures = {
            pool.submit(_execute_chunk_shm, chunk, prefix): (len(chunk), prefix)
            for chunk, prefix in zip(chunks, prefixes)}
        try:
            for future in as_completed(futures):
                _consume_shm_payload(future.result(), results)
        except BaseException:
            for future in futures:
                future.cancel()
            for future in futures:  # wait out in-flight chunks
                if not future.cancelled():
                    try:
                        future.result()
                    except BaseException:
                        pass
            # A chunk makes at most one cohort arena plus one packed
            # arena per distinct stray trace shape (<= chunk length).
            for size, prefix in futures.values():
                _cleanup_shm_chunk(prefix, size + 1)
            raise

    if executor is not None:
        executor.dispatches += 1
        executor.tasks_executed += len(indices)
        _collect(executor.pool())
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(indices))) as pool:
            _collect(pool)


# ---------------------------------------------------------------------- #
# Persistent pool
# ---------------------------------------------------------------------- #
class CampaignExecutor:
    """A warm worker pool shared across many ``run_tasks`` calls.

    A campaign-scale ``repro run``/``repro campaign`` used to build a
    fresh ``ProcessPoolExecutor`` per experiment, paying interpreter
    start-up, imports and cold caches every time.  A ``CampaignExecutor``
    keeps one pool alive for the whole command::

        with CampaignExecutor(jobs="auto", store=store) as executor:
            for spec in specs:
                generate_campaign(spec=spec, store=store, executor=executor)

    The pool is created lazily on first parallel dispatch, with an
    initializer that opens each worker's store handle once (enabling
    store-routed results) and pre-warms the TBS lookup-matrix cache.
    ``stats()`` reports what the pool actually did — dispatches, tasks
    executed, and how many results were routed through the store versus
    pickled back.
    """

    def __init__(self, jobs: int | str | None = "auto", store: Any = None,
                 prewarm: bool = True) -> None:
        self.workers = resolve_jobs(jobs)
        self.store = store
        self.prewarm = prewarm
        self._pool: ProcessPoolExecutor | None = None
        self.pools_created = 0
        self.dispatches = 0
        self.tasks_executed = 0
        self.tasks_routed = 0
        self.tasks_recomputed = 0

    @property
    def store_config(self) -> tuple[str, int | None] | None:
        if self.store is None:
            return None
        return (str(self.store.root), self.store.max_bytes)

    def routes_for(self, store: Any) -> bool:
        """Whether this executor's workers write into ``store``.

        Roots compare *resolved* (absolute, symlinks followed): a
        relative and an absolute spelling of the same directory are the
        same store, and must not silently disable routing.
        """
        if store is None or self.store is None:
            return False
        try:
            return Path(self.store.root).resolve() == Path(store.root).resolve()
        except OSError:  # unresolvable path: fall back to textual identity
            return str(self.store.root) == str(store.root)

    def pool(self) -> ProcessPoolExecutor:
        """The shared pool, created on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_pool_initializer,
                initargs=(self.store_config, self.prewarm),
            )
            self.pools_created += 1
        return self._pool

    def stats(self) -> dict[str, int]:
        return {
            "workers": self.workers,
            "pools_created": self.pools_created,
            "dispatches": self.dispatches,
            "tasks_executed": self.tasks_executed,
            "tasks_routed": self.tasks_routed,
            "tasks_recomputed": self.tasks_recomputed,
        }

    def render_stats(self) -> str:
        s = self.stats()
        return (f"pool workers={s['workers']} pools={s['pools_created']} "
                f"dispatches={s['dispatches']} tasks={s['tasks_executed']} "
                f"routed={s['tasks_routed']} recomputed={s['tasks_recomputed']}")

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "CampaignExecutor":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


# ---------------------------------------------------------------------- #
# Dispatch
# ---------------------------------------------------------------------- #
def _chunked(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _dispatch(manifest: Sequence[SessionTask], workers: int,
              executor: CampaignExecutor | None = None,
              shm: bool = False) -> list[Any]:
    """Execute tasks in order, serially or on a process pool.

    Chunking is cohort-aware either way: a run of same-shape tasks with
    a registered cohort runner executes as whole tensor passes (one per
    chunk) instead of task by task.  ``shm=True`` moves parallel results
    through the shared-memory transport instead of the result pipe.
    """
    results: list[Any] = [None] * len(manifest)
    entries = [(index, task, None) for index, task in enumerate(manifest)]
    if workers == 1 or len(manifest) <= 1:
        for chunk in _grouped_chunks(entries, _MAX_CHUNK):
            for index, _, _, value in _chunk_values(
                    chunk, arena_factory=_local_arena_factory):
                results[index] = value
        return results
    if shm and shm_transport_available():
        _dispatch_shm(manifest, list(range(len(manifest))), workers,
                      results, executor)
        return results
    chunks = _grouped_chunks(entries, dispatch_chunksize(len(manifest), workers))

    def _collect(pool: ProcessPoolExecutor) -> None:
        futures = [pool.submit(_execute_chunk_plain, chunk) for chunk in chunks]
        for future in as_completed(futures):
            for index, value in future.result():
                results[index] = value

    if executor is not None:
        executor.dispatches += 1
        executor.tasks_executed += len(manifest)
        _collect(executor.pool())
    else:
        with ProcessPoolExecutor(max_workers=min(workers, len(manifest))) as pool:
            _collect(pool)
    return results


def _dispatch_routed(manifest: Sequence[SessionTask], indices: list[int],
                     keys: list[str | None], store: Any, workers: int,
                     results: list[Any],
                     executor: CampaignExecutor | None) -> None:
    """Store-routed parallel execution of the miss set, in place.

    Workers write results into the store and return keys; completed
    chunks stream back via ``as_completed`` (no buffering until the
    whole miss set finishes).  The parent materializes routed results
    from disk in manifest order at the end; a result evicted between
    the worker's write and the parent's read is recomputed in-process,
    so the output never depends on store retention.
    """
    chunksize = dispatch_chunksize(len(indices), workers)
    chunks = _grouped_chunks([(i, manifest[i], keys[i]) for i in indices],
                             chunksize)

    def _consume(outcomes: Iterable[tuple[int, str | None, Any, int]],
                 routed: dict[int, str]) -> None:
        for index, key, value, nbytes in outcomes:
            if key is not None:
                routed[index] = key
                store.note_routed_write(nbytes)
                if executor is not None:
                    executor.tasks_routed += 1
            else:
                results[index] = value

    routed: dict[int, str] = {}
    if executor is not None:
        executor.dispatches += 1
        executor.tasks_executed += len(indices)
        pool = executor.pool()
        futures = [pool.submit(_execute_chunk_routed, chunk) for chunk in chunks]
        for future in as_completed(futures):
            _consume(future.result(), routed)
    else:
        config = (str(store.root), store.max_bytes)
        with ProcessPoolExecutor(max_workers=min(workers, len(indices)),
                                 initializer=_pool_initializer,
                                 initargs=(config, True)) as pool:
            futures = [pool.submit(_execute_chunk_routed, chunk) for chunk in chunks]
            for future in as_completed(futures):
                _consume(future.result(), routed)

    for index in sorted(routed):
        try:
            results[index] = store.read(routed[index])
        except KeyError:  # evicted/corrupted since the worker wrote it
            value = manifest[index].execute()
            results[index] = value
            # Heal the store and account the extra execution, or a warm
            # replay after mid-flight eviction silently degrades.
            store.put(routed[index], value, task=manifest[index])
            if executor is not None:
                executor.tasks_recomputed += 1


def _run_reduced(manifest: list[SessionTask], workers: int, store: Any,
                 executor: CampaignExecutor | None, transport: str,
                 reduction: Any) -> Any:
    """Reducing execution: fold every session into one merged sketch.

    The parent sweeps the manifest in order, folding store hits locally
    (one decoded result live at a time) and absorbing workers' per-task
    sketches from the ordered chunk stream, so the left-fold order — and
    the merged sketch, byte for byte — matches the serial run for any
    worker count and either transport.  With a store, the merged
    campaign-level sketch is memoized under
    :func:`repro.store.keys.reduce_key`; a later identical call is a
    single store read.
    """
    stats = reduction.stats if isinstance(getattr(reduction, "stats", None), dict) else None
    n_tasks = len(manifest)
    keys = ([store.task_key(task) for task in manifest] if store is not None
            else [None] * n_tasks)

    # Campaign-level sketch memo: one entry covering the whole manifest.
    memo_state = "off"
    memo_key = None
    if (store is not None and manifest and hasattr(reduction, "fingerprint")
            and all(key is not None for key in keys)):
        from repro.store.keys import reduce_key

        memo_key = reduce_key(reduction.fingerprint(), keys, salt=store.salt)
        memo_state = "miss"
        if store.contains(memo_key):
            try:
                cached = store.get(memo_key)
            except KeyError:
                pass
            else:
                if hasattr(cached, "groups") and hasattr(cached, "merge"):
                    if stats is not None:
                        stats.update(sessions=n_tasks, folded_local=0,
                                     folded_workers=0, memo="hit")
                    return cached

    acc: Any = None
    folded_local = 0
    folded_workers = 0

    def _fold_local(index: int, value: Any) -> None:
        nonlocal acc, folded_local
        sketch = reduction.fold(manifest[index], value)
        acc = sketch if acc is None else reduction.merge(acc, sketch)
        folded_local += 1

    def _absorb(sketch: Any) -> None:
        nonlocal acc, folded_workers
        acc = sketch if acc is None else reduction.merge(acc, sketch)
        folded_workers += 1

    hit = [key is not None and store.contains(key) for key in keys] \
        if store is not None else [False] * n_tasks
    miss_indices = [index for index in range(n_tasks) if not hit[index]]

    def _fold_hit(index: int) -> None:
        try:
            value = store.get(keys[index])
        except KeyError:  # evicted/corrupted since the probe
            value = manifest[index].execute()
            store.put(keys[index], value, task=manifest[index])
        _fold_local(index, value)

    if workers == 1 or len(miss_indices) <= 1:
        # Serial sweep with cohort execution: misses stream out of
        # grouped chunks (ascending, since grouping preserves entry
        # order) and interleave with hit folds in manifest order.
        miss_chunks = _grouped_chunks(
            [(i, manifest[i], keys[i]) for i in miss_indices], _MAX_CHUNK)
        stream = (item for chunk in miss_chunks for item in _chunk_values(chunk))
        for index in range(n_tasks):
            if hit[index]:
                _fold_hit(index)
                continue
            out_index, task, key, value = next(stream)
            if out_index != index:
                raise RuntimeError(
                    f"reduce stream out of order: got task {out_index}, "
                    f"expected {index}")
            if store is not None and key is not None:
                store.put(key, value, task=task)
            _fold_local(index, value)
    else:
        routable = executor.routes_for(store) if executor is not None else True
        route = store is not None and (
            transport == "store" or (transport == "auto" and routable))
        chunksize = dispatch_chunksize(len(miss_indices), workers)
        chunks = _grouped_chunks([(i, manifest[i], keys[i] if route else None)
                                  for i in miss_indices], chunksize)

        def _sweep(futures: list) -> None:
            stream = (outcome for future in futures for outcome in future.result())
            for index in range(n_tasks):
                if hit[index]:
                    _fold_hit(index)
                    continue
                out_index, sketch, routed_key, nbytes = next(stream)
                if out_index != index:
                    raise RuntimeError(
                        f"reduce stream out of order: got task {out_index}, "
                        f"expected {index}")
                if routed_key is not None:
                    store.note_routed_write(nbytes)
                    if executor is not None:
                        executor.tasks_routed += 1
                _absorb(sketch)

        if executor is not None:
            executor.dispatches += 1
            executor.tasks_executed += len(miss_indices)
            pool = executor.pool()
            _sweep([pool.submit(_execute_chunk_reduced, chunk, reduction)
                    for chunk in chunks])
        else:
            config = ((str(store.root), store.max_bytes)
                      if store is not None and route else None)
            with ProcessPoolExecutor(max_workers=min(workers, len(miss_indices)),
                                     initializer=_pool_initializer,
                                     initargs=(config, True)) as pool:
                _sweep([pool.submit(_execute_chunk_reduced, chunk, reduction)
                        for chunk in chunks])

    if acc is None:
        acc = reduction.empty() if hasattr(reduction, "empty") else None
    if memo_key is not None and acc is not None and memo_state == "miss":
        if store.put(memo_key, acc, label=f"reduce[{n_tasks}]"):
            memo_state = "write"
    if stats is not None:
        stats.update(sessions=n_tasks, folded_local=folded_local,
                     folded_workers=folded_workers, memo=memo_state)
    return acc


def run_tasks(tasks: Iterable[SessionTask] | Sequence[SessionTask],
              jobs: int | str | None = 1,
              store: Any | None = None,
              executor: CampaignExecutor | None = None,
              transport: str = "auto",
              reduce: Any | None = None) -> Any:
    """Execute a manifest; results are returned in manifest order.

    ``jobs=1`` runs in-process.  ``jobs>1`` dispatches to a process
    pool; because every task carries its own seed, results are
    bit-identical to the serial run for any worker count.

    ``store`` (a :class:`repro.store.TraceStore`) turns the call into a
    memoized run: the manifest is partitioned into hits — served from
    the store without touching the process pool — and misses, which are
    executed and written back.  On a parallel run misses are
    *store-routed*: each worker writes its result into the store and
    only the key crosses the pipe (see :func:`_dispatch_routed`).
    Tasks whose kwargs cannot be fingerprinted, or whose results the
    store codec does not cover, execute normally every time; the
    returned list is identical to an uncached run either way.

    ``executor`` (a :class:`CampaignExecutor`) supplies a persistent
    pool shared across calls; it overrides ``jobs`` with its own worker
    count.  ``transport`` selects how parallel miss results travel:
    ``"auto"`` routes through the store whenever the workers share one
    (and through shared memory when they do not), ``"pipe"`` forces the
    legacy pickle-the-result path, ``"store"`` requires routing (raises
    if no store is configured), and ``"shm"`` requests the zero-copy
    shared-memory transport, falling back to the pipe on platforms
    without POSIX shm.  Storeless parallel runs under ``"auto"`` use
    shared memory whenever it is available.

    ``reduce`` (e.g. a :class:`repro.core.reduce.CampaignReduction`)
    switches the call into streaming-reduction mode: instead of the
    result list, the return value is the merged sketch of
    ``reduce.fold(task, result)`` over the manifest, left-folded in
    manifest order.  Results are never materialized in the parent —
    peak memory is bounded by one in-flight result per worker — and the
    merged sketch is byte-identical for any ``jobs``/transport
    combination.  With a store, misses still warm the cache and the
    campaign-level sketch itself is memoized.
    """
    if transport not in ("auto", "pipe", "store", "shm"):
        raise ValueError(
            f"transport must be 'auto', 'pipe', 'store' or 'shm', got {transport!r}")
    if transport == "store" and store is None:
        raise ValueError("transport='store' requires a configured store")
    manifest = list(tasks)
    workers = executor.workers if executor is not None else resolve_jobs(jobs)
    if reduce is not None:
        if not (callable(getattr(reduce, "fold", None))
                and callable(getattr(reduce, "merge", None))):
            raise TypeError("reduce must provide fold(task, value) and merge(acc, sketch)")
        return _run_reduced(manifest, workers, store, executor, transport, reduce)
    if store is None:
        return _dispatch(manifest, workers, executor=executor,
                         shm=transport in ("shm", "auto"))

    keys = [store.task_key(task) for task in manifest]
    results: list[Any] = [None] * len(manifest)
    miss_indices: list[int] = []
    for index, (task, key) in enumerate(zip(manifest, keys)):
        if key is not None:
            try:
                results[index] = store.get(key)
                continue
            except KeyError:
                pass
        miss_indices.append(index)
    if not miss_indices:
        return results

    routable = executor.routes_for(store) if executor is not None else True
    route = transport == "store" or (transport == "auto" and routable)
    use_shm = (not route and transport in ("shm", "auto")
               and shm_transport_available())
    if workers == 1 or len(miss_indices) == 1:
        # Serial path: execute in manifest order (cohort runs as tensor
        # passes), stream each write.
        miss_chunks = _grouped_chunks(
            [(i, manifest[i], keys[i]) for i in miss_indices], _MAX_CHUNK)
        for chunk in miss_chunks:
            for index, task, key, value in _chunk_values(
                    chunk, arena_factory=_local_arena_factory):
                results[index] = value
                if key is not None:
                    store.put(key, value, task=task)
    elif route:
        _dispatch_routed(manifest, miss_indices, keys, store, workers,
                         results, executor)
    elif use_shm:
        # Zero-copy transport with a warm-up side effect: the parent
        # writes misses back to the store after materializing them, so
        # the cache state matches the routed path.
        _dispatch_shm(manifest, miss_indices, workers, results, executor)
        for index in miss_indices:
            if keys[index] is not None:
                store.put(keys[index], results[index], task=manifest[index])
    else:
        # Pipe transport: results pickle back; completed chunks stream
        # in and write through as they land.
        chunksize = dispatch_chunksize(len(miss_indices), workers)
        chunks = _grouped_chunks([(i, manifest[i], None) for i in miss_indices],
                                 chunksize)

        def _backfill(pool: ProcessPoolExecutor) -> None:
            futures = [pool.submit(_execute_chunk_plain, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for index, value in future.result():
                    results[index] = value
                    if keys[index] is not None:
                        store.put(keys[index], value, task=manifest[index])

        if executor is not None:
            executor.dispatches += 1
            executor.tasks_executed += len(miss_indices)
            _backfill(executor.pool())
        else:
            with ProcessPoolExecutor(max_workers=min(workers, len(miss_indices))) as pool:
                _backfill(pool)
    return results
