"""PHY user-plane latency decomposition — §4.3 of the paper.

The paper defines user-plane delay as PHY DL plus UL latency and shows
it is driven by the TDD frame structure, not the channel bandwidth:
with BLER = 0, Vodafone Italy (DDDDDDDSUU) sees 6.93 ms while Vodafone
Germany (DDDSU) sees 2.13 ms; BLER > 0 adds a HARQ-retransmission tail.

The model decomposes a round into:

- **DL leg**: alignment wait to the next DL opportunity + slot
  transmission + UE processing;
- **UL leg**: either *configured-grant* access (wait for the next UL
  opportunity + transmission + gNB processing) or *SR-based* access
  (wait for an UL opportunity to send the scheduling request + grant
  round trip through a DL slot + wait for the next UL opportunity +
  transmission + processing).  Sparse-UL patterns like DDDDDDDSUU make
  the SR path dramatically more expensive — which is exactly the
  V_It-vs-V_Ge gap.

Both an analytic mean and a Monte Carlo sampler (for distributions /
box plots) are provided.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nr.numerology import Numerology, slot_duration_ms
from repro.nr.tdd import SlotType, TddPattern


@dataclass(frozen=True)
class LatencyBreakdown:
    """Mean latency components in ms."""

    dl_alignment: float
    dl_transmission: float
    ue_processing: float
    sr_alignment: float
    grant_round_trip: float
    ul_alignment: float
    ul_transmission: float
    gnb_processing: float

    @property
    def dl_latency_ms(self) -> float:
        return self.dl_alignment + self.dl_transmission + self.ue_processing

    @property
    def ul_latency_ms(self) -> float:
        return (
            self.sr_alignment + self.grant_round_trip
            + self.ul_alignment + self.ul_transmission + self.gnb_processing
        )

    @property
    def total_ms(self) -> float:
        """User-plane delay: PHY DL + UL latency."""
        return self.dl_latency_ms + self.ul_latency_ms


@dataclass(frozen=True)
class UserPlaneLatencyModel:
    """User-plane latency for one deployment.

    Parameters
    ----------
    pattern:
        TDD pattern (the §4.3 driver).
    mu:
        Numerology (30 kHz SCS for all studied mid-band channels).
    sr_based_ul:
        ``True`` when UL access requires a scheduling request (sparse-UL
        deployments); ``False`` for configured-grant-style UL.
    ue_processing_ms, gnb_processing_ms:
        Decode/prepare times at each end.
    retx_fraction:
        Fraction of packets in a BLER>0 window that actually suffer a
        retransmission (dilution of the HARQ penalty in the bucket mean).
    """

    pattern: TddPattern
    mu: Numerology = Numerology.MU_1
    sr_based_ul: bool = False
    ue_processing_ms: float = 0.30
    gnb_processing_ms: float = 0.25
    retx_fraction: float = 0.10

    def __post_init__(self) -> None:
        if not 0.0 <= self.retx_fraction <= 1.0:
            raise ValueError("retx_fraction must lie in [0, 1]")

    @property
    def slot_ms(self) -> float:
        return slot_duration_ms(self.mu)

    # ------------------------------------------------------------------ #
    # Analytic means
    # ------------------------------------------------------------------ #
    def breakdown(self) -> LatencyBreakdown:
        """Mean latency decomposition with BLER = 0."""
        dl_wait = self.pattern.mean_wait_ms(SlotType.DL, self.mu)
        ul_wait = self.pattern.mean_wait_ms(SlotType.UL, self.mu)
        if self.sr_based_ul:
            sr_alignment = ul_wait
            grant_round_trip = (
                self.gnb_processing_ms            # gNB decodes the SR
                + self.pattern.mean_wait_ms(SlotType.DL, self.mu)
                + self.ue_processing_ms           # UE decodes the grant
            )
        else:
            sr_alignment = 0.0
            grant_round_trip = 0.0
        return LatencyBreakdown(
            dl_alignment=dl_wait,
            dl_transmission=self.slot_ms,
            ue_processing=self.ue_processing_ms,
            sr_alignment=sr_alignment,
            grant_round_trip=grant_round_trip,
            ul_alignment=ul_wait,
            ul_transmission=self.slot_ms,
            gnb_processing=self.gnb_processing_ms,
        )

    def mean_latency_ms(self, bler_positive: bool = False) -> float:
        """Mean user-plane delay; with ``bler_positive`` the HARQ tail of
        the BLER>0 measurement bucket is added."""
        total = self.breakdown().total_ms
        if bler_positive:
            total += self.retx_fraction * self.harq_penalty_ms()
        return total

    def harq_penalty_ms(self) -> float:
        """Extra delay of one HARQ retransmission.

        NACK decode + the wait until the next opportunity in the failed
        direction + the retransmission slot.  DL and UL failures are
        weighted equally (both directions carry traffic in the round).
        """
        dl_extra = self.gnb_processing_ms + self.pattern.mean_wait_ms(SlotType.DL, self.mu) + self.slot_ms
        ul_extra = self.ue_processing_ms + self.pattern.mean_wait_ms(SlotType.UL, self.mu) + self.slot_ms
        return 0.5 * (dl_extra + ul_extra)

    # ------------------------------------------------------------------ #
    # Monte Carlo
    # ------------------------------------------------------------------ #
    def _wait_from_phase(self, phase_slots: float, direction: SlotType) -> float:
        """Exact wait (ms) from a fractional slot position to the start
        of the next slot carrying ``direction``."""
        slot = int(phase_slots)
        residual = (slot + 1 - phase_slots) * self.slot_ms
        whole = self.pattern.wait_slots(direction, slot + 1) * self.slot_ms
        return residual + whole

    def sample(
        self,
        n: int,
        rng: np.random.Generator | None = None,
        retx_probability: float = 0.0,
    ) -> np.ndarray:
        """Sample ``n`` user-plane delays (ms) with uniform arrival phases.

        Each sampled packet independently suffers a HARQ retransmission
        with ``retx_probability``.
        """
        if n < 1:
            raise ValueError("n must be positive")
        if not 0.0 <= retx_probability <= 1.0:
            raise ValueError("retx_probability must lie in [0, 1]")
        rng = rng or np.random.default_rng()
        period = self.pattern.period_slots
        phases = rng.random(n) * period
        delays = np.empty(n)
        for i, phase in enumerate(phases):
            t = self._wait_from_phase(float(phase), SlotType.DL)
            t += self.slot_ms + self.ue_processing_ms
            cursor = (phase + t / self.slot_ms) % period
            if self.sr_based_ul:
                sr_wait = self._wait_from_phase(float(cursor), SlotType.UL)
                t += sr_wait + self.gnb_processing_ms
                cursor = (cursor + (sr_wait + self.gnb_processing_ms) / self.slot_ms) % period
                grant_wait = self._wait_from_phase(float(cursor), SlotType.DL)
                t += grant_wait + self.ue_processing_ms
                cursor = (cursor + (grant_wait + self.ue_processing_ms) / self.slot_ms) % period
            ul_wait = self._wait_from_phase(float(cursor), SlotType.UL)
            t += ul_wait + self.slot_ms + self.gnb_processing_ms
            delays[i] = t
        if retx_probability > 0.0:
            retx = rng.random(n) < retx_probability
            delays = delays + retx * self.harq_penalty_ms()
        return delays
