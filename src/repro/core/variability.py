"""Scaled variability metrics — §5 eq. (1) of the paper.

Given samples ``x_1 .. x_n`` at base granularity ``tau`` (slot level,
0.5 ms), the variability at time scale ``t = 2^k * tau`` is::

    V(t) = 1/(m-1) * sum_{j=1}^{m-1} |X_{j+1} - X_j|

where ``X_j`` is the average of the samples falling in the j-th window
of length ``t`` and ``m = T / t`` is the number of windows.  V(t) is the
mean absolute first difference of the t-averaged series — inspired by
bounded variation; larger V(t) means the series moves more at scale t.

The paper evaluates V(t) for throughput, MCS and MIMO-layer series from
0.5 ms to 2 s (Fig. 12), and uses a joint MCS+MIMO variability as the
channel-instability proxy driving QoE (Fig. 15).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Default fraction of a window's samples that must be valid (non-NaN)
#: for the window average to count; sparser windows become NaN and their
#: first differences drop out of V(t).
MIN_VALID_FRACTION = 0.5


def block_averages(samples: np.ndarray, block: int,
                   min_valid_fraction: float = MIN_VALID_FRACTION) -> np.ndarray:
    """Averages of consecutive non-overlapping blocks of length ``block``.

    The trailing partial block is dropped (each window must cover a full
    ``t`` interval).  NaN samples (outage gaps) are excluded from their
    window's average; a window with fewer than ``min_valid_fraction`` of
    its samples valid averages to NaN.  Gap-free input takes the exact
    ``mean(axis=1)`` path, bit-identical to the pre-NaN-aware behavior.
    """
    samples = np.asarray(samples, dtype=float)
    if block < 1:
        raise ValueError("block must be a positive number of samples")
    if not 0.0 < min_valid_fraction <= 1.0:
        raise ValueError("min_valid_fraction must be in (0, 1]")
    m = samples.size // block
    if m == 0:
        return np.array([])
    windows = samples[: m * block].reshape(m, block)
    invalid = np.isnan(windows)
    if not invalid.any():
        return windows.mean(axis=1)
    n_valid = block - invalid.sum(axis=1)
    sums = np.where(invalid, 0.0, windows).sum(axis=1)
    with np.errstate(invalid="ignore"):
        averages = sums / n_valid
    averages[n_valid < min_valid_fraction * block] = np.nan
    return averages


def abs_diff_stats(samples: np.ndarray, block: int,
                   min_valid_fraction: float = MIN_VALID_FRACTION) -> tuple[float, int]:
    """``(sum, count)`` of valid absolute first differences at one scale.

    The mergeable form of :func:`scaled_variability`: V(t) is exactly
    ``sum / count``, and per-session ``(sum, count)`` pairs add across a
    campaign to pool the metric.  Differences touching a NaN window
    average are dropped from both the sum and the count.
    """
    averaged = block_averages(samples, block, min_valid_fraction)
    if averaged.size < 2:
        return 0.0, 0
    diffs = np.abs(np.diff(averaged))
    invalid = np.isnan(diffs)
    if invalid.any():
        diffs = diffs[~invalid]
    if diffs.size == 0:
        return 0.0, 0
    return float(diffs.sum()), int(diffs.size)


def scaled_variability(samples: np.ndarray, block: int,
                       min_valid_fraction: float = MIN_VALID_FRACTION) -> float:
    """V(t) for time scale ``t = block * tau`` (eq. 1).

    Returns ``nan`` when fewer than two full windows exist or every
    first difference touches a below-threshold (NaN) window average —
    the metric is undefined there.
    """
    total, count = abs_diff_stats(samples, block, min_valid_fraction)
    if count == 0:
        return float("nan")
    return total / count


def variability_profile(
    samples: np.ndarray,
    base_interval_ms: float,
    max_scale_ms: float = 2000.0,
    min_valid_fraction: float = MIN_VALID_FRACTION,
) -> tuple[np.ndarray, np.ndarray]:
    """V(t) across dyadic time scales ``t = 2^k * tau`` (Fig. 12).

    Returns ``(scales_ms, v)``; scales run from the base interval up to
    ``max_scale_ms`` (inclusive when it is a power-of-two multiple).
    Scales with fewer than two full windows are omitted.
    """
    if base_interval_ms <= 0:
        raise ValueError("base_interval_ms must be positive")
    samples = np.asarray(samples, dtype=float)
    scales: list[float] = []
    values: list[float] = []
    block = 1
    while block * base_interval_ms <= max_scale_ms:
        v = scaled_variability(samples, block, min_valid_fraction)
        if not np.isnan(v):
            scales.append(block * base_interval_ms)
            values.append(v)
        block *= 2
    return np.array(scales), np.array(values)


def segment_variability(
    samples: np.ndarray,
    block: int,
    segment: int,
) -> np.ndarray:
    """V(t) of consecutive sub-sequences of ``segment`` samples each.

    §5: "We can also segment a long sequence into multiple
    sub-sequences, and quantify the variability of the sub-sequences."
    Used to attach error bars (mean ± std) to the Fig. 12 profiles.
    """
    samples = np.asarray(samples, dtype=float)
    if segment < 2 * block:
        raise ValueError("segment must hold at least two windows of the target scale")
    n_segments = samples.size // segment
    return np.array([
        scaled_variability(samples[i * segment : (i + 1) * segment], block)
        for i in range(n_segments)
    ])


@dataclass(frozen=True)
class JointVariability:
    """Joint (MCS, MIMO) variability point, the Fig. 15 x/y pair."""

    mcs: float
    mimo: float

    @property
    def magnitude(self) -> float:
        """Euclidean norm — a scalar channel-instability score."""
        return float(np.hypot(self.mcs, self.mimo))


def joint_variability(
    mcs_series: np.ndarray,
    mimo_series: np.ndarray,
    block: int,
) -> JointVariability:
    """Joint MCS/MIMO-layer variability at one time scale (Figs. 14, 15)."""
    return JointVariability(
        mcs=scaled_variability(mcs_series, block),
        mimo=scaled_variability(mimo_series, block),
    )


def stabilization_scale_ms(
    samples: np.ndarray,
    base_interval_ms: float,
    max_scale_ms: float = 2000.0,
    tolerance: float = 0.05,
) -> float:
    """Smallest scale at which V(t) stops changing appreciably.

    §5 observes throughput variability "stabilizes" around 0.2-0.5 s;
    this finds the first dyadic scale whose V changes by less than
    ``tolerance`` (relative, in absolute value) from the previous scale.
    Measured throughput profiles decrease toward that plateau; smooth
    processes (e.g. an AR(1) SINR) first *rise* to their coherence scale
    — the flatness criterion handles both shapes.
    Returns ``nan`` when the profile never stabilizes in range.
    """
    scales, values = variability_profile(samples, base_interval_ms, max_scale_ms)
    for k in range(1, scales.size):
        if values[k - 1] <= 0:
            return float(scales[k - 1])
        if abs(values[k] - values[k - 1]) / values[k - 1] < tolerance:
            return float(scales[k])
    return float("nan")
