"""Mergeable per-session sketches — streaming KPI reduction.

The paper's headline results (Figs. 1, 3, 12; Tables 2-3) are
distribution summaries over thousands of sessions: means, CDF
percentiles, scaled-variability profiles.  Materializing a full
per-slot :class:`~repro.xcal.records.SlotTrace` per session makes
memory — not compute — the campaign-size ceiling.  This module defines
the mergeable sketch a worker folds each session into so only the
sketch (a few KB, independent of session length) crosses the process
boundary, and ``run_tasks(..., reduce=...)`` can left-fold a
million-session campaign without ever holding more than one in-flight
trace per worker.

Exact-vs-approximate contract (the documented tolerances):

- **Bit-exact**: session counts, slot counts, delivered bits (integer
  sums), per-group min/max session throughput, and — for a single
  session per group — the pooled variability profile, which collapses
  to :func:`repro.core.variability.scaled_variability` by construction.
- **Exact within float accumulation order** (observed ≲ 1e-12
  relative): means and total minutes/GB.  Scalar folds use
  Neumaier-compensated summation; numpy's pairwise ``mean`` and the
  compensated left-fold agree to that tolerance but are not
  bit-identical in general.
- **Approximate with a hard bound**: percentiles come from a fixed-bin
  histogram over ``[quantile_lo, quantile_hi]``; any percentile of
  in-range data is off by at most half a bin width
  (:attr:`QuantileSketch.resolution` / 2).  Out-of-range mass clamps
  into the edge bins, and estimates always clamp to the exact observed
  ``[min, max]``.
- Standard deviation merges per Chan et al.'s pairwise ``m2`` update
  (observed ≲ 1e-9 relative vs. two-pass numpy).

Determinism: a sketch folded from the same manifest is byte-identical
(via :func:`repro.store.codec.encode`) for any worker count and either
transport, because workers ship *per-task* sketches and the parent
merges them in manifest order — the merge tree never depends on
scheduling.  Cohort execution keeps that shape: a cohort tensor pass
yields its columns one at a time in cohort (manifest) order, each
folded into a per-task sketch as it streams out, so the fold never
materializes a cohort's traces together and the merge tree is the
same whether sessions ran singly or batched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.stats import Summary
from repro.core.variability import MIN_VALID_FRACTION, abs_diff_stats

__all__ = [
    "CampaignReduction",
    "CampaignSketch",
    "GroupSketch",
    "MomentSketch",
    "QuantileSketch",
    "VariabilitySketch",
]

#: Bump when the serialized sketch layout changes (invalidates stored
#: campaign-level sketches through the reduce-key payload).
SKETCH_SCHEMA_VERSION = 1


def _neumaier(total: float, comp: float, x: float) -> tuple[float, float]:
    """One Neumaier-compensated accumulation step."""
    t = total + x
    if abs(total) >= abs(x):
        comp += (total - t) + x
    else:
        comp += (x - t) + total
    return t, comp


# ---------------------------------------------------------------------- #
# Scalar moments
# ---------------------------------------------------------------------- #
@dataclass(eq=False)
class MomentSketch:
    """Streaming count/sum/min/max/second-moment of a scalar KPI.

    The sum carries a Neumaier compensation term; ``m2`` (sum of squared
    deviations) merges with Chan et al.'s pairwise update, so folds and
    merges commute with plain accumulation up to float rounding.
    """

    count: int = 0
    total: float = 0.0
    comp: float = 0.0
    m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def add(self, x: float) -> None:
        x = float(x)
        if self.count == 0:
            self.count, self.total, self.comp, self.m2 = 1, x, 0.0, 0.0
            self.minimum = self.maximum = x
            return
        na = self.count
        delta = x - self.mean
        self.m2 += delta * delta * (na / (na + 1))
        self.count = na + 1
        self.total, self.comp = _neumaier(self.total, self.comp, x)
        self.minimum = min(self.minimum, x)
        self.maximum = max(self.maximum, x)

    def merge(self, other: "MomentSketch") -> "MomentSketch":
        if other.count == 0:
            return self
        if self.count == 0:
            self.count, self.total, self.comp = other.count, other.total, other.comp
            self.m2, self.minimum, self.maximum = other.m2, other.minimum, other.maximum
            return self
        na, nb = self.count, other.count
        delta = other.mean - self.mean
        self.m2 = self.m2 + other.m2 + delta * delta * (na * nb / (na + nb))
        self.count = na + nb
        self.total, self.comp = _neumaier(self.total, self.comp, other.total)
        self.total, self.comp = _neumaier(self.total, self.comp, other.comp)
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    @property
    def mean(self) -> float:
        if self.count == 0:
            return float("nan")
        return (self.total + self.comp) / self.count

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1), 0.0 for a single sample —
        mirrors :func:`repro.core.stats.summarize`."""
        if self.count == 0:
            return float("nan")
        if self.count == 1:
            return 0.0
        return math.sqrt(max(self.m2, 0.0) / (self.count - 1))

    def state(self) -> dict:
        return {
            "count": int(self.count),
            "total": float(self.total),
            "comp": float(self.comp),
            "m2": float(self.m2),
            "min": None if self.count == 0 else float(self.minimum),
            "max": None if self.count == 0 else float(self.maximum),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MomentSketch":
        return cls(count=int(state["count"]), total=float(state["total"]),
                   comp=float(state["comp"]), m2=float(state["m2"]),
                   minimum=math.inf if state["min"] is None else float(state["min"]),
                   maximum=-math.inf if state["max"] is None else float(state["max"]))


# ---------------------------------------------------------------------- #
# Quantiles
# ---------------------------------------------------------------------- #
@dataclass(eq=False)
class QuantileSketch:
    """Fixed-bin histogram for percentile estimates.

    ``n_bins`` equal-width bins over ``[lo, hi)``; out-of-range values
    clamp into the edge bins.  A percentile is estimated by walking the
    cumulative counts to the target order-statistic rank (numpy's
    ``linear`` convention, rank ``q/100 * (n-1)``) and placing each
    bracketing order statistic at its bin midpoint, then clamping to the
    exact observed min/max tracked by the paired :class:`MomentSketch`.
    For data inside ``[lo, hi]`` the error is at most half a bin width.
    """

    lo: float
    hi: float
    counts: np.ndarray

    def __init__(self, lo: float, hi: float, n_bins: int = 1024,
                 counts: np.ndarray | None = None) -> None:
        if not (hi > lo):
            raise ValueError("quantile sketch needs hi > lo")
        if n_bins < 1:
            raise ValueError("quantile sketch needs at least one bin")
        self.lo = float(lo)
        self.hi = float(hi)
        if counts is None:
            counts = np.zeros(n_bins, dtype=np.int64)
        self.counts = np.asarray(counts, dtype=np.int64)

    @property
    def n_bins(self) -> int:
        return int(self.counts.size)

    @property
    def resolution(self) -> float:
        """Bin width — percentile error is bounded by half of this."""
        return (self.hi - self.lo) / self.n_bins

    def add(self, x: float) -> None:
        b = int((float(x) - self.lo) / self.resolution)
        self.counts[min(max(b, 0), self.n_bins - 1)] += 1

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        if (other.lo, other.hi, other.n_bins) != (self.lo, self.hi, self.n_bins):
            raise ValueError("cannot merge quantile sketches with different bins")
        self.counts += other.counts
        return self

    def _value_at_rank(self, rank: int, cumulative: np.ndarray) -> float:
        b = int(np.searchsorted(cumulative, rank, side="right"))
        return self.lo + (b + 0.5) * self.resolution

    def percentile(self, q: float, minimum: float, maximum: float) -> float:
        """Estimated ``q``-th percentile, clamped to the exact
        ``[minimum, maximum]`` observed by the paired moment sketch."""
        n = int(self.counts.sum())
        if n == 0:
            return float("nan")
        if minimum == maximum:
            return float(minimum)
        cumulative = np.cumsum(self.counts)
        rank = (q / 100.0) * (n - 1)
        low_rank = int(math.floor(rank))
        value = self._value_at_rank(low_rank, cumulative)
        frac = rank - low_rank
        if frac > 0.0:
            value += frac * (self._value_at_rank(low_rank + 1, cumulative) - value)
        return float(min(max(value, minimum), maximum))

    def state(self) -> dict:
        return {"lo": float(self.lo), "hi": float(self.hi), "n_bins": self.n_bins}


# ---------------------------------------------------------------------- #
# Scaled variability
# ---------------------------------------------------------------------- #
@dataclass(eq=False)
class VariabilitySketch:
    """Streaming pooled V(t) accumulators per dyadic block size.

    Per scale ``t = 2^k * base_interval_ms`` this keeps the
    (compensated) sum of absolute first differences and their count,
    pooled across sessions; ``V(t) = sum / count`` — for one session
    this is exactly :func:`repro.core.variability.scaled_variability`,
    for many it is the sample-weighted pooled mean.
    """

    base_interval_ms: float
    max_scale_ms: float = 2048.0
    min_valid_fraction: float = MIN_VALID_FRACTION
    sums: list = field(default_factory=list)
    comps: list = field(default_factory=list)
    counts: list = field(default_factory=list)

    def _grow(self, n_scales: int) -> None:
        while len(self.sums) < n_scales:
            self.sums.append(0.0)
            self.comps.append(0.0)
            self.counts.append(0)

    def fold_series(self, samples: np.ndarray) -> None:
        samples = np.asarray(samples, dtype=float)
        block, k = 1, 0
        while block * self.base_interval_ms <= self.max_scale_ms:
            total, count = abs_diff_stats(samples, block, self.min_valid_fraction)
            if count:
                self._grow(k + 1)
                self.sums[k], self.comps[k] = _neumaier(self.sums[k], self.comps[k], total)
                self.counts[k] += count
            block *= 2
            k += 1

    def merge(self, other: "VariabilitySketch") -> "VariabilitySketch":
        if (other.base_interval_ms, other.max_scale_ms) != \
                (self.base_interval_ms, self.max_scale_ms):
            raise ValueError("cannot merge variability sketches with different scales")
        self._grow(len(other.sums))
        for k in range(len(other.sums)):
            self.sums[k], self.comps[k] = _neumaier(self.sums[k], self.comps[k],
                                                    other.sums[k])
            self.sums[k], self.comps[k] = _neumaier(self.sums[k], self.comps[k],
                                                    other.comps[k])
            self.counts[k] += other.counts[k]
        return self

    def profile(self) -> tuple[np.ndarray, np.ndarray]:
        """``(scales_ms, v)`` — the Fig. 12 profile shape, scales with
        no valid differences omitted (matching ``variability_profile``)."""
        scales: list[float] = []
        values: list[float] = []
        for k in range(len(self.sums)):
            if self.counts[k]:
                scales.append((1 << k) * self.base_interval_ms)
                values.append((self.sums[k] + self.comps[k]) / self.counts[k])
        return np.array(scales), np.array(values)

    def state(self) -> dict:
        return {
            "base_interval_ms": float(self.base_interval_ms),
            "max_scale_ms": float(self.max_scale_ms),
            "min_valid_fraction": float(self.min_valid_fraction),
            "sums": [float(v) for v in self.sums],
            "comps": [float(v) for v in self.comps],
            "counts": [int(v) for v in self.counts],
        }

    @classmethod
    def from_state(cls, state: dict) -> "VariabilitySketch":
        return cls(base_interval_ms=float(state["base_interval_ms"]),
                   max_scale_ms=float(state["max_scale_ms"]),
                   min_valid_fraction=float(state["min_valid_fraction"]),
                   sums=[float(v) for v in state["sums"]],
                   comps=[float(v) for v in state["comps"]],
                   counts=[int(v) for v in state["counts"]])


# ---------------------------------------------------------------------- #
# Per-group and campaign sketches
# ---------------------------------------------------------------------- #
@dataclass(eq=False)
class GroupSketch:
    """All KPI accumulators for one reduction group (operator/direction)."""

    throughput: MomentSketch
    quantiles: QuantileSketch
    n_slots: int = 0
    total_bits: int = 0
    duration_total: float = 0.0
    duration_comp: float = 0.0
    slot_ms: float | None = None
    variability: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        return self.throughput.count

    @property
    def duration_s(self) -> float:
        return self.duration_total + self.duration_comp

    def fold_session(self, mean_throughput: float, n_slots: int, bits: int,
                     duration_s: float) -> None:
        self.throughput.add(mean_throughput)
        self.quantiles.add(mean_throughput)
        self.n_slots += int(n_slots)
        self.total_bits += int(bits)
        self.duration_total, self.duration_comp = _neumaier(
            self.duration_total, self.duration_comp, float(duration_s))

    def merge(self, other: "GroupSketch") -> "GroupSketch":
        self.throughput.merge(other.throughput)
        self.quantiles.merge(other.quantiles)
        self.n_slots += other.n_slots
        self.total_bits += other.total_bits
        self.duration_total, self.duration_comp = _neumaier(
            self.duration_total, self.duration_comp, other.duration_total)
        self.duration_total, self.duration_comp = _neumaier(
            self.duration_total, self.duration_comp, other.duration_comp)
        if self.slot_ms is None:
            self.slot_ms = other.slot_ms
        elif other.slot_ms is not None and other.slot_ms != self.slot_ms:
            raise ValueError("cannot merge groups with different slot durations")
        for kpi, sketch in other.variability.items():
            mine = self.variability.get(kpi)
            if mine is None:
                self.variability[kpi] = sketch
            else:
                mine.merge(sketch)
        return self

    def summary(self) -> Summary:
        """The :func:`repro.core.stats.summarize` shape over per-session
        mean throughputs (count/mean/std/min/max per the moment sketch,
        percentiles per the quantile sketch)."""
        n = self.throughput.count
        if n == 0:
            nan = float("nan")
            return Summary(0, nan, nan, nan, nan, nan, nan, nan)
        lo, hi = self.throughput.minimum, self.throughput.maximum
        return Summary(
            n=n,
            mean=self.throughput.mean,
            std=self.throughput.std,
            minimum=lo,
            p25=self.quantiles.percentile(25.0, lo, hi),
            median=self.quantiles.percentile(50.0, lo, hi),
            p75=self.quantiles.percentile(75.0, lo, hi),
            maximum=hi,
        )

    def state(self) -> dict:
        return {
            "throughput": self.throughput.state(),
            "quantiles": self.quantiles.state(),
            "n_slots": int(self.n_slots),
            "total_bits": int(self.total_bits),
            "duration": [float(self.duration_total), float(self.duration_comp)],
            "slot_ms": None if self.slot_ms is None else float(self.slot_ms),
            "variability": {kpi: sketch.state()
                            for kpi, sketch in sorted(self.variability.items())},
        }

    @classmethod
    def from_state(cls, state: dict, qcounts: np.ndarray) -> "GroupSketch":
        qmeta = state["quantiles"]
        return cls(
            throughput=MomentSketch.from_state(state["throughput"]),
            quantiles=QuantileSketch(qmeta["lo"], qmeta["hi"], qmeta["n_bins"],
                                     counts=qcounts),
            n_slots=int(state["n_slots"]),
            total_bits=int(state["total_bits"]),
            duration_total=float(state["duration"][0]),
            duration_comp=float(state["duration"][1]),
            slot_ms=None if state["slot_ms"] is None else float(state["slot_ms"]),
            variability={kpi: VariabilitySketch.from_state(vs)
                         for kpi, vs in state["variability"].items()},
        )


@dataclass(eq=False)
class CampaignSketch:
    """Merged campaign state: one :class:`GroupSketch` per group key.

    Groups keep first-fold (manifest) order; ``merge`` consumes the
    right-hand sketch (shared accumulators), matching the runner's
    left-fold usage.
    """

    groups: dict = field(default_factory=dict)

    @property
    def n_sessions(self) -> int:
        return sum(g.n_sessions for g in self.groups.values())

    def group(self, key: str) -> GroupSketch:
        return self.groups[key]

    def merge(self, other: "CampaignSketch") -> "CampaignSketch":
        for key, group in other.groups.items():
            mine = self.groups.get(key)
            if mine is None:
                self.groups[key] = group
            else:
                mine.merge(group)
        return self

    # ------------------------------------------------------------------ #
    # Serialization (repro.store.codec "sketch" payloads)
    # ------------------------------------------------------------------ #
    def to_arrays(self) -> tuple[dict, dict]:
        """``(arrays, meta)`` for deterministic npz encoding: quantile
        count vectors as arrays, everything else as exact JSON scalars."""
        names = list(self.groups)
        arrays = {f"g{i}.qcounts": self.groups[name].quantiles.counts
                  for i, name in enumerate(names)}
        meta = {
            "version": SKETCH_SCHEMA_VERSION,
            "groups": names,
            "data": [self.groups[name].state() for name in names],
        }
        return arrays, meta

    @classmethod
    def from_arrays(cls, arrays: dict, meta: dict) -> "CampaignSketch":
        if meta.get("version") != SKETCH_SCHEMA_VERSION:
            raise ValueError(f"unsupported sketch version {meta.get('version')!r}")
        groups = {}
        for i, name in enumerate(meta["groups"]):
            groups[name] = GroupSketch.from_state(meta["data"][i],
                                                  arrays[f"g{i}.qcounts"])
        return cls(groups=groups)


# ---------------------------------------------------------------------- #
# The reduction
# ---------------------------------------------------------------------- #
#: KPI name -> per-slot series extractor (SlotTrace -> 1-D float array),
#: matching the fig12 series definitions.
def _throughput_series(trace: Any) -> np.ndarray:
    return trace.throughput_mbps(trace.slot_duration_ms)


def _mcs_series(trace: Any) -> np.ndarray:
    from repro.core.timeseries import KpiSeries

    return KpiSeries.from_trace_column(trace, "mcs_index").values


def _mimo_series(trace: Any) -> np.ndarray:
    from repro.core.timeseries import KpiSeries

    return KpiSeries.from_trace_column(trace, "layers").values


_KPI_SERIES = {
    "throughput": _throughput_series,
    "mcs": _mcs_series,
    "mimo": _mimo_series,
}


@dataclass
class CampaignReduction:
    """Fold/merge strategy turning session results into a
    :class:`CampaignSketch`.

    ``group_mode``:

    - ``"campaign"`` — group by ``<operator>/<direction>`` parsed from
      campaign manifest labels (``key/DL/017``);
    - ``"label"`` — one group per full task label (experiment manifests
      where each task is its own reporting unit).

    ``variability_kpis`` opts into per-scale V(t) accumulators (``"throughput"``,
    ``"mcs"``, ``"mimo"``); they cost one pass over the slot series per
    scale, so campaigns that only need throughput summaries leave it
    empty.  Carrier-aggregated results fold their aggregate throughput
    series; MCS/MIMO sketches skip them (no single per-slot series).

    The ``stats`` dict is runner-side accounting (folded/merged counts,
    memo state) surfaced by the CLI's ``[reduce]`` line; it never enters
    the fingerprint.
    """

    group_mode: str = "campaign"
    variability_kpis: tuple = ()
    max_scale_ms: float = 2048.0
    quantile_lo: float = 0.0
    quantile_hi: float = 4096.0
    quantile_bins: int = 1024
    min_valid_fraction: float = MIN_VALID_FRACTION
    stats: dict = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.group_mode not in ("campaign", "label"):
            raise ValueError(f"unknown group_mode {self.group_mode!r}")
        unknown = set(self.variability_kpis) - set(_KPI_SERIES)
        if unknown:
            raise ValueError(f"unknown variability KPIs {sorted(unknown)!r}")
        self.variability_kpis = tuple(self.variability_kpis)

    # -- identity ------------------------------------------------------- #
    def fingerprint(self) -> str:
        """Canonical JSON of the reduction *configuration* (excludes the
        mutable ``stats``) — part of the campaign-level sketch key."""
        from repro.store.keys import canonical_json

        return canonical_json({
            "sketch_version": SKETCH_SCHEMA_VERSION,
            "group_mode": self.group_mode,
            "variability_kpis": list(self.variability_kpis),
            "max_scale_ms": self.max_scale_ms,
            "quantile_lo": self.quantile_lo,
            "quantile_hi": self.quantile_hi,
            "quantile_bins": self.quantile_bins,
            "min_valid_fraction": self.min_valid_fraction,
        })

    # -- folding -------------------------------------------------------- #
    def empty(self) -> CampaignSketch:
        return CampaignSketch()

    def _group_key(self, task: Any) -> str:
        label = getattr(task, "label", "") or ""
        if self.group_mode == "label":
            return label
        key, _, rest = label.rpartition("/")
        operator, _, direction = key.rpartition("/")
        if not operator or not direction:
            raise ValueError(
                f"label {label!r} is not campaign-shaped (<operator>/<DL|UL>/<index>)")
        del rest
        return f"{operator}/{direction}"

    def _new_group(self) -> GroupSketch:
        return GroupSketch(
            throughput=MomentSketch(),
            quantiles=QuantileSketch(self.quantile_lo, self.quantile_hi,
                                     self.quantile_bins),
        )

    def _fold_variability(self, group: GroupSketch, trace: Any) -> None:
        for kpi in self.variability_kpis:
            series = _KPI_SERIES[kpi](trace)
            sketch = group.variability.get(kpi)
            if sketch is None:
                sketch = VariabilitySketch(
                    base_interval_ms=trace.slot_duration_ms,
                    max_scale_ms=self.max_scale_ms,
                    min_valid_fraction=self.min_valid_fraction)
                group.variability[kpi] = sketch
            sketch.fold_series(series)

    def fold(self, task: Any, value: Any) -> CampaignSketch:
        """One session result -> a single-group, single-session sketch."""
        sketch = CampaignSketch()
        group = self._new_group()
        sketch.groups[self._group_key(task)] = group
        per_carrier = getattr(value, "per_carrier", None)
        if per_carrier is not None:  # AggregatedResult
            primary = value.primary
            group.fold_session(
                mean_throughput=value.mean_throughput_mbps,
                n_slots=len(primary),
                bits=sum(t.total_bits for t in per_carrier),
                duration_s=primary.duration_s)
            group.slot_ms = primary.slot_duration_ms
            if "throughput" in self.variability_kpis:
                series = value.throughput_mbps(primary.slot_duration_ms)
                vs = VariabilitySketch(base_interval_ms=primary.slot_duration_ms,
                                       max_scale_ms=self.max_scale_ms,
                                       min_valid_fraction=self.min_valid_fraction)
                vs.fold_series(series)
                group.variability["throughput"] = vs
        else:  # SlotTrace
            group.fold_session(
                mean_throughput=value.mean_throughput_mbps,
                n_slots=len(value),
                bits=value.total_bits,
                duration_s=value.duration_s)
            group.slot_ms = value.slot_duration_ms
            self._fold_variability(group, value)
        return sketch

    def merge(self, acc: CampaignSketch, sketch: CampaignSketch) -> CampaignSketch:
        """Left-fold step: merge ``sketch`` into ``acc`` (consumes both)."""
        return acc.merge(sketch)
