"""Terminal (ASCII) rendering of the paper's chart types.

The experiment harness prints its results as text; these helpers render
the three chart shapes the paper uses — bar comparisons (Figs. 1, 9,
11), line series over time or scale (Figs. 12, 13, 16), and CDFs
(Fig. 3) — as compact ASCII blocks, so `python -m repro run fig12
--plot`-style output works with no plotting dependency.
"""

from __future__ import annotations

import math

import numpy as np

#: Eighth-block characters for smooth horizontal bars.
_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(values: dict[str, float], width: int = 40, unit: str = "") -> str:
    """Horizontal bar chart: one labeled row per entry."""
    if not values:
        raise ValueError("values must be non-empty")
    if width < 4:
        raise ValueError("width must be at least 4")
    maximum = max(values.values())
    scale = width / maximum if maximum > 0 else 0.0
    label_width = max(len(label) for label in values)
    rows = []
    for label, value in values.items():
        length = value * scale
        whole = int(length)
        frac = int((length - whole) * 8)
        bar = "█" * whole + (_BLOCKS[frac] if frac else "")
        rows.append(f"{label:>{label_width}s} | {bar:<{width + 1}s} {value:,.1f}{unit}")
    return "\n".join(rows)


def line_plot(x: np.ndarray, y: np.ndarray, height: int = 10, width: int = 60,
              x_label: str = "", y_label: str = "") -> str:
    """A braille-free scatter/line plot on a character grid."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("x and y must be equal-length with at least two points")
    if height < 2 or width < 8:
        raise ValueError("grid too small")
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    grid = [[" "] * width for _ in range(height)]
    x_span = x.max() - x.min() or 1.0
    y_span = y.max() - y.min() or 1.0
    # Resample along x so long series do not overdraw.
    for xi, yi in zip(x, y):
        col = int((xi - x.min()) / x_span * (width - 1))
        row = height - 1 - int((yi - y.min()) / y_span * (height - 1))
        grid[row][col] = "•"
    top = f"{y.max():10.1f} ┤"
    bottom = f"{y.min():10.1f} ┤"
    lines = []
    for i, row in enumerate(grid):
        prefix = top if i == 0 else (bottom if i == height - 1 else " " * 11 + "│")
        lines.append(prefix + "".join(row))
    axis = " " * 11 + "└" + "─" * width
    footer = f"{'':11s} {x.min():<12.1f}{x_label:^{max(0, width - 24)}s}{x.max():>12.1f}"
    if y_label:
        lines.insert(0, f"{y_label}")
    lines.append(axis)
    lines.append(footer)
    return "\n".join(lines)


def cdf_plot(samples: np.ndarray, width: int = 60, height: int = 10,
             label: str = "") -> str:
    """Render the empirical CDF of a sample."""
    samples = np.asarray(samples, dtype=float)
    samples = samples[np.isfinite(samples)]
    if samples.size < 2:
        raise ValueError("need at least two samples")
    ordered = np.sort(samples)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return line_plot(ordered, probabilities, height=height, width=width,
                     x_label=label, y_label="CDF")


def sparkline(values: np.ndarray, width: int | None = None) -> str:
    """A one-line sparkline (resampled to ``width`` if given)."""
    ticks = "▁▂▃▄▅▆▇█"
    values = np.asarray(values, dtype=float)
    values = values[np.isfinite(values)]
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if width is not None and values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        values = np.array([values[a:b].mean() if b > a else values[min(a, values.size - 1)]
                           for a, b in zip(edges[:-1], edges[1:])])
    span = values.max() - values.min()
    if span == 0:
        return ticks[0] * values.size
    indices = ((values - values.min()) / span * (len(ticks) - 1)).round().astype(int)
    return "".join(ticks[i] for i in indices)


def side_by_side(blocks: list[str], gap: int = 3) -> str:
    """Join several multi-line blocks horizontally."""
    if not blocks:
        raise ValueError("blocks must be non-empty")
    split = [block.splitlines() for block in blocks]
    heights = max(len(lines) for lines in split)
    widths = [max((len(line) for line in lines), default=0) for lines in split]
    rows = []
    for i in range(heights):
        parts = []
        for lines, width in zip(split, widths):
            line = lines[i] if i < len(lines) else ""
            parts.append(line.ljust(width))
        rows.append((" " * gap).join(parts).rstrip())
    return "\n".join(rows)
