"""KPI time-series container with resampling.

A thin numpy-backed series abstraction: values on a uniform time grid,
resampled by block averaging (for rates and indices) or block summing
(for bit counts).  The analysis figures plot KPIs at many granularities
(60 ms in Fig. 13, 150 ms in Fig. 15, dyadic scales in Fig. 12); this
container centralizes those conversions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.variability import block_averages, scaled_variability, variability_profile


@dataclass(frozen=True)
class KpiSeries:
    """A uniformly sampled KPI series.

    Attributes
    ----------
    values:
        Sample values.
    interval_ms:
        Time between consecutive samples.
    name:
        KPI label (used in printed summaries).
    """

    values: np.ndarray
    interval_ms: float
    name: str = "kpi"

    def __post_init__(self) -> None:
        if self.interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        object.__setattr__(self, "values", np.asarray(self.values, dtype=float))

    def __len__(self) -> int:
        return int(self.values.size)

    @property
    def duration_s(self) -> float:
        return len(self) * self.interval_ms * 1e-3

    def times_ms(self) -> np.ndarray:
        """Start time of each sample."""
        return np.arange(len(self)) * self.interval_ms

    # ------------------------------------------------------------------ #
    # Resampling
    # ------------------------------------------------------------------ #
    def _block_for(self, target_ms: float) -> int:
        if target_ms < self.interval_ms:
            raise ValueError(
                f"cannot resample {self.name} from {self.interval_ms} ms up to finer {target_ms} ms"
            )
        block = int(round(target_ms / self.interval_ms))
        if abs(block * self.interval_ms - target_ms) > 1e-9 * max(1.0, target_ms):
            raise ValueError(
                f"target {target_ms} ms is not an integer multiple of {self.interval_ms} ms"
            )
        return block

    def resample_mean(self, target_ms: float) -> "KpiSeries":
        """Block-average to a coarser granularity (rates, MCS, layers)."""
        block = self._block_for(target_ms)
        return KpiSeries(block_averages(self.values, block), target_ms, self.name)

    def resample_sum(self, target_ms: float) -> "KpiSeries":
        """Block-sum to a coarser granularity (bit counts)."""
        block = self._block_for(target_ms)
        m = len(self) // block
        if m == 0:
            return KpiSeries(np.array([]), target_ms, self.name)
        summed = self.values[: m * block].reshape(m, block).sum(axis=1)
        return KpiSeries(summed, target_ms, self.name)

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def mean(self) -> float:
        return float(self.values.mean()) if len(self) else float("nan")

    @property
    def std(self) -> float:
        return float(self.values.std(ddof=1)) if len(self) > 1 else float("nan")

    def percentile(self, q: float) -> float:
        if len(self) == 0:
            return float("nan")
        return float(np.percentile(self.values, q))

    def variability(self, scale_ms: float) -> float:
        """V(t) of this series at a coarser time scale."""
        return scaled_variability(self.values, self._block_for(scale_ms))

    def variability_profile(self, max_scale_ms: float = 2000.0) -> tuple[np.ndarray, np.ndarray]:
        """Dyadic V(t) profile starting at this series' granularity."""
        return variability_profile(self.values, self.interval_ms, max_scale_ms)

    # ------------------------------------------------------------------ #
    # Construction from traces
    # ------------------------------------------------------------------ #
    @classmethod
    def throughput_from_trace(cls, trace, bin_ms: float) -> "KpiSeries":
        """Throughput series (Mbps) from a :class:`SlotTrace`."""
        return cls(trace.throughput_mbps(bin_ms), bin_ms, name="throughput_mbps")

    @classmethod
    def from_trace_column(cls, trace, column: str, bin_ms: float | None = None,
                          scheduled_only: bool = True) -> "KpiSeries":
        """A (optionally bin-averaged) series of a trace column.

        With ``scheduled_only`` unscheduled slots are excluded *before*
        averaging by carrying the last scheduled value forward — KPIs
        like MCS or layers are undefined in idle slots.
        """
        values = trace.column(column).astype(float)
        if scheduled_only:
            sched = trace.scheduled.astype(bool)
            if sched.any():
                idx = np.where(sched, np.arange(len(values)), 0)
                np.maximum.accumulate(idx, out=idx)
                values = values[idx]
                first = int(np.argmax(sched))
                values[: first] = values[first]
        series = cls(values, trace.slot_duration_ms, name=column)
        if bin_ms is not None:
            series = series.resample_mean(bin_ms)
        return series
