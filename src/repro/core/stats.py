"""Distribution utilities: empirical CDFs, summaries, bootstrap CIs.

The paper reports means annotated on box plots (Figs. 1, 2, 9-11),
CDFs of RE allocations (Fig. 3), and mean ± std annotations (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus summary of a sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float

    def row(self) -> str:
        """One printable row (harness output)."""
        return (
            f"n={self.n:>7d}  mean={self.mean:10.2f}  std={self.std:9.2f}  "
            f"min={self.minimum:9.2f}  p25={self.p25:9.2f}  p50={self.median:9.2f}  "
            f"p75={self.p75:9.2f}  max={self.maximum:9.2f}"
        )


def summarize(samples: np.ndarray) -> Summary:
    """Summary statistics of a sample (nan-safe)."""
    samples = np.asarray(samples, dtype=float)
    samples = samples[~np.isnan(samples)]
    if samples.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan, nan, nan)
    return Summary(
        n=int(samples.size),
        mean=float(samples.mean()),
        std=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
        minimum=float(samples.min()),
        p25=float(np.percentile(samples, 25)),
        median=float(np.percentile(samples, 50)),
        p75=float(np.percentile(samples, 75)),
        maximum=float(samples.max()),
    )


def empirical_cdf(samples: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: returns ``(sorted_values, probabilities)``.

    Probabilities are ``i/n`` at the i-th order statistic, so
    ``probabilities[-1] == 1.0``.
    """
    samples = np.asarray(samples, dtype=float)
    samples = samples[~np.isnan(samples)]
    if samples.size == 0:
        return np.array([]), np.array([])
    ordered = np.sort(samples)
    probabilities = np.arange(1, ordered.size + 1) / ordered.size
    return ordered, probabilities


def cdf_at(samples: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Evaluate the empirical CDF of ``samples`` at given ``values``."""
    ordered, _ = empirical_cdf(samples)
    if ordered.size == 0:
        return np.full(np.asarray(values, dtype=float).shape, np.nan)
    ranks = np.searchsorted(ordered, np.asarray(values, dtype=float), side="right")
    return ranks / ordered.size


def bootstrap_mean_ci(
    samples: np.ndarray,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    rng: np.random.Generator | None = None,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must lie in (0, 1)")
    samples = np.asarray(samples, dtype=float)
    samples = samples[~np.isnan(samples)]
    if samples.size == 0:
        return float("nan"), float("nan")
    rng = rng or np.random.default_rng()
    idx = rng.integers(0, samples.size, size=(n_resamples, samples.size))
    means = samples[idx].mean(axis=1)
    lower = (1.0 - confidence) / 2.0 * 100.0
    return float(np.percentile(means, lower)), float(np.percentile(means, 100.0 - lower))


def relative_difference(a: float, b: float) -> float:
    """Relative difference ``(a - b) / b`` (paper-vs-measured checks)."""
    if b == 0:
        return float("inf") if a != 0 else 0.0
    return (a - b) / b
