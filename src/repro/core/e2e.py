"""End-to-end latency decomposition: server placement matters (§2, §9).

The campaign deployed servers at three depths — Ookla-style edge servers
"if not within the cellular core network, the closest edge servers to
the cellular core" (plus AWS Wavelength inside operator networks), local
cloud zones, and regular cloud regions — precisely so PHY latency could
be isolated from transport latency.  The conclusion turns that into
guidance for "server placement".

This module composes the §4.3 PHY user-plane latency with the
post-RAN components into an end-to-end RTT:

    RTT = PHY user-plane delay (DL+UL)   [UserPlaneLatencyModel]
        + RAN processing / backhaul
        + core-network traversal
        + transport to the server        [depends on placement]
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.latency import UserPlaneLatencyModel


class ServerPlacement(enum.Enum):
    """Where the measurement/application server sits."""

    WAVELENGTH = "wavelength"   # inside the operator network (AWS Wavelength)
    EDGE = "edge"               # Ookla-style edge, adjacent to the core
    METRO_CLOUD = "metro"       # local cloud zone in the same metro
    REGIONAL_CLOUD = "regional" # cloud region, hundreds of km away


#: One-way transport latency (ms) from the core network to the server.
TRANSPORT_ONE_WAY_MS = {
    ServerPlacement.WAVELENGTH: 0.3,
    ServerPlacement.EDGE: 1.0,
    ServerPlacement.METRO_CLOUD: 3.0,
    ServerPlacement.REGIONAL_CLOUD: 9.0,
}


@dataclass(frozen=True)
class E2eLatencyModel:
    """End-to-end RTT model on top of a PHY latency model.

    Parameters
    ----------
    phy:
        The §4.3 user-plane model (already covers DL+UL PHY latency).
    ran_processing_ms:
        gNB-internal and backhaul one-way delay (per direction).
    core_ms:
        Core-network (UPF) traversal, one way.
    placement:
        Server placement tier.
    """

    phy: UserPlaneLatencyModel
    ran_processing_ms: float = 1.0
    core_ms: float = 0.75
    placement: ServerPlacement = ServerPlacement.EDGE

    def __post_init__(self) -> None:
        if self.ran_processing_ms < 0 or self.core_ms < 0:
            raise ValueError("delays must be non-negative")

    @property
    def transport_one_way_ms(self) -> float:
        return TRANSPORT_ONE_WAY_MS[self.placement]

    def mean_rtt_ms(self, bler_positive: bool = False) -> float:
        """Mean end-to-end round-trip time in ms.

        The PHY model already spans both directions (DL+UL user-plane
        delay); RAN/core/transport components count once per direction.
        """
        beyond_ran = 2.0 * (self.ran_processing_ms + self.core_ms + self.transport_one_way_ms)
        return self.phy.mean_latency_ms(bler_positive=bler_positive) + beyond_ran

    def sample_rtt_ms(self, n: int, rng: np.random.Generator | None = None,
                      retx_probability: float = 0.0,
                      transport_jitter_ms: float = 0.3) -> np.ndarray:
        """Sample end-to-end RTTs (PHY Monte Carlo + jittered transport)."""
        if transport_jitter_ms < 0:
            raise ValueError("jitter must be non-negative")
        rng = rng or np.random.default_rng()
        phy = self.phy.sample(n, rng=rng, retx_probability=retx_probability)
        beyond = 2.0 * (self.ran_processing_ms + self.core_ms + self.transport_one_way_ms)
        jitter = rng.exponential(transport_jitter_ms, size=n) if transport_jitter_ms > 0 else 0.0
        return phy + beyond + jitter


def placement_sweep(phy: UserPlaneLatencyModel) -> dict[str, float]:
    """Mean RTT per placement tier — the server-placement guidance table."""
    return {
        placement.value: E2eLatencyModel(phy=phy, placement=placement).mean_rtt_ms()
        for placement in ServerPlacement
    }
