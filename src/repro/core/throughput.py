"""3GPP maximum-throughput formula (TS 38.306 §4.1.2) — §3.2 of the paper.

::

    Max_Tput (Mbps) = 1e-6 * sum_j [ v_layers(j) * Q_MCS(j) * f(j) * R_max
                        * 12 * N_RB(j) / T_s^mu * (1 - OH(j)) ]

with per-component-carrier MIMO layers ``v``, modulation order ``Q``,
scaling factor ``f``, maximum code rate ``R_max = 948/1024``, RB budget
``N_RB``, average symbol duration ``T_s^mu`` and overhead ``OH`` (0.14
DL / 0.08 UL in FR1).

The paper quotes 1213.44 Mbps (90 MHz) and 1352.12 Mbps (100 MHz); those
values correspond to evaluating the formula with 2 MIMO layers and zero
overhead (their ratio is exactly 273/245, the N_RB ratio).  We expose
the standard evaluation and note the discrepancy in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nr.grid import max_rb
from repro.nr.mcs import Modulation
from repro.nr.numerology import Numerology, symbol_duration_s

#: FR1 overheads from TS 38.306 (the paper quotes the same values).
OVERHEAD_FR1_DL = 0.14
OVERHEAD_FR1_UL = 0.08
OVERHEAD_FR2_DL = 0.18
OVERHEAD_FR2_UL = 0.10

#: Maximum LDPC code rate.
R_MAX = 948.0 / 1024.0

#: Allowed values of the scaling factor f(j) (TS 38.306).
ALLOWED_SCALING_FACTORS = (1.0, 0.8, 0.75, 0.4)


@dataclass(frozen=True)
class CarrierSpec:
    """One component carrier's inputs to the throughput formula."""

    bandwidth_mhz: int
    scs_khz: int = 30
    layers: int = 4
    max_modulation: Modulation = Modulation.QAM256
    scaling_factor: float = 1.0
    overhead: float = OVERHEAD_FR1_DL
    fr2: bool = False
    n_rb_override: int | None = None

    def __post_init__(self) -> None:
        if not 1 <= self.layers <= 8:
            raise ValueError("layers must lie in [1, 8]")
        if self.scaling_factor not in ALLOWED_SCALING_FACTORS:
            raise ValueError(f"scaling factor must be one of {ALLOWED_SCALING_FACTORS}")
        if not 0.0 <= self.overhead < 1.0:
            raise ValueError("overhead must lie in [0, 1)")

    @property
    def n_rb(self) -> int:
        if self.n_rb_override is not None:
            return self.n_rb_override
        return max_rb(self.bandwidth_mhz, self.scs_khz, fr2=self.fr2)

    @property
    def mu(self) -> Numerology:
        return Numerology.from_scs_khz(self.scs_khz)

    def throughput_mbps(self, r_max: float = R_MAX) -> float:
        """This carrier's contribution in Mbps."""
        t_s = symbol_duration_s(self.mu)
        q_m = self.max_modulation.bits_per_symbol
        rate_bps = (
            self.layers * q_m * self.scaling_factor * r_max
            * 12 * self.n_rb / t_s * (1.0 - self.overhead)
        )
        return rate_bps * 1e-6


def max_throughput_mbps(carriers: list[CarrierSpec] | CarrierSpec, r_max: float = R_MAX) -> float:
    """Aggregate theoretical maximum PHY throughput in Mbps.

    Accepts a single carrier or a CA list (the J-carrier sum).
    """
    if isinstance(carriers, CarrierSpec):
        carriers = [carriers]
    if not carriers:
        raise ValueError("need at least one carrier")
    return sum(c.throughput_mbps(r_max) for c in carriers)


def tdd_adjusted_throughput_mbps(
    carrier: CarrierSpec,
    dl_symbol_fraction: float,
    r_max: float = R_MAX,
) -> float:
    """Formula value scaled by the TDD DL symbol share.

    The plain TS 38.306 value assumes every symbol is available in the
    computed direction; on a TDD channel the pattern reserves slots for
    the other direction, so the *attainable* figure is the formula times
    the direction's symbol fraction.  This is the ceiling the measured
    means in Fig. 1 should be compared against.
    """
    if not 0.0 < dl_symbol_fraction <= 1.0:
        raise ValueError("dl_symbol_fraction must lie in (0, 1]")
    return carrier.throughput_mbps(r_max) * dl_symbol_fraction
