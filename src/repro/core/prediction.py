"""Throughput prediction from PHY KPIs — the conclusion's AI/ML direction.

The paper closes by encouraging "exploration in emerging areas like
artificial intelligence and machine learning (AI/ML) in 5G networks";
its group's Lumos5G line showed lower-layer KPIs predict near-future
throughput.  This module provides that capability on our trace format:

- :func:`extract_features` — windowed feature matrix from a
  :class:`~repro.xcal.records.SlotTrace` (throughput statistics, MCS,
  MIMO layers, CQI, SINR, and short-horizon variability),
- :class:`ThroughputPredictor` — closed-form ridge regression from a
  window's features to the next window's mean throughput,
- :func:`persistence_baseline` / :func:`evaluate` — the
  last-value-carried-forward baseline and walk-forward evaluation.

Pure numpy; deliberately simple so the *signal content* of the PHY
features (not model capacity) drives the result.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.timeseries import KpiSeries
from repro.core.variability import scaled_variability

#: Names of the extracted features, in column order.
FEATURE_NAMES = (
    "tput_mean", "tput_std", "tput_last",
    "mcs_mean", "mcs_std",
    "layers_mean",
    "cqi_mean",
    "sinr_mean", "sinr_std",
    "tput_variability",
)


def extract_features(trace, window_ms: float = 500.0) -> tuple[np.ndarray, np.ndarray]:
    """Windowed features and targets from a slot trace.

    Returns ``(X, y)`` where row ``i`` of ``X`` describes window ``i``
    and ``y[i]`` is the mean throughput (Mbps) of window ``i + 1`` —
    the one-step-ahead prediction task.
    """
    if window_ms <= 0:
        raise ValueError("window_ms must be positive")
    slot_ms = trace.slot_duration_ms
    per_window = max(4, int(round(window_ms / slot_ms)))
    fine_bin_ms = slot_ms * max(1, per_window // 16)

    tput_fine = trace.throughput_mbps(fine_bin_ms)
    fine_per_window = max(1, int(round(window_ms / fine_bin_ms)))
    n_windows = min(len(trace) // per_window, tput_fine.size // fine_per_window)
    if n_windows < 3:
        raise ValueError("trace too short for the requested window")

    mcs = KpiSeries.from_trace_column(trace, "mcs_index").values
    layers = KpiSeries.from_trace_column(trace, "layers").values
    cqi = KpiSeries.from_trace_column(trace, "cqi").values
    sinr = trace.sinr_db

    rows = []
    targets = []
    for w in range(n_windows - 1):
        slots = slice(w * per_window, (w + 1) * per_window)
        fine = tput_fine[w * fine_per_window:(w + 1) * fine_per_window]
        next_fine = tput_fine[(w + 1) * fine_per_window:(w + 2) * fine_per_window]
        variability = scaled_variability(fine, max(1, fine_per_window // 8))
        rows.append([
            float(fine.mean()), float(fine.std()), float(fine[-1]),
            float(mcs[slots].mean()), float(mcs[slots].std()),
            float(layers[slots].mean()),
            float(cqi[slots].mean()),
            float(sinr[slots].mean()), float(sinr[slots].std()),
            0.0 if np.isnan(variability) else float(variability),
        ])
        targets.append(float(next_fine.mean()))
    return np.array(rows), np.array(targets)


@dataclass
class ThroughputPredictor:
    """Ridge regression over PHY features (closed form).

    Features are standardized with the training statistics; the ridge
    penalty keeps the small-sample fit stable.
    """

    alpha: float = 1.0
    _mean: np.ndarray | None = None
    _std: np.ndarray | None = None
    _coef: np.ndarray | None = None
    _intercept: float = 0.0

    def fit(self, features: np.ndarray, targets: np.ndarray) -> "ThroughputPredictor":
        features = np.asarray(features, dtype=float)
        targets = np.asarray(targets, dtype=float)
        if features.ndim != 2 or features.shape[0] != targets.shape[0]:
            raise ValueError("features must be (n, d) aligned with targets")
        if features.shape[0] < features.shape[1]:
            raise ValueError("need at least as many samples as features")
        self._mean = features.mean(axis=0)
        self._std = np.where(features.std(axis=0) > 1e-9, features.std(axis=0), 1.0)
        standardized = (features - self._mean) / self._std
        n, d = standardized.shape
        gram = standardized.T @ standardized + self.alpha * np.eye(d)
        target_mean = targets.mean()
        self._coef = np.linalg.solve(gram, standardized.T @ (targets - target_mean))
        self._intercept = float(target_mean)
        return self

    @property
    def is_fitted(self) -> bool:
        return self._coef is not None

    def predict(self, features: np.ndarray) -> np.ndarray:
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        features = np.asarray(features, dtype=float)
        standardized = (features - self._mean) / self._std
        return standardized @ self._coef + self._intercept

    def feature_importance(self) -> dict[str, float]:
        """|standardized coefficient| per feature (relative importance)."""
        if not self.is_fitted:
            raise RuntimeError("predictor is not fitted")
        return dict(zip(FEATURE_NAMES, np.abs(self._coef)))


def persistence_baseline(features: np.ndarray) -> np.ndarray:
    """The last-value baseline: predict next window = current mean tput."""
    features = np.asarray(features, dtype=float)
    return features[:, FEATURE_NAMES.index("tput_mean")]


@dataclass(frozen=True)
class EvaluationResult:
    """Walk-forward evaluation outcome."""

    model_mae: float
    baseline_mae: float
    model_mape: float
    baseline_mape: float

    @property
    def improvement(self) -> float:
        """Relative MAE reduction over the persistence baseline."""
        if self.baseline_mae == 0:
            return 0.0
        return 1.0 - self.model_mae / self.baseline_mae


def evaluate(features: np.ndarray, targets: np.ndarray,
             train_fraction: float = 0.6, alpha: float = 10.0) -> EvaluationResult:
    """Walk-forward split: fit on the head, score on the tail.

    The model predicts the *residual* over the persistence baseline, so
    persistence is nested within it (all-zero coefficients recover the
    baseline exactly) — the comparison then isolates how much signal
    the PHY features add, robustly to the channel's non-stationarity.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie in (0, 1)")
    features = np.asarray(features, dtype=float)
    targets = np.asarray(targets, dtype=float)
    split = max(features.shape[1] + 1, int(round(train_fraction * features.shape[0])))
    if split >= features.shape[0]:
        raise ValueError("not enough samples to split")
    residuals = targets - persistence_baseline(features)
    predictor = ThroughputPredictor(alpha=alpha).fit(features[:split], residuals[:split])
    predicted = persistence_baseline(features[split:]) + predictor.predict(features[split:])
    baseline = persistence_baseline(features[split:])
    actual = targets[split:]
    denom = np.maximum(np.abs(actual), 1.0)
    return EvaluationResult(
        model_mae=float(np.mean(np.abs(predicted - actual))),
        baseline_mae=float(np.mean(np.abs(baseline - actual))),
        model_mape=float(np.mean(np.abs(predicted - actual) / denom)),
        baseline_mape=float(np.mean(np.abs(baseline - actual) / denom)),
    )
