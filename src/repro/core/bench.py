"""Tracked benchmarks — the ``repro bench`` subcommand.

Five tracked workloads, selected with ``--workload``:

- ``slot`` (default) — the slot engines, the hot path under every
  figure, table and campaign: slots/sec on the Fig. 1 single-carrier
  workload (the V_Sp n78 90 MHz deployment) for both the vectorized
  and the reference engine, single- and multi-UE, cold and warm.
  Report: ``BENCH_slot_engine.json``.
- ``campaign`` — the execution layer end to end: sessions/sec of a
  four-operator campaign through :func:`repro.core.runner.run_tasks`
  under every transport (serial jobs=1 cold and warm, the legacy
  pipe transport at jobs=auto, and store-routed jobs=auto cold and
  warm on a persistent :class:`~repro.core.runner.CampaignExecutor`
  pool).  Report: ``BENCH_campaign.json``.
- ``reduce`` — the streaming-reduction path (``run_tasks(...,
  reduce=...)``): sessions/sec and tracemalloc peaks of the campaign
  workload folded into KPI sketches, against the materializing exact
  path, plus an exact-vs-sketch KPI oracle and (full mode) a
  10^4-session bounded-memory demonstration.
  Report: ``BENCH_reduce.json``.
- ``tensor`` — the cross-session cohort engine: sessions/sec of
  maximal same-shape DL cohorts through the ``(sessions, slots)``
  tensor pass against the identical manifest pinned to the per-session
  vectorized engine (``REPRO_ENGINE``), serial jobs=1, cold and warm.
  Report: ``BENCH_tensor.json``.
- ``serve`` — the campaign service end to end over real localhost
  HTTP: cold submission of an unseen campaign, warm (store-served)
  resubmission, and a concurrent singleflight probe whose counters
  must show the campaign computed exactly once.
  Report: ``BENCH_serve.json``.

Three measurement conventions keep the numbers honest:

- **cold vs warm** — "cold" is the first run after clearing the
  process-wide TBS matrix cache (what a fresh campaign worker pays);
  "warm" is the best of the remaining repetitions (what every
  subsequent session in the same process pays).  Best-of, not mean:
  simulation cost is deterministic, so the minimum is the measurement
  and everything above it is scheduler noise.  Cold *variants* (the
  campaign/reduce workloads) repeat the whole cold run on a fresh
  store directory and keep the best repetition for the same reason.
- **untimed process warmup** — lazy imports, numpy ufunc caches and
  other one-time process costs fire once before any timed run, so
  they don't all land on whichever variant happens to be timed first
  (they used to land on the vectorized engine's cold number).
- **hardware normalization** — CI machines differ run to run, so a raw
  slots/sec comparison against a committed baseline is meaningless.
  A reference workload runs in the same process (the reference engine
  for ``slot``, the serial jobs=1 cold run for ``campaign``, the
  exact materializing run for ``reduce``, the per-session vectorized
  run for ``tensor``), so the ratio
  ``reference_now / reference_baseline`` estimates the machine-speed
  factor; tracked numbers are compared after dividing that factor out
  (see :func:`regression_failures`,
  :func:`campaign_regression_failures`,
  :func:`reduce_regression_failures` and
  :func:`tensor_regression_failures`).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRE_PR_BASELINE",
    "campaign_regression_failures",
    "campaign_tasks",
    "history_report",
    "load_report",
    "measure",
    "measure_campaign",
    "measure_reduce",
    "measure_serve",
    "measure_tensor",
    "multi_ue_traces",
    "reduce_demo_tasks",
    "reduce_regression_failures",
    "regression_failures",
    "render",
    "render_campaign",
    "render_history",
    "render_reduce",
    "render_serve",
    "render_tensor",
    "serve_regression_failures",
    "single_ue_trace",
    "tensor_regression_failures",
    "tensor_tasks",
    "write_report",
]

BENCH_SCHEMA_VERSION = 1

#: slots/sec of the pre-rewrite scalar engine on this file's exact
#: workloads (full mode), measured once on the machine that produced
#: the first committed ``BENCH_slot_engine.json``.  Recorded so the
#: report can state the speedup the vectorized engine was introduced
#: with; CI regression checks never use these numbers (they compare
#: hardware-normalized against the committed baseline instead).
PRE_PR_BASELINE = {
    "single_ue_slots_per_s": 251_345.0,
    "multi_ue_slots_per_s": 11_134.0,
}

_BENCH_PROFILE = "V_Sp"
_MULTI_UES = 4
_MULTI_SINR_STEP_DB = -3.0


def single_ue_trace(engine: str = "vectorized", duration_s: float = 5.0,
                    seed: int = 2024):
    """One full-buffer DL trace of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = profile.dl_channel().realize(duration_s, mu=cell.mu, rng=rng)
    from repro.ran.simulator import simulate_downlink

    return simulate_downlink(cell, channel, rng=rng,
                             params=profile.sim_params(engine=engine))


def multi_ue_traces(engine: str = "vectorized", duration_s: float = 5.0,
                    n_ues: int = _MULTI_UES, seed: int = 2024):
    """One PF-scheduled multi-UE DL run of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile
    from repro.ran.scheduler import ProportionalFairScheduler
    from repro.ran.simulator import simulate_downlink_multi

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channels = [
        profile.dl_channel(sinr_offset_db=_MULTI_SINR_STEP_DB * k)
        .realize(duration_s, mu=cell.mu, rng=np.random.default_rng(seed + 100 + k))
        for k in range(n_ues)
    ]
    return simulate_downlink_multi(cell, channels, ProportionalFairScheduler(),
                                   rng=rng, params=profile.sim_params(engine=engine))


def _warm_process(seed: int) -> None:
    """Untimed process warmup before any timed engine run.

    Lazy imports, numpy ufunc caches and other one-time process costs
    used to land entirely on whichever engine was timed first (the
    vectorized one), making its "cold" number look far worse than the
    reference engine's.  Tiny untimed sessions of both engines pay
    those costs up front; the TBS matrix cache is cleared again before
    each timed cold run, so "cold" still means what it says.
    """
    for engine in ("vectorized", "reference"):
        single_ue_trace(engine, 0.2, seed)
        multi_ue_traces(engine, 0.2, seed=seed)


def _time_engine(run: Callable[[], Any], n_slots_of: Callable[[Any], int],
                 repetitions: int) -> dict[str, float]:
    """Cold (first run, caches cleared) and warm (best-of-rest) slots/sec."""
    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    start = time.perf_counter()
    result = run()
    cold = n_slots_of(result) / (time.perf_counter() - start)
    warm = 0.0
    for _ in range(max(1, repetitions - 1)):
        start = time.perf_counter()
        result = run()
        warm = max(warm, n_slots_of(result) / (time.perf_counter() - start))
    return {"cold_slots_per_s": round(cold, 1), "warm_slots_per_s": round(warm, 1)}


def measure(quick: bool = False, seed: int = 2024,
            repetitions: int | None = None) -> dict[str, Any]:
    """Run the full benchmark matrix and return the report dict."""
    duration_s = 2.0 if quick else 5.0
    repetitions = repetitions or (3 if quick else 11)
    _warm_process(seed)

    workloads: dict[str, Any] = {}
    single: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        single[engine] = _time_engine(
            lambda engine=engine: single_ue_trace(engine, duration_s, seed),
            len, repetitions)
    single["n_slots"] = len(single_ue_trace("vectorized", duration_s, seed))
    workloads["single_ue"] = single

    multi: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        multi[engine] = _time_engine(
            lambda engine=engine: multi_ue_traces(engine, duration_s, seed=seed),
            lambda traces: len(traces[0]), repetitions)
    multi["n_slots"] = len(multi_ue_traces("vectorized", duration_s, seed=seed)[0])
    multi["n_ues"] = _MULTI_UES
    workloads["multi_ue"] = multi

    report: dict[str, Any] = {
        "bench": "slot_engine",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profile": _BENCH_PROFILE,
            "duration_s": duration_s,
            "repetitions": repetitions,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
    }
    if not quick:
        report["pre_pr_baseline"] = dict(PRE_PR_BASELINE)
        report["speedup_vs_pre_pr"] = {
            "single_ue": round(single["vectorized"]["warm_slots_per_s"]
                               / PRE_PR_BASELINE["single_ue_slots_per_s"], 2),
            "multi_ue": round(multi["vectorized"]["warm_slots_per_s"]
                              / PRE_PR_BASELINE["multi_ue_slots_per_s"], 2),
        }
    return report


def regression_failures(current: dict[str, Any], baseline: dict[str, Any],
                        threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of ``current`` vs ``baseline``.

    For each workload the reference engine's ratio between the two
    reports estimates the machine-speed factor; a workload fails when
    the vectorized engine lost more than ``threshold`` of its
    throughput after that factor is divided out::

        new_vec < (1 - threshold) * base_vec * (new_ref / base_ref)

    Returns one message per failing workload (empty list = pass).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    for name, base in baseline.get("workloads", {}).items():
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        base_vec = base["vectorized"]["warm_slots_per_s"]
        base_ref = base["reference"]["warm_slots_per_s"]
        new_vec = new["vectorized"]["warm_slots_per_s"]
        new_ref = new["reference"]["warm_slots_per_s"]
        scale = new_ref / base_ref
        floor = (1.0 - threshold) * base_vec * scale
        if new_vec < floor:
            failures.append(
                f"{name}: vectorized {new_vec:,.0f} slots/s < floor {floor:,.0f} "
                f"(baseline {base_vec:,.0f} x machine factor {scale:.2f} "
                f"x {1.0 - threshold:.2f})")
    return failures


def render(report: dict[str, Any]) -> str:
    """Human-readable table of a benchmark report."""
    lines = [f"slot-engine benchmark ({'quick' if report['quick'] else 'full'}, "
             f"profile {report['config']['profile']}, "
             f"{report['config']['repetitions']} reps)"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name} ({data['n_slots']} slots"
                     + (f", {data['n_ues']} UEs" if "n_ues" in data else "") + ")")
        for engine in ("vectorized", "reference"):
            e = data[engine]
            lines.append(f"    {engine:11s} cold {e['cold_slots_per_s']:>12,.0f} slots/s"
                         f"   warm {e['warm_slots_per_s']:>12,.0f} slots/s")
    speedup = report.get("speedup_vs_pre_pr")
    if speedup:
        lines.append(f"  speedup vs pre-PR scalar engine: "
                     f"single-UE {speedup['single_ue']:.2f}x, "
                     f"multi-UE {speedup['multi_ue']:.2f}x")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Campaign workload — the execution layer end to end
# --------------------------------------------------------------------- #

#: Operators of the campaign workload: two Spanish and two German
#: deployments spanning 40–90 MHz carriers (a representative slice of
#: the study without the full nine-operator cost).
_CAMPAIGN_PROFILE_KEYS = ("V_Sp", "O_Sp_100", "T_Ge", "V_Ge")

#: Workloads whose sessions/sec the campaign gate tracks against the
#: baseline after hardware normalization; ``pipe_cold`` and
#: ``jobs1_cold`` are informational / the normalization reference.
#: The warm workloads are *not* here: their per-session cost is
#: dominated by fixed store-read and pool-dispatch overhead, so their
#: sessions/s does not scale with the cold-simulation machine factor
#: across quick/full modes — they gate intra-report via
#: ``_WARM_VS_COLD_FLOOR`` instead.
_CAMPAIGN_GATED = ("store_routed_cold",)

#: A warm (fully memoized) campaign must beat its own cold run by at
#: least this factor within the same report (observed 3-9x); below it
#: the memo path is recomputing sessions.
_WARM_VS_COLD_FLOOR = 2.0

#: Floor on ``routed_cold_vs_pipe_cold`` inside one report.  The
#: committed artifact must show >= 1.0x (store routing is not allowed
#: to cost anything on a cold campaign); the CI gate allows 10%
#: run-to-run jitter below that so a noisy shared runner doesn't
#: flake.  Quick reports get extra slack — pool spawn dominates their
#: sub-second walls, so the ratio is noisier.
_ROUTED_VS_PIPE_FLOOR = 0.9
_ROUTED_VS_PIPE_FLOOR_QUICK = 0.75

#: Parallel-efficiency floor for the zero-copy transport: a cold
#: storeless campaign on the shm transport with two workers must beat
#: the serial memoizing run (``jobs1_cold``) by this factor inside the
#: same report.  The pipe transport historically *lost* to serial
#: (0.58x) because pickling full traces back swamped the parallel win;
#: the shm transport ships only segment names, so it has to clear the
#: bar on any host with real parallelism.  Quick reports keep a
#: reduced floor: their sub-second walls are dominated by dispatch
#: overhead, which the full-mode runs amortize.  Single-core hosts get
#: the break-even floor instead — two workers timesharing one core
#: cannot beat serial wall-clock no matter how cheap the transport is,
#: so the gate there degrades to "shm must not *lose* to serial",
#: which still catches the 0.58x serialization-tax regression this
#: gate exists to prevent.  The ratio itself is intra-report, so it is
#: hardware-normalized by construction; the floor selection reads the
#: report's recorded ``cpu_count``.
_SHM_VS_SERIAL_FLOOR = 1.2
_SHM_VS_SERIAL_FLOOR_QUICK = 0.85
_SHM_VS_SERIAL_FLOOR_SINGLE_CORE = 1.0


def campaign_tasks(quick: bool = False, seed: int = 2024) -> list:
    """The benchmark campaign's session manifest (fixed shape per mode)."""
    from repro.operators.profiles import EU_PROFILES
    from repro.xcal.dataset import CampaignSpec, campaign_manifest

    spec = CampaignSpec(
        minutes_per_operator=0.15 if quick else 0.5,
        session_s=3.0 if quick else 5.0,
        seed=seed,
    )
    profiles = {key: EU_PROFILES[key] for key in _CAMPAIGN_PROFILE_KEYS}
    return campaign_manifest(profiles, spec)


def _time_campaign(manifest: list, **run_kwargs: Any) -> dict[str, float]:
    """sessions/sec of one ``run_tasks`` execution, TBS caches cleared."""
    from repro.core.runner import run_tasks
    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    start = time.perf_counter()
    run_tasks(manifest, **run_kwargs)
    wall = time.perf_counter() - start
    return {"sessions_per_s": round(len(manifest) / wall, 3),
            "wall_s": round(wall, 3)}


def measure_campaign(quick: bool = False, seed: int = 2024,
                     jobs: int | str = "auto") -> dict[str, Any]:
    """Run the campaign benchmark matrix and return the report dict.

    Five timed variants, each on its own seed (so every "cold" run is
    genuinely cold — no key overlap with a previous variant's store)
    and its own store directory:

    - ``jobs1_cold`` / ``jobs1_warm`` — serial runner, empty store then
      fully warm store.  ``jobs1_cold`` is the hardware-normalization
      reference (the path least affected by the execution layer).
    - ``pipe_cold`` — jobs=auto on a transient pool with full results
      pickled back over the pipe: the pre-PR parallel path, kept as
      the comparator the store-routed speedup is quoted against.
    - ``store_routed_cold`` / ``store_routed_warm`` — jobs=auto on a
      persistent :class:`~repro.core.runner.CampaignExecutor` pool
      whose workers write payloads to the store and return keys.
    - ``shm_cold`` — the zero-copy path: ``jobs=max(2, auto)`` on a
      pre-warmed persistent pool, no store, results returned through
      ``transport="shm"`` shared-memory arenas.  This is the
      configuration ``transport="auto"`` now selects for storeless
      parallel runs; pool spawn happens once per campaign in
      production, so it is warmed untimed here and the timed runs
      measure dispatch + compute + zero-copy return only.  The
      workload is skipped (with a report note) on platforms without
      POSIX shm.

    Every cold variant repeats on a fresh store directory (and, for
    the routed variant, a fresh executor — pool spawn stays inside the
    timing for pipe and routed alike) and keeps the best repetition;
    one noisy scheduler hiccup otherwise decides ratios like
    ``routed_cold_vs_pipe_cold``.
    """
    import tempfile

    from repro.core.runner import CampaignExecutor, resolve_jobs, run_tasks
    from repro.store import TraceStore

    workers = resolve_jobs(jobs)
    cold_reps = 2 if quick else 3
    run_tasks(campaign_tasks(True, seed + 9)[:2], jobs=1)  # untimed warmup

    def best(runs: list[dict[str, float]]) -> dict[str, float]:
        return max(runs, key=lambda r: r["sessions_per_s"])

    workloads: dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmpdir:
        tmp = Path(tmpdir)
        serial_manifest = campaign_tasks(quick, seed)
        workloads["jobs1_cold"] = best([
            _time_campaign(serial_manifest, jobs=1,
                           store=TraceStore(tmp / f"jobs1-{rep}"))
            for rep in range(cold_reps)
        ])
        workloads["jobs1_warm"] = best([
            _time_campaign(serial_manifest, jobs=1,
                           store=TraceStore(tmp / "jobs1-0"))
            for _ in range(2)
        ])

        pipe_manifest = campaign_tasks(quick, seed + 1)
        workloads["pipe_cold"] = best([
            _time_campaign(pipe_manifest, jobs=workers,
                           store=TraceStore(tmp / f"pipe-{rep}"),
                           transport="pipe")
            for rep in range(cold_reps)
        ])

        from repro.core.runner import release_shm_segments, shm_transport_available

        if shm_transport_available():
            shm_manifest = campaign_tasks(quick, seed + 3)
            shm_jobs = max(2, workers)
            # The shm workload times the *transport* on a warm
            # production pool: campaigns hold one CampaignExecutor for
            # the whole command, so pool spawn and per-worker cache
            # warm-up are paid once per campaign, not once per
            # experiment.  An untimed mini-dispatch forces the lazy pool
            # into existence before the clock starts; the timed runs
            # then measure dispatch + compute + zero-copy return, which
            # is the cost the ``transport="shm"`` path actually adds to
            # a steady-state campaign.
            with CampaignExecutor(jobs=shm_jobs, store=None) as shm_executor:
                run_tasks(campaign_tasks(True, seed + 8)[:shm_jobs],
                          executor=shm_executor, transport="shm")
                release_shm_segments()
                shm_runs = []
                for _ in range(cold_reps):
                    shm_runs.append(_time_campaign(
                        shm_manifest, executor=shm_executor, transport="shm"))
                    release_shm_segments()
            workloads["shm_cold"] = best(shm_runs)
            workloads["shm_cold"]["jobs"] = shm_jobs

        routed_manifest = campaign_tasks(quick, seed + 2)
        routed_cold_runs: list[dict[str, float]] = []
        for rep in range(cold_reps):
            routed_store = TraceStore(tmp / f"routed-{rep}")
            with CampaignExecutor(jobs=workers, store=routed_store) as executor:
                routed_cold_runs.append(_time_campaign(
                    routed_manifest, store=routed_store, executor=executor,
                    transport="store"))
                if rep == cold_reps - 1:
                    warm_store = TraceStore(tmp / f"routed-{rep}")
                    routed_warm = best([
                        _time_campaign(routed_manifest, store=warm_store,
                                       executor=executor)
                        for _ in range(2)
                    ])
                    pool_stats = executor.stats()
        workloads["store_routed_cold"] = best(routed_cold_runs)
        workloads["store_routed_warm"] = routed_warm

    pipe = workloads["pipe_cold"]["sessions_per_s"]
    report: dict[str, Any] = {
        "bench": "campaign",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profiles": list(_CAMPAIGN_PROFILE_KEYS),
            "n_sessions": len(serial_manifest),
            "jobs": workers,
            "cold_reps": cold_reps,
            "seed": seed,
            "cpu_count": os.cpu_count() or 1,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "pool": pool_stats,
        "workloads": workloads,
        "speedup": {
            "routed_cold_vs_pipe_cold": round(
                workloads["store_routed_cold"]["sessions_per_s"] / pipe, 2),
            "warm_vs_pre_pr_pipe": round(
                workloads["store_routed_warm"]["sessions_per_s"] / pipe, 2),
        },
    }
    if "shm_cold" in workloads:
        report["speedup"]["shm_cold_vs_jobs1_cold"] = round(
            workloads["shm_cold"]["sessions_per_s"]
            / workloads["jobs1_cold"]["sessions_per_s"], 2)
        report["speedup"]["shm_cold_vs_pipe_cold"] = round(
            workloads["shm_cold"]["sessions_per_s"] / pipe, 2)
    else:
        report["shm_unavailable"] = True
    return report


def campaign_regression_failures(current: dict[str, Any],
                                 baseline: dict[str, Any],
                                 threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of a campaign report.

    The serial ``jobs1_cold`` run is the reference workload: its ratio
    between the two reports estimates the machine-speed factor, and a
    gated workload fails when it lost more than ``threshold`` of its
    sessions/sec after that factor is divided out (same convention as
    :func:`regression_failures`).

    On top of the baseline comparison, the *current* report must show
    store routing at least breaking even against the pipe transport on
    a cold campaign (``routed_cold_vs_pipe_cold`` >=
    ``_ROUTED_VS_PIPE_FLOOR``, relaxed for quick reports) — the two
    variants run the same sessions, so routing may not cost
    throughput — and each warm (memoized) run must beat its own cold
    run by ``_WARM_VS_COLD_FLOOR``.

    The shm transport gates on *parallel efficiency*: inside the
    current report, ``shm_cold_vs_jobs1_cold`` must reach
    ``_SHM_VS_SERIAL_FLOOR`` (relaxed in quick mode, and degraded to
    break-even on hosts whose recorded ``cpu_count`` is 1 — no amount
    of transport engineering makes two workers on one core beat a
    serial run) — an intra-report ratio, so it is hardware-normalized
    by construction.  A report whose platform lacks POSIX shm
    (``shm_unavailable``) skips that check.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    pipe_floor = (_ROUTED_VS_PIPE_FLOOR_QUICK if current.get("quick")
                  else _ROUTED_VS_PIPE_FLOOR)
    ratio = current.get("speedup", {}).get("routed_cold_vs_pipe_cold")
    if ratio is not None and ratio < pipe_floor:
        failures.append(
            f"routed_cold_vs_pipe_cold: {ratio:.2f}x < floor "
            f"{pipe_floor:.2f}x (store routing must not cost "
            f"throughput on a cold campaign)")
    if not current.get("shm_unavailable"):
        cores = current.get("config", {}).get("cpu_count") or 1
        if current.get("quick"):
            shm_floor = _SHM_VS_SERIAL_FLOOR_QUICK
        elif cores < 2:
            shm_floor = _SHM_VS_SERIAL_FLOOR_SINGLE_CORE
        else:
            shm_floor = _SHM_VS_SERIAL_FLOOR
        shm_ratio = current.get("speedup", {}).get("shm_cold_vs_jobs1_cold")
        if shm_ratio is None:
            failures.append(
                "shm_cold_vs_jobs1_cold: missing from current report "
                "(shm workload did not run)")
        elif shm_ratio < shm_floor:
            failures.append(
                f"shm_cold_vs_jobs1_cold: {shm_ratio:.2f}x < floor "
                f"{shm_floor:.2f}x (parallel shm campaign must beat the "
                f"serial run — the zero-copy transport is not allowed to "
                f"lose its parallelism to serialization)")
    for warm_name, cold_name in (("jobs1_warm", "jobs1_cold"),
                                 ("store_routed_warm", "store_routed_cold")):
        cold = current.get("workloads", {}).get(cold_name, {})
        warm = current.get("workloads", {}).get(warm_name)
        if warm is None:
            failures.append(f"{warm_name}: missing from current report")
        elif cold.get("sessions_per_s") and (warm["sessions_per_s"] <
                                             _WARM_VS_COLD_FLOOR *
                                             cold["sessions_per_s"]):
            failures.append(
                f"{warm_name}: {warm['sessions_per_s']:,.2f} sessions/s < "
                f"{_WARM_VS_COLD_FLOOR:.0f}x its own cold run "
                f"{cold['sessions_per_s']:,.2f} (memo replay is recomputing)")
    try:
        base_ref = baseline["workloads"]["jobs1_cold"]["sessions_per_s"]
        new_ref = current["workloads"]["jobs1_cold"]["sessions_per_s"]
    except KeyError:
        return ["jobs1_cold: reference workload missing from a report"]
    scale = new_ref / base_ref
    for name in _CAMPAIGN_GATED:
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = (1.0 - threshold) * base["sessions_per_s"] * scale
        if new["sessions_per_s"] < floor:
            failures.append(
                f"{name}: {new['sessions_per_s']:,.2f} sessions/s < floor "
                f"{floor:,.2f} (baseline {base['sessions_per_s']:,.2f} "
                f"x machine factor {scale:.2f} x {1.0 - threshold:.2f})")
    return failures


def render_campaign(report: dict[str, Any]) -> str:
    """Human-readable table of a campaign benchmark report."""
    config = report["config"]
    lines = [f"campaign benchmark ({'quick' if report['quick'] else 'full'}, "
             f"{len(config['profiles'])} operators, "
             f"{config['n_sessions']} sessions, jobs={config['jobs']})"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name:18s} {data['sessions_per_s']:>8,.2f} sessions/s"
                     f"   ({data['wall_s']:.2f} s)")
    speedup = report.get("speedup", {})
    if speedup:
        lines.append(
            f"  store-routed warm vs pre-PR pipe path: "
            f"{speedup['warm_vs_pre_pr_pipe']:.2f}x "
            f"(routed cold {speedup['routed_cold_vs_pipe_cold']:.2f}x)")
    if "shm_cold_vs_jobs1_cold" in speedup:
        shm_jobs = report["workloads"].get("shm_cold", {}).get("jobs", "?")
        lines.append(
            f"  shm transport (jobs={shm_jobs}) vs serial: "
            f"{speedup['shm_cold_vs_jobs1_cold']:.2f}x "
            f"(vs pipe {speedup.get('shm_cold_vs_pipe_cold', 0):.2f}x)")
    elif report.get("shm_unavailable"):
        lines.append("  shm transport: unavailable on this platform")
    pool = report.get("pool")
    if pool:
        lines.append(f"  pool: workers={pool['workers']} pools={pool['pools_created']} "
                     f"dispatches={pool['dispatches']} tasks={pool['tasks_executed']} "
                     f"routed={pool['tasks_routed']}")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Reduce workload — the streaming-reduction path
# --------------------------------------------------------------------- #

#: Workloads the reduce gate tracks against the baseline after hardware
#: normalization; ``exact_cold`` is the normalization reference.  The
#: memo-hit workload (``reduce_store_warm``) is *not* here: its cost is
#: a fixed store fetch + decode, so its sessions/s scales with the
#: manifest size rather than machine speed and cannot be normalized
#: across quick/full modes.  It gates intra-report instead via
#: ``_MEMO_WARM_FLOOR``.
_REDUCE_GATED = ("reduce_cold",)

#: Replaying a memoized campaign sketch must beat re-reducing it by at
#: least this factor within the same report (observed >100x in both
#: quick and full modes); below it the memo path is recomputing.
_MEMO_WARM_FLOOR = 10.0

#: The streaming path holds at most one in-flight trace, so its
#: tracemalloc peak must sit well below the materializing run that
#: holds the whole campaign.  The quick campaign is only ~12 sessions;
#: at scale the gap widens, so 0.5x is a loose bound that still fails
#: the moment the reduce path starts accumulating traces.
_REDUCE_PEAK_FRACTION = 0.5

#: The 10^4-session demonstration may not peak meaningfully above the
#: ~10-session timed variant — that *is* the bounded-memory claim
#: (peak tracks chunk size, not campaign size).
_DEMO_PEAK_FACTOR = 2.0


def reduce_demo_tasks(seed: int = 2024) -> list:
    """~10^4 one-second sessions across the four campaign operators —
    the full-mode bounded-memory demonstration manifest."""
    from repro.operators.profiles import EU_PROFILES
    from repro.xcal.dataset import CampaignSpec, campaign_manifest

    spec = CampaignSpec(minutes_per_operator=2500.0 / 60.0, session_s=1.0,
                        seed=seed)
    profiles = {key: EU_PROFILES[key] for key in _CAMPAIGN_PROFILE_KEYS}
    return campaign_manifest(profiles, spec)


def _time_reduce(n_sessions: int, fn: Callable[[], Any]) -> dict[str, float]:
    """sessions/sec and tracemalloc peak of one run, TBS caches cleared.

    tracemalloc stays on through the timed region, so absolute
    sessions/sec runs lower than the campaign workload reports; it is
    consistent within the report and across baselines, which is all
    the normalized gate compares.
    """
    import tracemalloc

    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    tracemalloc.start()
    start = time.perf_counter()
    fn()
    wall = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {"sessions_per_s": round(n_sessions / wall, 3),
            "wall_s": round(wall, 3),
            "peak_mb": round(peak / 1e6, 3)}


def _reduce_kpi_check(manifest: list, traces: list, sketch: Any,
                      reduction: Any) -> dict[str, Any]:
    """Exact-vs-sketch oracle over every reduction group.

    Counts, min/max and total bits must match exactly; means within
    1e-9 relative (Neumaier-compensated sums); stds within 1e-6
    relative (pairwise moment merge); percentiles within one
    quantile-sketch bin (the documented sketch error bound).
    """
    from repro.core.stats import summarize

    samples: dict[str, list] = {}
    bits: dict[str, int] = {}
    for task, trace in zip(manifest, traces):
        key = reduction._group_key(task)
        samples.setdefault(key, []).append(trace.mean_throughput_mbps)
        per_carrier = getattr(trace, "per_carrier", None)
        total = (sum(t.total_bits for t in per_carrier) if per_carrier is not None
                 else trace.total_bits)
        bits[key] = bits.get(key, 0) + int(total)

    tolerance = ((reduction.quantile_hi - reduction.quantile_lo)
                 / reduction.quantile_bins)
    worst = {"mean_rel": 0.0, "std_rel": 0.0, "pct_abs": 0.0}
    ok = set(samples) == set(sketch.groups)
    for key, values in samples.items():
        group = sketch.groups.get(key)
        if group is None:
            continue
        want = summarize(np.asarray(values))
        have = group.summary()
        ok &= (have.n == want.n and have.minimum == want.minimum
               and have.maximum == want.maximum
               and group.total_bits == bits[key])
        worst["mean_rel"] = max(worst["mean_rel"], abs(have.mean - want.mean)
                                / max(abs(want.mean), 1e-12))
        worst["std_rel"] = max(worst["std_rel"], abs(have.std - want.std)
                               / max(abs(want.std), 1e-12))
        for q in ("p25", "median", "p75"):
            worst["pct_abs"] = max(worst["pct_abs"],
                                   abs(getattr(have, q) - getattr(want, q)))
    ok &= (worst["mean_rel"] <= 1e-9 and worst["std_rel"] <= 1e-6
           and worst["pct_abs"] <= tolerance)
    return {
        "ok": bool(ok),
        "groups": len(samples),
        "max_mean_rel_err": worst["mean_rel"],
        "max_std_rel_err": worst["std_rel"],
        "max_percentile_err": worst["pct_abs"],
        "percentile_tolerance": tolerance,
    }


def measure_reduce(quick: bool = False, seed: int = 2024,
                   jobs: int | str = "auto") -> dict[str, Any]:
    """Run the reduce benchmark matrix and return the report dict.

    Timed variants (each cold variant best-of-reps on a fresh store):

    - ``exact_cold`` — the materializing path holding every trace of
      the campaign at once: the normalization reference and the peak
      the memory gate compares against.
    - ``reduce_cold`` — the same campaign folded into KPI sketches,
      serial, no store: one in-flight trace at a time.
    - ``reduce_store_cold`` / ``reduce_store_warm`` — the reduce path
      with a store: cold writes sessions and the campaign-level memo;
      warm replays the whole campaign from the single memo entry.

    The report also carries the exact-vs-sketch oracle (``kpi_check``)
    and, in full mode, a ~10^4-session reduce-only demonstration whose
    peak must stay flat relative to the tiny timed variant (``demo``).
    """
    import tempfile

    from repro.core.runner import resolve_jobs, run_tasks
    from repro.store import TraceStore
    from repro.xcal.dataset import campaign_reduction

    workers = resolve_jobs(jobs)
    cold_reps = 2 if quick else 3
    manifest = campaign_tasks(quick, seed)
    n = len(manifest)
    run_tasks(campaign_tasks(True, seed + 9)[:2], jobs=1)  # untimed warmup

    def best(runs: list[dict[str, float]]) -> dict[str, float]:
        return max(runs, key=lambda r: r["sessions_per_s"])

    captured: dict[str, Any] = {}

    def exact_run() -> None:
        captured["traces"] = run_tasks(manifest, jobs=1)

    def reduce_run() -> None:
        reduction = campaign_reduction()
        captured["sketch"] = run_tasks(manifest, jobs=1, reduce=reduction)
        captured["reduction"] = reduction

    workloads: dict[str, Any] = {}
    workloads["exact_cold"] = best([_time_reduce(n, exact_run)
                                    for _ in range(cold_reps)])
    workloads["reduce_cold"] = best([_time_reduce(n, reduce_run)
                                     for _ in range(cold_reps)])

    with tempfile.TemporaryDirectory(prefix="repro-bench-reduce-") as tmpdir:
        tmp = Path(tmpdir)

        def store_run(store: TraceStore) -> Callable[[], None]:
            def go() -> None:
                run_tasks(manifest, jobs=workers, store=store,
                          reduce=campaign_reduction())
            return go

        workloads["reduce_store_cold"] = best([
            _time_reduce(n, store_run(TraceStore(tmp / f"store-{rep}")))
            for rep in range(cold_reps)
        ])
        warm_store = TraceStore(tmp / f"store-{cold_reps - 1}")
        workloads["reduce_store_warm"] = best([
            _time_reduce(n, store_run(warm_store)) for _ in range(2)
        ])

    kpi_check = _reduce_kpi_check(manifest, captured["traces"],
                                  captured["sketch"], captured["reduction"])

    report: dict[str, Any] = {
        "bench": "reduce",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profiles": list(_CAMPAIGN_PROFILE_KEYS),
            "n_sessions": n,
            "jobs": workers,
            "cold_reps": cold_reps,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
        "kpi_check": kpi_check,
        "speedup": {
            "reduce_cold_vs_exact_cold": round(
                workloads["reduce_cold"]["sessions_per_s"]
                / workloads["exact_cold"]["sessions_per_s"], 2),
            "memo_warm_vs_cold": round(
                workloads["reduce_store_warm"]["sessions_per_s"]
                / workloads["reduce_store_cold"]["sessions_per_s"], 2),
        },
        "memory": {
            "reduce_vs_exact_peak": round(
                workloads["reduce_cold"]["peak_mb"]
                / workloads["exact_cold"]["peak_mb"], 3),
        },
    }
    if not quick:
        demo_manifest = reduce_demo_tasks(seed + 5)

        def demo_run() -> None:
            run_tasks(demo_manifest, jobs=1, reduce=campaign_reduction())

        demo = _time_reduce(len(demo_manifest), demo_run)
        demo["n_sessions"] = len(demo_manifest)
        demo["peak_vs_reduce_cold"] = round(
            demo["peak_mb"] / workloads["reduce_cold"]["peak_mb"], 3)
        report["demo"] = demo
    return report


def reduce_regression_failures(current: dict[str, Any],
                               baseline: dict[str, Any],
                               threshold: float = 0.30) -> list[str]:
    """Regressions of a reduce report: normalized speed, oracle, memory.

    ``exact_cold`` is the reference workload for hardware
    normalization (same convention as
    :func:`campaign_regression_failures`).  Independent of the
    baseline, the *current* report must pass the exact-vs-sketch
    oracle, keep the memo-hit speedup above ``_MEMO_WARM_FLOOR``,
    keep the reduce peak under ``_REDUCE_PEAK_FRACTION`` of the exact
    peak, and (when the demonstration ran) keep the 10^4-session peak
    within ``_DEMO_PEAK_FACTOR`` of the tiny timed variant's.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    try:
        base_ref = baseline["workloads"]["exact_cold"]["sessions_per_s"]
        new_ref = current["workloads"]["exact_cold"]["sessions_per_s"]
    except KeyError:
        return ["exact_cold: reference workload missing from a report"]
    scale = new_ref / base_ref
    for name in _REDUCE_GATED:
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = (1.0 - threshold) * base["sessions_per_s"] * scale
        if new["sessions_per_s"] < floor:
            failures.append(
                f"{name}: {new['sessions_per_s']:,.2f} sessions/s < floor "
                f"{floor:,.2f} (baseline {base['sessions_per_s']:,.2f} "
                f"x machine factor {scale:.2f} x {1.0 - threshold:.2f})")
    kpi = current.get("kpi_check")
    if not kpi or not kpi.get("ok"):
        failures.append("kpi_check: exact-vs-sketch oracle failed "
                        f"({kpi!r})")
    memo = current.get("speedup", {}).get("memo_warm_vs_cold")
    if memo is not None and memo < _MEMO_WARM_FLOOR:
        failures.append(
            f"memo_warm_vs_cold: {memo:.1f}x < {_MEMO_WARM_FLOOR:.0f}x "
            "(sketch memo replay is not beating recomputation)")
    workloads = current.get("workloads", {})
    exact_peak = workloads.get("exact_cold", {}).get("peak_mb")
    reduce_peak = workloads.get("reduce_cold", {}).get("peak_mb")
    if exact_peak and reduce_peak:
        if reduce_peak > _REDUCE_PEAK_FRACTION * exact_peak:
            failures.append(
                f"reduce_cold peak {reduce_peak:.2f} MB > "
                f"{_REDUCE_PEAK_FRACTION:.0%} of exact_cold peak "
                f"{exact_peak:.2f} MB (streaming path is accumulating traces)")
    demo = current.get("demo")
    if demo and reduce_peak:
        if demo["peak_mb"] > _DEMO_PEAK_FACTOR * reduce_peak:
            failures.append(
                f"demo peak {demo['peak_mb']:.2f} MB > "
                f"{_DEMO_PEAK_FACTOR:.1f}x reduce_cold peak {reduce_peak:.2f} MB "
                f"(peak must track chunk size, not campaign size)")
    return failures


def render_reduce(report: dict[str, Any]) -> str:
    """Human-readable table of a reduce benchmark report."""
    config = report["config"]
    lines = [f"reduce benchmark ({'quick' if report['quick'] else 'full'}, "
             f"{len(config['profiles'])} operators, "
             f"{config['n_sessions']} sessions, jobs={config['jobs']})"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name:18s} {data['sessions_per_s']:>8,.2f} sessions/s"
                     f"   ({data['wall_s']:.2f} s, peak {data['peak_mb']:.2f} MB)")
    kpi = report.get("kpi_check", {})
    if kpi:
        lines.append(
            f"  kpi oracle: {'PASS' if kpi.get('ok') else 'FAIL'} over "
            f"{kpi.get('groups')} groups (mean rel err "
            f"{kpi.get('max_mean_rel_err', 0.0):.2e}, percentile err "
            f"{kpi.get('max_percentile_err', 0.0):.3f} <= "
            f"{kpi.get('percentile_tolerance', 0.0):.3f} Mbps)")
    memory = report.get("memory", {})
    if memory:
        lines.append(f"  reduce peak = {memory['reduce_vs_exact_peak']:.2f}x "
                     f"exact peak")
    demo = report.get("demo")
    if demo:
        lines.append(
            f"  demo: {demo['n_sessions']} sessions at "
            f"{demo['sessions_per_s']:,.2f} sessions/s, peak "
            f"{demo['peak_mb']:.2f} MB "
            f"({demo['peak_vs_reduce_cold']:.2f}x the "
            f"{config['n_sessions']}-session variant)")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Tensor workload — the cross-session cohort engine
# --------------------------------------------------------------------- #

#: Operators of the tensor workload.  Two carriers are enough: the gate
#: compares engines on the *same* manifest, so breadth adds cost, not
#: signal (the byte-identity tests cover the engine matrix).
_TENSOR_PROFILE_KEYS = ("V_Sp", "O_Sp_100")

#: Sessions per operator — one maximal cohort per operator (the runner
#: caps cohort chunks at 64; beyond that the ``(sessions, slots)``
#: working set thrashes cache and throughput *drops*).
_TENSOR_COHORT_FULL = 64
_TENSOR_COHORT_QUICK = 32

#: Workloads the tensor gate tracks against the baseline after hardware
#: normalization; ``session_cold`` (the per-session vectorized engine,
#: serial jobs=1) is the normalization reference.
_TENSOR_GATED = ("tensor_cold",)

#: Intra-report floor on ``tensor_cold_vs_session_cold``: the cohort
#: pass must beat the per-session engine it batches by at least this
#: factor on a cold campaign, else the sessions axis is not paying for
#: its bookkeeping.  Measured end to end with the batched dirty-cell
#: retx pass: ~3.4x full mode (cohort 64), ~3.9x quick mode (cohort
#: 32) — the per-column OLLA feedback loop still serializes periods
#: (see ``docs/architecture.md``), but the retx tier no longer pays a
#: Python loop per dirty cell.  The floors leave headroom for
#: shared-runner noise; quick mode gets extra slack because sub-second
#: walls are noisier.  The floors assume the compiled retx kernel is
#: available (any C compiler on PATH — true for CI runners); the
#: report's ``cohort.native_kernel`` field says which tier actually
#: ran when reading an unexpected number.
_TENSOR_VS_SESSION_FLOOR = 2.5
_TENSOR_VS_SESSION_FLOOR_QUICK = 2.0

#: Ceiling on the residual per-column fallback's share of dirty cells.
#: The batched lanes must absorb the common dirty cell; if more than
#: this fraction of dirty cells drops to the Python runner, the tier
#: split predicate has regressed (that is how the original 100%-
#: fallback regression slipped through).
_TENSOR_RESIDUAL_MAX_FRACTION = 0.05


def tensor_tasks(quick: bool = False, seed: int = 2024) -> list:
    """The tensor benchmark's manifest: maximal same-shape DL cohorts.

    ``ul_fraction=0`` keeps every operator's sessions one contiguous
    same-shape run, so the runner executes each operator as a single
    ``(sessions, slots)`` tensor pass at the target cohort size.
    """
    from repro.operators.profiles import EU_PROFILES
    from repro.xcal.dataset import CampaignSpec, campaign_manifest

    cohort = _TENSOR_COHORT_QUICK if quick else _TENSOR_COHORT_FULL
    session_s = 2.0 if quick else 5.0
    spec = CampaignSpec(
        minutes_per_operator=cohort * session_s / 60.0,
        session_s=session_s,
        ul_fraction=0.0,
        seed=seed,
    )
    profiles = {key: EU_PROFILES[key] for key in _TENSOR_PROFILE_KEYS}
    return campaign_manifest(profiles, spec)


def measure_tensor(quick: bool = False, seed: int = 2024) -> dict[str, Any]:
    """Run the tensor benchmark matrix and return the report dict.

    Two engines on the *same* manifest (identical sessions, identical
    bytes out — the comparison is pure execution cost), serial jobs=1
    so no pool scheduling blurs the engine difference:

    - ``session_cold`` / ``session_warm`` — every session through the
      per-session vectorized engine, pinned via ``REPRO_ENGINE`` (the
      cohort grouping still happens; only the engine choice is
      overridden).  ``session_cold`` is the hardware-normalization
      reference.
    - ``tensor_cold`` / ``tensor_warm`` — the default ``engine="auto"``
      policy: each operator's cohort runs as one ``(sessions, slots)``
      tensor pass.

    Cold clears the process-wide TBS matrix cache first; warm is the
    best of the remaining repetitions.  The report carries the cohort
    counters (cohorts run, fallback columns, tensor slots/s) from the
    timed tensor runs.
    """
    import os

    from repro.core.runner import run_tasks
    from repro.nr.tbs import clear_tbs_matrix_cache
    from repro.ran import tensor as tensor_mod
    from repro.ran.config import ENGINE_ENV

    cold_reps = 2 if quick else 3
    manifest = tensor_tasks(quick, seed)
    n = len(manifest)
    run_tasks(campaign_tasks(True, seed + 9)[:2], jobs=1)  # untimed warmup

    def timed(clear: bool) -> dict[str, float]:
        if clear:
            clear_tbs_matrix_cache()
        start = time.perf_counter()
        run_tasks(manifest, jobs=1)
        wall = time.perf_counter() - start
        return {"sessions_per_s": round(n / wall, 3),
                "wall_s": round(wall, 3)}

    def best(runs: list[dict[str, float]]) -> dict[str, float]:
        return max(runs, key=lambda r: r["sessions_per_s"])

    def run_variant() -> tuple[dict[str, float], dict[str, float]]:
        cold = best([timed(clear=True) for _ in range(cold_reps)])
        warm = best([timed(clear=False) for _ in range(2)])
        return cold, warm

    workloads: dict[str, Any] = {}
    saved = os.environ.get(ENGINE_ENV)
    os.environ[ENGINE_ENV] = "vectorized"
    try:
        workloads["session_cold"], workloads["session_warm"] = run_variant()
    finally:
        if saved is None:
            del os.environ[ENGINE_ENV]
        else:
            os.environ[ENGINE_ENV] = saved

    tensor_mod.reset_cohort_stats()
    workloads["tensor_cold"], workloads["tensor_warm"] = run_variant()
    stats = tensor_mod.cohort_stats()
    from repro.ran._native import kernel_status

    cells = stats["cells"]
    dirty = stats["dirty_periods"]
    cohort_info = {
        "cohorts": stats["cohorts"],
        "columns": stats["columns"],
        "columns_touched_fallback": stats["columns_touched_fallback"],
        "cells": cells,
        "dirty_periods": dirty,
        "batched_periods": stats["batched_periods"],
        "residual_periods": stats["residual_periods"],
        "dirty_fraction": round(dirty / cells, 4) if cells else 0.0,
        "residual_fraction_of_dirty": round(
            stats["residual_periods"] / dirty, 4) if dirty else 0.0,
        "native_kernel": kernel_status()["available"],
        "tensor_slots_per_s": round(stats["slots"] / stats["seconds"], 1)
        if stats["seconds"] else 0.0,
    }
    # Per-phase wall decomposition, aggregated over the timed tensor
    # runs: where a cohort pass actually spends its time (pre-draw /
    # tensor pass / batched retx / residual fallback / flush).
    phases = {
        "predraw_s": round(stats["predraw_s"], 4),
        "tensor_pass_s": round(stats["pass_s"], 4),
        "batched_retx_s": round(stats["batched_s"], 4),
        "residual_fallback_s": round(stats["residual_s"], 4),
        "flush_s": round(stats["flush_s"], 4),
        "total_s": round(stats["seconds"], 4),
    }

    report: dict[str, Any] = {
        "bench": "tensor",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profiles": list(_TENSOR_PROFILE_KEYS),
            "n_sessions": n,
            "cohort_size": _TENSOR_COHORT_QUICK if quick else _TENSOR_COHORT_FULL,
            "cold_reps": cold_reps,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
        "cohort": cohort_info,
        "phases": phases,
        "speedup": {
            "tensor_cold_vs_session_cold": round(
                workloads["tensor_cold"]["sessions_per_s"]
                / workloads["session_cold"]["sessions_per_s"], 2),
            "tensor_warm_vs_session_warm": round(
                workloads["tensor_warm"]["sessions_per_s"]
                / workloads["session_warm"]["sessions_per_s"], 2),
        },
    }
    return report


def tensor_regression_failures(current: dict[str, Any],
                               baseline: dict[str, Any],
                               threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of a tensor report.

    ``session_cold`` (per-session vectorized, serial jobs=1) is the
    reference workload: its ratio between the two reports estimates the
    machine-speed factor, and ``tensor_cold`` fails when it lost more
    than ``threshold`` of its sessions/sec after that factor is divided
    out (same convention as :func:`campaign_regression_failures`).

    Independent of the baseline, the *current* report must keep the
    cohort pass ahead of the per-session engine it batches
    (``tensor_cold_vs_session_cold`` >= ``_TENSOR_VS_SESSION_FLOOR``,
    relaxed for quick reports), must actually have run tensor cohorts
    (a policy regression that silently degrades every cohort to the
    per-session engine would otherwise gate green at 1.0x), and must
    keep the residual per-column fallback below
    ``_TENSOR_RESIDUAL_MAX_FRACTION`` of dirty cells — the batched
    retx lanes, not the Python runner, must own the common dirty cell.
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    floor = (_TENSOR_VS_SESSION_FLOOR_QUICK if current.get("quick")
             else _TENSOR_VS_SESSION_FLOOR)
    ratio = current.get("speedup", {}).get("tensor_cold_vs_session_cold")
    if ratio is not None and ratio < floor:
        failures.append(
            f"tensor_cold_vs_session_cold: {ratio:.2f}x < floor "
            f"{floor:.2f}x (the cohort pass must beat the per-session "
            f"engine it batches)")
    cohort = current.get("cohort", {})
    if not cohort.get("cohorts"):
        failures.append("cohort: no tensor cohorts ran (engine policy "
                        "degraded every cohort to the per-session engine)")
    resid = cohort.get("residual_fraction_of_dirty")
    if resid is not None and resid > _TENSOR_RESIDUAL_MAX_FRACTION:
        failures.append(
            f"batched-retx: residual fallback handled {resid:.1%} of dirty "
            f"cells > ceiling {_TENSOR_RESIDUAL_MAX_FRACTION:.0%} (the "
            f"batched lanes must absorb the common dirty cell)")
    try:
        base_ref = baseline["workloads"]["session_cold"]["sessions_per_s"]
        new_ref = current["workloads"]["session_cold"]["sessions_per_s"]
    except KeyError:
        return ["session_cold: reference workload missing from a report"]
    scale = new_ref / base_ref
    for name in _TENSOR_GATED:
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = (1.0 - threshold) * base["sessions_per_s"] * scale
        if new["sessions_per_s"] < floor:
            failures.append(
                f"{name}: {new['sessions_per_s']:,.2f} sessions/s < floor "
                f"{floor:,.2f} (baseline {base['sessions_per_s']:,.2f} "
                f"x machine factor {scale:.2f} x {1.0 - threshold:.2f})")
    return failures


def render_tensor(report: dict[str, Any]) -> str:
    """Human-readable table of a tensor benchmark report."""
    config = report["config"]
    lines = [f"tensor benchmark ({'quick' if report['quick'] else 'full'}, "
             f"{len(config['profiles'])} operators, "
             f"{config['n_sessions']} sessions, "
             f"cohort size {config['cohort_size']}, jobs=1)"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name:14s} {data['sessions_per_s']:>8,.2f} sessions/s"
                     f"   ({data['wall_s']:.2f} s)")
    speedup = report.get("speedup", {})
    if speedup:
        lines.append(
            f"  tensor vs per-session: cold "
            f"{speedup['tensor_cold_vs_session_cold']:.2f}x, warm "
            f"{speedup['tensor_warm_vs_session_warm']:.2f}x")
    cohort = report.get("cohort")
    if cohort:
        lines.append(
            f"  cohorts={cohort['cohorts']} columns={cohort['columns']} "
            f"columns_touched_fallback={cohort['columns_touched_fallback']} "
            f"dirty_periods={cohort['dirty_periods']} "
            f"tensor_slots_per_s={cohort['tensor_slots_per_s']:,.0f}")
        if "dirty_fraction" in cohort:
            tier = "native" if cohort.get("native_kernel") else "numpy"
            lines.append(
                f"  dirty={cohort['dirty_fraction']:.1%} of "
                f"{cohort['cells']} cells, batched={cohort['batched_periods']}"
                f" ({tier}) residual={cohort['residual_periods']} "
                f"({cohort['residual_fraction_of_dirty']:.1%} of dirty)")
    phases = report.get("phases")
    if phases:
        parts = [f"{key[:-2]}={phases[key]:.2f}s"
                 for key in ("predraw_s", "tensor_pass_s", "batched_retx_s",
                             "residual_fallback_s", "flush_s")
                 if key in phases]
        lines.append("  phases: " + " ".join(parts))
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Serve workload — the campaign service end to end
# --------------------------------------------------------------------- #

#: Workloads the serve gate tracks against the baseline after hardware
#: normalization; ``direct_cold`` (the same campaign through
#: ``generate_campaign`` with no daemon in the way) is the
#: normalization reference.  The warm workload is *not* here for the
#: same reason as the campaign/reduce benches: its cost is fixed
#: store-read overhead that does not scale with the machine factor.
_SERVE_GATED = ("serve_cold",)

#: A warm (fully store-served) submission must beat the cold submission
#: of the same campaign by at least this factor within one report;
#: below it the daemon is recomputing sessions it already has.
_SERVE_WARM_VS_COLD_FLOOR = 2.0

#: Concurrent identical submissions in the singleflight probe.
_SERVE_CONCURRENCY = 4


def _serve_spec(quick: bool, seed: int) -> dict[str, Any]:
    """The benchmark submission — a small all-operator campaign."""
    return {"kind": "campaign",
            "minutes": 0.1 if quick else 0.3,
            "session": 3.0 if quick else 5.0,
            "seed": seed}


def _timed_submit(client: Any, payload: dict[str, Any]) -> dict[str, Any]:
    """One submission, timed from the client side (daemon included)."""
    start = time.perf_counter()
    response = client.submit(payload)
    wall = time.perf_counter() - start
    n = response["accounting"]["tasks"]
    return {"sessions_per_s": round(n / wall, 3),
            "wall_s": round(wall, 3),
            "accounting": response["accounting"]}


def measure_serve(quick: bool = False, seed: int = 2024,
                  jobs: int | str = "auto") -> dict[str, Any]:
    """Run the serve benchmark matrix and return the report dict.

    One long-lived daemon (real HTTP on an ephemeral localhost port,
    prewarmed shared pool, fresh store) serves every variant — "cold"
    means an *unseen request* on a warm deployment, which is the cost
    a serving tier actually charges:

    - ``direct_cold`` — the same campaign through
      :func:`repro.xcal.dataset.generate_campaign`, serial jobs=1 on a
      fresh store, no daemon: the hardware-normalization reference and
      the number the serve overhead is quoted against.
    - ``serve_cold`` — first submission of an unseen campaign
      (best-of-reps, each rep on a fresh seed so every run recomputes).
    - ``serve_warm`` — the same campaign resubmitted: answered straight
      from the store (the report records computed/store_served so the
      gate can prove it).
    - ``serve_concurrent`` — ``_SERVE_CONCURRENCY`` identical
      submissions of an unseen campaign raced from separate threads;
      the service counters must show the campaign's tasks computed
      exactly once no matter how the arrivals interleave.
    """
    import tempfile
    import threading

    from repro.core.runner import resolve_jobs
    from repro.nr.tbs import clear_tbs_matrix_cache
    from repro.serve import CampaignService, ServeClient, ServeDaemon
    from repro.store import TraceStore
    from repro.xcal.dataset import CampaignSpec, generate_campaign

    workers = resolve_jobs(jobs)
    cold_reps = 2 if quick else 3
    base = _serve_spec(quick, seed)

    def best(runs: list[dict[str, Any]]) -> dict[str, Any]:
        return max(runs, key=lambda r: r["sessions_per_s"])

    workloads: dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-serve-") as tmpdir:
        tmp = Path(tmpdir)

        def direct_run(rep: int) -> dict[str, Any]:
            spec = CampaignSpec(minutes_per_operator=base["minutes"],
                                session_s=base["session"],
                                seed=seed + 50 + rep)
            clear_tbs_matrix_cache()
            start = time.perf_counter()
            campaign = generate_campaign(spec=spec, jobs=1,
                                         store=TraceStore(tmp / f"direct-{rep}"))
            wall = time.perf_counter() - start
            n = sum(len(traces) for traces in campaign.dl_traces.values())
            n += sum(len(traces) for traces in campaign.ul_traces.values())
            return {"sessions_per_s": round(n / wall, 3),
                    "wall_s": round(wall, 3)}

        direct_runs = [direct_run(rep) for rep in range(cold_reps)]
        workloads["direct_cold"] = best(direct_runs)

        store = TraceStore(tmp / "serve-store")
        service = CampaignService(store=store, jobs=workers)
        with ServeDaemon(service, quiet=True) as daemon:
            client = ServeClient(daemon.url)
            client.wait_healthy()
            client.submit({**base, "minutes": 0.05, "seed": seed + 9})  # warmup

            cold_runs = [_timed_submit(client, {**base, "seed": seed + rep})
                         for rep in range(cold_reps)]
            workloads["serve_cold"] = best(cold_runs)

            warm_runs = [_timed_submit(client, {**base, "seed": seed})
                         for _ in range(2)]
            workloads["serve_warm"] = best(warm_runs)

            before = service.stats()["serve"]
            race = {**base, "seed": seed + 100}
            responses: list[dict[str, Any] | None] = [None] * _SERVE_CONCURRENCY
            start = time.perf_counter()

            def submit_one(slot: int) -> None:
                responses[slot] = ServeClient(daemon.url).submit(race)

            threads = [threading.Thread(target=submit_one, args=(slot,))
                       for slot in range(_SERVE_CONCURRENCY)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            race_wall = time.perf_counter() - start
            after = service.stats()["serve"]

            n_race = responses[0]["accounting"]["tasks"]
            computed_delta = after["tasks_computed"] - before["tasks_computed"]
            workloads["serve_concurrent"] = {
                "sessions_per_s": round(n_race / race_wall, 3),
                "wall_s": round(race_wall, 3),
                "requests": _SERVE_CONCURRENCY,
                "dedup_hits": after["dedup_hits"] - before["dedup_hits"],
                "tasks": n_race,
                "tasks_computed": computed_delta,
            }
            serve_totals = service.stats()["serve"]

    warm_acct = workloads["serve_warm"]["accounting"]
    report: dict[str, Any] = {
        "bench": "serve",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "minutes": base["minutes"],
            "session_s": base["session"],
            "n_sessions": workloads["serve_cold"]["accounting"]["tasks"],
            "jobs": workers,
            "cold_reps": cold_reps,
            "concurrency": _SERVE_CONCURRENCY,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
        "serve": serve_totals,
        "checks": {
            "singleflight_computed_once":
                workloads["serve_concurrent"]["tasks_computed"]
                == workloads["serve_concurrent"]["tasks"],
            "warm_computed": warm_acct["computed"],
            "warm_store_served": bool(warm_acct["store_served"]),
        },
        "speedup": {
            "warm_vs_cold": round(
                workloads["serve_warm"]["sessions_per_s"]
                / workloads["serve_cold"]["sessions_per_s"], 2),
            "serve_cold_vs_direct_cold": round(
                workloads["serve_cold"]["sessions_per_s"]
                / workloads["direct_cold"]["sessions_per_s"], 2),
        },
    }
    return report


def serve_regression_failures(current: dict[str, Any],
                              baseline: dict[str, Any],
                              threshold: float = 0.30) -> list[str]:
    """Regressions of a serve report: correctness gates + normalized speed.

    Independent of the baseline, the *current* report must prove the
    service's two load-bearing claims: the singleflight probe computed
    its campaign's tasks exactly once across concurrent identical
    submissions, and the warm submission recomputed nothing
    (``computed == 0`` and fully store-served) while beating its cold
    run by ``_SERVE_WARM_VS_COLD_FLOOR``.  On top of that,
    ``serve_cold`` gates against the baseline hardware-normalized with
    ``direct_cold`` as the reference workload (same convention as
    :func:`campaign_regression_failures`).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    checks = current.get("checks", {})
    concurrent = current.get("workloads", {}).get("serve_concurrent", {})
    if not checks.get("singleflight_computed_once"):
        failures.append(
            f"singleflight: {concurrent.get('tasks_computed')} tasks computed "
            f"for {concurrent.get('requests')} concurrent identical "
            f"submissions of {concurrent.get('tasks')} tasks "
            f"(must compute exactly once)")
    if checks.get("warm_computed", 1) != 0 or not checks.get("warm_store_served"):
        failures.append(
            f"serve_warm: computed={checks.get('warm_computed')} "
            f"store_served={checks.get('warm_store_served')} "
            f"(a repeat submission must recompute nothing)")
    ratio = current.get("speedup", {}).get("warm_vs_cold")
    if ratio is not None and ratio < _SERVE_WARM_VS_COLD_FLOOR:
        failures.append(
            f"warm_vs_cold: {ratio:.2f}x < floor "
            f"{_SERVE_WARM_VS_COLD_FLOOR:.0f}x (store-served replay is "
            f"not beating recomputation)")
    try:
        base_ref = baseline["workloads"]["direct_cold"]["sessions_per_s"]
        new_ref = current["workloads"]["direct_cold"]["sessions_per_s"]
    except KeyError:
        return ["direct_cold: reference workload missing from a report"]
    scale = new_ref / base_ref
    for name in _SERVE_GATED:
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = (1.0 - threshold) * base["sessions_per_s"] * scale
        if new["sessions_per_s"] < floor:
            failures.append(
                f"{name}: {new['sessions_per_s']:,.2f} sessions/s < floor "
                f"{floor:,.2f} (baseline {base['sessions_per_s']:,.2f} "
                f"x machine factor {scale:.2f} x {1.0 - threshold:.2f})")
    return failures


def render_serve(report: dict[str, Any]) -> str:
    """Human-readable table of a serve benchmark report."""
    config = report["config"]
    lines = [f"serve benchmark ({'quick' if report['quick'] else 'full'}, "
             f"{config['n_sessions']} sessions/campaign, "
             f"jobs={config['jobs']}, "
             f"concurrency={config['concurrency']})"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name:17s} {data['sessions_per_s']:>8,.2f} sessions/s"
                     f"   ({data['wall_s']:.2f} s)")
    checks = report.get("checks", {})
    concurrent = report.get("workloads", {}).get("serve_concurrent", {})
    lines.append(
        f"  singleflight: {concurrent.get('requests')} concurrent identical "
        f"submissions -> {concurrent.get('tasks_computed')} of "
        f"{concurrent.get('tasks')} tasks computed, "
        f"{concurrent.get('dedup_hits')} dedup hits "
        f"({'PASS' if checks.get('singleflight_computed_once') else 'FAIL'})")
    lines.append(
        f"  warm replay: computed={checks.get('warm_computed')} "
        f"store_served={checks.get('warm_store_served')} "
        f"({report['speedup']['warm_vs_cold']:.2f}x its cold run)")
    serve = report.get("serve", {})
    if serve:
        lines.append(
            f"  daemon totals: requests={serve.get('requests')} "
            f"dedup_hits={serve.get('dedup_hits')} "
            f"computed={serve.get('tasks_computed')} "
            f"memoized={serve.get('tasks_memoized')} "
            f"errors={serve.get('errors')}")
    return "\n".join(lines)


def history_report(root: Path | str = ".") -> dict[str, Any]:
    """Fold every committed ``BENCH_*.json`` under ``root`` into one
    trajectory report.

    Each tracked benchmark writes its own report file; reading the
    performance story of the repo therefore meant opening five JSON
    files by hand.  This folds their headline numbers — per-workload
    throughput, the speedup ratios each workload gates on, and the
    tensor engine's phase decomposition — into a single dict (and, via
    :func:`render_history`, a single table).  Files that do not parse
    or do not look like bench reports are listed under ``"skipped"``
    instead of aborting the fold, so one corrupt artifact cannot hide
    the rest of the trajectory.
    """
    root = Path(root)
    entries: list[dict[str, Any]] = []
    skipped: list[str] = []
    for path in sorted(root.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            skipped.append(f"{path.name}: {exc}")
            continue
        kind = data.get("bench")
        if not isinstance(data, dict) or not isinstance(kind, str):
            skipped.append(f"{path.name}: not a bench report")
            continue
        entry: dict[str, Any] = {
            "file": path.name,
            "kind": kind,
            "quick": bool(data.get("quick")),
            "schema": data.get("schema"),
        }
        workloads = data.get("workloads")
        if isinstance(workloads, dict):
            throughput = {}
            for name, wl in workloads.items():
                if isinstance(wl, dict):
                    for key in ("sessions_per_s", "slots_per_s"):
                        if isinstance(wl.get(key), (int, float)):
                            throughput[name] = wl[key]
                            break
            if throughput:
                entry["throughput"] = throughput
        speedup = data.get("speedup") or data.get("speedup_vs_pre_pr")
        if isinstance(speedup, dict):
            entry["speedup"] = {
                k: v for k, v in speedup.items()
                if isinstance(v, (int, float))
            }
        phases = data.get("phases")
        if isinstance(phases, dict) and phases.get("total_s"):
            entry["flush_share"] = round(
                phases.get("flush_s", 0.0) / phases["total_s"], 3)
        entries.append(entry)
    return {
        "bench": "history",
        "schema": BENCH_SCHEMA_VERSION,
        "root": str(root),
        "reports": entries,
        "skipped": skipped,
    }


def render_history(report: dict[str, Any]) -> str:
    """Human-readable table of a :func:`history_report` trajectory."""
    entries = report.get("reports", [])
    lines = [f"benchmark trajectory ({len(entries)} reports "
             f"under {report.get('root', '.')})"]
    if not entries:
        lines.append("  no BENCH_*.json reports found")
    for entry in entries:
        mode = "quick" if entry.get("quick") else "full"
        lines.append(f"  {entry['file']} [{entry['kind']}, {mode}]")
        throughput = entry.get("throughput", {})
        for name, value in throughput.items():
            lines.append(f"    {name:22s} {value:>10,.2f} /s")
        for name, value in entry.get("speedup", {}).items():
            lines.append(f"    {name:40s} {value:>6.2f}x")
        if "flush_share" in entry:
            lines.append(f"    {'flush share of tensor wall':40s} "
                         f"{entry['flush_share'] * 100:>5.1f}%")
    for item in report.get("skipped", []):
        lines.append(f"  skipped {item}")
    return "\n".join(lines)


def load_report(path: Path | str) -> dict[str, Any]:
    """Read a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def write_report(report: dict[str, Any], path: Path | str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def write_profile(profiler: Any, report_path: Path | str,
                  top: int = 20) -> tuple[Path, Path]:
    """Persist a ``cProfile.Profile`` next to its BENCH json.

    Writes two siblings of ``report_path``: a binary ``.pstats`` dump
    (re-loadable with :mod:`pstats` for ad-hoc digging) and a
    ``.profile.txt`` table of the ``top`` cumulative-time entries — so
    the next perf PR starts from data instead of guesses.  Returns the
    ``(pstats_path, table_path)`` pair.
    """
    import io
    import pstats

    report_path = Path(report_path)
    base = report_path.with_suffix("")  # BENCH_x.json -> BENCH_x
    pstats_path = base.with_suffix(".pstats")
    table_path = base.with_suffix(".profile.txt")

    stats = pstats.Stats(profiler)
    stats.dump_stats(str(pstats_path))
    buf = io.StringIO()
    stats.stream = buf
    stats.sort_stats("cumulative").print_stats(top)
    table_path.write_text(buf.getvalue())
    return pstats_path, table_path
