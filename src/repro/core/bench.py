"""Tracked benchmarks — the ``repro bench`` subcommand.

Two tracked workloads, selected with ``--workload``:

- ``slot`` (default) — the slot engines, the hot path under every
  figure, table and campaign: slots/sec on the Fig. 1 single-carrier
  workload (the V_Sp n78 90 MHz deployment) for both the vectorized
  and the reference engine, single- and multi-UE, cold and warm.
  Report: ``BENCH_slot_engine.json``.
- ``campaign`` — the execution layer end to end: sessions/sec of a
  four-operator campaign through :func:`repro.core.runner.run_tasks`
  under every transport (serial jobs=1 cold and warm, the legacy
  pipe transport at jobs=auto, and store-routed jobs=auto cold and
  warm on a persistent :class:`~repro.core.runner.CampaignExecutor`
  pool).  Report: ``BENCH_campaign.json``.

Two measurement conventions keep the numbers honest:

- **cold vs warm** — "cold" is the first run after clearing the
  process-wide TBS matrix cache (what a fresh campaign worker pays);
  "warm" is the best of the remaining repetitions (what every
  subsequent session in the same process pays).  Best-of, not mean:
  simulation cost is deterministic, so the minimum is the measurement
  and everything above it is scheduler noise.
- **hardware normalization** — CI machines differ run to run, so a raw
  slots/sec comparison against a committed baseline is meaningless.
  A reference workload runs in the same process (the reference engine
  for ``slot``, the serial jobs=1 cold run for ``campaign``), so the
  ratio ``reference_now / reference_baseline`` estimates the
  machine-speed factor; tracked numbers are compared after dividing
  that factor out (see :func:`regression_failures` and
  :func:`campaign_regression_failures`).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRE_PR_BASELINE",
    "campaign_regression_failures",
    "campaign_tasks",
    "load_report",
    "measure",
    "measure_campaign",
    "multi_ue_traces",
    "regression_failures",
    "render",
    "render_campaign",
    "single_ue_trace",
    "write_report",
]

BENCH_SCHEMA_VERSION = 1

#: slots/sec of the pre-rewrite scalar engine on this file's exact
#: workloads (full mode), measured once on the machine that produced
#: the first committed ``BENCH_slot_engine.json``.  Recorded so the
#: report can state the speedup the vectorized engine was introduced
#: with; CI regression checks never use these numbers (they compare
#: hardware-normalized against the committed baseline instead).
PRE_PR_BASELINE = {
    "single_ue_slots_per_s": 251_345.0,
    "multi_ue_slots_per_s": 11_134.0,
}

_BENCH_PROFILE = "V_Sp"
_MULTI_UES = 4
_MULTI_SINR_STEP_DB = -3.0


def single_ue_trace(engine: str = "vectorized", duration_s: float = 5.0,
                    seed: int = 2024):
    """One full-buffer DL trace of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = profile.dl_channel().realize(duration_s, mu=cell.mu, rng=rng)
    from repro.ran.simulator import simulate_downlink

    return simulate_downlink(cell, channel, rng=rng,
                             params=profile.sim_params(engine=engine))


def multi_ue_traces(engine: str = "vectorized", duration_s: float = 5.0,
                    n_ues: int = _MULTI_UES, seed: int = 2024):
    """One PF-scheduled multi-UE DL run of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile
    from repro.ran.scheduler import ProportionalFairScheduler
    from repro.ran.simulator import simulate_downlink_multi

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channels = [
        profile.dl_channel(sinr_offset_db=_MULTI_SINR_STEP_DB * k)
        .realize(duration_s, mu=cell.mu, rng=np.random.default_rng(seed + 100 + k))
        for k in range(n_ues)
    ]
    return simulate_downlink_multi(cell, channels, ProportionalFairScheduler(),
                                   rng=rng, params=profile.sim_params(engine=engine))


def _time_engine(run: Callable[[], Any], n_slots_of: Callable[[Any], int],
                 repetitions: int) -> dict[str, float]:
    """Cold (first run, caches cleared) and warm (best-of-rest) slots/sec."""
    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    start = time.perf_counter()
    result = run()
    cold = n_slots_of(result) / (time.perf_counter() - start)
    warm = 0.0
    for _ in range(max(1, repetitions - 1)):
        start = time.perf_counter()
        result = run()
        warm = max(warm, n_slots_of(result) / (time.perf_counter() - start))
    return {"cold_slots_per_s": round(cold, 1), "warm_slots_per_s": round(warm, 1)}


def measure(quick: bool = False, seed: int = 2024,
            repetitions: int | None = None) -> dict[str, Any]:
    """Run the full benchmark matrix and return the report dict."""
    duration_s = 2.0 if quick else 5.0
    repetitions = repetitions or (3 if quick else 11)

    workloads: dict[str, Any] = {}
    single: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        single[engine] = _time_engine(
            lambda engine=engine: single_ue_trace(engine, duration_s, seed),
            len, repetitions)
    single["n_slots"] = len(single_ue_trace("vectorized", duration_s, seed))
    workloads["single_ue"] = single

    multi: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        multi[engine] = _time_engine(
            lambda engine=engine: multi_ue_traces(engine, duration_s, seed=seed),
            lambda traces: len(traces[0]), repetitions)
    multi["n_slots"] = len(multi_ue_traces("vectorized", duration_s, seed=seed)[0])
    multi["n_ues"] = _MULTI_UES
    workloads["multi_ue"] = multi

    report: dict[str, Any] = {
        "bench": "slot_engine",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profile": _BENCH_PROFILE,
            "duration_s": duration_s,
            "repetitions": repetitions,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
    }
    if not quick:
        report["pre_pr_baseline"] = dict(PRE_PR_BASELINE)
        report["speedup_vs_pre_pr"] = {
            "single_ue": round(single["vectorized"]["warm_slots_per_s"]
                               / PRE_PR_BASELINE["single_ue_slots_per_s"], 2),
            "multi_ue": round(multi["vectorized"]["warm_slots_per_s"]
                              / PRE_PR_BASELINE["multi_ue_slots_per_s"], 2),
        }
    return report


def regression_failures(current: dict[str, Any], baseline: dict[str, Any],
                        threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of ``current`` vs ``baseline``.

    For each workload the reference engine's ratio between the two
    reports estimates the machine-speed factor; a workload fails when
    the vectorized engine lost more than ``threshold`` of its
    throughput after that factor is divided out::

        new_vec < (1 - threshold) * base_vec * (new_ref / base_ref)

    Returns one message per failing workload (empty list = pass).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    for name, base in baseline.get("workloads", {}).items():
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        base_vec = base["vectorized"]["warm_slots_per_s"]
        base_ref = base["reference"]["warm_slots_per_s"]
        new_vec = new["vectorized"]["warm_slots_per_s"]
        new_ref = new["reference"]["warm_slots_per_s"]
        scale = new_ref / base_ref
        floor = (1.0 - threshold) * base_vec * scale
        if new_vec < floor:
            failures.append(
                f"{name}: vectorized {new_vec:,.0f} slots/s < floor {floor:,.0f} "
                f"(baseline {base_vec:,.0f} x machine factor {scale:.2f} "
                f"x {1.0 - threshold:.2f})")
    return failures


def render(report: dict[str, Any]) -> str:
    """Human-readable table of a benchmark report."""
    lines = [f"slot-engine benchmark ({'quick' if report['quick'] else 'full'}, "
             f"profile {report['config']['profile']}, "
             f"{report['config']['repetitions']} reps)"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name} ({data['n_slots']} slots"
                     + (f", {data['n_ues']} UEs" if "n_ues" in data else "") + ")")
        for engine in ("vectorized", "reference"):
            e = data[engine]
            lines.append(f"    {engine:11s} cold {e['cold_slots_per_s']:>12,.0f} slots/s"
                         f"   warm {e['warm_slots_per_s']:>12,.0f} slots/s")
    speedup = report.get("speedup_vs_pre_pr")
    if speedup:
        lines.append(f"  speedup vs pre-PR scalar engine: "
                     f"single-UE {speedup['single_ue']:.2f}x, "
                     f"multi-UE {speedup['multi_ue']:.2f}x")
    return "\n".join(lines)


# --------------------------------------------------------------------- #
# Campaign workload — the execution layer end to end
# --------------------------------------------------------------------- #

#: Operators of the campaign workload: two Spanish and two German
#: deployments spanning 40–90 MHz carriers (a representative slice of
#: the study without the full nine-operator cost).
_CAMPAIGN_PROFILE_KEYS = ("V_Sp", "O_Sp_100", "T_Ge", "V_Ge")

#: Workloads whose sessions/sec the campaign gate tracks (everything
#: the execution-layer rewrite is responsible for); ``pipe_cold`` and
#: ``jobs1_cold`` are informational / the normalization reference.
_CAMPAIGN_GATED = ("jobs1_warm", "store_routed_cold", "store_routed_warm")


def campaign_tasks(quick: bool = False, seed: int = 2024) -> list:
    """The benchmark campaign's session manifest (fixed shape per mode)."""
    from repro.operators.profiles import EU_PROFILES
    from repro.xcal.dataset import CampaignSpec, campaign_manifest

    spec = CampaignSpec(
        minutes_per_operator=0.15 if quick else 0.5,
        session_s=3.0 if quick else 5.0,
        seed=seed,
    )
    profiles = {key: EU_PROFILES[key] for key in _CAMPAIGN_PROFILE_KEYS}
    return campaign_manifest(profiles, spec)


def _time_campaign(manifest: list, **run_kwargs: Any) -> dict[str, float]:
    """sessions/sec of one ``run_tasks`` execution, TBS caches cleared."""
    from repro.core.runner import run_tasks
    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    start = time.perf_counter()
    run_tasks(manifest, **run_kwargs)
    wall = time.perf_counter() - start
    return {"sessions_per_s": round(len(manifest) / wall, 3),
            "wall_s": round(wall, 3)}


def measure_campaign(quick: bool = False, seed: int = 2024,
                     jobs: int | str = "auto") -> dict[str, Any]:
    """Run the campaign benchmark matrix and return the report dict.

    Five timed variants, each on its own seed (so every "cold" run is
    genuinely cold — no key overlap with a previous variant's store)
    and its own store directory:

    - ``jobs1_cold`` / ``jobs1_warm`` — serial runner, empty store then
      fully warm store.  ``jobs1_cold`` is the hardware-normalization
      reference (the path least affected by the execution layer).
    - ``pipe_cold`` — jobs=auto on a transient pool with full results
      pickled back over the pipe: the pre-PR parallel path, kept as
      the comparator the store-routed speedup is quoted against.
    - ``store_routed_cold`` / ``store_routed_warm`` — jobs=auto on a
      persistent :class:`~repro.core.runner.CampaignExecutor` pool
      whose workers write payloads to the store and return keys.
    """
    import tempfile

    from repro.core.runner import CampaignExecutor, resolve_jobs
    from repro.store import TraceStore

    workers = resolve_jobs(jobs)
    workloads: dict[str, Any] = {}
    with tempfile.TemporaryDirectory(prefix="repro-bench-campaign-") as tmpdir:
        tmp = Path(tmpdir)
        serial_manifest = campaign_tasks(quick, seed)
        workloads["jobs1_cold"] = _time_campaign(
            serial_manifest, jobs=1, store=TraceStore(tmp / "jobs1"))
        workloads["jobs1_warm"] = _time_campaign(
            serial_manifest, jobs=1, store=TraceStore(tmp / "jobs1"))

        pipe_manifest = campaign_tasks(quick, seed + 1)
        workloads["pipe_cold"] = _time_campaign(
            pipe_manifest, jobs=workers, store=TraceStore(tmp / "pipe"),
            transport="pipe")

        routed_manifest = campaign_tasks(quick, seed + 2)
        routed_store = TraceStore(tmp / "routed")
        with CampaignExecutor(jobs=workers, store=routed_store) as executor:
            workloads["store_routed_cold"] = _time_campaign(
                routed_manifest, store=routed_store, executor=executor,
                transport="store")
            workloads["store_routed_warm"] = _time_campaign(
                routed_manifest, store=TraceStore(tmp / "routed"),
                executor=executor)
            pool_stats = executor.stats()

    pipe = workloads["pipe_cold"]["sessions_per_s"]
    report: dict[str, Any] = {
        "bench": "campaign",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profiles": list(_CAMPAIGN_PROFILE_KEYS),
            "n_sessions": len(serial_manifest),
            "jobs": workers,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "pool": pool_stats,
        "workloads": workloads,
        "speedup": {
            "routed_cold_vs_pipe_cold": round(
                workloads["store_routed_cold"]["sessions_per_s"] / pipe, 2),
            "warm_vs_pre_pr_pipe": round(
                workloads["store_routed_warm"]["sessions_per_s"] / pipe, 2),
        },
    }
    return report


def campaign_regression_failures(current: dict[str, Any],
                                 baseline: dict[str, Any],
                                 threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of a campaign report.

    The serial ``jobs1_cold`` run is the reference workload: its ratio
    between the two reports estimates the machine-speed factor, and a
    gated workload fails when it lost more than ``threshold`` of its
    sessions/sec after that factor is divided out (same convention as
    :func:`regression_failures`).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    try:
        base_ref = baseline["workloads"]["jobs1_cold"]["sessions_per_s"]
        new_ref = current["workloads"]["jobs1_cold"]["sessions_per_s"]
    except KeyError:
        return ["jobs1_cold: reference workload missing from a report"]
    scale = new_ref / base_ref
    for name in _CAMPAIGN_GATED:
        base = baseline.get("workloads", {}).get(name)
        if base is None:
            continue
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        floor = (1.0 - threshold) * base["sessions_per_s"] * scale
        if new["sessions_per_s"] < floor:
            failures.append(
                f"{name}: {new['sessions_per_s']:,.2f} sessions/s < floor "
                f"{floor:,.2f} (baseline {base['sessions_per_s']:,.2f} "
                f"x machine factor {scale:.2f} x {1.0 - threshold:.2f})")
    return failures


def render_campaign(report: dict[str, Any]) -> str:
    """Human-readable table of a campaign benchmark report."""
    config = report["config"]
    lines = [f"campaign benchmark ({'quick' if report['quick'] else 'full'}, "
             f"{len(config['profiles'])} operators, "
             f"{config['n_sessions']} sessions, jobs={config['jobs']})"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name:18s} {data['sessions_per_s']:>8,.2f} sessions/s"
                     f"   ({data['wall_s']:.2f} s)")
    speedup = report.get("speedup", {})
    if speedup:
        lines.append(
            f"  store-routed warm vs pre-PR pipe path: "
            f"{speedup['warm_vs_pre_pr_pipe']:.2f}x "
            f"(routed cold {speedup['routed_cold_vs_pipe_cold']:.2f}x)")
    pool = report.get("pool")
    if pool:
        lines.append(f"  pool: workers={pool['workers']} pools={pool['pools_created']} "
                     f"dispatches={pool['dispatches']} tasks={pool['tasks_executed']} "
                     f"routed={pool['tasks_routed']}")
    return "\n".join(lines)


def load_report(path: Path | str) -> dict[str, Any]:
    """Read a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def write_report(report: dict[str, Any], path: Path | str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
