"""Tracked slot-engine benchmark — the ``repro bench`` subcommand.

The slot engines are the hot path under every figure, table and
campaign, so their throughput is tracked across PRs: ``repro bench``
measures slots/sec on the Fig. 1 single-carrier workload (the V_Sp
n78 90 MHz deployment) for both the vectorized and the reference
engine, single- and multi-UE, cold and warm, and emits a JSON report
(``BENCH_slot_engine.json``) that CI diffs against the committed
baseline.

Two measurement conventions keep the numbers honest:

- **cold vs warm** — "cold" is the first run after clearing the
  process-wide TBS matrix cache (what a fresh campaign worker pays);
  "warm" is the best of the remaining repetitions (what every
  subsequent session in the same process pays).  Best-of, not mean:
  simulation cost is deterministic, so the minimum is the measurement
  and everything above it is scheduler noise.
- **hardware normalization** — CI machines differ run to run, so a raw
  slots/sec comparison against a committed baseline is meaningless.
  The reference engine runs the same workload in the same process, so
  the ratio ``reference_now / reference_baseline`` estimates the
  machine-speed factor; the vectorized number is compared after
  dividing that factor out (see :func:`regression_failures`).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "PRE_PR_BASELINE",
    "load_report",
    "measure",
    "multi_ue_traces",
    "regression_failures",
    "render",
    "single_ue_trace",
    "write_report",
]

BENCH_SCHEMA_VERSION = 1

#: slots/sec of the pre-rewrite scalar engine on this file's exact
#: workloads (full mode), measured once on the machine that produced
#: the first committed ``BENCH_slot_engine.json``.  Recorded so the
#: report can state the speedup the vectorized engine was introduced
#: with; CI regression checks never use these numbers (they compare
#: hardware-normalized against the committed baseline instead).
PRE_PR_BASELINE = {
    "single_ue_slots_per_s": 251_345.0,
    "multi_ue_slots_per_s": 11_134.0,
}

_BENCH_PROFILE = "V_Sp"
_MULTI_UES = 4
_MULTI_SINR_STEP_DB = -3.0


def single_ue_trace(engine: str = "vectorized", duration_s: float = 5.0,
                    seed: int = 2024):
    """One full-buffer DL trace of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channel = profile.dl_channel().realize(duration_s, mu=cell.mu, rng=rng)
    from repro.ran.simulator import simulate_downlink

    return simulate_downlink(cell, channel, rng=rng,
                             params=profile.sim_params(engine=engine))


def multi_ue_traces(engine: str = "vectorized", duration_s: float = 5.0,
                    n_ues: int = _MULTI_UES, seed: int = 2024):
    """One PF-scheduled multi-UE DL run of the Fig. 1 V_Sp carrier."""
    from repro.operators.profiles import get_profile
    from repro.ran.scheduler import ProportionalFairScheduler
    from repro.ran.simulator import simulate_downlink_multi

    profile = get_profile(_BENCH_PROFILE)
    cell = profile.primary_cell
    rng = np.random.default_rng(seed)
    channels = [
        profile.dl_channel(sinr_offset_db=_MULTI_SINR_STEP_DB * k)
        .realize(duration_s, mu=cell.mu, rng=np.random.default_rng(seed + 100 + k))
        for k in range(n_ues)
    ]
    return simulate_downlink_multi(cell, channels, ProportionalFairScheduler(),
                                   rng=rng, params=profile.sim_params(engine=engine))


def _time_engine(run: Callable[[], Any], n_slots_of: Callable[[Any], int],
                 repetitions: int) -> dict[str, float]:
    """Cold (first run, caches cleared) and warm (best-of-rest) slots/sec."""
    from repro.nr.tbs import clear_tbs_matrix_cache

    clear_tbs_matrix_cache()
    start = time.perf_counter()
    result = run()
    cold = n_slots_of(result) / (time.perf_counter() - start)
    warm = 0.0
    for _ in range(max(1, repetitions - 1)):
        start = time.perf_counter()
        result = run()
        warm = max(warm, n_slots_of(result) / (time.perf_counter() - start))
    return {"cold_slots_per_s": round(cold, 1), "warm_slots_per_s": round(warm, 1)}


def measure(quick: bool = False, seed: int = 2024,
            repetitions: int | None = None) -> dict[str, Any]:
    """Run the full benchmark matrix and return the report dict."""
    duration_s = 2.0 if quick else 5.0
    repetitions = repetitions or (3 if quick else 11)

    workloads: dict[str, Any] = {}
    single: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        single[engine] = _time_engine(
            lambda engine=engine: single_ue_trace(engine, duration_s, seed),
            len, repetitions)
    single["n_slots"] = len(single_ue_trace("vectorized", duration_s, seed))
    workloads["single_ue"] = single

    multi: dict[str, Any] = {}
    for engine in ("vectorized", "reference"):
        multi[engine] = _time_engine(
            lambda engine=engine: multi_ue_traces(engine, duration_s, seed=seed),
            lambda traces: len(traces[0]), repetitions)
    multi["n_slots"] = len(multi_ue_traces("vectorized", duration_s, seed=seed)[0])
    multi["n_ues"] = _MULTI_UES
    workloads["multi_ue"] = multi

    report: dict[str, Any] = {
        "bench": "slot_engine",
        "schema": BENCH_SCHEMA_VERSION,
        "quick": quick,
        "config": {
            "profile": _BENCH_PROFILE,
            "duration_s": duration_s,
            "repetitions": repetitions,
            "seed": seed,
        },
        "environment": {
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "workloads": workloads,
    }
    if not quick:
        report["pre_pr_baseline"] = dict(PRE_PR_BASELINE)
        report["speedup_vs_pre_pr"] = {
            "single_ue": round(single["vectorized"]["warm_slots_per_s"]
                               / PRE_PR_BASELINE["single_ue_slots_per_s"], 2),
            "multi_ue": round(multi["vectorized"]["warm_slots_per_s"]
                              / PRE_PR_BASELINE["multi_ue_slots_per_s"], 2),
        }
    return report


def regression_failures(current: dict[str, Any], baseline: dict[str, Any],
                        threshold: float = 0.30) -> list[str]:
    """Hardware-normalized regressions of ``current`` vs ``baseline``.

    For each workload the reference engine's ratio between the two
    reports estimates the machine-speed factor; a workload fails when
    the vectorized engine lost more than ``threshold`` of its
    throughput after that factor is divided out::

        new_vec < (1 - threshold) * base_vec * (new_ref / base_ref)

    Returns one message per failing workload (empty list = pass).
    """
    if not 0.0 < threshold < 1.0:
        raise ValueError("threshold must lie in (0, 1)")
    failures: list[str] = []
    for name, base in baseline.get("workloads", {}).items():
        new = current.get("workloads", {}).get(name)
        if new is None:
            failures.append(f"{name}: missing from current report")
            continue
        base_vec = base["vectorized"]["warm_slots_per_s"]
        base_ref = base["reference"]["warm_slots_per_s"]
        new_vec = new["vectorized"]["warm_slots_per_s"]
        new_ref = new["reference"]["warm_slots_per_s"]
        scale = new_ref / base_ref
        floor = (1.0 - threshold) * base_vec * scale
        if new_vec < floor:
            failures.append(
                f"{name}: vectorized {new_vec:,.0f} slots/s < floor {floor:,.0f} "
                f"(baseline {base_vec:,.0f} x machine factor {scale:.2f} "
                f"x {1.0 - threshold:.2f})")
    return failures


def render(report: dict[str, Any]) -> str:
    """Human-readable table of a benchmark report."""
    lines = [f"slot-engine benchmark ({'quick' if report['quick'] else 'full'}, "
             f"profile {report['config']['profile']}, "
             f"{report['config']['repetitions']} reps)"]
    for name, data in report["workloads"].items():
        lines.append(f"  {name} ({data['n_slots']} slots"
                     + (f", {data['n_ues']} UEs" if "n_ues" in data else "") + ")")
        for engine in ("vectorized", "reference"):
            e = data[engine]
            lines.append(f"    {engine:11s} cold {e['cold_slots_per_s']:>12,.0f} slots/s"
                         f"   warm {e['warm_slots_per_s']:>12,.0f} slots/s")
    speedup = report.get("speedup_vs_pre_pr")
    if speedup:
        lines.append(f"  speedup vs pre-PR scalar engine: "
                     f"single-UE {speedup['single_ue']:.2f}x, "
                     f"multi-UE {speedup['multi_ue']:.2f}x")
    return "\n".join(lines)


def load_report(path: Path | str) -> dict[str, Any]:
    """Read a report written by :func:`write_report`."""
    return json.loads(Path(path).read_text())


def write_report(report: dict[str, Any], path: Path | str) -> None:
    """Write a report as stable, diff-friendly JSON."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
