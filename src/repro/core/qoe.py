"""Video streaming QoE metrics (§6 of the paper).

The paper evaluates client buffer level, *normalized bitrate* and
*stall time*; Fig. 15/16 report the average normalized bitrate and the
stall-time percentage of each run, plus the mean quality level
("Avg Quality = 5.41" in Fig. 16).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def normalized_bitrate(chunk_bitrates_mbps: np.ndarray, max_bitrate_mbps: float) -> float:
    """Average chunk bitrate normalized by the ladder's top bitrate."""
    if max_bitrate_mbps <= 0:
        raise ValueError("max_bitrate_mbps must be positive")
    chunks = np.asarray(chunk_bitrates_mbps, dtype=float)
    if chunks.size == 0:
        return 0.0
    return float(chunks.mean() / max_bitrate_mbps)


def stall_percentage(total_stall_s: float, playback_s: float) -> float:
    """Stall time as a percentage of total session time."""
    if playback_s < 0 or total_stall_s < 0:
        raise ValueError("durations must be non-negative")
    session = playback_s + total_stall_s
    if session == 0:
        return 0.0
    return min(100.0, 100.0 * total_stall_s / session)


def bitrate_smoothness(chunk_bitrates_mbps: np.ndarray) -> float:
    """Mean absolute bitrate change between consecutive chunks.

    This is V(t) at the chunk time scale — the paper notes (§5 footnote)
    that video "smoothness" is exactly the scaled variability metric at
    a fixed chunk-length scale.
    """
    chunks = np.asarray(chunk_bitrates_mbps, dtype=float)
    if chunks.size < 2:
        return 0.0
    return float(np.mean(np.abs(np.diff(chunks))))


@dataclass(frozen=True)
class QoeMetrics:
    """QoE summary of one streaming session."""

    mean_quality_level: float
    normalized_bitrate: float
    mean_bitrate_mbps: float
    stall_time_s: float
    stall_percentage: float
    n_stalls: int
    n_chunks: int
    smoothness_mbps: float
    startup_delay_s: float = 0.0

    def row(self) -> str:
        """One printable harness row."""
        return (
            f"quality={self.mean_quality_level:5.2f}  norm_bitrate={self.normalized_bitrate:5.3f}  "
            f"bitrate={self.mean_bitrate_mbps:8.1f} Mbps  stall={self.stall_percentage:6.2f}%  "
            f"stalls={self.n_stalls:3d}  chunks={self.n_chunks:4d}"
        )

    @classmethod
    def from_session(
        cls,
        quality_levels: np.ndarray,
        chunk_bitrates_mbps: np.ndarray,
        max_bitrate_mbps: float,
        stall_events_s: np.ndarray,
        playback_s: float,
        startup_delay_s: float = 0.0,
    ) -> "QoeMetrics":
        """Build the summary from raw per-chunk session data."""
        quality_levels = np.asarray(quality_levels, dtype=float)
        chunk_bitrates = np.asarray(chunk_bitrates_mbps, dtype=float)
        stalls = np.asarray(stall_events_s, dtype=float)
        total_stall = float(stalls.sum())
        return cls(
            mean_quality_level=float(quality_levels.mean()) if quality_levels.size else 0.0,
            normalized_bitrate=normalized_bitrate(chunk_bitrates, max_bitrate_mbps),
            mean_bitrate_mbps=float(chunk_bitrates.mean()) if chunk_bitrates.size else 0.0,
            stall_time_s=total_stall,
            stall_percentage=stall_percentage(total_stall, playback_s),
            n_stalls=int((stalls > 0).sum()),
            n_chunks=int(chunk_bitrates.size),
            smoothness_mbps=bitrate_smoothness(chunk_bitrates),
            startup_delay_s=startup_delay_s,
        )
