"""HTTP surface of the campaign service (localhost JSON).

Endpoints
---------
``GET /health``
    Liveness: ``{"ok": true, "draining": false}``.
``GET /stats``
    The service's full accounting document (serve counters, store
    counters via :meth:`~repro.store.backend.StoreStats.to_dict`, pool
    stats).
``POST /submit``
    A campaign/experiment request (see
    :func:`repro.serve.service.normalize_request`); blocks until the
    result is ready and returns it.  400 on a malformed request, 503
    while draining, 500 when the computation itself failed.
``POST /shutdown``
    Graceful stop: drain (refuse new submissions), finish in-flight
    work, release the pool, exit ``serve_forever``.

The server is a ``ThreadingHTTPServer``: each connection gets a
handler thread, which is what lets concurrent identical submissions
*arrive* concurrently and collapse in the service's singleflight.
Binding is localhost-only by default — this is a trusted-peer service,
not an internet face.
"""

from __future__ import annotations

import json
import signal
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.serve.service import CampaignService, DrainingError, RequestError

__all__ = ["ServeDaemon"]

#: Refuse request bodies above this size: campaign/experiment requests
#: are a few hundred bytes; anything larger is a client bug.
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    daemon: "ServeDaemon"  # set via the server instance

    # ------------------------------------------------------------------ #
    def log_message(self, format: str, *args: Any) -> None:
        pass  # accounting goes through the [serve] lines, not httpd noise

    def _send_json(self, status: int, document: dict[str, Any]) -> None:
        body = json.dumps(document, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise RequestError(f"request body of {length} bytes is too large")
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as exc:
            raise RequestError(f"request body is not JSON: {exc}") from None

    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:  # noqa: N802 (http.server naming)
        daemon = self.server.daemon  # type: ignore[attr-defined]
        if self.path == "/health":
            self._send_json(200, {"ok": True,
                                  "draining": daemon.service.draining})
        elif self.path == "/stats":
            self._send_json(200, daemon.service.stats())
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})

    def do_POST(self) -> None:  # noqa: N802
        daemon = self.server.daemon  # type: ignore[attr-defined]
        if self.path == "/submit":
            try:
                payload = self._read_json()
                response = daemon.service.submit(payload)
            except RequestError as exc:
                self._send_json(400, {"error": str(exc)})
            except DrainingError as exc:
                self._send_json(503, {"error": str(exc)})
            except Exception as exc:
                self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            else:
                daemon._note_response(response)
                self._send_json(200, response)
        elif self.path == "/shutdown":
            self._send_json(200, {"ok": True, "draining": True})
            daemon.stop_async()
        else:
            self._send_json(404, {"error": f"unknown path {self.path}"})


class ServeDaemon:
    """The ``repro serve`` process: HTTP server + service lifecycle.

    ``port=0`` binds an ephemeral port; read the bound one back from
    :attr:`port` (the CLI writes it to ``--port-file`` so scripts can
    discover it).  :meth:`run` blocks with signal-driven graceful
    shutdown; :meth:`start`/:meth:`stop` run the server on a background
    thread for tests and benchmarks.
    """

    def __init__(self, service: CampaignService, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = False) -> None:
        self.service = service
        self.quiet = quiet
        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon = self  # type: ignore[attr-defined]
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._stopped = threading.Event()

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------ #
    def _log(self, message: str) -> None:
        if not self.quiet:
            print(f"[serve] {message}", file=sys.stderr, flush=True)

    def _note_response(self, response: dict[str, Any]) -> None:
        accounting = response.get("accounting", {})
        self._log(f"{response.get('kind')} key={response.get('key', '')[:12]} "
                  f"dedup={int(bool(response.get('dedup')))} "
                  f"tasks={accounting.get('tasks', 0)} "
                  f"computed={accounting.get('computed', 0)} "
                  f"memoized={accounting.get('memoized', 0)} "
                  f"wall={accounting.get('wall_s', 0.0):.2f}s")

    # ------------------------------------------------------------------ #
    def run(self) -> None:
        """Serve until ``/shutdown`` or SIGINT/SIGTERM; then drain."""
        self._log(f"listening on {self.url} "
                  f"(workers={self.service.workers}, "
                  f"store={getattr(self.service.store, 'root', None)})")
        try:
            previous = {
                sig: signal.signal(sig, lambda *_: self.stop_async())
                for sig in (signal.SIGINT, signal.SIGTERM)
            }
        except ValueError:  # not the main thread (tests)
            previous = {}
        try:
            self._server.serve_forever(poll_interval=0.1)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self._shutdown_service()

    def start(self) -> "ServeDaemon":
        """Serve on a background thread (tests / benchmarks)."""
        self._thread = threading.Thread(target=self._server.serve_forever,
                                        kwargs={"poll_interval": 0.05},
                                        name="repro-serve", daemon=True)
        self._thread.start()
        return self

    def stop_async(self) -> None:
        """Trigger shutdown from a handler thread without deadlocking
        (``server.shutdown`` blocks until ``serve_forever`` exits)."""
        def sequence() -> None:
            self._server.shutdown()
            self._shutdown_service()

        threading.Thread(target=sequence, daemon=True).start()

    def stop(self) -> None:
        """Stop the background server and drain the service."""
        self._server.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._shutdown_service()

    def _shutdown_service(self) -> None:
        if self._stopped.is_set():
            return
        self._stopped.set()
        self.service.close()
        self._server.server_close()
        self._log(self.service.render_stats())

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()
