"""Long-lived campaign service — the ``repro serve`` daemon.

The store/runner stack memoizes sessions (:mod:`repro.store`), keeps a
warm worker pool across campaigns (:class:`repro.core.runner.CampaignExecutor`)
and folds million-session campaigns into sketches (:mod:`repro.core.reduce`);
this package turns that machinery into a *service*: a localhost
HTTP/JSON daemon that accepts campaign and experiment requests, dedups
identical in-flight work (singleflight — concurrent identical
submissions compute once and every caller gets the result), schedules
computation onto one shared executor with TBS prewarm, and answers
warm requests straight from the store.

- :mod:`repro.serve.service` — :class:`CampaignService`: request
  normalization and keying, singleflight, per-request computed/memoized
  accounting, drain;
- :mod:`repro.serve.daemon` — the HTTP surface (``/submit``,
  ``/stats``, ``/health``, ``/shutdown``) and graceful shutdown;
- :mod:`repro.serve.client` — the thin ``repro submit`` client with
  connect retries.
"""

from repro.serve.client import ServeClient, ServeClientError
from repro.serve.daemon import ServeDaemon
from repro.serve.service import (
    CampaignService,
    DrainingError,
    RequestError,
    ServeRequest,
    normalize_request,
)

__all__ = [
    "CampaignService",
    "DrainingError",
    "RequestError",
    "ServeClient",
    "ServeClientError",
    "ServeDaemon",
    "ServeRequest",
    "normalize_request",
]
