"""The campaign service behind ``repro serve``.

:class:`CampaignService` is the transport-independent core: it accepts
normalized requests, dedups identical in-flight work, runs computation
on one shared :class:`~repro.core.runner.CampaignExecutor`, and keeps
the accounting the acceptance gates read.  The HTTP daemon
(:mod:`repro.serve.daemon`) is a thin shell around it, and tests drive
it directly.

Request model
-------------
A request is JSON with a ``kind``:

- ``{"kind": "campaign", "minutes": 0.2, "session": 4.0,
  "ul_fraction": 0.3, "seed": 2024, "reduce": true}`` — a synthetic
  measurement campaign (:func:`repro.xcal.dataset.generate_campaign`);
- ``{"kind": "experiment", "id": "fig01", "seed": 2024, "quick": true,
  "reduce": false}`` — one registry experiment
  (:func:`repro.experiments.run_experiment`).

Unknown fields are rejected (a typo must not silently fork a new cache
key).  The request *key* is the SHA-256 of the canonical JSON of the
normalized request — the same canonicalization the store uses for task
fingerprints — so equivalent submissions collide by construction.

Singleflight
------------
Concurrent identical submissions share one computation: the first
caller computes, later arrivals wait on its future, and every response
carries the same rows.  Only the waiters are counted as ``dedup_hits``.
Distinct requests queue on the executor lock — one campaign at a time
on the shared pool, which both keeps the pool hot for whoever runs and
makes the per-request computed/memoized deltas exact.

Accounting
----------
Per response: ``tasks`` (sessions the request covered), ``computed``
(store misses — actually simulated), ``memoized`` (store hits —
answered from disk), ``store_served`` (no session simulated at all).
Service-wide: requests, dedup hits, tasks computed/memoized, errors —
``stats()`` returns them alongside the store's
:meth:`~repro.store.backend.StoreStats.to_dict` and the pool stats, and
the daemon prints them as ``[serve]`` lines.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from hashlib import sha256
from typing import Any

from repro.store.keys import canonical_json

__all__ = [
    "CampaignService",
    "DrainingError",
    "RequestError",
    "ServeRequest",
    "normalize_request",
]


class RequestError(ValueError):
    """A submission that cannot be normalized (client error, HTTP 400)."""


class DrainingError(RuntimeError):
    """The service is shutting down and accepts no new work (HTTP 503)."""


#: kind -> (field -> (coercer, default)).  ``None`` default = required.
_SCHEMAS: dict[str, dict[str, tuple[Any, Any]]] = {
    "campaign": {
        "minutes": (float, 0.2),
        "session": (float, 4.0),
        "ul_fraction": (float, 0.3),
        "seed": (int, 2024),
        "reduce": (bool, False),
    },
    "experiment": {
        "id": (str, None),
        "seed": (int, 2024),
        "quick": (bool, True),
        "reduce": (bool, False),
    },
}


@dataclass(frozen=True)
class ServeRequest:
    """A normalized submission: kind, canonical params, stable key."""

    kind: str
    params: tuple[tuple[str, Any], ...]

    @property
    def key(self) -> str:
        payload = {"kind": self.kind, "params": dict(self.params)}
        return sha256(canonical_json(payload).encode("utf-8")).hexdigest()

    def param(self, name: str) -> Any:
        return dict(self.params)[name]

    def describe(self) -> str:
        if self.kind == "experiment":
            return f"experiment/{self.param('id')}"
        return (f"campaign/{self.param('minutes'):g}min"
                f"x{self.param('session'):g}s")


def normalize_request(payload: Any) -> ServeRequest:
    """Validate and canonicalize a raw JSON submission.

    Coerces field types, fills defaults, rejects unknown kinds/fields
    and out-of-range values with :class:`RequestError` — the daemon
    maps that to HTTP 400.
    """
    if not isinstance(payload, dict):
        raise RequestError(f"request must be a JSON object, got {type(payload).__name__}")
    kind = payload.get("kind")
    schema = _SCHEMAS.get(kind)
    if schema is None:
        raise RequestError(f"unknown request kind {kind!r}; known: {sorted(_SCHEMAS)}")
    unknown = sorted(set(payload) - set(schema) - {"kind"})
    if unknown:
        raise RequestError(f"unknown fields for kind {kind!r}: {unknown}")
    params: dict[str, Any] = {}
    for name, (coerce, default) in schema.items():
        if name in payload:
            raw = payload[name]
            if coerce is bool and not isinstance(raw, bool):
                raise RequestError(f"field {name!r} must be a boolean")
            try:
                params[name] = coerce(raw)
            except (TypeError, ValueError):
                raise RequestError(
                    f"field {name!r} must be {coerce.__name__}, got {raw!r}") from None
        elif default is None:
            raise RequestError(f"kind {kind!r} requires field {name!r}")
        else:
            params[name] = default
    if kind == "campaign":
        if params["minutes"] <= 0 or params["session"] <= 0:
            raise RequestError("minutes and session must be positive")
        if not 0.0 <= params["ul_fraction"] <= 1.0:
            raise RequestError("ul_fraction must lie in [0, 1]")
    else:
        from repro.experiments import EXPERIMENT_IDS, supports_reduce

        if params["id"] not in EXPERIMENT_IDS:
            raise RequestError(f"unknown experiment id {params['id']!r}")
        if params["reduce"] and not supports_reduce(params["id"]):
            raise RequestError(
                f"experiment {params['id']!r} has no streaming-reduction path")
    return ServeRequest(kind=kind, params=tuple(sorted(params.items())))


class CampaignService:
    """Singleflight campaign/experiment execution over a shared pool.

    Parameters
    ----------
    store:
        A :class:`~repro.store.TraceStore`, or ``None`` to serve
        without memoization (every request recomputes — useful only
        for tests).
    jobs:
        Worker count for the shared executor; ``1`` runs in-process
        with no pool.
    prewarm:
        Pre-warm worker TBS caches (see
        :func:`repro.core.runner.prewarm_worker_caches`).
    """

    def __init__(self, store: Any = None, jobs: int | str | None = "auto",
                 prewarm: bool = True) -> None:
        from repro.core.runner import CampaignExecutor, resolve_jobs

        self.store = store
        self.workers = resolve_jobs(jobs)
        self.executor = (CampaignExecutor(jobs=self.workers, store=store,
                                          prewarm=prewarm)
                         if self.workers > 1 else None)
        self.started = time.time()
        self._inflight: dict[str, Future] = {}
        self._lock = threading.Lock()       # guards _inflight and counters
        self._run_lock = threading.Lock()   # one computation at a time
        self._draining = False
        self.requests = 0
        self.dedup_hits = 0
        self.store_served = 0
        self.tasks_computed = 0
        self.tasks_memoized = 0
        self.errors = 0

    # ------------------------------------------------------------------ #
    # Submission path
    # ------------------------------------------------------------------ #
    def submit(self, payload: Any) -> dict[str, Any]:
        """Normalize, dedup, execute; returns the JSON-ready response.

        Identical concurrent submissions join the in-flight computation
        (``dedup: true`` in their responses); a submission arriving
        after completion re-runs the request, which answers from the
        store when warm.
        """
        request = normalize_request(payload)
        owner = False
        with self._lock:
            if self._draining:
                raise DrainingError("service is draining; not accepting work")
            self.requests += 1
            future = self._inflight.get(request.key)
            if future is not None:
                self.dedup_hits += 1
            else:
                future = Future()
                self._inflight[request.key] = future
                owner = True
        if not owner:
            # Waiter: ride the owner's computation.
            response = dict(future.result())
            response["dedup"] = True
            return response
        try:
            response = self._execute(request)
        except Exception as exc:
            with self._lock:
                self._inflight.pop(request.key, None)
                self.errors += 1
            future.set_exception(exc)
            raise
        with self._lock:
            self._inflight.pop(request.key, None)
            self.tasks_computed += response["accounting"]["computed"]
            self.tasks_memoized += response["accounting"]["memoized"]
            if response["accounting"]["store_served"]:
                self.store_served += 1
        future.set_result(response)
        return dict(response)

    def _execute(self, request: ServeRequest) -> dict[str, Any]:
        """Run one request under the executor lock with exact accounting.

        The store's hit/miss counters are process-cumulative; holding
        ``_run_lock`` across the run makes the before/after delta
        attributable to this request alone — that delta is the
        "computed exactly once" evidence the CI smoke asserts on.
        """
        with self._run_lock:
            hits0 = self.store.hits if self.store is not None else 0
            misses0 = self.store.misses if self.store is not None else 0
            start = time.perf_counter()
            rows, n_tasks, reduce_stats = self._run(request)
            wall = time.perf_counter() - start
            hits = (self.store.hits - hits0) if self.store is not None else 0
            misses = (self.store.misses - misses0) if self.store is not None else 0
        if reduce_stats is not None:
            # Reduce runs probe the store with ``contains`` (never a
            # counted miss), so the miss delta undercounts; the
            # reduction's own fold accounting is the ground truth.
            n_tasks = int(reduce_stats.get("sessions", n_tasks))
            if reduce_stats.get("memo") == "hit":
                computed, memoized = 0, n_tasks  # one memo read replayed all
            else:
                memoized = hits
                computed = max(0, n_tasks - memoized)
        elif self.store is not None:
            if n_tasks is None:
                n_tasks = hits + misses
            computed, memoized = misses, hits
        else:
            n_tasks = n_tasks or 0
            computed, memoized = n_tasks, 0
        accounting = {
            "tasks": n_tasks,
            "computed": computed,
            "memoized": memoized,
            "store_served": bool(n_tasks) and computed == 0,
            "wall_s": round(wall, 3),
        }
        return {
            "key": request.key,
            "kind": request.kind,
            "request": dict(request.params),
            "rows": rows,
            "accounting": accounting,
            "dedup": False,
        }

    def _run(self, request: ServeRequest
             ) -> tuple[list[str], int | None, dict | None]:
        """Execute the request body.

        Returns ``(printable rows, n_tasks, reduce_stats)``: ``n_tasks``
        is ``None`` when only the store traffic can size the request
        (experiments hide their manifests), and ``reduce_stats`` is the
        reduction's fold accounting when the request streamed through
        sketches.
        """
        if request.kind == "campaign":
            from repro.xcal.dataset import CampaignSpec, generate_campaign

            spec = CampaignSpec(minutes_per_operator=request.param("minutes"),
                                session_s=request.param("session"),
                                ul_fraction=request.param("ul_fraction"),
                                seed=request.param("seed"))
            campaign = generate_campaign(
                spec=spec, jobs=self.workers, store=self.store,
                executor=self.executor, reduce=request.param("reduce"))
            if request.param("reduce"):
                return (campaign.summary_rows(), campaign.n_sessions,
                        dict(campaign.reduction.stats))
            n = sum(len(traces) for traces in campaign.dl_traces.values())
            n += sum(len(traces) for traces in campaign.ul_traces.values())
            return campaign.summary_rows(), n, None
        from repro.experiments import run_experiment

        result = run_experiment(request.param("id"), seed=request.param("seed"),
                                quick=request.param("quick"), jobs=self.workers,
                                store=self.store, executor=self.executor,
                                reduce=request.param("reduce"))
        reduce_stats = (result.data.get("reduce_stats")
                        if request.param("reduce") else None)
        return result.render().splitlines(), None, reduce_stats

    # ------------------------------------------------------------------ #
    # Introspection and lifecycle
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, Any]:
        """The ``/stats`` document: serve counters + store + pool."""
        with self._lock:
            serve = {
                "requests": self.requests,
                "dedup_hits": self.dedup_hits,
                "store_served": self.store_served,
                "tasks_computed": self.tasks_computed,
                "tasks_memoized": self.tasks_memoized,
                "errors": self.errors,
                "in_flight": len(self._inflight),
                "draining": self._draining,
                "workers": self.workers,
                "uptime_s": round(time.time() - self.started, 1),
            }
        return {
            "serve": serve,
            "store": self.store.stats().to_dict() if self.store is not None else None,
            "pool": self.executor.stats() if self.executor is not None else None,
        }

    def render_stats(self) -> str:
        """The ``[serve]`` accounting line."""
        s = self.stats()["serve"]
        return (f"serve requests={s['requests']} dedup_hits={s['dedup_hits']} "
                f"store_served={s['store_served']} "
                f"computed={s['tasks_computed']} memoized={s['tasks_memoized']} "
                f"errors={s['errors']}")

    def begin_drain(self) -> None:
        """Stop accepting submissions; in-flight work keeps running."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def close(self, timeout_s: float = 60.0) -> None:
        """Drain and release the pool: refuse new work, wait for
        in-flight requests (bounded by ``timeout_s``), shut the
        executor down."""
        self.begin_drain()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                pending = list(self._inflight.values())
            if not pending:
                break
            for future in pending:
                remaining = max(0.0, deadline - time.monotonic())
                try:
                    future.result(timeout=remaining)
                except Exception:
                    pass  # the owner already reported it to its caller
        if self.executor is not None:
            self.executor.close()

    def __enter__(self) -> "CampaignService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
