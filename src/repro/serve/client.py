"""Thin HTTP client for the ``repro serve`` daemon.

stdlib-only (``urllib``), matching the repo's no-new-dependencies rule.
Connect-level failures (daemon still booting, transient socket errors)
are retried under a :class:`repro.store.remote.RetryPolicy`; HTTP-level
errors are *not* retried — a 400 means the request itself is bad and a
500 means the computation failed, and repeating either just repeats the
failure.  The one exception is 503 (draining), surfaced as a distinct
:class:`ServeClientError` so callers can fail over to another daemon.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any

from repro.store.remote import RemoteError, RetryPolicy

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """The daemon rejected a request or could not be reached.

    ``status`` carries the HTTP status code when the daemon answered
    (400/500/503/...), and is ``None`` for transport-level failures.
    """

    def __init__(self, message: str, status: int | None = None) -> None:
        super().__init__(message)
        self.status = status


class ServeClient:
    """Talks JSON to a :class:`repro.serve.daemon.ServeDaemon`."""

    def __init__(self, url: str, policy: RetryPolicy | None = None,
                 timeout_s: float = 600.0) -> None:
        self.url = url.rstrip("/")
        #: Retries cover only connection establishment; ``timeout_s`` is
        #: the per-request ceiling and must outlive a cold campaign.
        self.policy = policy if policy is not None else RetryPolicy()
        self.timeout_s = float(timeout_s)

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str,
                 payload: dict[str, Any] | None = None) -> dict[str, Any]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(self.url + path, data=body,
                                         headers=headers, method=method)
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            # Must precede URLError: HTTPError subclasses it, and an HTTP
            # status is a *final* answer, not a transport flake to retry.
            try:
                detail = json.loads(exc.read().decode("utf-8")).get("error", "")
            except Exception:
                detail = exc.reason
            raise ServeClientError(
                f"{method} {path} -> {exc.code}: {detail}",
                status=exc.code) from None
        except urllib.error.URLError as exc:
            raise OSError(f"{method} {path}: {exc.reason}") from None

    def _call(self, method: str, path: str,
              payload: dict[str, Any] | None = None) -> dict[str, Any]:
        try:
            return self.policy.run(
                lambda: self._request(method, path, payload),
                describe=f"{method} {self.url}{path}")
        except ServeClientError:
            raise
        except (RemoteError, OSError) as exc:
            raise ServeClientError(str(exc)) from None

    # ------------------------------------------------------------------ #
    def health(self) -> dict[str, Any]:
        return self._call("GET", "/health")

    def stats(self) -> dict[str, Any]:
        return self._call("GET", "/stats")

    def submit(self, payload: dict[str, Any]) -> dict[str, Any]:
        return self._call("POST", "/submit", payload)

    def shutdown(self) -> dict[str, Any]:
        return self._call("POST", "/shutdown", {})

    def wait_healthy(self, timeout_s: float = 10.0) -> dict[str, Any]:
        """Block until the daemon answers ``/health`` (startup races)."""
        policy = RetryPolicy(attempts=max(2, int(timeout_s / 0.1)),
                             backoff_s=0.05, max_backoff_s=0.5,
                             timeout_s=timeout_s)
        try:
            return policy.run(lambda: self._request("GET", "/health"),
                              describe=f"GET {self.url}/health")
        except Exception as exc:
            raise ServeClientError(
                f"daemon at {self.url} not healthy after {timeout_s:.0f}s: "
                f"{exc}") from None
