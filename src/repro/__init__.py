"""repro — reproduction of "Unveiling the 5G Mid-Band Landscape"
(Fezeu et al., ACM SIGCOMM 2024).

The package is organized bottom-up:

- :mod:`repro.nr` — the 3GPP NR substrate (tables and procedures),
- :mod:`repro.channel` — radio channel models,
- :mod:`repro.ran` — the slot-level RAN simulator,
- :mod:`repro.operators` — the paper's operator deployments (Tables 2-3),
- :mod:`repro.xcal` — the XCAL-equivalent trace layer,
- :mod:`repro.core` — the paper's analysis pipeline (V(t), latency, QoE),
- :mod:`repro.apps` — profiled applications (iPerf, DASH video),
- :mod:`repro.experiments` — one runnable experiment per table/figure.

Quick entry points::

    from repro import get_profile, simulate_downlink, run_experiment
"""

from repro.experiments import EXPERIMENT_IDS, run_experiment
from repro.operators import get_profile
from repro.ran.simulator import SimParams, simulate_downlink, simulate_uplink
from repro.xcal.records import SlotTrace

__version__ = "1.0.0"

__all__ = [
    "EXPERIMENT_IDS",
    "run_experiment",
    "get_profile",
    "SimParams",
    "simulate_downlink",
    "simulate_uplink",
    "SlotTrace",
    "__version__",
]
