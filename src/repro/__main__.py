"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list``
    Print the experiment registry.
``run <id> [...]``
    Regenerate one or more tables/figures (``--full`` for paper-length
    simulations).
``campaign``
    Generate a synthetic measurement campaign and export it as CSV,
    JSONL or npz.
``cache``
    Inspect and maintain a session trace store (``stats`` / ``verify``
    / ``clear`` / ``evict``), and move blobs to/from a shared remote
    tier (``push`` / ``pull`` / ``sync`` / ``status`` with
    ``--remote URL``).  ``stats --json`` emits the counters
    machine-readably — the same serializer the serve daemon's
    ``/stats`` endpoint and the CI gates consume.
``serve``
    Run the localhost campaign service: a daemon that accepts
    campaign/experiment submissions over HTTP/JSON, dedups identical
    in-flight requests (singleflight), schedules work onto one shared
    warm pool and answers repeat requests straight from the store.
``submit``
    Send one request to a running ``repro serve`` daemon and print the
    result.
``bench``
    Run a tracked benchmark: ``--workload slot`` (default) emits
    ``BENCH_slot_engine.json``, ``--workload campaign`` benchmarks the
    execution layer end to end and emits ``BENCH_campaign.json``,
    ``--workload reduce`` benchmarks the streaming-reduction path and
    emits ``BENCH_reduce.json``, ``--workload tensor`` benchmarks the
    cross-session cohort engine against the per-session vectorized
    engine and emits ``BENCH_tensor.json``, and ``--workload serve``
    benchmarks the campaign service end to end — cold submit, warm
    store-served submit, concurrent singleflight — and emits
    ``BENCH_serve.json`` (``--baseline`` compares against a committed
    report and fails on hardware-normalized regressions; ``--profile``
    wraps any workload in cProfile and writes a ``.pstats`` dump plus a
    top-20 cumulative-time table next to the BENCH json).

``run`` and ``campaign`` accept ``--jobs N`` (or ``--jobs auto``) to
fan independent sessions out to a process pool, and ``--cache DIR``
(default: the ``REPRO_CACHE`` environment variable) to memoize sessions
in a content-addressed store — results are bit-identical for any worker
count, cached or not.  ``REPRO_CACHE_MAX_MB`` caps the store size with
LRU eviction.  With ``--jobs`` above 1 both commands share one warm
worker pool (a :class:`repro.core.runner.CampaignExecutor`) across all
sessions, and when a store is configured workers write results to it
directly — only content keys travel over the process pipe.

``--reduce`` (on ``run`` for fig01/fig12/table1, and on ``campaign``)
streams sessions through mergeable KPI sketches instead of
materializing per-slot traces, bounding peak memory by worker count
rather than campaign size; printed KPIs match the exact path within the
documented sketch tolerances (see :mod:`repro.core.reduce`), and a
``[reduce]`` accounting line goes to stderr.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENT_IDS, run_experiment


def _jobs_arg(value: str) -> int:
    from repro.core.runner import resolve_jobs

    try:
        return resolve_jobs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _open_store(args: argparse.Namespace):
    """The ``--cache`` / ``$REPRO_CACHE`` store, or ``None``."""
    from repro.store import TraceStore

    return TraceStore.from_env(getattr(args, "cache", None))


def _make_executor(args: argparse.Namespace, store):
    """One warm pool for the whole command when ``--jobs`` exceeds 1."""
    if getattr(args, "jobs", 1) <= 1:
        return None
    from repro.core.runner import CampaignExecutor

    return CampaignExecutor(jobs=args.jobs, store=store)


def _report_store(store, executor=None) -> None:
    """Summary lines per cached/parallel run, on stderr so stdout stays
    the experiment output (CI byte-compares it across cold/warm runs)."""
    if store is not None:
        print(f"[cache] hits={store.hits} misses={store.misses} "
              f"read_mb={store.bytes_read / 1e6:.2f} "
              f"written_mb={store.bytes_written / 1e6:.2f} "
              f"root={store.root}",
              file=sys.stderr)
    if executor is not None:
        print(f"[pool] {executor.render_stats()}", file=sys.stderr)


def _report_reduce(stats: dict) -> None:
    """The ``[reduce]`` accounting line (stderr, like ``[cache]``)."""
    print(f"[reduce] sessions={stats.get('sessions', 0)} "
          f"folded_local={stats.get('folded_local', 0)} "
          f"folded_workers={stats.get('folded_workers', 0)} "
          f"memo={stats.get('memo', 'off')}",
          file=sys.stderr)


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = args.ids or list(EXPERIMENT_IDS)
    unknown = sorted(set(ids) - set(EXPERIMENT_IDS))
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    if args.reduce:
        from repro.experiments import supports_reduce

        unsupported = sorted(i for i in ids if not supports_reduce(i))
        if unsupported:
            print(f"--reduce is not supported by: {unsupported}", file=sys.stderr)
            return 2
    store = _open_store(args)
    executor = _make_executor(args, store)
    try:
        for experiment_id in ids:
            start = time.time()
            result = run_experiment(experiment_id, seed=args.seed, quick=not args.full,
                                    jobs=args.jobs, store=store, executor=executor,
                                    reduce=args.reduce)
            print(result.render())
            if args.reduce and "reduce_stats" in result.data:
                _report_reduce(result.data["reduce_stats"])
            if args.plot:
                from repro.experiments.plots import render_plots

                rendering = render_plots(result)
                if rendering:
                    print("\n" + rendering)
            print(f"   [{time.time() - start:.1f} s]\n")
    finally:
        if executor is not None:
            executor.close()
    _report_store(store, executor)
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.xcal.dataset import CampaignSpec, generate_campaign

    spec = CampaignSpec(minutes_per_operator=args.minutes, session_s=args.session,
                        ul_fraction=args.ul_fraction, seed=args.seed)
    if args.reduce and args.out is not None:
        print("--reduce keeps no per-slot traces, so --out has nothing to "
              "export; drop one of the two", file=sys.stderr)
        return 2
    store = _open_store(args)
    executor = _make_executor(args, store)
    try:
        campaign = generate_campaign(spec=spec, jobs=args.jobs, store=store,
                                     executor=executor, reduce=args.reduce)
    finally:
        if executor is not None:
            executor.close()
    for row in campaign.summary_rows():
        print(row)
    if args.out is not None:
        try:
            paths = campaign.export(args.out, format=args.out_format)
        except RuntimeError as exc:  # e.g. parquet without pyarrow
            print(str(exc), file=sys.stderr)
            return 2
        print(f"exported {len(paths)} traces to {args.out}")
    _report_store(store, executor)
    if args.reduce:
        _report_reduce(campaign.reduction.stats)
    return 0


def _render_tbs_cache_line() -> str:
    from repro.nr.tbs import tbs_matrix_cache_stats

    stats = tbs_matrix_cache_stats()
    return (f"tbs-matrix cache (this process): entries={stats['entries']} "
            f"hits={stats['hits']} misses={stats['misses']} "
            f"hit_rate={stats['hit_rate']:.1%}")


def _cache_remote_action(args: argparse.Namespace, store) -> int:
    """``repro cache push|pull|sync|status --remote URL``."""
    from repro.store import RemoteError, open_remote, pull, push, status, sync

    if not args.remote:
        print(f"cache {args.action} needs --remote URL", file=sys.stderr)
        return 2
    try:
        remote = open_remote(args.remote)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        if args.action == "status":
            print(status(store, remote).render())
            return 0
        op = {"push": push, "pull": pull, "sync": sync}[args.action]
        report = op(store, remote)
    except RemoteError as exc:
        print(f"cache {args.action} failed: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    return 1 if report.failed else 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.store import CACHE_DIR_ENV, TraceStore

    root = args.cache or os.environ.get(CACHE_DIR_ENV)
    if not root:
        print(f"no store: pass --cache DIR or set ${CACHE_DIR_ENV}", file=sys.stderr)
        return 2
    store = TraceStore(root)
    if args.action in ("push", "pull", "sync", "status"):
        return _cache_remote_action(args, store)
    if args.action == "stats":
        if args.json:
            import json

            print(json.dumps(store.stats().to_dict(), indent=2, sort_keys=True))
            return 0
        from repro.ran.tensor import render_cohort_stats

        print(store.stats().render())
        print(_render_tbs_cache_line())
        print(render_cohort_stats())
    elif args.action == "verify":
        ok, bad = store.verify()
        print(f"verified {ok} entries intact, {len(bad)} quarantined")
        for key in bad:
            print(f"  quarantined {key}")
        return 1 if bad else 0
    elif args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries")
    elif args.action == "evict":
        if args.max_mb is None:
            print("evict needs --max-mb", file=sys.stderr)
            return 2
        evicted = store.evict(int(args.max_mb * 1e6))
        print(f"evicted {len(evicted)} entries (cap {args.max_mb:g} MB)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import CampaignService, ServeDaemon

    store = _open_store(args)
    service = CampaignService(store=store, jobs=args.jobs,
                              prewarm=not args.no_prewarm)
    daemon = ServeDaemon(service, host=args.host, port=args.port)
    if args.port_file is not None:
        # Written after bind so ``--port 0`` scripts read the real port.
        args.port_file.write_text(f"{daemon.port}\n")
    daemon.run()
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient, ServeClientError

    payload: dict = {"kind": args.kind}
    payload.update(_submit_params(args))
    client = ServeClient(args.url, timeout_s=args.timeout)
    try:
        if args.kind == "stats":
            response = client.stats()
        elif args.kind == "shutdown":
            response = client.shutdown()
        else:
            response = client.submit(payload)
    except ServeClientError as exc:
        print(f"submit failed: {exc}", file=sys.stderr)
        return 1
    if args.kind in ("stats", "shutdown") or args.json:
        import json

        print(json.dumps(response, indent=2, sort_keys=True))
        return 0
    for row in response.get("rows", []):
        print(row)
    accounting = response.get("accounting", {})
    print(f"[serve] dedup={int(bool(response.get('dedup')))} "
          f"tasks={accounting.get('tasks', 0)} "
          f"computed={accounting.get('computed', 0)} "
          f"memoized={accounting.get('memoized', 0)} "
          f"store_served={int(bool(accounting.get('store_served')))} "
          f"wall={accounting.get('wall_s', 0.0):.2f}s",
          file=sys.stderr)
    return 0


def _submit_params(args: argparse.Namespace) -> dict:
    """Only fields the user actually passed — the daemon fills defaults,
    so equivalent invocations collide on the same request key."""
    params = {}
    for field in ("minutes", "session", "ul_fraction", "seed", "id"):
        value = getattr(args, field, None)
        if value is not None:
            params[field] = value
    if getattr(args, "reduce", False):
        params["reduce"] = True
    if getattr(args, "full", False):
        params["quick"] = False
    return params


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.core import bench

    if args.history:
        report = bench.history_report()
        print(bench.render_history(report))
        if args.out is not None:
            bench.write_report(report, args.out)
            print(f"wrote {args.out}")
        return 0
    baseline = bench.load_report(args.baseline) if args.baseline else None
    expected = {"campaign": "campaign", "reduce": "reduce",
                "tensor": "tensor", "serve": "serve"}.get(args.workload,
                                                          "slot_engine")
    if baseline is not None and baseline.get("bench") != expected:
        print(f"baseline {args.baseline} is a {baseline.get('bench')!r} report, "
              f"not {expected!r}", file=sys.stderr)
        return 2
    profiler = None
    if args.profile:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        if args.workload == "campaign":
            report = bench.measure_campaign(quick=args.quick, seed=args.seed,
                                            jobs=args.jobs)
            rendered, regressions = bench.render_campaign, bench.campaign_regression_failures
        elif args.workload == "reduce":
            report = bench.measure_reduce(quick=args.quick, seed=args.seed,
                                          jobs=args.jobs)
            rendered, regressions = bench.render_reduce, bench.reduce_regression_failures
        elif args.workload == "tensor":
            report = bench.measure_tensor(quick=args.quick, seed=args.seed)
            rendered, regressions = bench.render_tensor, bench.tensor_regression_failures
        elif args.workload == "serve":
            report = bench.measure_serve(quick=args.quick, seed=args.seed,
                                         jobs=args.jobs)
            rendered, regressions = bench.render_serve, bench.serve_regression_failures
        else:
            report = bench.measure(quick=args.quick, seed=args.seed)
            rendered, regressions = bench.render, bench.regression_failures
    finally:
        if profiler is not None:
            profiler.disable()
    print(rendered(report))
    if args.out is not None:
        bench.write_report(report, args.out)
        print(f"wrote {args.out}")
    if profiler is not None:
        profile_anchor = args.out if args.out is not None \
            else Path(f"BENCH_{expected}.json")
        pstats_path, table_path = bench.write_profile(profiler, profile_anchor)
        print(f"wrote {pstats_path} and {table_path}")
    if baseline is not None:
        failures = regressions(report, baseline, threshold=args.threshold)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        if failures:
            return 1
        print(f"no regression vs {args.baseline} "
              f"(threshold {args.threshold:.0%}, hardware-normalized)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    cache_kwargs = dict(type=Path, default=None, metavar="DIR",
                        help="session store directory (default: $REPRO_CACHE)")

    run_parser = sub.add_parser("run", help="regenerate tables/figures")
    run_parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    run_parser.add_argument("--full", action="store_true")
    run_parser.add_argument("--plot", action="store_true",
                            help="render ASCII figures where available")
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N|auto",
                            help="worker processes for independent sessions (default 1)")
    run_parser.add_argument("--cache", **cache_kwargs)
    run_parser.add_argument("--reduce", action="store_true",
                            help="stream sessions through mergeable KPI "
                                 "sketches instead of materializing traces "
                                 "(fig01/fig12/table1)")
    run_parser.set_defaults(func=_cmd_run)

    campaign_parser = sub.add_parser("campaign", help="generate a synthetic campaign")
    campaign_parser.add_argument("--minutes", type=float, default=1.0)
    campaign_parser.add_argument("--session", type=float, default=10.0)
    campaign_parser.add_argument("--ul-fraction", type=float, default=0.3,
                                 help="fraction of UL sessions, 0..1 (default 0.3)")
    campaign_parser.add_argument("--seed", type=int, default=2024)
    campaign_parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N|auto",
                                 help="worker processes for campaign sessions (default 1)")
    campaign_parser.add_argument("--cache", **cache_kwargs)
    campaign_parser.add_argument("--out", type=Path, default=None)
    campaign_parser.add_argument("--out-format",
                                 choices=("csv", "jsonl", "npz", "parquet"),
                                 default="csv",
                                 help="export format (default csv); parquet "
                                      "needs the optional pyarrow package and "
                                      "partitions by operator")
    campaign_parser.add_argument("--reduce", action="store_true",
                                 help="fold sessions into streaming KPI "
                                      "sketches; peak memory stays bounded by "
                                      "worker count, not campaign size "
                                      "(incompatible with --out)")
    campaign_parser.set_defaults(func=_cmd_campaign)

    serve_parser = sub.add_parser("serve", help="run the campaign service daemon")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="bind address (default 127.0.0.1)")
    serve_parser.add_argument("--port", type=int, default=8750,
                              help="TCP port; 0 picks an ephemeral one "
                                   "(default 8750)")
    serve_parser.add_argument("--port-file", type=Path, default=None,
                              metavar="FILE",
                              help="write the bound port here after startup "
                                   "(for scripts using --port 0)")
    serve_parser.add_argument("--jobs", type=_jobs_arg, default="auto",
                              metavar="N|auto",
                              help="worker processes for the shared pool "
                                   "(default auto)")
    serve_parser.add_argument("--cache", **cache_kwargs)
    serve_parser.add_argument("--no-prewarm", action="store_true",
                              help="skip the TBS matrix prewarm in workers")
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser("submit",
                                   help="send one request to a repro serve daemon")
    submit_parser.add_argument("kind",
                               choices=("campaign", "experiment", "stats",
                                        "shutdown"),
                               help="request kind; stats/shutdown are "
                                    "daemon-management calls")
    submit_parser.add_argument("--url", default="http://127.0.0.1:8750",
                               help="daemon address (default "
                                    "http://127.0.0.1:8750)")
    submit_parser.add_argument("--minutes", type=float, default=None,
                               help="campaign: minutes per operator")
    submit_parser.add_argument("--session", type=float, default=None,
                               help="campaign: seconds per session")
    submit_parser.add_argument("--ul-fraction", dest="ul_fraction", type=float,
                               default=None, help="campaign: UL share, 0..1")
    submit_parser.add_argument("--seed", type=int, default=None)
    submit_parser.add_argument("--id", default=None,
                               help="experiment: experiment id (e.g. table1)")
    submit_parser.add_argument("--full", action="store_true",
                               help="experiment: paper-length simulation")
    submit_parser.add_argument("--reduce", action="store_true",
                               help="fold sessions into streaming KPI sketches")
    submit_parser.add_argument("--timeout", type=float, default=600.0,
                               help="per-request ceiling in seconds "
                                    "(default 600)")
    submit_parser.add_argument("--json", action="store_true",
                               help="print the raw JSON response")
    submit_parser.set_defaults(func=_cmd_submit)

    bench_parser = sub.add_parser("bench", help="tracked benchmarks")
    bench_parser.add_argument("--workload",
                              choices=("slot", "campaign", "reduce", "tensor",
                                       "serve"),
                              default="slot",
                              help="slot engines (default), the campaign "
                                   "execution layer, the streaming reduction "
                                   "path, the cohort tensor engine, or the "
                                   "campaign service")
    bench_parser.add_argument("--history", action="store_true",
                              help="fold every committed BENCH_*.json into one "
                                   "trajectory report instead of running a "
                                   "workload (combine with --out for JSON)")
    bench_parser.add_argument("--quick", action="store_true",
                              help="short workloads, fewer repetitions (CI mode)")
    bench_parser.add_argument("--seed", type=int, default=2024)
    bench_parser.add_argument("--jobs", type=_jobs_arg, default="auto", metavar="N|auto",
                              help="worker count for the campaign workload "
                                   "(default auto)")
    bench_parser.add_argument("--out", type=Path, default=None, metavar="FILE",
                              help="write the JSON report here (e.g. "
                                   "BENCH_slot_engine.json, BENCH_campaign.json)")
    bench_parser.add_argument("--baseline", type=Path, default=None, metavar="FILE",
                              help="committed report to compare against; exit 1 "
                                   "on a hardware-normalized regression")
    bench_parser.add_argument("--threshold", type=float, default=0.30,
                              help="allowed fractional regression (default 0.30)")
    bench_parser.add_argument("--profile", action="store_true",
                              help="wrap the workload in cProfile; write a "
                                   ".pstats dump and a top-20 cumulative-time "
                                   "table next to the BENCH json")
    bench_parser.set_defaults(func=_cmd_bench)

    cache_parser = sub.add_parser("cache", help="inspect/maintain a session store")
    cache_parser.add_argument("action",
                              choices=("stats", "verify", "clear", "evict",
                                       "push", "pull", "sync", "status"))
    cache_parser.add_argument("--cache", **cache_kwargs)
    cache_parser.add_argument("--max-mb", type=float, default=None,
                              help="size cap for evict, in MB")
    cache_parser.add_argument("--remote", default=None, metavar="URL",
                              help="remote tier for push/pull/sync/status "
                                   "(a directory path or file:// URL)")
    cache_parser.add_argument("--json", action="store_true",
                              help="stats: emit machine-readable counters")
    cache_parser.set_defaults(func=_cmd_cache)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
