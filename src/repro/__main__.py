"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``list``
    Print the experiment registry.
``run <id> [...]``
    Regenerate one or more tables/figures (``--full`` for paper-length
    simulations).
``campaign``
    Generate a synthetic measurement campaign and export it as CSV.

Both ``run`` and ``campaign`` accept ``--jobs N`` (or ``--jobs auto``)
to fan independent sessions out to a process pool; results are
bit-identical for any worker count.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENT_IDS, run_experiment


def _jobs_arg(value: str) -> int:
    from repro.core.runner import resolve_jobs

    try:
        return resolve_jobs(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None


def _cmd_list(_args: argparse.Namespace) -> int:
    for experiment_id in EXPERIMENT_IDS:
        print(experiment_id)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    ids = args.ids or list(EXPERIMENT_IDS)
    unknown = sorted(set(ids) - set(EXPERIMENT_IDS))
    if unknown:
        print(f"unknown experiment ids: {unknown}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        start = time.time()
        result = run_experiment(experiment_id, seed=args.seed, quick=not args.full,
                                jobs=args.jobs)
        print(result.render())
        if args.plot:
            from repro.experiments.plots import render_plots

            rendering = render_plots(result)
            if rendering:
                print("\n" + rendering)
        print(f"   [{time.time() - start:.1f} s]\n")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    from repro.xcal.dataset import CampaignSpec, generate_campaign

    spec = CampaignSpec(minutes_per_operator=args.minutes, session_s=args.session,
                        seed=args.seed)
    campaign = generate_campaign(spec=spec, jobs=args.jobs)
    for row in campaign.summary_rows():
        print(row)
    if args.out is not None:
        paths = campaign.export_csv(args.out)
        print(f"exported {len(paths)} traces to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiment ids").set_defaults(func=_cmd_list)

    run_parser = sub.add_parser("run", help="regenerate tables/figures")
    run_parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    run_parser.add_argument("--full", action="store_true")
    run_parser.add_argument("--plot", action="store_true",
                            help="render ASCII figures where available")
    run_parser.add_argument("--seed", type=int, default=2024)
    run_parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N|auto",
                            help="worker processes for independent sessions (default 1)")
    run_parser.set_defaults(func=_cmd_run)

    campaign_parser = sub.add_parser("campaign", help="generate a synthetic campaign")
    campaign_parser.add_argument("--minutes", type=float, default=1.0)
    campaign_parser.add_argument("--session", type=float, default=10.0)
    campaign_parser.add_argument("--seed", type=int, default=2024)
    campaign_parser.add_argument("--jobs", type=_jobs_arg, default=1, metavar="N|auto",
                                 help="worker processes for campaign sessions (default 1)")
    campaign_parser.add_argument("--out", type=Path, default=None)
    campaign_parser.set_defaults(func=_cmd_campaign)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
