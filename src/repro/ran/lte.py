"""Minimal 4G LTE anchor carrier (for NSA dual connectivity).

In NSA deployments the UE keeps an LTE anchor; most operators route some
or all uplink traffic over it (§4.2), and T-Mobile *prefers* the LTE
leg — the paper's Fig. 10 shows the co-active LTE channel out-performing
the 100 MHz NR channel for UL.  LTE differs from NR in the essentials
modeled here: 15 kHz SCS with 1 ms subframes, 100 RBs at 20 MHz, UL
limited to 16QAM/64QAM single-layer SC-FDMA.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nr.signal import shannon_efficiency

#: LTE RB table: bandwidth MHz -> N_RB (36.101).
LTE_NRB = {1.4: 6, 3: 15, 5: 25, 10: 50, 15: 75, 20: 100}

#: LTE resource elements per RB per subframe (12 subcarriers x 14 symbols).
LTE_RE_PER_RB = 168

#: UL overhead: DMRS occupies 2 of 14 SC-FDMA symbols.
LTE_UL_OVERHEAD = 2.0 / 14.0


@dataclass(frozen=True)
class LteCellConfig:
    """A simplified LTE carrier.

    Parameters
    ----------
    bandwidth_mhz:
        LTE channel bandwidth (20 MHz typical for the anchors observed).
    ul_max_efficiency:
        Spectral-efficiency cap of the UL (64QAM, rate ~0.85 single
        layer ~ 5.1 b/s/Hz; practical caps are lower).
    alpha:
        Attenuated-Shannon implementation-loss factor (LTE receivers
        are mature; slightly below NR's).
    """

    name: str = "LTE anchor"
    bandwidth_mhz: float = 20.0
    ul_max_efficiency: float = 4.3
    alpha: float = 0.6

    def __post_init__(self) -> None:
        if self.bandwidth_mhz not in LTE_NRB:
            raise ValueError(f"LTE bandwidth must be one of {sorted(LTE_NRB)}")

    @property
    def n_rb(self) -> int:
        return LTE_NRB[self.bandwidth_mhz]

    def ul_rate_mbps(self, sinr_db: float | np.ndarray) -> np.ndarray:
        """Instantaneous UL rate at a given SINR.

        ``rate = eff * N_RB * 180 kHz * (1 - overhead)`` with ``eff``
        capped by the modulation ceiling.  FDD: the full subframe stream
        is available for UL.
        """
        eff = np.minimum(shannon_efficiency(sinr_db, self.alpha), self.ul_max_efficiency)
        return eff * self.n_rb * 0.18 * (1.0 - LTE_UL_OVERHEAD)


def simulate_lte_uplink(
    config: LteCellConfig,
    sinr_db: np.ndarray,
    subframe_ms: float = 1.0,
    rng: np.random.Generator | None = None,
    bler_target: float = 0.1,
) -> np.ndarray:
    """UL throughput series (Mbps per subframe) over an SINR series.

    HARQ is folded in statistically: a fraction ``bler_target`` of
    subframes deliver nothing on the first attempt and are recovered by
    a retransmission that displaces new data — the net long-run effect
    is a ``(1 - bler_target/2)``-style efficiency loss, modeled here by
    explicit per-subframe Bernoulli erasures followed by recovery at
    half weight.
    """
    if subframe_ms <= 0:
        raise ValueError("subframe_ms must be positive")
    rng = rng or np.random.default_rng()
    sinr_db = np.asarray(sinr_db, dtype=float)
    rates = config.ul_rate_mbps(sinr_db)
    errors = rng.random(sinr_db.size) < bler_target
    # A failed subframe is re-sent: its bits arrive but one extra
    # subframe of capacity is consumed, halving the pair's efficiency.
    rates = np.where(errors, rates * 0.5, rates)
    return rates
