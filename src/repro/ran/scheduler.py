"""Downlink RB schedulers: round-robin and proportional fair.

With a single backlogged UE (the paper's iPerf measurements) every
scheduler allocates "close to the maximum RBs" (Fig. 4); the policies
differ only under contention — §5.2 / Fig. 14 shows two simultaneous
full-buffer UEs each receive roughly half the RBs and half the
throughput, which both policies reproduce for symmetric demands.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass(slots=True)
class SchedulingRequest:
    """Per-slot scheduling input for one UE.

    Slotted: the multi-UE simulator constructs (or reuses) one of these
    per UE per slot, so attribute access is on the scheduler's hot path.
    """

    ue_id: int
    backlog_bits: int
    instantaneous_rate: float  # achievable bits/slot at current MCS/rank
    average_rate: float = 1.0  # EWMA throughput (PF denominator)


class Scheduler(abc.ABC):
    """Interface: split ``total_rb`` RBs among the requesting UEs."""

    @abc.abstractmethod
    def allocate(self, requests: list[SchedulingRequest], total_rb: int) -> dict[int, int]:
        """Return ``{ue_id: n_rb}``; unallocated UEs are omitted."""

    @staticmethod
    def _active(requests: list[SchedulingRequest]) -> list[SchedulingRequest]:
        return [r for r in requests if r.backlog_bits > 0]


@dataclass
class RoundRobinScheduler(Scheduler):
    """Equal RB split with a rotating remainder.

    RBs are divided evenly; the indivisible remainder rotates across
    slots so long-run shares are exactly equal.  The rotation is keyed
    on ``ue_id`` — not on position in the request list — so request
    reordering or UEs joining/leaving between slots cannot re-target
    the remainder and skew long-run shares.
    """

    _next_ue: int | None = None

    def allocate(self, requests: list[SchedulingRequest], total_rb: int) -> dict[int, int]:
        if total_rb < 0:
            raise ValueError("total_rb must be non-negative")
        active = self._active(requests)
        if not active or total_rb == 0:
            return {}
        order = sorted(active, key=lambda r: r.ue_id)
        n = len(order)
        base, remainder = divmod(total_rb, n)
        allocation = {r.ue_id: base for r in order}
        start = 0
        if self._next_ue is not None:
            # Resume at the stored ue_id, or the next-higher one present.
            start = next((k for k, r in enumerate(order) if r.ue_id >= self._next_ue), 0)
        for k in range(remainder):
            allocation[order[(start + k) % n].ue_id] += 1
        if remainder:
            self._next_ue = order[(start + remainder) % n].ue_id
        return {ue: rb for ue, rb in allocation.items() if rb > 0}


@dataclass
class ProportionalFairScheduler(Scheduler):
    """Proportional-fair frequency-domain scheduling.

    RBs are split proportionally to the PF metric
    ``instantaneous_rate / average_rate``; with symmetric channels this
    degenerates to an even split, and a UE in a fade yields RBs to peers.
    The EWMA averages are maintained by the caller via :meth:`update_average`.
    """

    ewma_alpha: float = 0.05
    averages: dict[int, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must lie in (0, 1]")

    def allocate(self, requests: list[SchedulingRequest], total_rb: int) -> dict[int, int]:
        if total_rb < 0:
            raise ValueError("total_rb must be non-negative")
        active = self._active(requests)
        if not active or total_rb == 0:
            return {}
        averages = self.averages
        metrics = [
            r.instantaneous_rate / max(averages.get(r.ue_id, r.average_rate), 1e-9)
            for r in active
        ]
        total_metric = 0.0
        for m in metrics:
            total_metric += m
        if total_metric <= 0:
            metrics = [1.0] * len(active)
            total_metric = float(len(active))
        # Pure scalar arithmetic: this runs once per DL slot and the
        # request lists are a handful of UEs, where numpy's per-call
        # overhead dwarfs the work.
        rbs = []
        fractional = []
        assigned = 0
        for m in metrics:
            scaled = (m / total_metric) * total_rb
            n = int(scaled)  # floor: scaled is non-negative
            rbs.append(n)
            fractional.append(scaled - n)
            assigned += n
        # Distribute the rounding remainder to the largest fractional
        # parts; sorted() is stable, so ties go to the lower index.
        remainder = total_rb - assigned
        if remainder > 0:
            order = sorted(range(len(active)), key=fractional.__getitem__, reverse=True)
            for idx in order[:remainder]:
                rbs[idx] += 1
        return {r.ue_id: n for r, n in zip(active, rbs) if n > 0}

    def update_average(self, ue_id: int, served_bits: float) -> None:
        """Fold one slot's service into the UE's EWMA throughput."""
        previous = self.averages.get(ue_id, max(served_bits, 1.0))
        self.averages[ue_id] = (1.0 - self.ewma_alpha) * previous + self.ewma_alpha * served_bits

    def update_averages(self, served_bits: list[float]) -> None:
        """Fold one slot's service for every UE at once.

        Equivalent to calling :meth:`update_average` for ``ue_id`` 0..n-1
        in order; one call per slot keeps the simulator's hot loop off
        the per-UE method-dispatch overhead.
        """
        alpha = self.ewma_alpha
        decay = 1.0 - alpha
        averages = self.averages
        for ue_id, served in enumerate(served_bits):
            previous = averages.get(ue_id, max(served, 1.0))
            averages[ue_id] = decay * previous + alpha * served
