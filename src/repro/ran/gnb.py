"""gNB facade: a cell with attached UEs and a scheduler.

The functional entry points in :mod:`repro.ran.simulator` are what the
experiment harness uses; :class:`Gnb` packages the same machinery as an
object-oriented facade for interactive use and for callers that manage
several UEs against one cell over time:

    gnb = Gnb(cell, scheduler=ProportionalFairScheduler())
    gnb.attach(ue_channel_a)
    gnb.attach(ue_channel_b)
    traces = gnb.run_downlink(duration_s=5.0, rng=rng)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.channel.model import ChannelRealization, SyntheticChannel
from repro.ran.config import CellConfig
from repro.ran.scheduler import ProportionalFairScheduler, Scheduler
from repro.ran.simulator import SimParams, simulate_downlink, simulate_downlink_multi
from repro.xcal.records import SlotTrace


@dataclass
class AttachedUe:
    """A UE attached to the cell."""

    ue_id: int
    channel: SyntheticChannel | ChannelRealization


@dataclass
class Gnb:
    """A gNB serving one cell.

    Parameters
    ----------
    cell:
        The component carrier configuration.
    scheduler:
        RB scheduler used when more than one UE is attached.
    params:
        Link-simulation parameters shared by all attached UEs.
    """

    cell: CellConfig
    scheduler: Scheduler = field(default_factory=ProportionalFairScheduler)
    params: SimParams = field(default_factory=SimParams)
    _ues: list[AttachedUe] = field(default_factory=list)
    _next_id: int = 0

    def attach(self, channel: SyntheticChannel | ChannelRealization) -> int:
        """Attach a UE described by its channel; returns its ue_id."""
        ue_id = self._next_id
        self._ues.append(AttachedUe(ue_id=ue_id, channel=channel))
        self._next_id += 1
        return ue_id

    def detach(self, ue_id: int) -> None:
        """Detach a UE."""
        before = len(self._ues)
        self._ues = [ue for ue in self._ues if ue.ue_id != ue_id]
        if len(self._ues) == before:
            raise KeyError(f"no attached UE with id {ue_id}")

    @property
    def n_ues(self) -> int:
        return len(self._ues)

    def _realize(self, ue: AttachedUe, duration_s: float,
                 rng: np.random.Generator) -> ChannelRealization:
        if isinstance(ue.channel, ChannelRealization):
            return ue.channel
        return ue.channel.realize(duration_s, mu=self.cell.mu, rng=rng)

    def run_downlink(self, duration_s: float,
                     rng: np.random.Generator | None = None) -> dict[int, SlotTrace]:
        """Serve all attached UEs for ``duration_s``; returns traces by id.

        A single attached UE takes the fast single-UE path; multiple UEs
        share the carrier through the scheduler.
        """
        if not self._ues:
            raise RuntimeError("no UEs attached")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rng = rng or np.random.default_rng()
        realizations = [self._realize(ue, duration_s, rng) for ue in self._ues]
        if len(self._ues) == 1:
            trace = simulate_downlink(self.cell, realizations[0], rng=rng, params=self.params)
            return {self._ues[0].ue_id: trace}
        traces = simulate_downlink_multi(self.cell, realizations, self.scheduler,
                                         rng=rng, params=self.params)
        return {ue.ue_id: trace for ue, trace in zip(self._ues, traces)}

    def cell_throughput_mbps(self, traces: dict[int, SlotTrace]) -> float:
        """Aggregate cell throughput of a run."""
        return float(sum(t.mean_throughput_mbps for t in traces.values()))
