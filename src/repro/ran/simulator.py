"""Slot-clocked link simulation.

Entry points:

- :func:`simulate_downlink` — one backlogged UE on one carrier (the
  paper's iPerf DL scenario).  Link adaptation runs per CQI period;
  per-slot decode outcomes, HARQ retransmissions and OLLA feedback run
  on the slot clock.
- :func:`simulate_uplink` — same machinery in the UL direction (fewer
  usable slots per the TDD pattern, fewer layers, lower UE tx power).
- :func:`simulate_downlink_multi` — several backlogged UEs sharing the
  carrier through an RB scheduler (Fig. 14's simultaneous-UE study).

All functions return :class:`~repro.xcal.records.SlotTrace` objects, the
XCAL-equivalent artifact the analysis layer consumes.

Three slot engines produce byte-identical traces (``SimParams.engine``):

- ``"vectorized"`` — segment-batched numpy fast path: within each CQI
  period the slot range is split into maximal contiguous segments with
  no due HARQ retransmission, and every trace column of a segment is
  filled with one bulk write; the scalar path runs only inside
  retransmission windows.
- ``"tensor"`` — the cross-session cohort pass in
  :mod:`repro.ran.tensor`: same-shape sessions differing only in seed
  run as one ``(sessions x slots)`` tensor, with per-column fallback to
  this module's segment-batched machinery where retx windows diverge.
- ``"reference"`` — the original per-slot scalar loop, retained as the
  oracle for the equivalence test matrix.

The default ``"auto"`` resolves per call site (vectorized for a lone
session, tensor inside a cohort); see
:func:`repro.ran.config.resolve_engine`.  All slot-clock randomness is
pre-drawn before the period loop, so every engine consumes the
generator identically by construction.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.model import ChannelRealization
from repro.nr.cqi import CQI_MAX, CqiMcsMapper
from repro.nr.mcs import MCS_TABLE_64QAM, Modulation
from repro.nr.signal import sinr_to_cqi
from repro.nr.tbs import cached_tbs_lookup_matrix, transport_block_size
from repro.nr.tdd import SlotType
from repro.ran.amc import BlerModel, Olla, RankAdapter
from repro.ran.config import ENGINES, CellConfig, resolve_engine
from repro.ran.scheduler import Scheduler, SchedulingRequest
from repro.xcal.records import SlotTrace, TraceMetadata

#: Slot-type codes used in traces (match ``TddPattern.type_array``).
SLOT_DL, SLOT_UL, SLOT_SPECIAL = 0, 1, 2


@dataclass(frozen=True)
class SimParams:
    """Tunable behaviour of the link simulation.

    Parameters
    ----------
    harq_rtt_slots:
        Slots between a NACK and the retransmission grant.
    max_attempts:
        HARQ attempts before the TB is dropped.
    retx_error_scale:
        Multiplier on the decode-failure probability of retransmissions
        (chase combining gain).
    olla_enabled:
        Run outer-loop link adaptation (ablation switch).
    bler:
        Link-abstraction error model.
    rank_adapter:
        SINR→layers policy (per-deployment bias lives here).
    cqi_delay_slots:
        Age of the channel state behind each CQI report.
    cqi_noise_db:
        Gaussian error of the SINR estimate underlying CQI.
    cqi_alpha:
        Efficiency factor of the UE's CQI reporting.  UEs report
        optimistically relative to what the link actually decodes
        (outer-loop link adaptation exists precisely to correct this);
        keeping ``cqi_alpha`` above the BLER model's ``alpha`` makes the
        paper's CQI >= 12 conditioning match commercial reporting rates
        while OLLA pulls the served MCS back to the true capacity.
    rank_ewma_beta:
        Smoothing of the SINR series feeding rank adaptation — RI
        reports average over a much longer horizon than CQI, which is
        why Fig. 12 shows MIMO-layer variability an order of magnitude
        below MCS variability.
    dci_fallback_cqi:
        At or below this CQI a 256QAM cell falls back to DCI 1_0 /
        the 64QAM table (§3.1).
    background_rb_mean, background_rb_sigma:
        Fraction of grantable RBs consumed by background traffic
        (other bearers, SIBs, occasional other users), redrawn each CQI
        period.  Keeps allocations "close to the maximum" (Fig. 4)
        while producing the RE-allocation spread of Fig. 3.
    engine:
        Slot-engine policy: ``"auto"`` (the default — the segment-batched
        vectorized engine per session, upgraded to the cross-session
        tensor pass when the session runs inside a same-shape cohort),
        ``"vectorized"``, ``"tensor"`` (force the cohort tensor pass
        where a cohort exists) or ``"reference"`` (per-slot scalar loop,
        the equivalence oracle).  All engines produce byte-identical
        traces; see :func:`repro.ran.config.resolve_engine` for the
        decision table.
    """

    harq_rtt_slots: int = 8
    max_attempts: int = 4
    retx_error_scale: float = 0.15
    olla_enabled: bool = True
    bler: BlerModel = field(default_factory=BlerModel)
    rank_adapter: RankAdapter = field(default_factory=RankAdapter)
    cqi_delay_slots: int = 8
    cqi_noise_db: float = 0.3
    cqi_alpha: float = 0.9
    rank_ewma_beta: float = 0.15
    dci_fallback_cqi: int = 4
    background_rb_mean: float = 0.025
    background_rb_sigma: float = 0.035
    engine: str = "auto"

    def __post_init__(self) -> None:
        if self.harq_rtt_slots < 1:
            raise ValueError("harq_rtt_slots must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if not 0.0 <= self.retx_error_scale <= 1.0:
            raise ValueError("retx_error_scale must lie in [0, 1]")
        if self.engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {self.engine!r}")


# ---------------------------------------------------------------------- #
# Shared retransmission-window semantics
# ---------------------------------------------------------------------- #
# Every engine — the scalar reference oracle, the segment-batched
# vectorized engine, and the cohort tensor engine's batched retx lanes —
# answers the same two questions per pending HARQ block: *can this slot
# serve it* and *with what error probability*.  Both rules live here, in
# scalar/array-polymorphic form, so an engine cannot re-derive (and
# silently drift from) the oracle's semantics.

def retx_fits_slot(is_special, tbs_bits, tbs_special) -> bool:
    """Serve-eligibility of a due retransmission in one slot.

    A special slot only qualifies if its (shorter) TBS can carry the
    pending block; otherwise the retransmission waits for the next full
    slot and the special slot carries new data (the *deferral* rule).
    Full slots always qualify.
    """
    return not (is_special and tbs_bits > tbs_special)


def retx_error_probability(p_hint, retx_error_scale):
    """Error probability of serving a retransmission.

    ``min(1, p_hint * retx_error_scale)`` — chase combining recovers
    most of the loss, so the retransmission reuses the original
    transmission's error probability scaled down.  Accepts a float (the
    scalar engines) or an ndarray of hints (the cohort batched pass);
    the array form may write through its temporary, and both forms run
    the identical IEEE multiply-then-clamp sequence.
    """
    p_retx = p_hint * retx_error_scale
    if isinstance(p_retx, np.ndarray):
        return np.minimum(p_retx, 1.0, out=p_retx)
    return p_retx if p_retx < 1.0 else 1.0


class _RetxQueue:
    """Min-heap of pending HARQ retransmissions, ordered by due slot.

    Replaces the previous sorted-list queue (``append`` + full
    ``sort()`` on every NACK) with ``heapq`` push/pop.  A monotonically
    increasing sequence number breaks due-slot ties in insertion order,
    so heap order matches the stable sort it replaced exactly.

    Items are ``(due_slot, seq, tbs_bits, attempts, p_hint)``.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, int, int, float]] = []
        self._seq = 0

    def __bool__(self) -> bool:
        return bool(self._heap)

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def head(self) -> tuple[int, int, int, int, float]:
        return self._heap[0]

    def push(self, due_slot: int, tbs_bits: int, attempts: int, p_hint: float) -> None:
        heapq.heappush(self._heap, (due_slot, self._seq, tbs_bits, attempts, p_hint))
        self._seq += 1

    def pop(self) -> tuple[int, int, int, int, float]:
        return heapq.heappop(self._heap)


def _slot_types(cell: CellConfig, n_slots: int, direction: SlotType) -> np.ndarray:
    """Per-slot type codes; FDD carriers are all-DL or all-UL."""
    if cell.tdd is not None:
        return cell.tdd.type_array(n_slots)
    code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    return np.full(n_slots, code, dtype=np.int8)


def _usable_symbols(cell: CellConfig, direction: SlotType) -> tuple[int, int]:
    """(symbols in a full slot, symbols in a special slot) for a direction."""
    if cell.tdd is None:
        return 14, 0
    if direction is SlotType.DL:
        return 14, cell.tdd.special.dl_symbols
    return 14, cell.tdd.special.ul_symbols


def _mappers(cell: CellConfig) -> tuple[CqiMcsMapper, CqiMcsMapper]:
    """(primary mapper, DCI 1_0 fallback mapper onto the 64QAM table)."""
    primary = cell.mapper
    if cell.max_modulation is Modulation.QAM256:
        fallback = CqiMcsMapper(cell.cqi_table, MCS_TABLE_64QAM, cell.mapping_policy)
    else:
        fallback = primary
    return primary, fallback


#: RB quantum for the TBS matrix cache (bounds distinct grant sizes).
_RB_QUANTUM = 4

#: Hard ceiling on the per-period background-traffic trim: grants never
#: drop below ``(1 - BACKGROUND_TRIM_MAX) * grantable_rb``, whatever the
#: background mean/sigma.  ``prewarm_tbs_matrices`` with
#: ``min_grant_fraction = 1 - BACKGROUND_TRIM_MAX`` therefore covers
#: every grant size any engine (per-session or cohort tensor) can
#: resolve.
BACKGROUND_TRIM_MAX = 0.35


class _TbsCache:
    """TBS lookup matrices keyed by (table, n_prb).

    Backed by the process-wide matrix cache in :mod:`repro.nr.tbs`, so
    repeated sessions in a campaign reuse each other's matrices instead
    of recomputing them.
    """

    def __init__(self, cell: CellConfig, max_layers: int, direction: SlotType):
        self._cell = cell
        self._max_layers = max_layers
        self._full_sym, self._special_sym = _usable_symbols(cell, direction)
        if cell.max_modulation is Modulation.QAM256:
            self._tables = {"primary": cell.mcs_table, "fallback": MCS_TABLE_64QAM}
        else:
            self._tables = {"primary": cell.mcs_table, "fallback": cell.mcs_table}
        self._cache: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}

    def quantize(self, n_prb: int) -> int:
        """Snap a grant size to the cache quantum (at least one quantum)."""
        return max(_RB_QUANTUM, _RB_QUANTUM * round(n_prb / _RB_QUANTUM))

    def get(self, which: str, n_prb: int) -> tuple[np.ndarray, np.ndarray]:
        """(full-slot, special-slot) TBS matrices for a grant size."""
        key = (which, n_prb)
        if key not in self._cache:
            table = self._tables[which]
            full = cached_tbs_lookup_matrix(table, n_prb, self._max_layers,
                                            symbols=self._full_sym)
            if self._special_sym > 0:
                special = cached_tbs_lookup_matrix(table, n_prb, self._max_layers,
                                                   symbols=self._special_sym)
            else:
                special = np.zeros_like(full)
            self._cache[key] = (full, special)
        return self._cache[key]


def prewarm_tbs_matrices(cell: CellConfig, direction: SlotType = SlotType.DL,
                         max_layers: int | None = None,
                         min_grant_fraction: float = 1.0) -> None:
    """Populate the process-wide TBS matrix cache for a carrier.

    Builds the full-grant (and special-slot) matrices for the primary
    and fallback MCS tables — the matrices every full-buffer session on
    this carrier resolves first.  Campaign worker pools call this from
    their initializer so the first session of each worker starts warm.

    ``min_grant_fraction`` extends the warm set down the grant-size axis:
    every quantized grant in ``[min_grant_fraction * grantable_rb,
    grantable_rb]`` is built too.  The cohort tensor engine resolves the
    TBS matrices of *all* of a cohort's background-trimmed grant sizes
    up front (one stacked gather per period instead of per-period dict
    lookups), so a cold tensor run would otherwise pay every first-touch
    build inside the timed region; the default SimParams background
    model trims at most ~10% of the grant in practice, which
    ``prewarm_worker_caches`` covers with ``min_grant_fraction=0.88``.
    Deeper trims still build lazily; ``min_grant_fraction = 1 -
    BACKGROUND_TRIM_MAX`` is the guaranteed-complete (but larger) warm
    set.
    """
    if not 0.0 < min_grant_fraction <= 1.0:
        raise ValueError("min_grant_fraction must lie in (0, 1]")
    if direction is SlotType.UL and cell.max_modulation is not Modulation.QAM64:
        cell = replace(cell, max_modulation=Modulation.QAM64)
    layers = cell.max_layers if max_layers is None else min(max_layers, cell.max_layers)
    cache = _TbsCache(cell, layers, direction)
    full_grant = cache.quantize(cell.grantable_rb)
    low_grant = cache.quantize(int(round(cell.grantable_rb * min_grant_fraction)))
    for grant in range(min(low_grant, full_grant), full_grant + 1, _RB_QUANTUM):
        cache.get("primary", grant)
        cache.get("fallback", grant)
    # Grant sizes are min(quantized, grantable_rb): when the quantum
    # rounds the full grant *up*, the capped (non-quantum) full grant is
    # the size sessions actually resolve — warm it too.
    if full_grant > cell.grantable_rb:
        cache.get("primary", cell.grantable_rb)
        cache.get("fallback", cell.grantable_rb)


class _Period:
    """Per-CQI-period context shared by the slot engines.

    Everything the per-slot logic needs, resolved once per period: the
    link-adaptation decision (MCS, layers, CQI, DCI format, grant size,
    TBS values) plus the pre-drawn randomness views for the period.
    """

    __slots__ = (
        "start", "stop", "usable", "special", "decoded_new", "p_err",
        "retx_uniforms", "params", "prb", "mcs", "mod", "layers", "cqi",
        "dci", "tbs_full", "tbs_special",
    )


def _scalar_slot(trace: SlotTrace, queue: _RetxQueue, pd: _Period, i: int) -> tuple[int, int]:
    """Process one slot exactly as the reference engine defines it.

    Returns ``(acks, nacks)`` counted over *new* transmissions only
    (retransmissions do not feed OLLA).  Both engines route through
    this function — the reference engine for every slot, the vectorized
    engine inside retransmission windows — so their per-slot semantics
    cannot drift apart.
    """
    if not pd.usable[i]:
        return 0, 0
    is_special = bool(pd.special[i])
    # Serve a due retransmission first — it displaces new data.
    # A special slot only qualifies if its (shorter) TBS can carry
    # the pending block; otherwise the retransmission waits for
    # the next full slot and the special slot carries new data.
    if queue and queue.head[0] <= i and \
            retx_fits_slot(is_special, queue.head[2], pd.tbs_special):
        _due, _seq, tbs, attempts, p_hint = queue.pop()
        params = pd.params
        p_retx = retx_error_probability(p_hint, params.retx_error_scale)
        ok = pd.retx_uniforms[i] >= p_retx
        trace.scheduled[i] = True
        trace.is_retx[i] = True
        trace.n_prb[i] = pd.prb
        trace.n_re[i] = pd.prb * 12
        trace.mcs_index[i] = pd.mcs
        trace.modulation_order[i] = pd.mod
        trace.layers[i] = pd.layers
        trace.tbs_bits[i] = tbs
        trace.cqi[i] = pd.cqi
        trace.dci_format[i] = pd.dci
        if ok:
            trace.delivered_bits[i] = tbs
        else:
            trace.error[i] = True
            if attempts + 1 < params.max_attempts:
                queue.push(i + params.harq_rtt_slots, tbs, attempts + 1, p_hint)
        return 0, 0
    # New transmission.
    tbs = pd.tbs_special if is_special else pd.tbs_full
    if tbs <= 0:
        return 0, 0
    ok = bool(pd.decoded_new[i - pd.start])
    trace.scheduled[i] = True
    trace.n_prb[i] = pd.prb
    trace.n_re[i] = pd.prb * 12
    trace.mcs_index[i] = pd.mcs
    trace.modulation_order[i] = pd.mod
    trace.layers[i] = pd.layers
    trace.tbs_bits[i] = tbs
    trace.cqi[i] = pd.cqi
    trace.dci_format[i] = pd.dci
    if ok:
        trace.delivered_bits[i] = tbs
        return 1, 0
    trace.error[i] = True
    queue.push(i + pd.params.harq_rtt_slots, tbs, 1, float(pd.p_err[i - pd.start]))
    return 0, 1


class _ReferenceEngine:
    """Scalar oracle: every slot through :func:`_scalar_slot`, written
    to the trace immediately."""

    def __init__(self, n_slots: int, usable: np.ndarray, special: np.ndarray):
        pass

    def run_period(self, trace: SlotTrace, queue: _RetxQueue, pd: _Period) -> tuple[int, int]:
        acks = 0
        nacks = 0
        for i in range(pd.start, pd.stop):
            a, n = _scalar_slot(trace, queue, pd, i)
            acks += a
            nacks += n
        return acks, nacks

    def flush(self, trace: SlotTrace) -> None:
        pass


#: Recycled (decoded, txmask) scratch pairs for :class:`_VectorizedEngine`,
#: keyed by trace length.  Campaigns simulate thousands of same-length
#: sessions back to back in one process; reusing the two trace-length
#: boolean arrays keeps the per-session allocation cost off the critical
#: path (the first session still pays it once).  Not thread-safe — the
#: engine runs sessions sequentially within a process, workers each hold
#: their own module state.
_ENGINE_BUFFERS: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}
_ENGINE_BUFFERS_CAP = 8


def _borrow_engine_buffers(n_slots: int) -> tuple[np.ndarray, np.ndarray]:
    pool = _ENGINE_BUFFERS.get(n_slots)
    if pool:
        decoded, txmask = pool.pop()
        # ``decoded`` is read only where ``txmask`` was set, and every
        # such slot is written first — stale contents are unreachable.
        txmask[:] = False
        return decoded, txmask
    return np.empty(n_slots, dtype=bool), np.zeros(n_slots, dtype=bool)


def _release_engine_buffers(decoded: np.ndarray, txmask: np.ndarray) -> None:
    pool = _ENGINE_BUFFERS.setdefault(decoded.size, [])
    if len(pool) < _ENGINE_BUFFERS_CAP:
        pool.append((decoded, txmask))


class _VectorizedEngine:
    """Segment-batched fast path.

    Each CQI period is split into maximal contiguous segments with no
    due HARQ retransmission.  Inside a segment every usable slot carries
    a new transmission whose outcome is already known (``decoded_new``
    is pre-drawn), so the per-slot work collapses to bookkeeping: the
    segment's transmit pattern is copied into a trace-length mask and
    its per-period constants (MCS, grant, CQI, ...) are appended to
    chunk lists.  Two events bound a segment: the head of the
    retransmission queue coming due, and a fresh NACK whose
    retransmission becomes due ``harq_rtt_slots`` later.  Slots inside
    retransmission windows fall back to :func:`_scalar_slot`, which
    writes the trace directly.

    NACKs are pushed onto the queue in slot order as each segment is
    scanned (the queue drives the segmentation), but trace columns are
    materialized once per trace in :meth:`flush`: chunk constants expand
    through ``np.repeat`` and land with one bulk write per column.
    Scalar slots own disjoint indices, so flush order is immaterial.
    """

    def __init__(self, n_slots: int, usable: np.ndarray, special: np.ndarray):
        self._special = special
        # Transmit patterns for the three live (tbs_full, tbs_special)
        # sign cases, precomputed over the whole trace, each with a
        # prefix-sum so a segment's transmission count is two lookups.
        self._tx_both = usable
        self._tx_full_only = usable & ~special
        self._tx_special_only = usable & special
        self._cum_both = self._prefix_counts(self._tx_both)
        self._cum_full_only = self._prefix_counts(self._tx_full_only)
        self._cum_special_only = self._prefix_counts(self._tx_special_only)
        self._decoded, self._txmask = _borrow_engine_buffers(n_slots)
        self._released = False
        self._scratch: np.ndarray | None = None
        # Per-chunk constants (one chunk per committed segment).
        self._counts: list[int] = []
        self._prb: list[int] = []
        self._mcs: list[int] = []
        self._mod: list[int] = []
        self._layers: list[int] = []
        self._cqi: list[int] = []
        self._dci: list[int] = []
        self._tbsf: list[int] = []
        self._tbss: list[int] = []
        # Per-event buffer for fallback slots (retransmissions and
        # deferral-displaced new transmissions) — flushed in bulk too.
        # One tuple per event: (slot, tbs, ok, is_retx, prb, mcs, mod,
        # layers, cqi, dci).
        self._events: list[tuple] = []

    @staticmethod
    def _prefix_counts(tx: np.ndarray) -> np.ndarray:
        counts = np.zeros(tx.size + 1, dtype=np.int64)
        np.cumsum(tx, out=counts[1:])
        return counts

    def _fallback_slot(self, queue: _RetxQueue, pd: "_Period", i: int) -> tuple[int, int]:
        """Per-slot fallback with the exact :func:`_scalar_slot` semantics,
        buffering its trace writes instead of landing them immediately."""
        if not pd.usable[i]:
            return 0, 0
        is_special = bool(pd.special[i])
        heap = queue._heap
        if heap and heap[0][0] <= i and \
                retx_fits_slot(is_special, heap[0][2], pd.tbs_special):
            _due, _seq, tbs, attempts, p_hint = queue.pop()
            params = pd.params
            p_retx = retx_error_probability(p_hint, params.retx_error_scale)
            ok = bool(pd.retx_uniforms[i] >= p_retx)
            self._events.append((i, tbs, ok, True, pd.prb, pd.mcs, pd.mod,
                                 pd.layers, pd.cqi, pd.dci))
            if not ok and attempts + 1 < params.max_attempts:
                queue.push(i + params.harq_rtt_slots, tbs, attempts + 1, p_hint)
            return 0, 0
        tbs = pd.tbs_special if is_special else pd.tbs_full
        if tbs <= 0:
            return 0, 0
        j = i - pd.start
        ok = bool(pd.decoded_new[j])
        self._events.append((i, tbs, ok, False, pd.prb, pd.mcs, pd.mod,
                             pd.layers, pd.cqi, pd.dci))
        if ok:
            return 1, 0
        queue.push(i + pd.params.harq_rtt_slots, tbs, 1, float(pd.p_err[j]))
        return 0, 1

    def run_period(self, trace: SlotTrace, queue: _RetxQueue, pd: _Period) -> tuple[int, int]:
        start, stop = pd.start, pd.stop
        tbs_full, tbs_special = pd.tbs_full, pd.tbs_special
        acks = 0
        nacks = 0
        if tbs_full > 0 and tbs_special > 0:
            tx = self._tx_both
            cum = self._cum_both
        elif tbs_full > 0:
            tx = self._tx_full_only
            cum = self._cum_full_only
        elif tbs_special > 0:
            tx = self._tx_special_only
            cum = self._cum_special_only
        else:
            # Nothing transmittable this period; only due retransmissions
            # can occupy slots, and the fallback skips the rest.
            for i in range(start, stop):
                a, n = self._fallback_slot(queue, pd, i)
                acks += a
                nacks += n
            return acks, nacks

        self._decoded[start:stop] = pd.decoded_new
        # Fresh-NACK candidate positions (period-relative), with their
        # retransmission hints, extracted once per period (scratch buffer
        # reused across periods — the mask is consumed immediately).
        scratch = self._scratch
        if scratch is None or scratch.size < stop - start:
            self._scratch = scratch = np.empty(stop - start, dtype=bool)
        failed = np.logical_not(pd.decoded_new, out=scratch[:stop - start])
        failed &= tx[start:stop]
        err_pos = failed.nonzero()[0].tolist()
        n_err = len(err_pos)
        uniform_tbs = tbs_special == tbs_full
        e = 0
        rtt = pd.params.harq_rtt_slots
        txmask = self._txmask
        heap = queue._heap
        special = self._special
        p_err = pd.p_err

        i = start
        while i < stop:
            if heap and heap[0][0] <= i:
                # Retransmission window: per-slot fallback until the due
                # block is served (or deferred past a special slot that
                # cannot carry it).
                a, n = self._fallback_slot(queue, pd, i)
                acks += a
                nacks += n
                i += 1
                # The fallback owned that position — drop any fresh-NACK
                # candidate there (a served retx displaced the new data; a
                # fallback new transmission already queued its own NACK).
                while e < n_err and err_pos[e] < i - start:
                    e += 1
                continue
            seg_end = stop if not heap else min(stop, heap[0][0])
            # The first fresh NACK inside the segment re-arms the queue
            # rtt slots later; the segment cannot extend past that.
            if e < n_err:
                first = start + err_pos[e]
                if first < seg_end and first + rtt < seg_end:
                    seg_end = first + rtt
            j1 = seg_end - start
            # Queue every fresh NACK in the committed range, slot order:
            # their due slots all lie at or beyond seg_end.
            seg_nacks = 0
            while e < n_err and (pos := err_pos[e]) < j1:
                if uniform_tbs or not special[start + pos]:
                    tbs = tbs_full
                else:
                    tbs = tbs_special
                queue.push(start + pos + rtt, tbs, 1, float(p_err[pos]))
                e += 1
                seg_nacks += 1
            nacks += seg_nacks
            txmask[i:seg_end] = tx[i:seg_end]
            cnt = int(cum[seg_end] - cum[i])
            acks += cnt - seg_nacks
            if cnt:
                self._counts.append(cnt)
                self._prb.append(pd.prb)
                self._mcs.append(pd.mcs)
                self._mod.append(pd.mod)
                self._layers.append(pd.layers)
                self._cqi.append(pd.cqi)
                self._dci.append(pd.dci)
                self._tbsf.append(tbs_full)
                self._tbss.append(tbs_special)
            i = seg_end
        return acks, nacks

    def flush(self, trace: SlotTrace) -> None:
        """Materialize the accumulated fast-path slots into the trace."""
        idx = np.flatnonzero(self._txmask)
        if idx.size:
            counts = np.asarray(self._counts)

            def rep(values: list[int]) -> np.ndarray:
                return np.repeat(np.asarray(values, dtype=np.int64), counts)

            prb = rep(self._prb)
            trace.fill(
                idx, scheduled=True, n_prb=prb, n_re=prb * 12,
                mcs_index=rep(self._mcs), modulation_order=rep(self._mod),
                layers=rep(self._layers), cqi=rep(self._cqi),
                dci_format=rep(self._dci),
            )
            tbs_vec = np.where(self._special[idx], rep(self._tbss), rep(self._tbsf))
            ok = self._decoded[idx]
            trace.tbs_bits[idx] = tbs_vec
            trace.delivered_bits[idx] = np.where(ok, tbs_vec, 0)
            trace.error[idx] = ~ok
        if self._events:
            (r_idx, r_tbs, r_ok, r_retx, r_prb, r_mcs, r_mod, r_layers,
             r_cqi, r_dci) = zip(*self._events)
            ridx = np.asarray(r_idx, dtype=np.intp)
            rtbs = np.asarray(r_tbs, dtype=np.int64)
            rok = np.asarray(r_ok, dtype=bool)
            rprb = np.asarray(r_prb, dtype=np.int64)
            trace.fill(
                ridx, scheduled=True, n_prb=rprb, n_re=rprb * 12,
                mcs_index=np.asarray(r_mcs, dtype=np.int64),
                modulation_order=np.asarray(r_mod, dtype=np.int64),
                layers=np.asarray(r_layers, dtype=np.int64),
                cqi=np.asarray(r_cqi, dtype=np.int64),
                dci_format=np.asarray(r_dci, dtype=np.int64),
            )
            trace.is_retx[ridx] = np.asarray(r_retx, dtype=bool)
            trace.tbs_bits[ridx] = rtbs
            trace.delivered_bits[ridx] = np.where(rok, rtbs, 0)
            trace.error[ridx] = ~rok
        if not self._released:
            self._released = True
            _release_engine_buffers(self._decoded, self._txmask)


_SLOT_ENGINES = {
    "reference": _ReferenceEngine,
    "vectorized": _VectorizedEngine,
}


def _simulate_direction(
    cell: CellConfig,
    channel: ChannelRealization,
    direction: SlotType,
    rng: np.random.Generator,
    params: SimParams,
    max_layers: int,
    n_prb: int,
    metadata: TraceMetadata,
) -> SlotTrace:
    """Shared single-UE full-buffer simulation for one direction."""
    n_slots = channel.n_slots
    trace = SlotTrace.empty(n_slots, mu=channel.mu, metadata=metadata)
    trace.sinr_db[:] = channel.sinr_db
    trace.rsrp_dbm[:] = channel.rsrp_dbm
    trace.rsrq_db[:] = channel.rsrq_db

    slot_types = _slot_types(cell, n_slots, direction)
    trace.slot_type[:] = slot_types
    own_code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    usable = (slot_types == own_code) | (slot_types == SLOT_SPECIAL)
    full_sym, special_sym = _usable_symbols(cell, direction)
    if special_sym == 0:
        usable &= slot_types != SLOT_SPECIAL

    primary_mapper, fallback_mapper = _mappers(cell)
    tbs_cache = _TbsCache(cell, max_layers, direction)

    olla = Olla()
    rank_adapter = params.rank_adapter
    current_rank = 1
    rank_sinr_ewma: float | None = None
    period = cell.cqi_period_slots

    # Pre-draw all randomness used on the slot clock.
    n_periods_total = -(-n_slots // period) + 1
    uniforms = rng.random(n_slots)
    retx_uniforms = rng.random(n_slots)
    noise = params.cqi_noise_db * rng.standard_normal(n_periods_total)
    background = np.clip(
        params.background_rb_mean + params.background_rb_sigma * rng.standard_normal(n_periods_total),
        0.0, BACKGROUND_TRIM_MAX,
    )

    sinr = channel.sinr_db
    queue = _RetxQueue()
    special_mask = slot_types == SLOT_SPECIAL
    # A lone session has no cohort: "auto"/"tensor" resolve to the
    # segment-batched vectorized engine (byte-identical by contract).
    engine = _SLOT_ENGINES[resolve_engine(params.engine, 1)](n_slots, usable, special_mask)

    pd = _Period()
    pd.params = params
    pd.retx_uniforms = retx_uniforms
    # Full-trace masks, indexed absolutely by the scalar paths; only
    # decoded_new/p_err are period-relative views.
    pd.usable = usable
    pd.special = special_mask

    # Hoist the per-period measurement chain out of the loop: measured
    # SINR and CQI depend only on the channel and the pre-drawn noise,
    # and the channel's sustainable efficiency depends only on the SINR
    # series — none feed back from slot outcomes.  Both engines share
    # these arrays, so they cannot diverge here.
    n_periods = -(-n_slots // period)
    starts = np.arange(n_periods) * period
    measured_all = sinr[np.maximum(starts - params.cqi_delay_slots, 0)] + noise[:n_periods]
    cqi_all = np.minimum(
        sinr_to_cqi(measured_all, cell.cqi_table, alpha=params.cqi_alpha), CQI_MAX
    )
    eff_cap = params.bler.capacity(sinr)
    is_qam256 = cell.max_modulation is Modulation.QAM256
    # Grant sizes depend only on the pre-drawn background series; the
    # whole quantization chain runs once (np.rint ties-to-even matches
    # the scalar round() it replaces).
    prb_scaled = np.rint(n_prb * (1.0 - background[:n_periods])).astype(np.int64)
    prb_quant = np.maximum(
        _RB_QUANTUM,
        (_RB_QUANTUM * np.rint(prb_scaled / _RB_QUANTUM)).astype(np.int64),
    )
    period_prb_all = np.minimum(prb_quant, n_prb).tolist()
    measured_list = measured_all.tolist()
    cqi_list = cqi_all.tolist()
    # The loop resolves the same handful of link-adaptation keys every
    # few periods — memoize the CQI→MCS mapping, the MCS-entry constants
    # and the TBS pair lookups.
    mcs_memo: dict[tuple[bool, int, int], int] = {}
    entry_memo: dict[tuple[bool, int], tuple[float, int]] = {}
    tbs_memo: dict[tuple[bool, int, int, int], tuple[int, int]] = {}
    beta = params.rank_ewma_beta
    olla_enabled = params.olla_enabled
    dci_fallback_cqi = params.dci_fallback_cqi
    bler = params.bler
    # Per-period scratch buffers: ``p_err``/``decoded_new`` are consumed
    # within the period (NACK hints are copied out as floats), so one
    # pair of buffers serves every period without allocations.
    p_err_buf = np.empty(period)
    decoded_buf = np.empty(period, dtype=bool)
    # Olla.update_batch inlined below (one float op per period beats a
    # method call + validation); the constants cannot change mid-trace.
    olla_up, olla_down = olla.step_up, olla.step_down
    olla_lo, olla_hi = olla.min_offset, olla.max_offset

    for p in range(n_periods):
        start = p * period
        stop = min(n_slots, start + period)

        # --- measurement report ------------------------------------------------
        measured = measured_list[p]
        cqi = cqi_list[p]
        if rank_sinr_ewma is None:
            rank_sinr_ewma = measured
        else:
            rank_sinr_ewma = (1.0 - beta) * rank_sinr_ewma + beta * measured
        current_rank = rank_adapter.rank_for_sinr(rank_sinr_ewma, current_rank)
        layers = min(current_rank, max_layers)
        use_fallback = cqi <= dci_fallback_cqi and is_qam256
        offset = olla.offset if olla_enabled else 0
        key = (use_fallback, cqi, offset)
        mcs = mcs_memo.get(key)
        if mcs is None:
            mapper = fallback_mapper if use_fallback else primary_mapper
            mcs = mapper.mcs_for_cqi(cqi, olla_offset=offset)
            mcs_memo[key] = mcs
        ekey = (use_fallback, mcs)
        em = entry_memo.get(ekey)
        if em is None:
            table = (fallback_mapper if use_fallback else primary_mapper).mcs_table
            entry = table[mcs]
            em = (entry.spectral_efficiency, entry.modulation.bits_per_symbol)
            entry_memo[ekey] = em
        eff_mcs, mod_bits = em
        period_prb = period_prb_all[p]
        tkey = (use_fallback, period_prb, mcs, layers)
        tp = tbs_memo.get(tkey)
        if tp is None:
            tbs_full_m, tbs_special_m = tbs_cache.get(
                "fallback" if use_fallback else "primary", period_prb)
            tp = (int(tbs_full_m[mcs, layers - 1]), int(tbs_special_m[mcs, layers - 1]))
            tbs_memo[tkey] = tp
        dci_code = 0 if (use_fallback or not is_qam256) else 1

        # --- vectorized per-slot outcome for the period ------------------------
        sl = slice(start, stop)
        m = stop - start
        p_err = bler.error_probability_given_capacity(eff_mcs, eff_cap[sl],
                                                      out=p_err_buf[:m])
        decoded_new = np.greater_equal(uniforms[sl], p_err, out=decoded_buf[:m])

        pd.start = start
        pd.stop = stop
        pd.decoded_new = decoded_new
        pd.p_err = p_err
        pd.prb = period_prb
        pd.mcs = mcs
        pd.mod = mod_bits
        pd.layers = layers
        pd.cqi = cqi
        pd.dci = dci_code
        pd.tbs_full, pd.tbs_special = tp

        acks, nacks = engine.run_period(trace, queue, pd)
        if olla_enabled:
            delta = olla.delta + acks * olla_up - nacks * olla_down
            olla.delta = olla_lo if delta < olla_lo else olla_hi if delta > olla_hi else delta

    engine.flush(trace)
    # Unscheduled slots still carry the CQI context for analysis: forward-fill.
    _forward_fill_cqi(trace)
    return trace


def _forward_fill_cqi(trace: SlotTrace) -> None:
    """Propagate the last reported CQI into unscheduled slots."""
    cqi = trace.cqi
    mask = cqi > 0
    if not mask.any():
        return
    if mask.all():
        return  # every slot already carries a CQI — nothing to fill
    # arange * mask == where(mask, arange, 0), computed in place so the
    # fill costs one temporary instead of three on long traces.
    idx = np.arange(cqi.size)
    idx *= mask
    np.maximum.accumulate(idx, out=idx)
    filled = cqi[idx]
    first = int(np.argmax(mask))
    filled[:first] = cqi[first]
    trace.cqi[:] = filled


def simulate_downlink(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    metadata: TraceMetadata | None = None,
) -> SlotTrace:
    """Single backlogged UE, downlink (iPerf DL equivalent)."""
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    metadata = metadata or TraceMetadata(
        carrier_name=cell.name, direction="DL",
        bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
    )
    return _simulate_direction(
        cell, channel, SlotType.DL, rng, params,
        max_layers=cell.max_layers, n_prb=cell.grantable_rb, metadata=metadata,
    )


def simulate_uplink(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    max_layers: int = 2,
    metadata: TraceMetadata | None = None,
) -> SlotTrace:
    """Single backlogged UE, uplink.

    UL grants use at most ``max_layers`` (commercial mid-band UL runs 1-2
    layers) and the UL symbols of the TDD pattern; the caller supplies a
    channel realization reflecting the UL budget (UE tx power), typically
    the DL realization shifted down by the operator's UL SINR offset.
    """
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    metadata = metadata or TraceMetadata(
        carrier_name=cell.name, direction="UL",
        bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
    )
    # UL uses the 64QAM family in the studied deployments.
    ul_cell = replace(cell, max_modulation=Modulation.QAM64) \
        if cell.max_modulation is not Modulation.QAM64 else cell
    return _simulate_direction(
        ul_cell, channel, SlotType.UL, rng, params,
        max_layers=min(max_layers, cell.max_layers), n_prb=cell.grantable_rb,
        metadata=metadata,
    )


# ---------------------------------------------------------------------- #
# Multi-UE downlink
# ---------------------------------------------------------------------- #
def _multi_update_states(
    states: list[dict],
    slot: int,
    channels: list[ChannelRealization],
    cell: CellConfig,
    params: SimParams,
    rng: np.random.Generator,
    primary_mapper: CqiMcsMapper,
    fallback_mapper: CqiMcsMapper,
    mcs_memo: dict[tuple[bool, int, int], int],
) -> None:
    """Per-UE link-adaptation update at a CQI period boundary.

    Shared by both multi-UE engines; it draws one ``standard_normal``
    per UE in UE order, so generator consumption is identical across
    engines by construction.  The SINR→CQI map runs once over all UEs,
    and CQI→MCS lookups are memoized in the caller-held ``mcs_memo``
    (the same handful of keys recurs every period).
    """
    meas_idx = max(0, slot - params.cqi_delay_slots)
    noise_db = params.cqi_noise_db
    measured_all = np.array([
        float(ch.sinr_db[meas_idx]) + noise_db * float(rng.standard_normal())
        for ch in channels
    ])
    cqi_all = np.minimum(
        sinr_to_cqi(measured_all, cell.cqi_table, alpha=params.cqi_alpha), CQI_MAX
    ).tolist()
    is_qam256 = cell.max_modulation is Modulation.QAM256
    beta = params.rank_ewma_beta
    olla_enabled = params.olla_enabled
    for k, state in enumerate(states):
        measured = float(measured_all[k])
        cqi = cqi_all[k]
        state["cqi"] = cqi
        ewma = state.get("rank_sinr")
        ewma = measured if ewma is None else (1.0 - beta) * ewma + beta * measured
        state["rank_sinr"] = ewma
        state["rank"] = params.rank_adapter.rank_for_sinr(ewma, state["rank"])
        use_fb = cqi <= params.dci_fallback_cqi and is_qam256
        offset = state["olla"].offset if olla_enabled else 0
        key = (use_fb, cqi, offset)
        mcs = mcs_memo.get(key)
        if mcs is None:
            mapper = fallback_mapper if use_fb else primary_mapper
            mcs = mapper.mcs_for_cqi(cqi, olla_offset=offset)
            mcs_memo[key] = mcs
        state["mcs"] = mcs
        state["table"] = (fallback_mapper if use_fb else primary_mapper).mcs_table
        state["dci"] = 0 if (use_fb or not is_qam256) else 1


def _multi_decode_matrix(
    states: list[dict],
    channels: list[ChannelRealization],
    params: SimParams,
    uniforms: np.ndarray,
    start: int,
    stop: int,
) -> np.ndarray:
    """Decode outcomes ``[ue, slot-start]`` for one CQI period.

    One broadcast BLER evaluation replaces a scalar logistic call per
    allocated UE per slot.  Both engines read this matrix, so their
    decode outcomes are bit-identical whatever the platform's scalar
    vs SIMD transcendental rounding does.
    """
    effs = np.array([state["table"][state["mcs"]].spectral_efficiency for state in states])
    sinr = np.stack([ch.sinr_db[start:stop] for ch in channels])
    p_err = params.bler.error_probability(effs[:, None], sinr)
    return uniforms[:, start:stop] >= p_err


def _multi_reference(
    cell: CellConfig,
    channels: list[ChannelRealization],
    scheduler: Scheduler,
    params: SimParams,
    rng: np.random.Generator,
    traces: list[SlotTrace],
    states: list[dict],
    uniforms: np.ndarray,
    slot_types: np.ndarray,
    full_sym: int,
    special_sym: int,
    n_slots: int,
    primary_mapper: CqiMcsMapper,
    fallback_mapper: CqiMcsMapper,
) -> None:
    """Per-slot scalar multi-UE loop (the oracle)."""
    n_ues = len(states)
    period = cell.cqi_period_slots
    ok_mat = None
    period_start = 0
    mcs_memo: dict[tuple[bool, int, int], int] = {}
    for i in range(n_slots):
        if i % period == 0:
            _multi_update_states(states, i, channels, cell, params, rng,
                                 primary_mapper, fallback_mapper, mcs_memo)
            period_start = i
            ok_mat = _multi_decode_matrix(states, channels, params, uniforms,
                                          i, min(n_slots, i + period))
        kind = slot_types[i]
        if kind == SLOT_UL:
            continue
        symbols = special_sym if kind == SLOT_SPECIAL else full_sym
        if symbols == 0:
            continue
        requests = []
        for k, state in enumerate(states):
            entry = state["table"][state["mcs"]]
            rate = entry.spectral_efficiency * state["rank"] * 12 * symbols
            requests.append(SchedulingRequest(ue_id=k, backlog_bits=1 << 30, instantaneous_rate=rate))
        allocation = scheduler.allocate(requests, cell.grantable_rb)
        served_bits = [0.0] * n_ues
        for k, n_rb in allocation.items():
            state = states[k]
            entry = state["table"][state["mcs"]]
            layers = min(state["rank"], cell.max_layers)
            tbs = transport_block_size(n_rb, entry, layers, symbols=symbols)
            if tbs <= 0:
                continue
            ok = bool(ok_mat[k, i - period_start])
            trace = traces[k]
            trace.scheduled[i] = True
            trace.n_prb[i] = n_rb
            trace.n_re[i] = n_rb * 12
            trace.mcs_index[i] = state["mcs"]
            trace.modulation_order[i] = entry.modulation.bits_per_symbol
            trace.layers[i] = layers
            trace.tbs_bits[i] = tbs
            trace.cqi[i] = state["cqi"]
            trace.dci_format[i] = state["dci"]
            if ok:
                trace.delivered_bits[i] = tbs
                served_bits[k] = float(tbs)
            else:
                trace.error[i] = True
            if params.olla_enabled:
                state["olla"].update(ok)
        if hasattr(scheduler, "update_average"):
            # Every active UE folds this slot into its EWMA — including
            # UEs the scheduler left out, whose 0 served bits decay the
            # average so their PF metric recovers instead of starving.
            for k in range(n_ues):
                scheduler.update_average(k, served_bits[k])


def _multi_vectorized(
    cell: CellConfig,
    channels: list[ChannelRealization],
    scheduler: Scheduler,
    params: SimParams,
    rng: np.random.Generator,
    traces: list[SlotTrace],
    states: list[dict],
    uniforms: np.ndarray,
    slot_types: np.ndarray,
    full_sym: int,
    special_sym: int,
    n_slots: int,
    primary_mapper: CqiMcsMapper,
    fallback_mapper: CqiMcsMapper,
) -> None:
    """Batched multi-UE loop.

    The scheduler stays on the slot clock (its state feeds back through
    decode outcomes), but everything around it is lifted out of the
    per-slot path: decode outcomes come from the shared per-period
    matrix, scheduling requests are built once per period per slot
    flavour (full vs special) and reused, TBS values are memoized on
    ``(table, mcs, layers, n_rb, symbols)``, and per-UE trace writes
    accumulate in index buffers flushed with one bulk column write per
    UE per period.
    """
    n_ues = len(states)
    period = cell.cqi_period_slots
    grantable = cell.grantable_rb
    kinds = slot_types.tolist()
    update_averages = getattr(scheduler, "update_averages", None)
    update_average = getattr(scheduler, "update_average", None)
    olla_enabled = params.olla_enabled
    tbs_memo: dict[tuple, int] = {}
    mcs_memo: dict[tuple[bool, int, int], int] = {}
    backlog = 1 << 30

    n_periods = -(-n_slots // period)
    for p in range(n_periods):
        start = p * period
        stop = min(n_slots, start + period)
        _multi_update_states(states, start, channels, cell, params, rng,
                             primary_mapper, fallback_mapper, mcs_memo)
        ok_mat = _multi_decode_matrix(states, channels, params, uniforms, start, stop)
        ok_rows = [ok_mat[k] for k in range(n_ues)]

        # Link-adaptation state is fixed for the period — resolve it once.
        entries = [state["table"][state["mcs"]] for state in states]
        layers = [min(state["rank"], cell.max_layers) for state in states]
        # Olla.update inlined below: hoist the per-object constants so the
        # per-allocation cost is one float add + min/max, no method call.
        olla_rules = [
            (o, o.step_up, o.step_down, o.min_offset, o.max_offset)
            for o in (state["olla"] for state in states)
        ]
        table_ids = [id(state["table"]) for state in states]
        mcss = [state["mcs"] for state in states]
        req_full = [
            SchedulingRequest(ue_id=k, backlog_bits=backlog,
                              instantaneous_rate=entries[k].spectral_efficiency * states[k]["rank"] * 12 * full_sym)
            for k in range(n_ues)
        ]
        req_special = [
            SchedulingRequest(ue_id=k, backlog_bits=backlog,
                              instantaneous_rate=entries[k].spectral_efficiency * states[k]["rank"] * 12 * special_sym)
            for k in range(n_ues)
        ] if special_sym > 0 else None

        buf_idx: list[list[int]] = [[] for _ in range(n_ues)]
        buf_rb: list[list[int]] = [[] for _ in range(n_ues)]
        buf_tbs: list[list[int]] = [[] for _ in range(n_ues)]
        buf_ok: list[list[bool]] = [[] for _ in range(n_ues)]

        for i in range(start, stop):
            kind = kinds[i]
            if kind == SLOT_UL:
                continue
            if kind == SLOT_SPECIAL:
                if special_sym == 0:
                    continue
                symbols = special_sym
                requests = req_special
            else:
                symbols = full_sym
                requests = req_full
            allocation = scheduler.allocate(requests, grantable)
            served_bits = [0.0] * n_ues
            j = i - start
            for k, n_rb in allocation.items():
                key = (table_ids[k], mcss[k], layers[k], n_rb, symbols)
                tbs = tbs_memo.get(key)
                if tbs is None:
                    tbs = transport_block_size(n_rb, entries[k], layers[k], symbols=symbols)
                    tbs_memo[key] = tbs
                if tbs <= 0:
                    continue
                ok = ok_rows[k][j]
                buf_idx[k].append(i)
                buf_rb[k].append(n_rb)
                buf_tbs[k].append(tbs)
                buf_ok[k].append(ok)
                if ok:
                    served_bits[k] = float(tbs)
                if olla_enabled:
                    olla, step_up, step_down, lo, hi = olla_rules[k]
                    delta = olla.delta + (step_up if ok else -step_down)
                    olla.delta = lo if delta < lo else hi if delta > hi else delta
            # Every active UE folds this slot into its EWMA — including
            # UEs the scheduler left out, whose 0 served bits decay the
            # average so their PF metric recovers instead of starving.
            if update_averages is not None:
                update_averages(served_bits)
            elif update_average is not None:
                for k in range(n_ues):
                    update_average(k, served_bits[k])

        # Flush the period's accumulated grants with bulk column writes.
        for k in range(n_ues):
            if not buf_idx[k]:
                continue
            idx = np.asarray(buf_idx[k], dtype=np.intp)
            rb = np.asarray(buf_rb[k], dtype=np.int64)
            tbs = np.asarray(buf_tbs[k], dtype=np.int64)
            ok = np.asarray(buf_ok[k], dtype=bool)
            state = states[k]
            trace = traces[k]
            trace.fill(
                idx, scheduled=True, mcs_index=mcss[k],
                modulation_order=entries[k].modulation.bits_per_symbol,
                layers=layers[k], cqi=state["cqi"], dci_format=state["dci"],
            )
            trace.n_prb[idx] = rb
            trace.n_re[idx] = rb * 12
            trace.tbs_bits[idx] = tbs
            trace.delivered_bits[idx] = np.where(ok, tbs, 0)
            trace.error[idx] = ~ok


_MULTI_ENGINES = {
    "reference": _multi_reference,
    "vectorized": _multi_vectorized,
}


def simulate_downlink_multi(
    cell: CellConfig,
    channels: list[ChannelRealization],
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
) -> list[SlotTrace]:
    """Several backlogged UEs sharing the carrier through a scheduler.

    Used for the §5.2 multi-user study (Fig. 14): per DL slot the
    scheduler splits the grantable RBs among all UEs; each UE's MCS/rank
    tracks its own CQI loop.  Per-UE HARQ is simplified to immediate
    retransmission accounting (errors cost the slot's bits) — adequate
    because Fig. 14 reports RB shares and mean throughput.
    """
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    if not channels:
        raise ValueError("need at least one UE channel")
    n_slots = min(ch.n_slots for ch in channels)
    n_ues = len(channels)

    traces = [
        SlotTrace.empty(n_slots, mu=channels[k].mu, metadata=TraceMetadata(
            carrier_name=cell.name, direction="DL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ))
        for k in range(n_ues)
    ]
    for k, trace in enumerate(traces):
        trace.sinr_db[:] = channels[k].sinr_db[:n_slots]
        trace.rsrp_dbm[:] = channels[k].rsrp_dbm[:n_slots]
        trace.rsrq_db[:] = channels[k].rsrq_db[:n_slots]

    slot_types = _slot_types(cell, n_slots, SlotType.DL)
    for trace in traces:
        trace.slot_type[:] = slot_types
    full_sym, special_sym = _usable_symbols(cell, SlotType.DL)

    primary_mapper, fallback_mapper = _mappers(cell)
    # Per-UE adaptation state.
    states = [
        {"cqi": 7, "rank": 1, "mcs": 5, "table": cell.mcs_table, "olla": Olla(), "dci": 1}
        for _ in range(n_ues)
    ]
    uniforms = rng.random((n_ues, n_slots))

    run_multi = _MULTI_ENGINES[resolve_engine(params.engine, 1)]
    run_multi(cell, channels, scheduler, params, rng, traces, states, uniforms,
              slot_types, full_sym, special_sym, n_slots,
              primary_mapper, fallback_mapper)
    for trace in traces:
        _forward_fill_cqi(trace)
    return traces
