"""Slot-clocked link simulation.

Entry points:

- :func:`simulate_downlink` — one backlogged UE on one carrier (the
  paper's iPerf DL scenario).  Link adaptation runs per CQI period;
  per-slot decode outcomes, HARQ retransmissions and OLLA feedback run
  on the slot clock.
- :func:`simulate_uplink` — same machinery in the UL direction (fewer
  usable slots per the TDD pattern, fewer layers, lower UE tx power).
- :func:`simulate_downlink_multi` — several backlogged UEs sharing the
  carrier through an RB scheduler (Fig. 14's simultaneous-UE study).

All functions return :class:`~repro.xcal.records.SlotTrace` objects, the
XCAL-equivalent artifact the analysis layer consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.channel.model import ChannelRealization
from repro.nr.cqi import CQI_MAX, CqiMcsMapper
from repro.nr.mcs import MCS_TABLE_64QAM, Modulation
from repro.nr.signal import sinr_to_cqi
from repro.nr.tbs import tbs_lookup_matrix
from repro.nr.tdd import SlotType
from repro.ran.amc import BlerModel, Olla, RankAdapter
from repro.ran.config import CellConfig
from repro.ran.scheduler import Scheduler, SchedulingRequest
from repro.xcal.records import SlotTrace, TraceMetadata

#: Slot-type codes used in traces (match ``TddPattern.type_array``).
SLOT_DL, SLOT_UL, SLOT_SPECIAL = 0, 1, 2


@dataclass(frozen=True)
class SimParams:
    """Tunable behaviour of the link simulation.

    Parameters
    ----------
    harq_rtt_slots:
        Slots between a NACK and the retransmission grant.
    max_attempts:
        HARQ attempts before the TB is dropped.
    retx_error_scale:
        Multiplier on the decode-failure probability of retransmissions
        (chase combining gain).
    olla_enabled:
        Run outer-loop link adaptation (ablation switch).
    bler:
        Link-abstraction error model.
    rank_adapter:
        SINR→layers policy (per-deployment bias lives here).
    cqi_delay_slots:
        Age of the channel state behind each CQI report.
    cqi_noise_db:
        Gaussian error of the SINR estimate underlying CQI.
    cqi_alpha:
        Efficiency factor of the UE's CQI reporting.  UEs report
        optimistically relative to what the link actually decodes
        (outer-loop link adaptation exists precisely to correct this);
        keeping ``cqi_alpha`` above the BLER model's ``alpha`` makes the
        paper's CQI >= 12 conditioning match commercial reporting rates
        while OLLA pulls the served MCS back to the true capacity.
    rank_ewma_beta:
        Smoothing of the SINR series feeding rank adaptation — RI
        reports average over a much longer horizon than CQI, which is
        why Fig. 12 shows MIMO-layer variability an order of magnitude
        below MCS variability.
    dci_fallback_cqi:
        At or below this CQI a 256QAM cell falls back to DCI 1_0 /
        the 64QAM table (§3.1).
    background_rb_mean, background_rb_sigma:
        Fraction of grantable RBs consumed by background traffic
        (other bearers, SIBs, occasional other users), redrawn each CQI
        period.  Keeps allocations "close to the maximum" (Fig. 4)
        while producing the RE-allocation spread of Fig. 3.
    """

    harq_rtt_slots: int = 8
    max_attempts: int = 4
    retx_error_scale: float = 0.15
    olla_enabled: bool = True
    bler: BlerModel = field(default_factory=BlerModel)
    rank_adapter: RankAdapter = field(default_factory=RankAdapter)
    cqi_delay_slots: int = 8
    cqi_noise_db: float = 0.3
    cqi_alpha: float = 0.9
    rank_ewma_beta: float = 0.15
    dci_fallback_cqi: int = 4
    background_rb_mean: float = 0.025
    background_rb_sigma: float = 0.035

    def __post_init__(self) -> None:
        if self.harq_rtt_slots < 1:
            raise ValueError("harq_rtt_slots must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be positive")
        if not 0.0 <= self.retx_error_scale <= 1.0:
            raise ValueError("retx_error_scale must lie in [0, 1]")


def _slot_types(cell: CellConfig, n_slots: int, direction: SlotType) -> np.ndarray:
    """Per-slot type codes; FDD carriers are all-DL or all-UL."""
    if cell.tdd is not None:
        return cell.tdd.type_array(n_slots)
    code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    return np.full(n_slots, code, dtype=np.int8)


def _usable_symbols(cell: CellConfig, direction: SlotType) -> tuple[int, int]:
    """(symbols in a full slot, symbols in a special slot) for a direction."""
    if cell.tdd is None:
        return 14, 0
    if direction is SlotType.DL:
        return 14, cell.tdd.special.dl_symbols
    return 14, cell.tdd.special.ul_symbols


def _mappers(cell: CellConfig) -> tuple[CqiMcsMapper, CqiMcsMapper]:
    """(primary mapper, DCI 1_0 fallback mapper onto the 64QAM table)."""
    primary = cell.mapper
    if cell.max_modulation is Modulation.QAM256:
        fallback = CqiMcsMapper(cell.cqi_table, MCS_TABLE_64QAM, cell.mapping_policy)
    else:
        fallback = primary
    return primary, fallback


#: RB quantum for the TBS matrix cache (bounds distinct grant sizes).
_RB_QUANTUM = 4


class _TbsCache:
    """Lazily built TBS lookup matrices keyed by (table, n_prb)."""

    def __init__(self, cell: CellConfig, max_layers: int, direction: SlotType):
        self._cell = cell
        self._max_layers = max_layers
        self._full_sym, self._special_sym = _usable_symbols(cell, direction)
        if cell.max_modulation is Modulation.QAM256:
            self._tables = {"primary": cell.mcs_table, "fallback": MCS_TABLE_64QAM}
        else:
            self._tables = {"primary": cell.mcs_table, "fallback": cell.mcs_table}
        self._cache: dict[tuple[str, int], tuple[np.ndarray, np.ndarray]] = {}

    def quantize(self, n_prb: int) -> int:
        """Snap a grant size to the cache quantum (at least one quantum)."""
        return max(_RB_QUANTUM, _RB_QUANTUM * round(n_prb / _RB_QUANTUM))

    def get(self, which: str, n_prb: int) -> tuple[np.ndarray, np.ndarray]:
        """(full-slot, special-slot) TBS matrices for a grant size."""
        key = (which, n_prb)
        if key not in self._cache:
            table = self._tables[which]
            full = tbs_lookup_matrix(table, n_prb, self._max_layers, symbols=self._full_sym)
            if self._special_sym > 0:
                special = tbs_lookup_matrix(table, n_prb, self._max_layers, symbols=self._special_sym)
            else:
                special = np.zeros_like(full)
            self._cache[key] = (full, special)
        return self._cache[key]


def _simulate_direction(
    cell: CellConfig,
    channel: ChannelRealization,
    direction: SlotType,
    rng: np.random.Generator,
    params: SimParams,
    max_layers: int,
    n_prb: int,
    metadata: TraceMetadata,
) -> SlotTrace:
    """Shared single-UE full-buffer simulation for one direction."""
    n_slots = channel.n_slots
    trace = SlotTrace.empty(n_slots, mu=channel.mu, metadata=metadata)
    trace.sinr_db[:] = channel.sinr_db
    trace.rsrp_dbm[:] = channel.rsrp_dbm
    trace.rsrq_db[:] = channel.rsrq_db

    slot_types = _slot_types(cell, n_slots, direction)
    trace.slot_type[:] = slot_types
    own_code = SLOT_DL if direction is SlotType.DL else SLOT_UL
    usable = (slot_types == own_code) | (slot_types == SLOT_SPECIAL)
    full_sym, special_sym = _usable_symbols(cell, direction)
    if special_sym == 0:
        usable &= slot_types != SLOT_SPECIAL

    primary_mapper, fallback_mapper = _mappers(cell)
    tbs_cache = _TbsCache(cell, max_layers, direction)

    olla = Olla()
    rank_adapter = params.rank_adapter
    current_rank = 1
    rank_sinr_ewma: float | None = None
    period = cell.cqi_period_slots

    # Pre-draw all randomness used on the slot clock.
    n_periods_total = -(-n_slots // period) + 1
    uniforms = rng.random(n_slots)
    retx_uniforms = rng.random(n_slots)
    noise = params.cqi_noise_db * rng.standard_normal(n_periods_total)
    background = np.clip(
        params.background_rb_mean + params.background_rb_sigma * rng.standard_normal(n_periods_total),
        0.0, 0.35,
    )

    sinr = channel.sinr_db
    pending: list[list] = []  # each: [due_slot, tbs_bits, attempts, p_hint]

    n_periods = -(-n_slots // period)
    for p in range(n_periods):
        start = p * period
        stop = min(n_slots, start + period)

        # --- measurement report ------------------------------------------------
        meas_idx = max(0, start - params.cqi_delay_slots)
        measured = float(sinr[meas_idx]) + float(noise[p])
        cqi = int(sinr_to_cqi(measured, cell.cqi_table, alpha=params.cqi_alpha))
        cqi = min(cqi, CQI_MAX)
        if rank_sinr_ewma is None:
            rank_sinr_ewma = measured
        else:
            beta = params.rank_ewma_beta
            rank_sinr_ewma = (1.0 - beta) * rank_sinr_ewma + beta * measured
        current_rank = rank_adapter.rank_for_sinr(rank_sinr_ewma, current_rank)
        layers = min(current_rank, max_layers)
        use_fallback = cqi <= params.dci_fallback_cqi and cell.max_modulation is Modulation.QAM256
        mapper = fallback_mapper if use_fallback else primary_mapper
        offset = olla.offset if params.olla_enabled else 0
        mcs = mapper.mcs_for_cqi(cqi, olla_offset=offset)
        table = mapper.mcs_table
        entry = table[mcs]
        eff_mcs = entry.spectral_efficiency
        period_prb = tbs_cache.quantize(int(round(n_prb * (1.0 - background[p]))))
        period_prb = min(period_prb, n_prb)
        tbs_full, tbs_special = tbs_cache.get("fallback" if use_fallback else "primary", period_prb)
        dci_code = 0 if (use_fallback or cell.max_modulation is not Modulation.QAM256) else 1

        # --- vectorized per-slot outcome for the period ------------------------
        sl = slice(start, stop)
        p_err = params.bler.error_probability(eff_mcs, sinr[sl])
        usable_sl = usable[sl]
        special_sl = slot_types[sl] == SLOT_SPECIAL
        decoded_new = uniforms[sl] >= p_err

        tbs_value_full = int(tbs_full[mcs, layers - 1])
        tbs_value_special = int(tbs_special[mcs, layers - 1])

        acks = 0
        nacks = 0
        for i in range(start, stop):
            j = i - start
            if not usable_sl[j]:
                continue
            is_special = bool(special_sl[j])
            # Serve a due retransmission first — it displaces new data.
            # A special slot only qualifies if its (shorter) TBS can carry
            # the pending block; otherwise the retransmission waits for
            # the next full slot and the special slot carries new data.
            if pending and pending[0][0] <= i and \
                    not (is_special and pending[0][1] > tbs_value_special):
                due = pending.pop(0)
                p_retx = min(1.0, due[3] * params.retx_error_scale)
                ok = retx_uniforms[i] >= p_retx
                trace.scheduled[i] = True
                trace.is_retx[i] = True
                trace.n_prb[i] = period_prb
                trace.n_re[i] = period_prb * 12
                trace.mcs_index[i] = mcs
                trace.modulation_order[i] = entry.modulation.bits_per_symbol
                trace.layers[i] = layers
                trace.tbs_bits[i] = due[1]
                trace.cqi[i] = cqi
                trace.dci_format[i] = dci_code
                if ok:
                    trace.delivered_bits[i] = due[1]
                else:
                    trace.error[i] = True
                    if due[2] + 1 < params.max_attempts:
                        pending.append([i + params.harq_rtt_slots, due[1], due[2] + 1, due[3]])
                        pending.sort(key=lambda item: item[0])
                continue
            # New transmission.
            tbs = tbs_value_special if is_special else tbs_value_full
            if tbs <= 0:
                continue
            ok = bool(decoded_new[j])
            trace.scheduled[i] = True
            trace.n_prb[i] = period_prb
            trace.n_re[i] = period_prb * 12
            trace.mcs_index[i] = mcs
            trace.modulation_order[i] = entry.modulation.bits_per_symbol
            trace.layers[i] = layers
            trace.tbs_bits[i] = tbs
            trace.cqi[i] = cqi
            trace.dci_format[i] = dci_code
            if ok:
                trace.delivered_bits[i] = tbs
                acks += 1
            else:
                trace.error[i] = True
                nacks += 1
                pending.append([i + params.harq_rtt_slots, tbs, 1, float(p_err[j])])
                pending.sort(key=lambda item: item[0])
        if params.olla_enabled:
            olla.update_batch(acks, nacks)

    # Unscheduled slots still carry the CQI context for analysis: forward-fill.
    _forward_fill_cqi(trace)
    return trace


def _forward_fill_cqi(trace: SlotTrace) -> None:
    """Propagate the last reported CQI into unscheduled slots."""
    cqi = trace.cqi
    mask = cqi > 0
    if not mask.any():
        return
    idx = np.where(mask, np.arange(cqi.size), 0)
    np.maximum.accumulate(idx, out=idx)
    filled = cqi[idx]
    first = int(np.argmax(mask))
    filled[:first] = cqi[first]
    trace.cqi[:] = filled


def simulate_downlink(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    metadata: TraceMetadata | None = None,
) -> SlotTrace:
    """Single backlogged UE, downlink (iPerf DL equivalent)."""
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    metadata = metadata or TraceMetadata(
        carrier_name=cell.name, direction="DL",
        bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
    )
    return _simulate_direction(
        cell, channel, SlotType.DL, rng, params,
        max_layers=cell.max_layers, n_prb=cell.grantable_rb, metadata=metadata,
    )


def simulate_uplink(
    cell: CellConfig,
    channel: ChannelRealization,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
    max_layers: int = 2,
    metadata: TraceMetadata | None = None,
) -> SlotTrace:
    """Single backlogged UE, uplink.

    UL grants use at most ``max_layers`` (commercial mid-band UL runs 1-2
    layers) and the UL symbols of the TDD pattern; the caller supplies a
    channel realization reflecting the UL budget (UE tx power), typically
    the DL realization shifted down by the operator's UL SINR offset.
    """
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    metadata = metadata or TraceMetadata(
        carrier_name=cell.name, direction="UL",
        bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
    )
    # UL uses the 64QAM family in the studied deployments.
    ul_cell = replace(cell, max_modulation=Modulation.QAM64) \
        if cell.max_modulation is not Modulation.QAM64 else cell
    return _simulate_direction(
        ul_cell, channel, SlotType.UL, rng, params,
        max_layers=min(max_layers, cell.max_layers), n_prb=cell.grantable_rb,
        metadata=metadata,
    )


def simulate_downlink_multi(
    cell: CellConfig,
    channels: list[ChannelRealization],
    scheduler: Scheduler,
    rng: np.random.Generator | None = None,
    params: SimParams | None = None,
) -> list[SlotTrace]:
    """Several backlogged UEs sharing the carrier through a scheduler.

    Used for the §5.2 multi-user study (Fig. 14): per DL slot the
    scheduler splits the grantable RBs among all UEs; each UE's MCS/rank
    tracks its own CQI loop.  Per-UE HARQ is simplified to immediate
    retransmission accounting (errors cost the slot's bits) — adequate
    because Fig. 14 reports RB shares and mean throughput.
    """
    rng = rng or np.random.default_rng()
    params = params or SimParams()
    if not channels:
        raise ValueError("need at least one UE channel")
    n_slots = min(ch.n_slots for ch in channels)
    n_ues = len(channels)

    traces = [
        SlotTrace.empty(n_slots, mu=channels[k].mu, metadata=TraceMetadata(
            carrier_name=cell.name, direction="DL",
            bandwidth_mhz=cell.bandwidth_mhz, scs_khz=cell.scs_khz,
        ))
        for k in range(n_ues)
    ]
    for k, trace in enumerate(traces):
        trace.sinr_db[:] = channels[k].sinr_db[:n_slots]
        trace.rsrp_dbm[:] = channels[k].rsrp_dbm[:n_slots]
        trace.rsrq_db[:] = channels[k].rsrq_db[:n_slots]

    slot_types = _slot_types(cell, n_slots, SlotType.DL)
    for trace in traces:
        trace.slot_type[:] = slot_types
    full_sym, special_sym = _usable_symbols(cell, SlotType.DL)

    primary_mapper, fallback_mapper = _mappers(cell)
    period = cell.cqi_period_slots
    # Per-UE adaptation state.
    states = [
        {"cqi": 7, "rank": 1, "mcs": 5, "table": cell.mcs_table, "olla": Olla(), "dci": 1}
        for _ in range(n_ues)
    ]
    uniforms = rng.random((n_ues, n_slots))

    from repro.nr.tbs import transport_block_size  # local: hot path helper

    for i in range(n_slots):
        if i % period == 0:
            for k, state in enumerate(states):
                meas_idx = max(0, i - params.cqi_delay_slots)
                measured = float(channels[k].sinr_db[meas_idx]) + params.cqi_noise_db * float(rng.standard_normal())
                cqi = min(int(sinr_to_cqi(measured, cell.cqi_table, alpha=params.cqi_alpha)), CQI_MAX)
                state["cqi"] = cqi
                ewma = state.get("rank_sinr")
                ewma = measured if ewma is None else (1.0 - params.rank_ewma_beta) * ewma + params.rank_ewma_beta * measured
                state["rank_sinr"] = ewma
                state["rank"] = params.rank_adapter.rank_for_sinr(ewma, state["rank"])
                use_fb = cqi <= params.dci_fallback_cqi and cell.max_modulation is Modulation.QAM256
                mapper = fallback_mapper if use_fb else primary_mapper
                state["mcs"] = mapper.mcs_for_cqi(cqi, olla_offset=state["olla"].offset if params.olla_enabled else 0)
                state["table"] = mapper.mcs_table
                state["dci"] = 0 if (use_fb or cell.max_modulation is not Modulation.QAM256) else 1
        kind = slot_types[i]
        if kind == SLOT_UL:
            continue
        symbols = special_sym if kind == SLOT_SPECIAL else full_sym
        if symbols == 0:
            continue
        requests = []
        for k, state in enumerate(states):
            entry = state["table"][state["mcs"]]
            rate = entry.spectral_efficiency * state["rank"] * 12 * symbols
            requests.append(SchedulingRequest(ue_id=k, backlog_bits=1 << 30, instantaneous_rate=rate))
        allocation = scheduler.allocate(requests, cell.grantable_rb)
        served_bits = [0.0] * n_ues
        for k, n_rb in allocation.items():
            state = states[k]
            entry = state["table"][state["mcs"]]
            layers = min(state["rank"], cell.max_layers)
            tbs = transport_block_size(n_rb, entry, layers, symbols=symbols)
            if tbs <= 0:
                continue
            p = params.bler.error_probability(entry.spectral_efficiency, channels[k].sinr_db[i])
            ok = uniforms[k, i] >= float(p)
            trace = traces[k]
            trace.scheduled[i] = True
            trace.n_prb[i] = n_rb
            trace.n_re[i] = n_rb * 12
            trace.mcs_index[i] = state["mcs"]
            trace.modulation_order[i] = entry.modulation.bits_per_symbol
            trace.layers[i] = layers
            trace.tbs_bits[i] = tbs
            trace.cqi[i] = state["cqi"]
            trace.dci_format[i] = state["dci"]
            if ok:
                trace.delivered_bits[i] = tbs
                served_bits[k] = float(tbs)
            else:
                trace.error[i] = True
            if params.olla_enabled:
                state["olla"].update(ok)
        if hasattr(scheduler, "update_average"):
            # Every active UE folds this slot into its EWMA — including
            # UEs the scheduler left out, whose 0 served bits decay the
            # average so their PF metric recovers instead of starving.
            for k in range(n_ues):
                scheduler.update_average(k, served_bits[k])
    for trace in traces:
        _forward_fill_cqi(trace)
    return traces
