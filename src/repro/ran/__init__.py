"""Slot-level RAN simulator.

Implements the network side of the measurement substrate: cells and
their configuration (:mod:`repro.ran.config`), link adaptation with OLLA
and rank adaptation (:mod:`repro.ran.amc`), RB schedulers
(:mod:`repro.ran.scheduler`), carrier aggregation (:mod:`repro.ran.ca`),
the LTE anchor and NSA dual connectivity used for uplink
(:mod:`repro.ran.lte`, :mod:`repro.ran.nsa`), and the slot-clocked
simulation entry points (:mod:`repro.ran.simulator`).
"""

from repro.ran.config import CellConfig
from repro.ran.amc import BlerModel, Olla, RankAdapter, LinkAdapter
from repro.ran.scheduler import RoundRobinScheduler, ProportionalFairScheduler
from repro.ran.ue import UserEquipment
from repro.ran.gnb import Gnb
from repro.ran.simulator import simulate_downlink, simulate_downlink_multi, simulate_uplink
from repro.ran.ca import CarrierAggregation, AggregatedResult
from repro.ran.lte import LteCellConfig, simulate_lte_uplink
from repro.ran.nsa import NsaUplink, NsaUplinkResult

__all__ = [
    "CellConfig",
    "BlerModel",
    "Olla",
    "RankAdapter",
    "LinkAdapter",
    "RoundRobinScheduler",
    "ProportionalFairScheduler",
    "UserEquipment",
    "Gnb",
    "simulate_downlink",
    "simulate_downlink_multi",
    "simulate_uplink",
    "CarrierAggregation",
    "AggregatedResult",
    "LteCellConfig",
    "simulate_lte_uplink",
    "NsaUplink",
    "NsaUplinkResult",
]
