"""Cell (component carrier) configuration.

A :class:`CellConfig` bundles everything Tables 2 and 3 of the paper
report for a carrier — band, bandwidth, SCS, duplexing, TDD pattern,
maximum modulation order — together with the derived 3GPP objects (N_RB,
MCS/CQI tables, CQI→MCS mapper) the simulator needs.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from functools import cached_property

from repro.nr.bands import BAND_CATALOG, Band, Duplexing
from repro.nr.cqi import CqiMcsMapper, CqiTable, MappingPolicy, cqi_table_for
from repro.nr.grid import max_rb, re_per_slot
from repro.nr.mcs import McsTable, Modulation, table_for_max_modulation
from repro.nr.numerology import Numerology, slot_duration_ms
from repro.nr.tdd import TddPattern

#: Valid ``SimParams.engine`` values (also re-exported by
#: :mod:`repro.ran.simulator`).  ``"auto"`` and ``"tensor"`` are *policy*
#: values resolved by :func:`resolve_engine`; the physical slot engines
#: are ``"vectorized"``, ``"tensor"`` and ``"reference"``.  Every engine
#: produces byte-identical traces, so the choice is purely performance.
ENGINES = ("auto", "vectorized", "tensor", "reference")

#: Smallest cohort for which ``engine="auto"`` selects the cross-session
#: tensor pass.  Below this the per-column bookkeeping of the tensor
#: engine costs more than the batching saves and ``"vectorized"`` wins.
TENSOR_MIN_COHORT = 2

#: Environment override for the engine policy.  When set (to any value
#: in :data:`ENGINES`) it replaces the *requested* engine before
#: resolution — inherited by worker processes, never part of a task's
#: store fingerprint (every engine produces the same bytes).  Used by
#: the tensor benchmark to pin its per-session baseline, and handy for
#: A/B timing in the field.
ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine(engine: str, cohort_size: int = 1) -> str:
    """Resolve a requested engine to the physical engine actually run.

    Decision table (all cells byte-identical — this is a pure
    performance policy; see ``docs/architecture.md``):

    ==============  =================  ============================
    requested       cohort_size == 1   cohort_size >= TENSOR_MIN_COHORT
    ==============  =================  ============================
    ``auto``        ``vectorized``     ``tensor``
    ``tensor``      ``vectorized``     ``tensor``
    ``vectorized``  ``vectorized``     ``vectorized`` (per session)
    ``reference``   ``reference``      ``reference`` (per session)
    ==============  =================  ============================

    ``tensor`` degrades to ``vectorized`` for a cohort of one because
    the tensor pass *is* the segment-batched vectorized engine with a
    sessions axis — a single column has nothing to batch across.

    The :data:`ENGINE_ENV` environment variable, when set, replaces
    ``engine`` before the table applies (the ``cohort_size`` degrade
    rules still hold, so ``REPRO_ENGINE=tensor`` on a lone session
    still runs vectorized).
    """
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
    override = os.environ.get(ENGINE_ENV)
    if override:
        if override not in ENGINES:
            raise ValueError(
                f"{ENGINE_ENV} must be one of {ENGINES}, got {override!r}")
        engine = override
    if engine == "tensor":
        return "tensor" if cohort_size >= 2 else "vectorized"
    if engine == "auto":
        return "tensor" if cohort_size >= TENSOR_MIN_COHORT else "vectorized"
    return engine


@dataclass(frozen=True)
class CellConfig:
    """Configuration of one NR component carrier.

    Parameters
    ----------
    name:
        Carrier label, e.g. ``"V_Sp n78 90MHz"``.
    band_name:
        3GPP band designator (must exist in :data:`~repro.nr.bands.BAND_CATALOG`).
    bandwidth_mhz:
        Channel bandwidth in MHz.
    scs_khz:
        Sub-carrier spacing (30 kHz for all the paper's TDD mid-band
        carriers, 15 kHz for T-Mobile's n25 FDD pair, 120 kHz for FR2).
    max_modulation:
        Operator-configured modulation ceiling (QAM64 or QAM256, §3.1).
    tdd:
        TDD pattern; ``None`` for FDD carriers.
    max_layers:
        SU-MIMO layer ceiling (4x4 for every operator studied).
    mapping_policy:
        Vendor CQI→MCS aggressiveness.
    n_rb_override:
        Explicit N_RB (only needed when a deployment deviates from
        Table 5.3.2-1, e.g. reduced-guard configurations).
    control_rb_fraction:
        Fraction of RBs consumed by PDCCH/SSB/other control overhead and
        therefore not grantable to the measured UE.
    cqi_period_slots:
        Slots between CQI reports (the paper: "typically on a per-slot
        basis or (semi-)periodically within 10's ms time scales").
    fr2:
        FR2 (mmWave) carrier — selects the FR2 N_RB table.
    """

    name: str
    band_name: str = "n78"
    bandwidth_mhz: int = 90
    scs_khz: int = 30
    max_modulation: Modulation = Modulation.QAM256
    tdd: TddPattern | None = field(default_factory=lambda: TddPattern.from_string("DDDSU"))
    max_layers: int = 4
    mapping_policy: MappingPolicy = MappingPolicy.MATCHED
    n_rb_override: int | None = None
    control_rb_fraction: float = 0.03
    cqi_period_slots: int = 20
    fr2: bool = False

    def __post_init__(self) -> None:
        if self.band_name not in BAND_CATALOG:
            raise ValueError(f"unknown band {self.band_name!r}")
        if not 1 <= self.max_layers <= 8:
            raise ValueError("max_layers must lie in [1, 8]")
        if not 0.0 <= self.control_rb_fraction < 1.0:
            raise ValueError("control_rb_fraction must lie in [0, 1)")
        if self.cqi_period_slots < 1:
            raise ValueError("cqi_period_slots must be positive")
        band = BAND_CATALOG[self.band_name]
        if band.duplexing is Duplexing.TDD and self.tdd is None:
            raise ValueError(f"band {self.band_name} is TDD; a TddPattern is required")
        if band.duplexing is Duplexing.FDD and self.tdd is not None:
            raise ValueError(f"band {self.band_name} is FDD; tdd must be None")
        # Validate the N_RB lookup eagerly unless overridden.
        if self.n_rb_override is None:
            max_rb(self.bandwidth_mhz, self.scs_khz, fr2=self.fr2)
        elif self.n_rb_override < 1:
            raise ValueError("n_rb_override must be positive")

    # ------------------------------------------------------------------ #
    # Derived 3GPP objects
    # ------------------------------------------------------------------ #
    @property
    def band(self) -> Band:
        return BAND_CATALOG[self.band_name]

    @property
    def is_tdd(self) -> bool:
        return self.band.duplexing is Duplexing.TDD

    @property
    def mu(self) -> Numerology:
        return Numerology.from_scs_khz(self.scs_khz)

    @property
    def slot_ms(self) -> float:
        return slot_duration_ms(self.mu)

    @property
    def n_rb(self) -> int:
        """Maximum transmission bandwidth in RBs."""
        if self.n_rb_override is not None:
            return self.n_rb_override
        return max_rb(self.bandwidth_mhz, self.scs_khz, fr2=self.fr2)

    @property
    def grantable_rb(self) -> int:
        """RBs available to user-plane grants after control overhead."""
        return max(1, int(round(self.n_rb * (1.0 - self.control_rb_fraction))))

    @property
    def mcs_table(self) -> McsTable:
        return table_for_max_modulation(self.max_modulation)

    @property
    def cqi_table(self) -> CqiTable:
        return cqi_table_for(self.max_modulation)

    @cached_property
    def mapper(self) -> CqiMcsMapper:
        return CqiMcsMapper(self.cqi_table, self.mcs_table, self.mapping_policy)

    @property
    def frequency_ghz(self) -> float:
        """Carrier center frequency in GHz (band center as a stand-in)."""
        return self.band.center_mhz / 1000.0

    def re_per_full_slot(self, n_prb: int | None = None) -> int:
        """REs across 14 symbols for an allocation (defaults to full grant)."""
        return re_per_slot(self.grantable_rb if n_prb is None else n_prb)

    def dl_slot_fraction(self) -> float:
        """Fraction of symbols usable for DL (1.0 for FDD)."""
        return self.tdd.dl_symbol_fraction if self.tdd is not None else 1.0

    def ul_slot_fraction(self) -> float:
        """Fraction of symbols usable for UL (1.0 for FDD)."""
        return self.tdd.ul_symbol_fraction if self.tdd is not None else 1.0
